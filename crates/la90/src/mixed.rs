//! Mixed-precision iterative-refinement drivers — `LA_GESV_MIXED` and
//! `LA_POSV_MIXED`.
//!
//! These wrap the substrate's [`f77::gesv_mixed`]/[`f77::posv_mixed`]
//! (the `DSGESV`/`DSPOSV` lineage, generalized over the precision
//! lattice): the O(n³) factorization runs in the demoted precision
//! selected by the `LA_GESV_MIXED` environment variable — `f32` (the
//! default), `f16` or `bf16` for real working types; complex always
//! demotes to `Complex<f32>` — the solution is refined against the
//! original working-precision matrix (residuals in double-double under
//! `LA_REFINE=dd`), and any low-precision failure — demotion
//! overflow/underflow, zero pivot, refinement stall — transparently
//! re-solves with the full working-precision factorization, bit-for-bit
//! the plain [`gesv`](crate::gesv)/[`posv`](crate::posv) result.
//!
//! The extra-precise refinement entries [`gesvxx`]/[`posvxx`] (the
//! `xGESVXX`/`xPOSVXX` lineage) always accumulate residuals in
//! double-double and return componentwise *and* normwise backward errors
//! plus forward error estimates per right-hand side ([`RfsxOut`]).
//!
//! Unlike the plain drivers, the right-hand side is **not** overwritten:
//! the solution lands in a separate `X` (the `DSGESV` calling sequence),
//! so the driver can iterate `r = B − A·X` against the caller's `B`.
//!
//! The returned `iter` follows the `DSGESV` convention — `≥ 0`: number
//! of refinement steps on the successful low-precision path; `< 0`: the
//! full-precision fallback ran (`-2` demotion overflow, `-3`
//! low-precision factorization failure, `-31` no convergence within
//! [`f77::ITERMAX`] steps). The `*_mixedx` expert forms also measure the
//! achieved normwise backward error `max_j ‖B−A·X‖∞ / (‖A‖∞‖X‖∞+‖B‖∞)`
//! against a snapshot of the original matrix.

use la_blas::{gemm, symm};
use la_core::{erinfo, LaError, Mat, Norm, PositiveInfo, RealScalar, Scalar, Trans, Uplo};
use la_lapack as f77;
pub use la_lapack::RfsxOut;

use crate::rhs::{screen_inputs, screen_outputs, Rhs};

fn illegal(routine: &'static str, index: usize) -> LaError {
    LaError::IllegalArg { routine, index }
}

/// Outcome of the expert mixed drivers ([`gesv_mixedx`] /
/// [`posv_mixedx`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedOut<R> {
    /// Refinement iteration count, `DSGESV` convention (negative: the
    /// full-precision fallback produced the solution).
    pub iter: i32,
    /// Achieved normwise backward error of the returned solution,
    /// measured against the original matrix:
    /// `max_j ‖b_j − A·x_j‖∞ / (‖A‖∞·‖x_j‖∞ + ‖b_j‖∞)`.
    pub berr: R,
}

/// Normwise backward error of `x` against the untouched copies `a0`/`b`.
fn normwise_berr<T: Scalar>(
    routine: &'static str,
    n: usize,
    nrhs: usize,
    anrm: T::Real,
    a0: &[T],
    lda: usize,
    herm_uplo: Option<Uplo>,
    b: &[T],
    ldb: usize,
    x: &[T],
    ldx: usize,
) -> Result<T::Real, LaError> {
    let mut r = crate::rhs::alloc_ws(routine, n * nrhs, T::zero())?;
    for j in 0..nrhs {
        r[j * n..j * n + n].copy_from_slice(&b[j * ldb..j * ldb + n]);
    }
    match herm_uplo {
        None => gemm(
            Trans::No,
            Trans::No,
            n,
            nrhs,
            n,
            -T::one(),
            a0,
            lda,
            x,
            ldx,
            T::one(),
            &mut r,
            n,
        ),
        Some(uplo) => symm(
            T::IS_COMPLEX,
            la_core::Side::Left,
            uplo,
            n,
            nrhs,
            -T::one(),
            a0,
            lda,
            x,
            ldx,
            T::one(),
            &mut r,
            n,
        ),
    }
    let mut berr = T::Real::zero();
    for j in 0..nrhs {
        let (mut rnrm, mut xnrm, mut bnrm) = (T::Real::zero(), T::Real::zero(), T::Real::zero());
        for i in 0..n {
            rnrm = rnrm.maxr(r[i + j * n].abs1());
            xnrm = xnrm.maxr(x[i + j * ldx].abs1());
            bnrm = bnrm.maxr(b[i + j * ldb].abs1());
        }
        let den = anrm * xnrm + bnrm;
        if den > T::Real::zero() {
            berr = berr.maxr(rnrm / den);
        }
    }
    Ok(berr)
}

fn gesv_mixed_opt<T, B, X>(
    a: &mut Mat<T>,
    b: &B,
    x: &mut X,
    ipiv: Option<&mut [i32]>,
    want_berr: bool,
) -> Result<MixedOut<T::Real>, LaError>
where
    T: f77::Lattice,
    B: Rhs<T> + ?Sized,
    X: Rhs<T> + ?Sized,
{
    const SRNAME: &str = "LA_GESV_MIXED";
    let _probe = crate::rhs::driver_span(SRNAME);
    let n = a.nrows();
    if !a.is_square() {
        return Err(illegal(SRNAME, 1));
    }
    if b.nrows() != n {
        return Err(illegal(SRNAME, 2));
    }
    if x.nrows() != n || x.nrhs() != b.nrhs() {
        return Err(illegal(SRNAME, 3));
    }
    if let Some(p) = &ipiv {
        if p.len() != n {
            return Err(illegal(SRNAME, 4));
        }
    }
    screen_inputs!(SRNAME, 1 => a.as_slice(), 2 => b.as_slice());
    let mut local;
    let piv: &mut [i32] = match ipiv {
        Some(p) => p,
        None => {
            local = crate::rhs::alloc_ws(SRNAME, n, 0i32)?;
            &mut local
        }
    };
    let nrhs = b.nrhs();
    let (lda, ldb, ldx) = (a.lda(), b.ldb(), x.ldb());
    // The expert form measures the achieved backward error against the
    // original matrix, which the fallback path overwrites — snapshot it.
    let (a0, anrm) = if want_berr {
        let mut a0 = crate::rhs::alloc_ws(SRNAME, a.as_slice().len(), T::zero())?;
        a0.copy_from_slice(a.as_slice());
        (a0, f77::lange(Norm::Inf, n, n, a.as_slice(), lda))
    } else {
        (Vec::new(), T::Real::zero())
    };
    let mut iter = 0i32;
    let linfo = f77::gesv_mixed(
        n,
        nrhs,
        a.as_mut_slice(),
        lda,
        piv,
        b.as_slice(),
        ldb,
        x.as_mut_slice(),
        ldx,
        &mut iter,
    );
    erinfo(linfo, SRNAME, PositiveInfo::Singular)?;
    screen_outputs(SRNAME, 3, x.as_slice())?;
    let berr = if want_berr {
        normwise_berr(
            SRNAME,
            n,
            nrhs,
            anrm,
            &a0,
            lda,
            None,
            b.as_slice(),
            ldb,
            x.as_slice(),
            ldx,
        )?
    } else {
        T::Real::zero()
    };
    Ok(MixedOut { iter, berr })
}

/// `CALL LA_GESV_MIXED( A, B, X, INFO=info )` — solves `A·X = B` by LU
/// factorization in the demoted precision with working-precision
/// iterative refinement; transparently falls back to the plain
/// full-precision [`gesv`](crate::gesv) on any low-precision failure.
/// `B` is left untouched; the solution lands in `X`. Returns the
/// refinement iteration count (`DSGESV` convention, negative on
/// fallback).
///
/// ```
/// use la_core::mat;
/// let mut a: la_core::Mat<f64> = mat![[4.0, 1.0], [1.0, 3.0]];
/// let b: Vec<f64> = vec![9.0, 5.0]; // solution is (2, 1)ᵀ
/// let mut x = vec![0.0f64; 2];
/// let iter = la90::gesv_mixed(&mut a, &b, &mut x)?;
/// assert!(iter >= 0); // low-precision path converged
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), la_core::LaError>(())
/// ```
pub fn gesv_mixed<T, B, X>(a: &mut Mat<T>, b: &B, x: &mut X) -> Result<i32, LaError>
where
    T: f77::Lattice,
    B: Rhs<T> + ?Sized,
    X: Rhs<T> + ?Sized,
{
    gesv_mixed_opt(a, b, x, None, false).map(|o| o.iter)
}

/// [`gesv_mixed`] with the optional `IPIV` output (length `a.nrows()`;
/// `INFO = -4` otherwise). On the low-precision path the pivots are
/// those of the demoted factorization.
pub fn gesv_mixed_ipiv<T, B, X>(
    a: &mut Mat<T>,
    b: &B,
    x: &mut X,
    ipiv: &mut [i32],
) -> Result<i32, LaError>
where
    T: f77::Lattice,
    B: Rhs<T> + ?Sized,
    X: Rhs<T> + ?Sized,
{
    gesv_mixed_opt(a, b, x, Some(ipiv), false).map(|o| o.iter)
}

/// Expert form of [`gesv_mixed`]: also measures the achieved normwise
/// backward error of the returned solution against a snapshot of the
/// original `A` (an extra O(n²) gemm + the snapshot copy).
pub fn gesv_mixedx<T, B, X>(a: &mut Mat<T>, b: &B, x: &mut X) -> Result<MixedOut<T::Real>, LaError>
where
    T: f77::Lattice,
    B: Rhs<T> + ?Sized,
    X: Rhs<T> + ?Sized,
{
    gesv_mixed_opt(a, b, x, None, true)
}

fn posv_mixed_opt<T, B, X>(
    a: &mut Mat<T>,
    b: &B,
    x: &mut X,
    uplo: Uplo,
    want_berr: bool,
) -> Result<MixedOut<T::Real>, LaError>
where
    T: f77::Lattice,
    B: Rhs<T> + ?Sized,
    X: Rhs<T> + ?Sized,
{
    const SRNAME: &str = "LA_POSV_MIXED";
    let _probe = crate::rhs::driver_span(SRNAME);
    let n = a.nrows();
    if !a.is_square() {
        return Err(illegal(SRNAME, 1));
    }
    if b.nrows() != n {
        return Err(illegal(SRNAME, 2));
    }
    if x.nrows() != n || x.nrhs() != b.nrhs() {
        return Err(illegal(SRNAME, 3));
    }
    screen_inputs!(SRNAME, 1 => a.as_slice(), 2 => b.as_slice());
    let nrhs = b.nrhs();
    let (lda, ldb, ldx) = (a.lda(), b.ldb(), x.ldb());
    let (a0, anrm) = if want_berr {
        let mut a0 = crate::rhs::alloc_ws(SRNAME, a.as_slice().len(), T::zero())?;
        a0.copy_from_slice(a.as_slice());
        (
            a0,
            f77::lansy(Norm::Inf, uplo, T::IS_COMPLEX, n, a.as_slice(), lda),
        )
    } else {
        (Vec::new(), T::Real::zero())
    };
    let mut iter = 0i32;
    let linfo = f77::posv_mixed(
        uplo,
        n,
        nrhs,
        a.as_mut_slice(),
        lda,
        b.as_slice(),
        ldb,
        x.as_mut_slice(),
        ldx,
        &mut iter,
    );
    erinfo(linfo, SRNAME, PositiveInfo::NotPosDef)?;
    screen_outputs(SRNAME, 3, x.as_slice())?;
    let berr = if want_berr {
        normwise_berr(
            SRNAME,
            n,
            nrhs,
            anrm,
            &a0,
            lda,
            Some(uplo),
            b.as_slice(),
            ldb,
            x.as_slice(),
            ldx,
        )?
    } else {
        T::Real::zero()
    };
    Ok(MixedOut { iter, berr })
}

/// `CALL LA_POSV_MIXED( A, B, X, INFO=info )` — solves the
/// symmetric/Hermitian positive-definite `A·X = B` by Cholesky in the
/// demoted precision with working-precision refinement; falls back to
/// the plain [`posv`](crate::posv) on any low-precision failure. Uses
/// the upper triangle (the Fortran `UPLO` default); `B` is untouched,
/// the solution lands in `X`. Returns the iteration count.
pub fn posv_mixed<T, B, X>(a: &mut Mat<T>, b: &B, x: &mut X) -> Result<i32, LaError>
where
    T: f77::Lattice,
    B: Rhs<T> + ?Sized,
    X: Rhs<T> + ?Sized,
{
    posv_mixed_opt(a, b, x, Uplo::Upper, false).map(|o| o.iter)
}

/// [`posv_mixed`] with an explicit `UPLO`.
pub fn posv_mixed_uplo<T, B, X>(
    a: &mut Mat<T>,
    b: &B,
    x: &mut X,
    uplo: Uplo,
) -> Result<i32, LaError>
where
    T: f77::Lattice,
    B: Rhs<T> + ?Sized,
    X: Rhs<T> + ?Sized,
{
    posv_mixed_opt(a, b, x, uplo, false).map(|o| o.iter)
}

/// Expert form of [`posv_mixed`]: explicit `UPLO` plus the achieved
/// normwise backward error measured against a snapshot of the original
/// `A`.
pub fn posv_mixedx<T, B, X>(
    a: &mut Mat<T>,
    b: &B,
    x: &mut X,
    uplo: Uplo,
) -> Result<MixedOut<T::Real>, LaError>
where
    T: f77::Lattice,
    B: Rhs<T> + ?Sized,
    X: Rhs<T> + ?Sized,
{
    posv_mixed_opt(a, b, x, uplo, true)
}

/// `CALL LA_GESVXX( A, B, X, BERR=, NBERR=, FERR=, INFO= )` — solve
/// `A·X = B` with LU in the working precision, then drive the solution to
/// working-precision backward error with extra-precise (double-double)
/// residual refinement (`xGESVXX` semantics, without equilibration). `A`
/// is overwritten by its factors; `B` is untouched. Returns the per-rhs
/// componentwise/normwise backward errors and forward error estimates —
/// on badly conditioned systems (Hilbert up to `n = 12`) the refined
/// solution reaches componentwise backward error `≤ 4ε` where the plain
/// solve does not.
pub fn gesvxx<T, B, X>(a: &mut Mat<T>, b: &B, x: &mut X) -> Result<RfsxOut<T::Real>, LaError>
where
    T: Scalar,
    B: Rhs<T> + ?Sized,
    X: Rhs<T> + ?Sized,
{
    const SRNAME: &str = "LA_GESVXX";
    let _probe = crate::rhs::driver_span(SRNAME);
    let n = a.nrows();
    if !a.is_square() {
        return Err(illegal(SRNAME, 1));
    }
    if b.nrows() != n {
        return Err(illegal(SRNAME, 2));
    }
    if x.nrows() != n || x.nrhs() != b.nrhs() {
        return Err(illegal(SRNAME, 3));
    }
    screen_inputs!(SRNAME, 1 => a.as_slice(), 2 => b.as_slice());
    let nrhs = b.nrhs();
    let (lda, ldb, ldx) = (a.lda(), b.ldb(), x.ldb());
    // The refinement iterates against the original matrix, which the
    // factorization overwrites — snapshot it first.
    let mut a0 = crate::rhs::alloc_ws(SRNAME, a.as_slice().len(), T::zero())?;
    a0.copy_from_slice(a.as_slice());
    let mut ipiv = crate::rhs::alloc_ws(SRNAME, n, 0i32)?;
    let linfo = f77::getrf(n, n, a.as_mut_slice(), lda, &mut ipiv);
    erinfo(linfo, SRNAME, PositiveInfo::Singular)?;
    for j in 0..nrhs {
        x.as_mut_slice()[j * ldx..j * ldx + n].copy_from_slice(&b.as_slice()[j * ldb..j * ldb + n]);
    }
    let linfo = f77::getrs(
        Trans::No,
        n,
        nrhs,
        a.as_slice(),
        lda,
        &ipiv,
        x.as_mut_slice(),
        ldx,
    );
    erinfo(linfo, SRNAME, PositiveInfo::Singular)?;
    let (linfo, out) = f77::gerfsx(
        Trans::No,
        n,
        nrhs,
        &a0,
        lda,
        a.as_slice(),
        lda,
        &ipiv,
        b.as_slice(),
        ldb,
        x.as_mut_slice(),
        ldx,
    );
    erinfo(linfo, SRNAME, PositiveInfo::Singular)?;
    screen_outputs(SRNAME, 3, x.as_slice())?;
    Ok(out)
}

/// `CALL LA_POSVXX( A, B, X, UPLO=, ... )` — the symmetric/Hermitian
/// positive-definite companion of [`gesvxx`]: Cholesky in the working
/// precision plus extra-precise residual refinement (`xPOSVXX`
/// semantics). Only the `uplo` triangle is referenced; `A` is overwritten
/// by its factor.
pub fn posvxx<T, B, X>(
    a: &mut Mat<T>,
    b: &B,
    x: &mut X,
    uplo: Uplo,
) -> Result<RfsxOut<T::Real>, LaError>
where
    T: Scalar,
    B: Rhs<T> + ?Sized,
    X: Rhs<T> + ?Sized,
{
    const SRNAME: &str = "LA_POSVXX";
    let _probe = crate::rhs::driver_span(SRNAME);
    let n = a.nrows();
    if !a.is_square() {
        return Err(illegal(SRNAME, 1));
    }
    if b.nrows() != n {
        return Err(illegal(SRNAME, 2));
    }
    if x.nrows() != n || x.nrhs() != b.nrhs() {
        return Err(illegal(SRNAME, 3));
    }
    screen_inputs!(SRNAME, 1 => a.as_slice(), 2 => b.as_slice());
    let nrhs = b.nrhs();
    let (lda, ldb, ldx) = (a.lda(), b.ldb(), x.ldb());
    let mut a0 = crate::rhs::alloc_ws(SRNAME, a.as_slice().len(), T::zero())?;
    a0.copy_from_slice(a.as_slice());
    let linfo = f77::potrf(uplo, n, a.as_mut_slice(), lda);
    erinfo(linfo, SRNAME, PositiveInfo::NotPosDef)?;
    for j in 0..nrhs {
        x.as_mut_slice()[j * ldx..j * ldx + n].copy_from_slice(&b.as_slice()[j * ldb..j * ldb + n]);
    }
    let linfo = f77::potrs(uplo, n, nrhs, a.as_slice(), lda, x.as_mut_slice(), ldx);
    erinfo(linfo, SRNAME, PositiveInfo::NotPosDef)?;
    let (linfo, out) = f77::porfsx(
        uplo,
        n,
        nrhs,
        &a0,
        lda,
        a.as_slice(),
        lda,
        b.as_slice(),
        ldb,
        x.as_mut_slice(),
        ldx,
    );
    erinfo(linfo, SRNAME, PositiveInfo::NotPosDef)?;
    screen_outputs(SRNAME, 3, x.as_slice())?;
    Ok(out)
}
