//! Driver routines for linear equations — the first block of the paper's
//! Appendix G:
//! `LA_GESV`, `LA_GBSV`, `LA_GTSV`, `LA_POSV`, `LA_PPSV`, `LA_PBSV`,
//! `LA_PTSV`, `LA_SYSV`/`LA_HESV`, `LA_SPSV`/`LA_HPSV`.
//!
//! Each wrapper derives every dimension from the argument shapes, checks
//! them exactly as the Appendix-C code does (producing the same negative
//! `INFO` indices), allocates whatever workspace the computation needs,
//! calls the substrate routine and routes the outcome through the
//! [`erinfo`](la_core::erinfo()) protocol.

use la_core::{erinfo, BandMat, LaError, Mat, PackedMat, PositiveInfo, Scalar, SymBandMat, Uplo};
use la_lapack as f77;

use crate::rhs::{screen_inputs, screen_outputs, Rhs};

fn illegal(routine: &'static str, index: usize) -> LaError {
    LaError::IllegalArg { routine, index }
}

/// `CALL LA_GESV( A, B, IPIV=ipiv, INFO=info )` — solves a general system
/// of linear equations `A·X = B` by LU factorization with partial
/// pivoting. `A` is overwritten by the factors, `B` by the solution.
///
/// Argument order for error indices: `(A, B, IPIV)`.
///
/// ```
/// use la_core::mat;
/// let mut a: la_core::Mat<f64> = mat![[4.0, 1.0], [1.0, 3.0]];
/// let mut b: Vec<f64> = vec![9.0, 5.0]; // solution is (2, 1)ᵀ
/// la90::gesv(&mut a, &mut b)?;
/// assert!((b[0] - 2.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), la_core::LaError>(())
/// ```
pub fn gesv<T: Scalar, B: Rhs<T> + ?Sized>(a: &mut Mat<T>, b: &mut B) -> Result<(), LaError> {
    gesv_ipiv_opt(a, b, None)
}

/// [`gesv`] with the optional `IPIV` output (must have length
/// `a.nrows()`, as the Fortran wrapper requires — `INFO = -3` otherwise).
pub fn gesv_ipiv<T: Scalar, B: Rhs<T> + ?Sized>(
    a: &mut Mat<T>,
    b: &mut B,
    ipiv: &mut [i32],
) -> Result<(), LaError> {
    gesv_ipiv_opt(a, b, Some(ipiv))
}

fn gesv_ipiv_opt<T: Scalar, B: Rhs<T> + ?Sized>(
    a: &mut Mat<T>,
    b: &mut B,
    ipiv: Option<&mut [i32]>,
) -> Result<(), LaError> {
    const SRNAME: &str = "LA_GESV";
    let _probe = crate::rhs::driver_span(SRNAME);
    let n = a.nrows();
    if !a.is_square() {
        return Err(illegal(SRNAME, 1));
    }
    if b.nrows() != n {
        return Err(illegal(SRNAME, 2));
    }
    if let Some(p) = &ipiv {
        if p.len() != n {
            return Err(illegal(SRNAME, 3));
        }
    }
    screen_inputs!(SRNAME, 1 => a.as_slice(), 2 => b.as_slice());
    // Workspace allocation when IPIV is absent (the wrapper's LPIV).
    let mut local;
    let piv: &mut [i32] = match ipiv {
        Some(p) => p,
        None => {
            local = vec![0i32; n];
            &mut local
        }
    };
    let nrhs = b.nrhs();
    let (lda, ldb) = (a.lda(), b.ldb());
    let linfo = f77::gesv(n, nrhs, a.as_mut_slice(), lda, piv, b.as_mut_slice(), ldb);
    erinfo(linfo, SRNAME, PositiveInfo::Singular)?;
    screen_outputs(SRNAME, 2, b.as_slice())
}

/// `CALL LA_GBSV( AB, B, KL=kl, IPIV=ipiv, INFO=info )` — solves a
/// general band system. `AB` must be allocated with factorization fill
/// space ([`BandMat::zeros_for_factor`] / `from_dense(.., true)`).
pub fn gbsv<T: Scalar, B: Rhs<T> + ?Sized>(ab: &mut BandMat<T>, b: &mut B) -> Result<(), LaError> {
    gbsv_ipiv_opt(ab, b, None)
}

/// [`gbsv`] with the optional pivot output.
pub fn gbsv_ipiv<T: Scalar, B: Rhs<T> + ?Sized>(
    ab: &mut BandMat<T>,
    b: &mut B,
    ipiv: &mut [i32],
) -> Result<(), LaError> {
    gbsv_ipiv_opt(ab, b, Some(ipiv))
}

fn gbsv_ipiv_opt<T: Scalar, B: Rhs<T> + ?Sized>(
    ab: &mut BandMat<T>,
    b: &mut B,
    ipiv: Option<&mut [i32]>,
) -> Result<(), LaError> {
    const SRNAME: &str = "LA_GBSV";
    let _probe = crate::rhs::driver_span(SRNAME);
    let n = ab.ncols();
    if ab.nrows() != n || !ab.has_factor_space() {
        return Err(illegal(SRNAME, 1));
    }
    if b.nrows() != n {
        return Err(illegal(SRNAME, 2));
    }
    if let Some(p) = &ipiv {
        if p.len() != n {
            return Err(illegal(SRNAME, 4));
        }
    }
    screen_inputs!(SRNAME, 1 => ab.as_slice(), 2 => b.as_slice());
    let mut local;
    let piv: &mut [i32] = match ipiv {
        Some(p) => p,
        None => {
            local = vec![0i32; n];
            &mut local
        }
    };
    let (kl, ku, ldab) = (ab.kl(), ab.ku(), ab.ldab());
    let nrhs = b.nrhs();
    let ldb = b.ldb();
    let linfo = f77::gbsv(
        n,
        kl,
        ku,
        nrhs,
        ab.as_mut_slice(),
        ldab,
        piv,
        b.as_mut_slice(),
        ldb,
    );
    erinfo(linfo, SRNAME, PositiveInfo::Singular)?;
    screen_outputs(SRNAME, 2, b.as_slice())
}

/// `CALL LA_GTSV( DL, D, DU, B, INFO=info )` — solves a general
/// tridiagonal system. The three diagonals are overwritten by
/// factorization data, `B` by the solution.
pub fn gtsv<T: Scalar, B: Rhs<T> + ?Sized>(
    dl: &mut [T],
    d: &mut [T],
    du: &mut [T],
    b: &mut B,
) -> Result<(), LaError> {
    const SRNAME: &str = "LA_GTSV";
    let _probe = crate::rhs::driver_span(SRNAME);
    let n = d.len();
    if n > 0 && dl.len() != n - 1 {
        return Err(illegal(SRNAME, 1));
    }
    if n > 0 && du.len() != n - 1 {
        return Err(illegal(SRNAME, 3));
    }
    if b.nrows() != n {
        return Err(illegal(SRNAME, 4));
    }
    screen_inputs!(SRNAME, 1 => &*dl, 2 => &*d, 3 => &*du, 4 => b.as_slice());
    let nrhs = b.nrhs();
    let ldb = b.ldb();
    let linfo = f77::gtsv(n, nrhs, dl, d, du, b.as_mut_slice(), ldb);
    erinfo(linfo, SRNAME, PositiveInfo::Singular)?;
    screen_outputs(SRNAME, 4, b.as_slice())
}

/// `CALL LA_POSV( A, B, UPLO=uplo, INFO=info )` — solves a
/// symmetric/Hermitian positive-definite system by Cholesky
/// factorization.
///
/// ```
/// use la_core::{mat, LaError};
/// let mut a: la_core::Mat<f64> = mat![[2.0, 1.0], [1.0, 2.0]];
/// let mut b: Vec<f64> = vec![3.0, 3.0];
/// la90::posv(&mut a, &mut b)?;
/// assert!((b[0] - 1.0).abs() < 1e-12);
/// // An indefinite matrix is rejected with the NotPosDef info code:
/// let mut bad: la_core::Mat<f64> = mat![[1.0, 0.0], [0.0, -1.0]];
/// let mut b: Vec<f64> = vec![1.0, 1.0];
/// assert!(matches!(la90::posv(&mut bad, &mut b), Err(LaError::NotPosDef { .. })));
/// # Ok::<(), la_core::LaError>(())
/// ```
pub fn posv<T: Scalar, B: Rhs<T> + ?Sized>(a: &mut Mat<T>, b: &mut B) -> Result<(), LaError> {
    posv_uplo(a, b, Uplo::Upper)
}

/// [`posv`] with an explicit `UPLO` (the Fortran default is `'U'`).
pub fn posv_uplo<T: Scalar, B: Rhs<T> + ?Sized>(
    a: &mut Mat<T>,
    b: &mut B,
    uplo: Uplo,
) -> Result<(), LaError> {
    const SRNAME: &str = "LA_POSV";
    let _probe = crate::rhs::driver_span(SRNAME);
    let n = a.nrows();
    if !a.is_square() {
        return Err(illegal(SRNAME, 1));
    }
    if b.nrows() != n {
        return Err(illegal(SRNAME, 2));
    }
    screen_inputs!(SRNAME, 1 => a.as_slice(), 2 => b.as_slice());
    let nrhs = b.nrhs();
    let (lda, ldb) = (a.lda(), b.ldb());
    let linfo = f77::posv(uplo, n, nrhs, a.as_mut_slice(), lda, b.as_mut_slice(), ldb);
    erinfo(linfo, SRNAME, PositiveInfo::NotPosDef)?;
    screen_outputs(SRNAME, 2, b.as_slice())
}

/// `CALL LA_PPSV( AP, B, UPLO=uplo, INFO=info )` — packed-storage
/// positive-definite solve (the triangle comes from the [`PackedMat`]).
pub fn ppsv<T: Scalar, B: Rhs<T> + ?Sized>(
    ap: &mut PackedMat<T>,
    b: &mut B,
) -> Result<(), LaError> {
    const SRNAME: &str = "LA_PPSV";
    let _probe = crate::rhs::driver_span(SRNAME);
    let n = ap.n();
    if b.nrows() != n {
        return Err(illegal(SRNAME, 2));
    }
    screen_inputs!(SRNAME, 1 => ap.as_slice(), 2 => b.as_slice());
    let uplo = ap.uplo();
    let nrhs = b.nrhs();
    let ldb = b.ldb();
    let linfo = f77::ppsv(uplo, n, nrhs, ap.as_mut_slice(), b.as_mut_slice(), ldb);
    erinfo(linfo, SRNAME, PositiveInfo::NotPosDef)?;
    screen_outputs(SRNAME, 2, b.as_slice())
}

/// `CALL LA_PBSV( AB, B, UPLO=uplo, INFO=info )` — band positive-definite
/// solve.
pub fn pbsv<T: Scalar, B: Rhs<T> + ?Sized>(
    ab: &mut SymBandMat<T>,
    b: &mut B,
) -> Result<(), LaError> {
    const SRNAME: &str = "LA_PBSV";
    let _probe = crate::rhs::driver_span(SRNAME);
    let n = ab.n();
    if b.nrows() != n {
        return Err(illegal(SRNAME, 2));
    }
    screen_inputs!(SRNAME, 1 => ab.as_slice(), 2 => b.as_slice());
    let (uplo, kd, ldab) = (ab.uplo(), ab.kd(), ab.ldab());
    let nrhs = b.nrhs();
    let ldb = b.ldb();
    let linfo = f77::pbsv(
        uplo,
        n,
        kd,
        nrhs,
        ab.as_mut_slice(),
        ldab,
        b.as_mut_slice(),
        ldb,
    );
    erinfo(linfo, SRNAME, PositiveInfo::NotPosDef)?;
    screen_outputs(SRNAME, 2, b.as_slice())
}

/// `CALL LA_PTSV( D, E, B, INFO=info )` — positive-definite tridiagonal
/// solve (`D` real, `E` the sub/super-diagonal).
pub fn ptsv<T: Scalar, B: Rhs<T> + ?Sized>(
    d: &mut [T::Real],
    e: &mut [T],
    b: &mut B,
) -> Result<(), LaError> {
    const SRNAME: &str = "LA_PTSV";
    let _probe = crate::rhs::driver_span(SRNAME);
    let n = d.len();
    if n > 0 && e.len() != n - 1 {
        return Err(illegal(SRNAME, 2));
    }
    if b.nrows() != n {
        return Err(illegal(SRNAME, 3));
    }
    screen_inputs!(SRNAME, 1 => &*d, 2 => &*e, 3 => b.as_slice());
    let nrhs = b.nrhs();
    let ldb = b.ldb();
    let linfo = f77::ptsv(n, nrhs, d, e, b.as_mut_slice(), ldb);
    erinfo(linfo, SRNAME, PositiveInfo::NotPosDef)?;
    screen_outputs(SRNAME, 3, b.as_slice())
}

/// `CALL LA_SYSV( A, B, UPLO=uplo, IPIV=ipiv, INFO=info )` — solves a
/// symmetric indefinite system (also for complex *symmetric* matrices)
/// by Bunch–Kaufman factorization.
pub fn sysv<T: Scalar, B: Rhs<T> + ?Sized>(a: &mut Mat<T>, b: &mut B) -> Result<(), LaError> {
    indefinite_opt("LA_SYSV", false, a, b, Uplo::Upper, None)
}

/// `CALL LA_HESV( A, B, ... )` — the Hermitian variant of [`sysv`]
/// (identical for real scalars).
pub fn hesv<T: Scalar, B: Rhs<T> + ?Sized>(a: &mut Mat<T>, b: &mut B) -> Result<(), LaError> {
    indefinite_opt("LA_HESV", true, a, b, Uplo::Upper, None)
}

/// [`sysv`] with the optional `UPLO` argument.
pub fn sysv_uplo<T: Scalar, B: Rhs<T> + ?Sized>(
    a: &mut Mat<T>,
    b: &mut B,
    uplo: Uplo,
) -> Result<(), LaError> {
    indefinite_opt("LA_SYSV", false, a, b, uplo, None)
}

/// [`sysv`] with every optional argument (`UPLO` and the `IPIV` output).
pub fn sysv_uplo_ipiv<T: Scalar, B: Rhs<T> + ?Sized>(
    a: &mut Mat<T>,
    b: &mut B,
    uplo: Uplo,
    ipiv: &mut [i32],
) -> Result<(), LaError> {
    indefinite_opt("LA_SYSV", false, a, b, uplo, Some(ipiv))
}

/// [`hesv`] with the optional `UPLO` argument.
pub fn hesv_uplo<T: Scalar, B: Rhs<T> + ?Sized>(
    a: &mut Mat<T>,
    b: &mut B,
    uplo: Uplo,
) -> Result<(), LaError> {
    indefinite_opt("LA_HESV", true, a, b, uplo, None)
}

/// [`hesv`] with every optional argument (`UPLO` and the `IPIV` output).
pub fn hesv_uplo_ipiv<T: Scalar, B: Rhs<T> + ?Sized>(
    a: &mut Mat<T>,
    b: &mut B,
    uplo: Uplo,
    ipiv: &mut [i32],
) -> Result<(), LaError> {
    indefinite_opt("LA_HESV", true, a, b, uplo, Some(ipiv))
}

fn indefinite_opt<T: Scalar, B: Rhs<T> + ?Sized>(
    srname: &'static str,
    herm: bool,
    a: &mut Mat<T>,
    b: &mut B,
    uplo: Uplo,
    ipiv: Option<&mut [i32]>,
) -> Result<(), LaError> {
    let _probe = crate::rhs::driver_span(srname);
    let n = a.nrows();
    if !a.is_square() {
        return Err(illegal(srname, 1));
    }
    if b.nrows() != n {
        return Err(illegal(srname, 2));
    }
    if let Some(p) = &ipiv {
        if p.len() != n {
            return Err(illegal(srname, 4));
        }
    }
    screen_inputs!(srname, 1 => a.as_slice(), 2 => b.as_slice());
    let mut local;
    let piv: &mut [i32] = match ipiv {
        Some(p) => p,
        None => {
            local = vec![0i32; n];
            &mut local
        }
    };
    let nrhs = b.nrhs();
    let (lda, ldb) = (a.lda(), b.ldb());
    let linfo = f77::sysv(
        uplo,
        herm,
        n,
        nrhs,
        a.as_mut_slice(),
        lda,
        piv,
        b.as_mut_slice(),
        ldb,
    );
    erinfo(linfo, srname, PositiveInfo::Singular)?;
    screen_outputs(srname, 2, b.as_slice())
}

/// `CALL LA_SPSV( AP, B, UPLO=uplo, IPIV=ipiv, INFO=info )` — packed
/// symmetric indefinite solve.
pub fn spsv<T: Scalar, B: Rhs<T> + ?Sized>(
    ap: &mut PackedMat<T>,
    b: &mut B,
) -> Result<(), LaError> {
    packed_indefinite_opt("LA_SPSV", false, ap, b, None)
}

/// `CALL LA_HPSV( AP, B, ... )` — the Hermitian packed variant.
pub fn hpsv<T: Scalar, B: Rhs<T> + ?Sized>(
    ap: &mut PackedMat<T>,
    b: &mut B,
) -> Result<(), LaError> {
    packed_indefinite_opt("LA_HPSV", true, ap, b, None)
}

/// [`spsv`] with the optional pivot output.
pub fn spsv_ipiv<T: Scalar, B: Rhs<T> + ?Sized>(
    ap: &mut PackedMat<T>,
    b: &mut B,
    ipiv: &mut [i32],
) -> Result<(), LaError> {
    packed_indefinite_opt("LA_SPSV", false, ap, b, Some(ipiv))
}

/// [`hpsv`] with the optional pivot output.
pub fn hpsv_ipiv<T: Scalar, B: Rhs<T> + ?Sized>(
    ap: &mut PackedMat<T>,
    b: &mut B,
    ipiv: &mut [i32],
) -> Result<(), LaError> {
    packed_indefinite_opt("LA_HPSV", true, ap, b, Some(ipiv))
}

fn packed_indefinite_opt<T: Scalar, B: Rhs<T> + ?Sized>(
    srname: &'static str,
    herm: bool,
    ap: &mut PackedMat<T>,
    b: &mut B,
    ipiv: Option<&mut [i32]>,
) -> Result<(), LaError> {
    let _probe = crate::rhs::driver_span(srname);
    let n = ap.n();
    if b.nrows() != n {
        return Err(illegal(srname, 2));
    }
    if let Some(p) = &ipiv {
        if p.len() != n {
            return Err(illegal(srname, 4));
        }
    }
    screen_inputs!(srname, 1 => ap.as_slice(), 2 => b.as_slice());
    let mut local;
    let piv: &mut [i32] = match ipiv {
        Some(p) => p,
        None => {
            local = vec![0i32; n];
            &mut local
        }
    };
    let uplo = ap.uplo();
    let nrhs = b.nrhs();
    let ldb = b.ldb();
    let linfo = f77::spsv(
        uplo,
        herm,
        n,
        nrhs,
        ap.as_mut_slice(),
        piv,
        b.as_mut_slice(),
        ldb,
    );
    erinfo(linfo, srname, PositiveInfo::Singular)?;
    screen_outputs(srname, 2, b.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use la_core::mat;

    #[test]
    fn gesv_paper_example2() {
        // The Fig. 2 program: A random, B(:,j) = rowsum·j → X(:,j) = j·e.
        let n = 5;
        let nrhs = 2;
        let mut rng = f77::Larnv::new(1998);
        let mut a: Mat<f64> = Mat::from_fn(n, n, |_, _| rng.real(f77::Dist::Uniform01));
        let b: Mat<f64> = Mat::from_fn(n, nrhs, |i, j| {
            (0..n).map(|k| a[(i, k)]).sum::<f64>() * (j + 1) as f64
        });
        let mut bx = b.clone();
        gesv(&mut a, &mut bx).unwrap();
        for j in 0..nrhs {
            for i in 0..n {
                assert!(
                    (bx[(i, j)] - (j + 1) as f64).abs() < 1e-10,
                    "X({i},{j}) = {}",
                    bx[(i, j)]
                );
            }
        }
    }

    #[test]
    fn gesv_vector_shape_dispatch() {
        // LA_GESV( A, B(:,1), IPIV, INFO ) — the Appendix E Example 2 call.
        let mut a: Mat<f64> = mat![
            [0., 2., 3., 5., 4.],
            [1., 0., 5., 6., 6.],
            [7., 6., 8., 0., 5.],
            [4., 6., 0., 3., 9.],
            [5., 9., 0., 0., 8.],
        ];
        let mut b: Vec<f64> = vec![14., 18., 26., 22., 22.];
        let mut ipiv = vec![0i32; 5];
        gesv_ipiv(&mut a, &mut b, &mut ipiv).unwrap();
        // Appendix E: x = ones, IPIV = (3,5,3,4,5).
        for &x in &b {
            assert!((x - 1.0).abs() < 1e-6);
        }
        assert_eq!(ipiv, vec![3, 5, 3, 4, 5]);
    }

    #[test]
    fn gesv_error_exits() {
        // The paper's "9 error exits tests" pattern: each bad argument
        // yields INFO = -(its index).
        let mut a: Mat<f64> = Mat::zeros(3, 4); // not square → -1
        let mut b: Vec<f64> = vec![0.0; 3];
        assert_eq!(gesv(&mut a, &mut b).unwrap_err().info(), -1);
        let mut a: Mat<f64> = Mat::identity(3);
        let mut b: Vec<f64> = vec![0.0; 2]; // wrong rows → -2
        assert_eq!(gesv(&mut a, &mut b).unwrap_err().info(), -2);
        let mut b: Vec<f64> = vec![0.0; 3];
        let mut piv = vec![0i32; 2]; // wrong ipiv length → -3
        assert_eq!(gesv_ipiv(&mut a, &mut b, &mut piv).unwrap_err().info(), -3);
    }

    #[test]
    fn gesv_singular_reports_pivot() {
        let mut a: Mat<f64> = mat![[1.0, 2.0], [2.0, 4.0]];
        let mut b: Vec<f64> = vec![1.0, 2.0];
        let err = gesv(&mut a, &mut b).unwrap_err();
        assert_eq!(err.info(), 2);
        assert!(format!("{err}").contains("Terminated in LAPACK90 subroutine LA_GESV"));
    }

    #[test]
    fn all_simple_drivers_roundtrip() {
        let n = 8;
        let mut rng = f77::Larnv::new(7);
        // SPD matrix for posv/ppsv/pbsv.
        let spd: Mat<f64> = {
            let g: Mat<f64> = Mat::from_fn(n, n, |_, _| rng.real(f77::Dist::Uniform11));
            let mut s = Mat::zeros(n, n);
            for j in 0..n {
                for i in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += g[(k, i)] * g[(k, j)];
                    }
                    s[(i, j)] = acc + if i == j { n as f64 } else { 0.0 };
                }
            }
            s
        };
        let xtrue: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let rhs_for = |m: &Mat<f64>| -> Vec<f64> {
            (0..n)
                .map(|i| (0..n).map(|k| m[(i, k)] * xtrue[k]).sum())
                .collect()
        };

        // posv
        let mut a = spd.clone();
        let mut b = rhs_for(&spd);
        posv(&mut a, &mut b).unwrap();
        for i in 0..n {
            assert!((b[i] - xtrue[i]).abs() < 1e-9, "posv");
        }
        // ppsv
        let mut ap = PackedMat::from_dense(&spd, Uplo::Lower);
        let mut b = rhs_for(&spd);
        ppsv(&mut ap, &mut b).unwrap();
        for i in 0..n {
            assert!((b[i] - xtrue[i]).abs() < 1e-9, "ppsv");
        }
        // sysv on a symmetric indefinite matrix.
        let sym: Mat<f64> = {
            let mut s = Mat::zeros(n, n);
            for j in 0..n {
                for i in 0..=j {
                    let v = rng.real::<f64>(f77::Dist::Uniform11);
                    s[(i, j)] = v;
                    s[(j, i)] = v;
                }
            }
            s
        };
        let mut a = sym.clone();
        let mut b = rhs_for(&sym);
        sysv(&mut a, &mut b).unwrap();
        for i in 0..n {
            assert!((b[i] - xtrue[i]).abs() < 1e-8, "sysv");
        }
        // spsv
        let mut ap = PackedMat::from_dense(&sym, Uplo::Upper);
        let mut b = rhs_for(&sym);
        spsv(&mut ap, &mut b).unwrap();
        for i in 0..n {
            assert!((b[i] - xtrue[i]).abs() < 1e-8, "spsv");
        }
        // gbsv on a banded general matrix.
        let band_dense: Mat<f64> = Mat::from_fn(n, n, |i, j| {
            if i.abs_diff(j) <= 1 {
                rng.real::<f64>(f77::Dist::Uniform11) + if i == j { 4.0 } else { 0.0 }
            } else {
                0.0
            }
        });
        let mut ab = BandMat::from_dense(&band_dense, 1, 1, true);
        let mut b = rhs_for(&band_dense);
        gbsv(&mut ab, &mut b).unwrap();
        for i in 0..n {
            assert!((b[i] - xtrue[i]).abs() < 1e-9, "gbsv");
        }
        // pbsv on an SPD band.
        let mut sb = SymBandMat::from_dense(&spd_band(n), 1, Uplo::Upper);
        let bd = spd_band(n);
        let mut b = rhs_for(&bd);
        pbsv(&mut sb, &mut b).unwrap();
        for i in 0..n {
            assert!((b[i] - xtrue[i]).abs() < 1e-9, "pbsv");
        }
        // gtsv / ptsv.
        let mut dl = vec![1.0f64; n - 1];
        let mut d = vec![5.0f64; n];
        let mut du = vec![0.5f64; n - 1];
        let tri: Mat<f64> = Mat::from_fn(n, n, |i, j| {
            if i == j {
                5.0
            } else if i == j + 1 {
                1.0
            } else if j == i + 1 {
                0.5
            } else {
                0.0
            }
        });
        let mut b = rhs_for(&tri);
        gtsv(&mut dl, &mut d, &mut du, &mut b).unwrap();
        for i in 0..n {
            assert!((b[i] - xtrue[i]).abs() < 1e-10, "gtsv");
        }
        let mut d = vec![3.0f64; n];
        let mut e = vec![1.0f64; n - 1];
        let ptm: Mat<f64> = Mat::from_fn(n, n, |i, j| {
            if i == j {
                3.0
            } else if i.abs_diff(j) == 1 {
                1.0
            } else {
                0.0
            }
        });
        let mut b = rhs_for(&ptm);
        ptsv::<f64, _>(&mut d, &mut e, &mut b).unwrap();
        for i in 0..n {
            assert!((b[i] - xtrue[i]).abs() < 1e-10, "ptsv");
        }
    }

    fn spd_band(n: usize) -> Mat<f64> {
        Mat::from_fn(n, n, |i, j| {
            if i == j {
                4.0
            } else if i.abs_diff(j) == 1 {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn posv_rejects_indefinite() {
        let mut a: Mat<f64> = mat![[1.0, 0.0], [0.0, -1.0]];
        let mut b: Vec<f64> = vec![1.0, 1.0];
        let err = posv(&mut a, &mut b).unwrap_err();
        assert_eq!(err.info(), 2);
        assert!(matches!(err, LaError::NotPosDef { minor: 2, .. }));
    }

    #[test]
    fn complex_gesv_all_types() {
        fn run<T: Scalar>() {
            let n = 6;
            let mut rng = f77::Larnv::new(55);
            let a0: Mat<T> = Mat::from_fn(n, n, |_, _| rng.scalar(f77::Dist::Uniform11));
            let xtrue: Vec<T> = (0..n).map(|i| T::from_f64(1.0 + i as f64)).collect();
            let mut b: Vec<T> = (0..n)
                .map(|i| {
                    let mut s = T::zero();
                    for k in 0..n {
                        s += a0[(i, k)] * xtrue[k];
                    }
                    s
                })
                .collect();
            let mut a = a0.clone();
            gesv(&mut a, &mut b).unwrap();
            use la_core::RealScalar;
            let tol = T::eps().to_f64() * 1e4;
            for i in 0..n {
                assert!(
                    (b[i] - xtrue[i]).abs().to_f64() < tol,
                    "{}: x[{i}]",
                    T::PREFIX
                );
            }
        }
        run::<f32>();
        run::<f64>();
        run::<la_core::C32>();
        run::<la_core::C64>();
    }
}
