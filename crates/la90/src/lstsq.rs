//! Driver routines for (generalized) linear least squares problems —
//! Appendix G blocks 3 and 4: `LA_GELS`, `LA_GELSX` (provided through the
//! rank-revealing `gelsy` algorithm), `LA_GELSS`, `LA_GGLSE`,
//! `LA_GGGLM`.

use la_core::{erinfo, LaError, Mat, PositiveInfo, Scalar, Trans};
use la_lapack as f77;

use crate::rhs::{screen_inputs, screen_outputs, Rhs};

fn illegal(routine: &'static str, index: usize) -> LaError {
    LaError::IllegalArg { routine, index }
}

/// `CALL LA_GELS( A, B, TRANS=trans, INFO=info )` — solves over- or
/// under-determined systems `op(A)·X = B` by QR or LQ factorization.
///
/// `B` must have `max(m, n)` rows; on success its leading rows hold the
/// solution (`n` rows for `trans = No`, `m` for the transposed problem).
///
/// ```
/// use la_core::mat;
/// // Fit y = c₀ + c₁·t through three points on the line y = 1 + 2t.
/// let mut a: la_core::Mat<f64> = mat![[1.0, 0.0], [1.0, 1.0], [1.0, 2.0]];
/// let mut b: Vec<f64> = vec![1.0, 3.0, 5.0];
/// la90::gels(&mut a, &mut b)?;
/// assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), la_core::LaError>(())
/// ```
pub fn gels<T: Scalar, B: Rhs<T> + ?Sized>(a: &mut Mat<T>, b: &mut B) -> Result<(), LaError> {
    gels_trans(a, b, Trans::No)
}

/// [`gels`] with the optional `TRANS` argument.
pub fn gels_trans<T: Scalar, B: Rhs<T> + ?Sized>(
    a: &mut Mat<T>,
    b: &mut B,
    trans: Trans,
) -> Result<(), LaError> {
    const SRNAME: &str = "LA_GELS";
    let _probe = crate::rhs::driver_span(SRNAME);
    let (m, n) = a.shape();
    if b.nrows() != m.max(n) {
        return Err(illegal(SRNAME, 2));
    }
    screen_inputs!(SRNAME, 1 => a.as_slice(), 2 => b.as_slice());
    let nrhs = b.nrhs();
    let (lda, ldb) = (a.lda(), b.ldb());
    let linfo = f77::gels(
        trans,
        m,
        n,
        nrhs,
        a.as_mut_slice(),
        lda,
        b.as_mut_slice(),
        ldb,
    );
    erinfo(linfo, SRNAME, PositiveInfo::Singular)?;
    screen_outputs(SRNAME, 2, b.as_slice())
}

/// Result of the rank-revealing least-squares drivers.
#[derive(Clone, Debug)]
pub struct RankLsOut<R> {
    /// Effective numerical rank.
    pub rank: usize,
    /// Singular values (empty for the QR-based [`gelsx`]).
    pub s: Vec<R>,
    /// Column permutation (1-based, empty for [`gelss`]).
    pub jpvt: Vec<i32>,
}

/// `CALL LA_GELSX( A, B, RANK=rank, JPVT=jpvt, RCOND=rcond, INFO=info )`
/// — minimum-norm solution by complete orthogonal factorization
/// (computed with the `gelsy` algorithm that superseded `xGELSX`).
/// `rcond < 0` selects machine precision.
pub fn gelsx<T: Scalar, B: Rhs<T> + ?Sized>(
    a: &mut Mat<T>,
    b: &mut B,
    rcond: T::Real,
) -> Result<RankLsOut<T::Real>, LaError> {
    const SRNAME: &str = "LA_GELSX";
    let _probe = crate::rhs::driver_span(SRNAME);
    let (m, n) = a.shape();
    if b.nrows() != m.max(n) {
        return Err(illegal(SRNAME, 2));
    }
    screen_inputs!(SRNAME, 1 => a.as_slice(), 2 => b.as_slice());
    let nrhs = b.nrhs();
    let (lda, ldb) = (a.lda(), b.ldb());
    let mut jpvt = vec![0i32; n];
    let (rank, linfo) = f77::gelsy(
        m,
        n,
        nrhs,
        a.as_mut_slice(),
        lda,
        b.as_mut_slice(),
        ldb,
        &mut jpvt,
        rcond,
    );
    erinfo(linfo, SRNAME, PositiveInfo::NoConvergence)?;
    screen_outputs(SRNAME, 2, b.as_slice())?;
    Ok(RankLsOut {
        rank,
        s: vec![],
        jpvt,
    })
}

/// `CALL LA_GELSS( A, B, RANK=rank, S=s, RCOND=rcond, INFO=info )` —
/// minimum-norm least squares via the SVD.
pub fn gelss<T: Scalar, B: Rhs<T> + ?Sized>(
    a: &mut Mat<T>,
    b: &mut B,
    rcond: T::Real,
) -> Result<RankLsOut<T::Real>, LaError> {
    const SRNAME: &str = "LA_GELSS";
    let _probe = crate::rhs::driver_span(SRNAME);
    let (m, n) = a.shape();
    if b.nrows() != m.max(n) {
        return Err(illegal(SRNAME, 2));
    }
    screen_inputs!(SRNAME, 1 => a.as_slice(), 2 => b.as_slice());
    let nrhs = b.nrhs();
    let (lda, ldb) = (a.lda(), b.ldb());
    let (rank, s, linfo) = f77::gelss(
        m,
        n,
        nrhs,
        a.as_mut_slice(),
        lda,
        b.as_mut_slice(),
        ldb,
        rcond,
    );
    erinfo(linfo, SRNAME, PositiveInfo::NoConvergence)?;
    screen_outputs(SRNAME, 2, b.as_slice())?;
    Ok(RankLsOut {
        rank,
        s,
        jpvt: vec![],
    })
}

/// `CALL LA_GGLSE( A, B, C, D, X, INFO=info )` — linear
/// equality-constrained least squares: minimize `‖c − A·x‖₂` subject to
/// `B·x = d`. Returns the solution `x` (length `n`).
pub fn gglse<T: Scalar>(
    a: &mut Mat<T>,
    b: &mut Mat<T>,
    c: &mut [T],
    d: &mut [T],
) -> Result<Vec<T>, LaError> {
    const SRNAME: &str = "LA_GGLSE";
    let _probe = crate::rhs::driver_span(SRNAME);
    let (m, n) = a.shape();
    let (p, nb) = b.shape();
    if nb != n || p > n || n > m + p {
        return Err(illegal(SRNAME, 2));
    }
    if c.len() != m {
        return Err(illegal(SRNAME, 3));
    }
    if d.len() != p {
        return Err(illegal(SRNAME, 4));
    }
    screen_inputs!(SRNAME, 1 => a.as_slice(), 2 => b.as_slice(), 3 => &*c, 4 => &*d);
    let mut x = vec![T::zero(); n];
    let (lda, ldb) = (a.lda(), b.lda());
    let linfo = f77::gglse(
        m,
        n,
        p,
        a.as_mut_slice(),
        lda,
        b.as_mut_slice(),
        ldb,
        c,
        d,
        &mut x,
    );
    erinfo(linfo, SRNAME, PositiveInfo::Singular)?;
    screen_outputs(SRNAME, 5, &x)?;
    Ok(x)
}

/// `CALL LA_GGGLM( A, B, D, X, Y, INFO=info )` — general Gauss–Markov
/// linear model: minimize `‖y‖₂` subject to `d = A·x + B·y`. Returns
/// `(x, y)`.
pub fn ggglm<T: Scalar>(
    a: &mut Mat<T>,
    b: &mut Mat<T>,
    d: &mut [T],
) -> Result<(Vec<T>, Vec<T>), LaError> {
    const SRNAME: &str = "LA_GGGLM";
    let _probe = crate::rhs::driver_span(SRNAME);
    let (n, m) = a.shape();
    let (nb, p) = b.shape();
    if nb != n || m > n || n > m + p {
        return Err(illegal(SRNAME, 2));
    }
    if d.len() != n {
        return Err(illegal(SRNAME, 3));
    }
    screen_inputs!(SRNAME, 1 => a.as_slice(), 2 => b.as_slice(), 3 => &*d);
    let mut x = vec![T::zero(); m];
    let mut y = vec![T::zero(); p];
    let (lda, ldb) = (a.lda(), b.lda());
    let linfo = f77::ggglm(
        n,
        m,
        p,
        a.as_mut_slice(),
        lda,
        b.as_mut_slice(),
        ldb,
        d,
        &mut x,
        &mut y,
    );
    erinfo(linfo, SRNAME, PositiveInfo::Singular)?;
    screen_outputs(SRNAME, 4, &x)?;
    screen_outputs(SRNAME, 5, &y)?;
    Ok((x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use la_lapack::{Dist, Larnv};

    #[test]
    fn gels_overdetermined_fit() {
        // Fit a quadratic through noisy samples; normal equations hold.
        let (m, n) = (20usize, 3usize);
        let mut rng = Larnv::new(3);
        let t: Vec<f64> = (0..m).map(|i| i as f64 / (m - 1) as f64).collect();
        let a0: Mat<f64> = Mat::from_fn(m, n, |i, j| t[i].powi(j as i32));
        let b0: Vec<f64> = t
            .iter()
            .map(|&x| 1.0 + 2.0 * x - 0.5 * x * x + 1e-3 * rng.real::<f64>(Dist::Uniform11))
            .collect();
        let mut a = a0.clone();
        let mut b = b0.clone();
        gels(&mut a, &mut b).unwrap();
        assert!((b[0] - 1.0).abs() < 0.01);
        assert!((b[1] - 2.0).abs() < 0.05);
        assert!((b[2] + 0.5).abs() < 0.05);
        let r = la_verify::ls_ratio(m, n, 1, a0.as_slice(), m, &b[..n], m.max(n), &b0, m);
        assert!(r < 100.0, "ls ratio = {r}");
    }

    #[test]
    fn gelss_and_gelsx_agree() {
        let (m, n) = (10usize, 6usize);
        let mut rng = Larnv::new(9);
        let a0: Mat<f64> = Mat::from_fn(m, n, |_, _| rng.real(Dist::Uniform11));
        let b0: Vec<f64> = (0..m).map(|_| rng.real(Dist::Uniform11)).collect();
        let mut a1 = a0.clone();
        let mut b1 = b0.clone();
        let r1 = gelss(&mut a1, &mut b1, -1.0).unwrap();
        let mut a2 = a0.clone();
        let mut b2 = b0.clone();
        let r2 = gelsx(&mut a2, &mut b2, -1.0).unwrap();
        assert_eq!(r1.rank, n);
        assert_eq!(r2.rank, n);
        assert_eq!(r1.s.len(), n);
        for i in 0..n {
            assert!((b1[i] - b2[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn gels_shape_error() {
        let mut a: Mat<f64> = Mat::zeros(5, 3);
        let mut b: Vec<f64> = vec![0.0; 3]; // needs max(5,3) = 5 rows
        assert_eq!(gels(&mut a, &mut b).unwrap_err().info(), -2);
    }

    #[test]
    fn gglse_and_ggglm_run() {
        let mut rng = Larnv::new(21);
        let (m, n, p) = (8usize, 5usize, 2usize);
        let a0: Mat<f64> = Mat::from_fn(m, n, |_, _| rng.real(Dist::Uniform11));
        let b0: Mat<f64> = Mat::from_fn(p, n, |_, _| rng.real(Dist::Uniform11));
        let c0: Vec<f64> = (0..m).map(|_| rng.real(Dist::Uniform11)).collect();
        let d0: Vec<f64> = (0..p).map(|_| rng.real(Dist::Uniform11)).collect();
        let mut a = a0.clone();
        let mut b = b0.clone();
        let mut c = c0.clone();
        let mut d = d0.clone();
        let x = gglse(&mut a, &mut b, &mut c, &mut d).unwrap();
        // Constraint.
        for i in 0..p {
            let bx: f64 = (0..n).map(|j| b0[(i, j)] * x[j]).sum();
            assert!((bx - d0[i]).abs() < 1e-10);
        }
        // GLM.
        let (nn, mm, pp) = (7usize, 3usize, 5usize);
        let ag: Mat<f64> = Mat::from_fn(nn, mm, |_, _| rng.real(Dist::Uniform11));
        let bg: Mat<f64> = Mat::from_fn(nn, pp, |_, _| rng.real(Dist::Uniform11));
        let dg: Vec<f64> = (0..nn).map(|_| rng.real(Dist::Uniform11)).collect();
        let mut a = ag.clone();
        let mut b = bg.clone();
        let mut d = dg.clone();
        let (x, y) = ggglm(&mut a, &mut b, &mut d).unwrap();
        for i in 0..nn {
            let fit: f64 = (0..mm).map(|j| ag[(i, j)] * x[j]).sum::<f64>()
                + (0..pp).map(|j| bg[(i, j)] * y[j]).sum::<f64>();
            assert!((fit - dg[i]).abs() < 1e-10, "GLM row {i}");
        }
    }
}
