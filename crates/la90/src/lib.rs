//! # la90 — the LAPACK90 user interface
//!
//! This crate is the paper's contribution: the `F90_LAPACK` module as a
//! Rust API. Every driver of the paper's Appendix G is provided with the
//! same ergonomics the Fortran 90 interface delivers:
//!
//! * **one generic name** per driver covering all four type/precision
//!   instantiations (via [`la_core::Scalar`]),
//! * **shape dispatch** between matrix and vector right-hand sides (via
//!   [`Rhs`], the analog of the `B(:,:)` / `B(:)` interface bodies),
//! * **derived dimensions** — `N`, `NRHS`, `LDA`, … come from the array
//!   shapes, never from explicit arguments,
//! * **hidden workspace** — pivot vectors, reflector scalars and scratch
//!   arrays are allocated internally unless the caller asks for them,
//! * **the `ERINFO` protocol** — argument checks produce the exact
//!   negative `INFO` indices of the Appendix-C wrappers, returned as
//!   [`la_core::LaError`] through `Result`.
//!
//! ## Optional-argument naming convention
//!
//! Rust has no optional arguments, so each driver exposes the Fortran
//! wrapper's optionals as name suffixes: the bare `base` name takes only
//! the required arguments and uses the LAPACK defaults, and each
//! `base_<opt>` variant appends the named optionals in wrapper order —
//! [`gesv`] / [`gesv_ipiv`], [`posv`] / [`posv_uplo`],
//! [`sysv`] / [`sysv_uplo`] / [`sysv_uplo_ipiv`],
//! [`sygv`] / [`sygv_itype_uplo`], [`gels`] / [`gels_trans`],
//! [`syev`] / [`syev_uplo`]. Internally every family funnels into one
//! private `*_opt` combinator holding the checks, so the variants cannot
//! drift apart.
//!
//! ## Performance tuning
//!
//! The substrate's parallel BLAS-3 and blocked factorizations read the
//! runtime [`tune`] configuration (re-exported from `la_core`): thread
//! budget, parallel flop thresholds and per-routine block sizes, settable
//! via `LA_*` environment variables, [`tune::set`], or a scoped
//! [`tune::with`] — no caller-visible API change, exactly the paper's
//! premise that `LA_GESV(A, B)` delivers the tuned substrate's speed with
//! zero interface cost.
//!
//! ```
//! use la_core::Mat;
//! // The paper's Example 2 (Fig. 2): CALL LA_GESV( A, B )
//! let mut a: Mat<f64> = Mat::from_fn(5, 5, |i, j| ((i * 5 + j * 3) % 7) as f64 + 1.0);
//! let mut b: Vec<f64> = (0..5).map(|i| (0..5).map(|k| a[(i, k)]).sum()).collect();
//! la90::gesv(&mut a, &mut b).unwrap();
//! for x in &b { assert!((x - 1.0).abs() < 1e-10); }
//! ```

#![warn(missing_docs)]
// Fortran-convention numerics: indexed loops over strided buffers, long
// LAPACK argument lists and in-place `x = x op y` updates are the house
// style here (they mirror the reference BLAS/LAPACK routines line for
// line), so the corresponding pedantic lints are disabled crate-wide.
#![allow(
    clippy::assign_op_pattern,
    clippy::too_many_arguments,
    clippy::type_complexity,
    clippy::needless_range_loop,
    clippy::manual_memcpy,
    clippy::manual_swap
)]

pub mod comp;
pub mod eig;
pub mod expert;
pub mod gv;
pub mod linsys;
pub mod lstsq;
pub mod mixed;
pub mod rhs;

pub use la_core::tune;

// The crate-root surface is the explicit, curated union of the module
// surfaces — no glob re-exports, so `cargo doc` and IDE completion show
// exactly the driver list of the paper's Appendix G and rustc can flag a
// name collision between modules at the definition site.
pub use comp::{
    geequ, gerfs, getrf, getrf_rcond, getri, getrs, hegst, hetrd, lagge, lange, orgtr, potrf,
    potrf_rcond, sygst, sytrd, ungtr, Dist, GeequOut, Larnv, SpectrumMode,
};
pub use eig::{
    gees, geesx, geev, geevx, gesvd, hbev, hbevd, hbevx, heev, heevd, heevx, hpev, hpevd, hpevx,
    sbev, sbevd, sbevx, spev, spevd, spevx, stev, stevd, stevx, syev, syev_uplo, syevd, syevd_uplo,
    syevx, EigDriver, EigRange, GeesOut, GeesxOut, GeevOut, GeevxOut, Jobz, SvdOut,
};
pub use expert::{
    gbsvx, gesvx, gtsvx, hesvx, hpsvx, pbsvx, posvx, ppsvx, ptsvx, spsvx, sysvx, Equed, ExpertOut,
    Fact,
};
pub use gv::{gegs, gegv, hbgv, hegv, hpgv, sbgv, spgv, sygv, sygv_itype_uplo, GegsOut, GvItype};
pub use linsys::{
    gbsv, gbsv_ipiv, gesv, gesv_ipiv, gtsv, hesv, hesv_uplo, hesv_uplo_ipiv, hpsv, hpsv_ipiv, pbsv,
    posv, posv_uplo, ppsv, ptsv, spsv, spsv_ipiv, sysv, sysv_uplo, sysv_uplo_ipiv,
};
pub use lstsq::{gels, gels_trans, gelss, gelsx, ggglm, gglse, RankLsOut};
pub use mixed::{
    gesv_mixed, gesv_mixed_ipiv, gesv_mixedx, gesvxx, posv_mixed, posv_mixed_uplo, posv_mixedx,
    posvxx, MixedOut, RfsxOut,
};
pub use rhs::Rhs;

/// Everything a typical caller needs in one import:
/// `use la90::prelude::*;` brings the simple drivers, the shape types and
/// the flag enums into scope (the Fortran `USE F90_LAPACK` experience).
pub mod prelude {
    pub use crate::eig::{gees, geev, gesvd, syev, syevd, Jobz};
    pub use crate::gv::sygv;
    pub use crate::linsys::{gbsv, gesv, gtsv, hesv, posv, ppsv, ptsv, sysv};
    pub use crate::lstsq::{gels, gelss};
    pub use crate::mixed::{gesv_mixed, posv_mixed};
    pub use crate::rhs::Rhs;
    pub use la_core::{mat, BandMat, LaError, Mat, PackedMat, SymBandMat, C32, C64};
    pub use la_core::{Diag, Norm, Side, Trans, Uplo};
}
