//! # la90 — the LAPACK90 user interface
//!
//! This crate is the paper's contribution: the `F90_LAPACK` module as a
//! Rust API. Every driver of the paper's Appendix G is provided with the
//! same ergonomics the Fortran 90 interface delivers:
//!
//! * **one generic name** per driver covering all four type/precision
//!   instantiations (via [`la_core::Scalar`]),
//! * **shape dispatch** between matrix and vector right-hand sides (via
//!   [`Rhs`], the analog of the `B(:,:)` / `B(:)` interface bodies),
//! * **derived dimensions** — `N`, `NRHS`, `LDA`, … come from the array
//!   shapes, never from explicit arguments,
//! * **hidden workspace** — pivot vectors, reflector scalars and scratch
//!   arrays are allocated internally unless the caller asks for them,
//! * **the `ERINFO` protocol** — argument checks produce the exact
//!   negative `INFO` indices of the Appendix-C wrappers, returned as
//!   [`la_core::LaError`] through `Result`.
//!
//! ```
//! use la_core::Mat;
//! // The paper's Example 2 (Fig. 2): CALL LA_GESV( A, B )
//! let mut a: Mat<f64> = Mat::from_fn(5, 5, |i, j| ((i * 5 + j * 3) % 7) as f64 + 1.0);
//! let mut b: Vec<f64> = (0..5).map(|i| (0..5).map(|k| a[(i, k)]).sum()).collect();
//! la90::gesv(&mut a, &mut b).unwrap();
//! for x in &b { assert!((x - 1.0).abs() < 1e-10); }
//! ```

#![warn(missing_docs)]
// Fortran-convention numerics: indexed loops over strided buffers, long
// LAPACK argument lists and in-place `x = x op y` updates are the house
// style here (they mirror the reference BLAS/LAPACK routines line for
// line), so the corresponding pedantic lints are disabled crate-wide.
#![allow(
    clippy::assign_op_pattern,
    clippy::too_many_arguments,
    clippy::type_complexity,
    clippy::needless_range_loop,
    clippy::manual_memcpy,
    clippy::manual_swap
)]

pub mod comp;
pub mod eig;
pub mod expert;
pub mod gv;
pub mod linsys;
pub mod lstsq;
pub mod rhs;

pub use comp::*;
pub use eig::*;
pub use expert::*;
pub use gv::*;
pub use linsys::*;
pub use lstsq::*;
pub use rhs::Rhs;
