//! Huang–Abraham checksum layer for the Level-3 operations.
//!
//! Algorithm-based fault tolerance (ABFT) exploits the fact that the
//! Level-3 operations preserve linear invariants: for the update
//! `C = α·op(A)·op(B) + β·C` the column sums satisfy
//! `eᵀC = eᵀC₀·β + α·(eᵀop(A))·op(B)`, an O(n²) identity protecting an
//! O(n³) computation. This module encodes the invariant before the
//! compute kernel runs, verifies it afterwards against a norm-scaled
//! tolerance, and — under [`AbftPolicy::Recover`] — localizes the
//! offending column stripe, restores it from a snapshot and re-runs the
//! exact per-stripe serial kernel under the same [`PackedPlan`], which
//! reproduces the fault-free result bit for bit (the striped and serial
//! paths share per-column summation order and the same microkernel).
//!
//! Under [`AbftPolicy::Verify`] a persistent mismatch is parked as a
//! pending [`la_core::abft::SoftFault`] that the driver layer surfaces
//! as `INFO = -102` through `ERINFO`.
//!
//! The checks engage only for operations at or above the parallel-flop
//! threshold (`TuneConfig::par_flops`) — the same "large operation"
//! boundary the striping decision uses — so the per-call overhead stays
//! a lower-order term. Non-finite discrepancies are never flagged: a
//! NaN/Inf in the data is the province of the `except` screening layer,
//! not a soft fault.

use la_core::abft::{self, AbftPolicy};
use la_core::{probe, tune, Diag, MatMut, MatRef, RealScalar, Scalar, Trans, Uplo};

use crate::kernel::PackedPlan;
use crate::l3::{gemm_serial, syrk_block, trmm_left_cols, trsm_left_cols, SYRK_NB};

/// Policy gate shared by every protected entry point: returns the active
/// policy when ABFT is on *and* the operation is at or above the
/// parallel-flop threshold.
pub(crate) fn active(cfg: &tune::TuneConfig, flops: u128) -> Option<AbftPolicy> {
    let p = abft::policy();
    if p.enabled() && flops >= cfg.par_flops as u128 {
        Some(p)
    } else {
        None
    }
}

fn cjs<T: Scalar>(conj: bool, x: T) -> T {
    if conj {
        x.conj()
    } else {
        x
    }
}

/// `max |x|₁` over the stored region of a view.
fn maxabs<T: Scalar>(a: MatRef<'_, T>) -> T::Real {
    let mut m = T::Real::zero();
    for j in 0..a.ncols() {
        for &x in a.col(j) {
            m = m.maxr(x.abs1());
        }
    }
    m
}

/// `true` when a checksum discrepancy is a genuine (finite) fault.
fn exceeds<T: Scalar>(diff: T, tol: T::Real) -> bool {
    let d = diff.abs1();
    d.is_finite() && d > tol
}

/// Start column and width of stripe `t` under the same split
/// `stripe_cols` uses.
fn stripe_bounds(n: usize, stripes: usize, t: usize) -> (usize, usize) {
    let base = n / stripes;
    let extra = n % stripes;
    (t * base + t.min(extra), base + usize::from(t < extra))
}

/// Stripe index owning column `j` (inverse of [`stripe_bounds`]).
fn stripe_of(n: usize, stripes: usize, j: usize) -> usize {
    let base = n / stripes;
    let extra = n % stripes;
    if base == 0 {
        return j;
    }
    let cut = extra * (base + 1);
    if j < cut {
        j / (base + 1)
    } else {
        extra + (j - cut) / base
    }
}

/// Indices of stripes containing at least one column whose checksum
/// discrepancy exceeds `tol`.
fn bad_stripes<T: Scalar>(
    n: usize,
    stripes: usize,
    tol: T::Real,
    expect: &[T],
    actual: impl Fn(usize) -> T,
) -> Vec<usize> {
    let mut bad: Vec<usize> = Vec::new();
    for (j, &e) in expect.iter().enumerate().take(n) {
        if exceeds(actual(j) - e, tol) {
            let t = stripe_of(n, stripes, j);
            if bad.last() != Some(&t) {
                bad.push(t);
            }
        }
    }
    bad
}

/// Restores columns `j0..j0+w` of `c` from a snapshot of its full
/// backing slice (same layout, same lda).
fn restore_cols<T: Scalar>(c: &mut MatMut<'_, T>, snap: &[T], j0: usize, w: usize) {
    let (rows, ld) = (c.nrows(), c.lda());
    for j in j0..j0 + w {
        c.col_mut(j).copy_from_slice(&snap[j * ld..j * ld + rows]);
    }
}

/// Factor applied to the tolerance when re-verifying a recovered stripe.
fn loose<R: RealScalar>(tol: R) -> R {
    tol * R::from_f64(64.0)
}

/// Shared outcome bookkeeping: nothing failed → silent pass; recovery
/// succeeded → detection + recovery counters; otherwise park a pending
/// soft fault (which counts the detection itself).
fn conclude(routine: &'static str, recovered: bool, still_bad: Option<usize>) {
    match still_bad {
        None if recovered => {
            abft::note_detection();
            abft::note_recovery();
        }
        None => {}
        Some(block) => abft::raise(routine, block),
    }
}

// ---------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------

/// Checksum state for a column-checksummed operation: per-column expected
/// sums, the mismatch tolerance, and (under `Recover`) a snapshot of the
/// output as it stood when the checksum was encoded.
pub(crate) struct ColCheck<T: Scalar> {
    expect: Vec<T>,
    tol: T::Real,
    snap: Option<Vec<T>>,
}

/// Encodes the GEMM column checksum. Must be called after the β-scaling
/// of `C` and before the product accumulates: `expect[j] = eᵀC_j +
/// α·(eᵀop(A))·op(B)_j`. `a` and `b` are the *stored* operands (op maps
/// into them via the trans flags); `c` is `m × n`.
pub(crate) fn gemm_encode<T: Scalar>(
    pol: AbftPolicy,
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatRef<'_, T>,
) -> ColCheck<T> {
    probe::with_abft(|| {
        let _s = probe::span(probe::Layer::Blas, "gemm", 0, 0);
        let (m, n) = (c.nrows(), c.ncols());
        let k = if transa == Trans::No {
            a.ncols()
        } else {
            a.nrows()
        };
        let cja = transa == Trans::ConjTrans;
        let cjb = transb == Trans::ConjTrans;
        // v = eᵀ·op(A), length k.
        let mut v = vec![T::zero(); k];
        if transa == Trans::No {
            for (l, vl) in v.iter_mut().enumerate() {
                let mut s = T::zero();
                for &x in a.col(l) {
                    s += x;
                }
                *vl = s;
            }
        } else {
            for i in 0..m {
                let col = a.col(i);
                for (l, vl) in v.iter_mut().enumerate() {
                    *vl += cjs(cja, col[l]);
                }
            }
        }
        let mut expect = vec![T::zero(); n];
        for (j, ej) in expect.iter_mut().enumerate() {
            let mut cs = T::zero();
            for &x in c.col(j) {
                cs += x;
            }
            let mut dot = T::zero();
            if transb == Trans::No {
                let col = b.col(j);
                for (l, &vl) in v.iter().enumerate() {
                    dot += vl * col[l];
                }
            } else {
                for (l, &vl) in v.iter().enumerate() {
                    dot += vl * cjs(cjb, b.at(j, l));
                }
            }
            *ej = cs + alpha * dot;
        }
        let maxa = maxabs(a);
        let maxb = maxabs(b);
        let maxc = maxabs(c);
        let tol = T::Real::from_f64(32.0)
            * T::Real::EPS
            * T::Real::from_usize(m)
            * (T::Real::from_usize(k) * alpha.abs1() * maxa * maxb + maxc);
        let snap = if pol.recover() {
            Some(c.as_slice().to_vec())
        } else {
            None
        };
        ColCheck { expect, tol, snap }
    })
}

/// Verifies the GEMM column checksum; on mismatch recovers the offending
/// stripes (restore + serial re-run of the exact band kernel under the
/// same plan) or parks a pending soft fault, per policy.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_verify<T: Scalar>(
    ck: ColCheck<T>,
    stripes: usize,
    plan: &PackedPlan<T>,
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    mut c: MatMut<'_, T>,
) {
    probe::with_abft(|| {
        let _s = probe::span(probe::Layer::Blas, "gemm", 0, 0);
        abft::note_check();
        let (m, n) = (c.nrows(), c.ncols());
        let k = if transa == Trans::No {
            a.ncols()
        } else {
            a.nrows()
        };
        let colsum = |c: &MatMut<'_, T>, j: usize| {
            let mut s = T::zero();
            for &x in c.col(j) {
                s += x;
            }
            s
        };
        let bad = bad_stripes(n, stripes, ck.tol, &ck.expect, |j| colsum(&c, j));
        if bad.is_empty() {
            return;
        }
        let Some(snap) = ck.snap.as_deref() else {
            abft::raise("gemm", bad[0]);
            return;
        };
        for &t in &bad {
            let (j0, w) = stripe_bounds(n, stripes, t);
            restore_cols(&mut c, snap, j0, w);
            let bsub = match transb {
                Trans::No => b.subview(0, j0, k, w),
                _ => b.subview(j0, 0, w, k),
            };
            gemm_serial(
                plan,
                transa,
                transb,
                alpha,
                a,
                bsub,
                c.rb().subview(0, j0, m, w),
            );
        }
        let ltol = loose(ck.tol);
        let still = bad.iter().copied().find(|&t| {
            let (j0, w) = stripe_bounds(n, stripes, t);
            (j0..j0 + w).any(|j| exceeds(colsum(&c, j) - ck.expect[j], ltol))
        });
        conclude("gemm", true, still);
    })
}

// ---------------------------------------------------------------------
// SYRK / HERK
// ---------------------------------------------------------------------

/// Element of `op(A)` as `syrk_block` reads it.
fn ael<T: Scalar>(trans: Trans, a: MatRef<'_, T>, i: usize, l: usize) -> T {
    if trans == Trans::No {
        a.at(i, l)
    } else {
        a.at(l, i)
    }
}

/// Encodes the rank-k update checksum over the stored triangle: for each
/// column `j`, the sum of the updated rows must land on `β·eᵀC₀_j +
/// α·Σ_l S_l(j)·r(j,l)` where `S_l(j)` is a running prefix (Upper) or
/// suffix (Lower) sum over the column term and `r` the row term, with
/// the conjugations placed exactly as `syrk_block` places them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn syrk_encode<T: Scalar>(
    pol: AbftPolicy,
    conj: bool,
    uplo: Uplo,
    trans: Trans,
    k: usize,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    c: MatRef<'_, T>,
) -> ColCheck<T> {
    probe::with_abft(|| {
        let _s = probe::span(probe::Layer::Blas, "syrk", 0, 0);
        let n = c.nrows();
        // Column term accumulated into the running sums, and row term the
        // sums are dotted with — conjugated as syrk_block conjugates them.
        let colterm = |i: usize, l: usize| {
            let x = ael(trans, a, i, l);
            cjs(conj && trans != Trans::No, x)
        };
        let rowterm = |j: usize, l: usize| {
            let x = ael(trans, a, j, l);
            cjs(conj && trans == Trans::No, x)
        };
        // β·(sum of the updated rows of C₀), with the Hermitian case
        // reading only the real part of the stored diagonal, as the
        // kernel's trailing `from_real` enforces.
        let colsum0 = |j: usize| {
            let (lo, hi) = match uplo {
                Uplo::Upper => (0, j + 1),
                Uplo::Lower => (j, n),
            };
            let mut s = T::zero();
            for i in lo..hi {
                let x = c.at(i, j);
                s += if conj && i == j {
                    T::from_real(x.re())
                } else {
                    x
                };
            }
            s
        };
        let mut expect = vec![T::zero(); n];
        let mut run = vec![T::zero(); k];
        let col = |j: usize, run: &mut [T]| {
            for (l, rl) in run.iter_mut().enumerate() {
                *rl += colterm(j, l);
            }
            let mut dot = T::zero();
            for (l, &rl) in run.iter().enumerate() {
                dot += rl * rowterm(j, l);
            }
            beta * colsum0(j) + alpha * dot
        };
        match uplo {
            Uplo::Upper => {
                for j in 0..n {
                    expect[j] = col(j, &mut run);
                }
            }
            Uplo::Lower => {
                for j in (0..n).rev() {
                    expect[j] = col(j, &mut run);
                }
            }
        }
        let maxa = maxabs(a);
        let maxc = maxabs(c);
        let tol = T::Real::from_f64(32.0)
            * T::Real::EPS
            * T::Real::from_usize(n)
            * (T::Real::from_usize(k) * alpha.abs1() * maxa * maxa + beta.abs1() * maxc);
        let snap = if pol.recover() {
            Some(c.as_slice().to_vec())
        } else {
            None
        };
        ColCheck { expect, tol, snap }
    })
}

/// Verifies the rank-k update checksum; recovery restores and re-runs
/// the offending `SYRK_NB` diagonal block(s) through `syrk_block`, the
/// same kernel both the serial and the dealt-parallel paths execute.
#[allow(clippy::too_many_arguments)]
pub(crate) fn syrk_verify<T: Scalar>(
    ck: ColCheck<T>,
    plan: &PackedPlan<T>,
    conj: bool,
    uplo: Uplo,
    trans: Trans,
    k: usize,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    probe::with_abft(|| {
        let _s = probe::span(probe::Layer::Blas, "syrk", 0, 0);
        abft::note_check();
        let n = c.nrows();
        let colsum = |c: &MatMut<'_, T>, j: usize| {
            let (lo, hi) = match uplo {
                Uplo::Upper => (0, j + 1),
                Uplo::Lower => (j, n),
            };
            let mut s = T::zero();
            for &x in &c.col(j)[lo..hi] {
                s += x;
            }
            s
        };
        let mut bad: Vec<usize> = Vec::new();
        for j in 0..n {
            if exceeds(colsum(&c, j) - ck.expect[j], ck.tol) {
                let blk = j / SYRK_NB;
                if bad.last() != Some(&blk) {
                    bad.push(blk);
                }
            }
        }
        if bad.is_empty() {
            return;
        }
        let Some(snap) = ck.snap.as_deref() else {
            abft::raise("syrk", bad[0]);
            return;
        };
        for &blk in &bad {
            let j0 = blk * SYRK_NB;
            let jb = SYRK_NB.min(n - j0);
            restore_cols(&mut c, snap, j0, jb);
            syrk_block(
                plan,
                conj,
                uplo,
                trans,
                k,
                alpha,
                a,
                beta,
                j0,
                jb,
                c.rb().subview(0, j0, n, jb),
            );
        }
        let ltol = loose(ck.tol);
        let still = bad.iter().copied().find(|&blk| {
            let j0 = blk * SYRK_NB;
            let jb = SYRK_NB.min(n - j0);
            (j0..j0 + jb).any(|j| exceeds(colsum(&c, j) - ck.expect[j], ltol))
        });
        conclude("syrk", true, still);
    })
}

// ---------------------------------------------------------------------
// TRSM / TRMM (Side::Left — the Right side recurses through Left)
// ---------------------------------------------------------------------

/// `v = eᵀ·op(A)` over the stored triangle including the implicit unit
/// diagonal — the checksum row vector shared by the triangular
/// operations.
fn tri_colsums<T: Scalar>(uplo: Uplo, trans: Trans, diag: Diag, a: MatRef<'_, T>) -> Vec<T> {
    let m = a.nrows();
    let cjt = trans == Trans::ConjTrans;
    let mut v = vec![T::zero(); m];
    for jcol in 0..m {
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, jcol),
            Uplo::Lower => (jcol + 1, m),
        };
        for i in lo..hi {
            let x = a.at(i, jcol);
            if trans == Trans::No {
                // A[i, jcol] sits in column jcol of op(A).
                v[jcol] += x;
            } else {
                // op(A)[jcol, i] = cj(A[i, jcol]) sits in column i.
                v[i] += cjs(cjt, x);
            }
        }
    }
    for (i, vi) in v.iter_mut().enumerate() {
        *vi += if diag == Diag::Unit {
            T::one()
        } else {
            cjs(cjt, a.at(i, i))
        };
    }
    v
}

/// Checksum state for the triangular solve: `eᵀ·op(A)` and the column
/// sums of the α-scaled right-hand sides, against which `v·x_j` is
/// checked after the solve.
pub(crate) struct TrsmCheck<T: Scalar> {
    v: Vec<T>,
    expect: Vec<T>,
    maxa: T::Real,
    maxb: T::Real,
    snap: Option<Vec<T>>,
}

/// Encodes the TRSM checksum. Must be called after α has been applied to
/// `B` and before the solve overwrites it: `op(A)·X = B` implies
/// `(eᵀop(A))·X_j = eᵀB_j`.
pub(crate) fn trsm_encode<T: Scalar>(
    pol: AbftPolicy,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
) -> TrsmCheck<T> {
    probe::with_abft(|| {
        let _s = probe::span(probe::Layer::Blas, "trsm", 0, 0);
        let n = b.ncols();
        let v = tri_colsums(uplo, trans, diag, a);
        let mut expect = vec![T::zero(); n];
        for (j, ej) in expect.iter_mut().enumerate() {
            let mut s = T::zero();
            for &x in b.col(j) {
                s += x;
            }
            *ej = s;
        }
        let maxa = maxabs(a).maxr(T::Real::one());
        let maxb = maxabs(b);
        let snap = if pol.recover() {
            Some(b.as_slice().to_vec())
        } else {
            None
        };
        TrsmCheck {
            v,
            expect,
            maxa,
            maxb,
            snap,
        }
    })
}

/// Verifies the TRSM checksum (`v·x_j` against the encoded `eᵀB_j`);
/// recovery restores the offending stripe and re-runs `trsm_left_cols`
/// on it under the same plan.
#[allow(clippy::too_many_arguments)]
pub(crate) fn trsm_verify<T: Scalar>(
    ck: TrsmCheck<T>,
    stripes: usize,
    plan: &PackedPlan<T>,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    probe::with_abft(|| {
        let _s = probe::span(probe::Layer::Blas, "trsm", 0, 0);
        abft::note_check();
        let (m, n) = (b.nrows(), b.ncols());
        let vx = |b: &MatMut<'_, T>, j: usize| {
            let col = b.col(j);
            let mut s = T::zero();
            for (i, &vi) in ck.v.iter().enumerate() {
                s += vi * col[i];
            }
            s
        };
        // The solve's backward error is a multiple of ‖A‖·‖X‖, so the
        // tolerance is scaled by the magnitude of the *computed* solution.
        let maxx = maxabs(b.as_ref());
        let mr = T::Real::from_usize(m);
        let tol = T::Real::from_f64(64.0) * T::Real::EPS * mr * (mr * ck.maxa * maxx + ck.maxb);
        let bad = bad_stripes(n, stripes, tol, &ck.expect, |j| vx(&b, j));
        if bad.is_empty() {
            return;
        }
        let Some(snap) = ck.snap.as_deref() else {
            abft::raise("trsm", bad[0]);
            return;
        };
        for &t in &bad {
            let (j0, w) = stripe_bounds(n, stripes, t);
            restore_cols(&mut b, snap, j0, w);
            trsm_left_cols(plan, uplo, trans, diag, a, b.rb().subview(0, j0, m, w));
        }
        let ltol = loose(tol);
        let still = bad.iter().copied().find(|&t| {
            let (j0, w) = stripe_bounds(n, stripes, t);
            (j0..j0 + w).any(|j| exceeds(vx(&b, j) - ck.expect[j], ltol))
        });
        conclude("trsm", true, still);
    })
}

/// Encodes the TRMM checksum from the *unscaled* input `B₀`:
/// `eᵀ(α·op(A)·B₀)_j = α·(eᵀop(A))·B₀_j`, checked against the column
/// sums of the overwritten output.
pub(crate) fn trmm_encode<T: Scalar>(
    pol: AbftPolicy,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
) -> ColCheck<T> {
    probe::with_abft(|| {
        let _s = probe::span(probe::Layer::Blas, "trmm", 0, 0);
        let (m, n) = (b.nrows(), b.ncols());
        let v = tri_colsums(uplo, trans, diag, a);
        let mut expect = vec![T::zero(); n];
        for (j, ej) in expect.iter_mut().enumerate() {
            let col = b.col(j);
            let mut s = T::zero();
            for (i, &vi) in v.iter().enumerate() {
                s += vi * col[i];
            }
            *ej = alpha * s;
        }
        let maxa = maxabs(a).maxr(T::Real::one());
        let maxb = maxabs(b);
        let mr = T::Real::from_usize(m);
        let tol = T::Real::from_f64(64.0) * T::Real::EPS * mr * mr * alpha.abs1() * maxa * maxb;
        let snap = if pol.recover() {
            Some(b.as_slice().to_vec())
        } else {
            None
        };
        ColCheck { expect, tol, snap }
    })
}

/// Verifies the TRMM column checksum; recovery restores the offending
/// stripe and re-runs `trmm_left_cols` on it under the same plan.
#[allow(clippy::too_many_arguments)]
pub(crate) fn trmm_verify<T: Scalar>(
    ck: ColCheck<T>,
    stripes: usize,
    plan: &PackedPlan<T>,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    probe::with_abft(|| {
        let _s = probe::span(probe::Layer::Blas, "trmm", 0, 0);
        abft::note_check();
        let (m, n) = (b.nrows(), b.ncols());
        let colsum = |b: &MatMut<'_, T>, j: usize| {
            let mut s = T::zero();
            for &x in b.col(j) {
                s += x;
            }
            s
        };
        let bad = bad_stripes(n, stripes, ck.tol, &ck.expect, |j| colsum(&b, j));
        if bad.is_empty() {
            return;
        }
        let Some(snap) = ck.snap.as_deref() else {
            abft::raise("trmm", bad[0]);
            return;
        };
        for &t in &bad {
            let (j0, w) = stripe_bounds(n, stripes, t);
            restore_cols(&mut b, snap, j0, w);
            trmm_left_cols(
                plan,
                uplo,
                trans,
                diag,
                alpha,
                a,
                b.rb().subview(0, j0, m, w),
            );
        }
        let ltol = loose(ck.tol);
        let still = bad.iter().copied().find(|&t| {
            let (j0, w) = stripe_bounds(n, stripes, t);
            (j0..j0 + w).any(|j| exceeds(colsum(&b, j) - ck.expect[j], ltol))
        });
        conclude("trmm", true, still);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_bounds_and_inverse_agree() {
        for &(n, stripes) in &[(7usize, 3usize), (12, 4), (5, 8), (1, 1), (64, 5)] {
            let mut owner = vec![usize::MAX; n];
            for t in 0..stripes {
                let (j0, w) = stripe_bounds(n, stripes, t);
                for j in j0..(j0 + w).min(n) {
                    owner[j] = t;
                }
            }
            for j in 0..n {
                assert_eq!(
                    owner[j],
                    stripe_of(n, stripes, j),
                    "n={n} stripes={stripes} j={j}"
                );
            }
        }
    }

    #[test]
    fn nonfinite_discrepancies_are_not_faults() {
        assert!(!exceeds(f64::NAN, 1e-12));
        assert!(!exceeds(f64::INFINITY, 1e-12));
        assert!(exceeds(1.0f64, 1e-12));
        assert!(!exceeds(1e-13f64, 1e-12));
    }

    /// End-to-end exercise of the injection → detection → recovery path
    /// for one representative operation; the full routine × stripe ×
    /// policy sweep lives in the workspace `degrade` test.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn gemm_corruption_is_detected_and_recovered() {
        use la_core::abft::inject::{arm, is_armed, CorruptKind, Corruption};
        use la_core::abft::{clear_pending, take_pending, with_policy};
        let (m, n, k) = (24usize, 32usize, 24usize);
        let a: Vec<f64> = (0..m * k)
            .map(|i| ((i * 7 % 13) as f64 - 6.0) / 3.0)
            .collect();
        let b: Vec<f64> = (0..k * n)
            .map(|i| ((i * 5 % 11) as f64 - 5.0) / 4.0)
            .collect();
        let c0: Vec<f64> = (0..m * n)
            .map(|i| ((i * 3 % 7) as f64 - 3.0) / 2.0)
            .collect();
        let cfg = tune::TuneConfig {
            max_threads: 4,
            oversubscribe: true,
            par_flops: 0,
            ..tune::current()
        };
        let run = |c: &mut Vec<f64>| {
            crate::l3::gemm(Trans::No, Trans::No, m, n, k, 1.5, &a, m, &b, k, 0.5, c, m)
        };
        let clean = tune::with(cfg, || {
            let mut c = c0.clone();
            run(&mut c);
            c
        });

        // Verify policy: the corruption survives, a soft fault is parked.
        clear_pending();
        let corrupted = tune::with(cfg, || {
            with_policy(AbftPolicy::Verify, || {
                arm(Corruption {
                    routine: "gemm",
                    stripe: 1,
                    kind: CorruptKind::Scale,
                });
                let mut c = c0.clone();
                run(&mut c);
                c
            })
        });
        assert!(!is_armed(), "corruption must have fired");
        let fault = take_pending().expect("verify must park a soft fault");
        assert_eq!(fault.routine, "gemm");
        assert_eq!(fault.block, 1);
        assert_ne!(clean, corrupted);

        // Recover policy: the result is bit-for-bit the clean one.
        let recovered = tune::with(cfg, || {
            with_policy(AbftPolicy::Recover, || {
                arm(Corruption {
                    routine: "gemm",
                    stripe: 1,
                    kind: CorruptKind::FlipMantissaBit,
                });
                let mut c = c0.clone();
                run(&mut c);
                c
            })
        });
        assert!(!is_armed());
        assert!(take_pending().is_none(), "recovery must clear the fault");
        assert_eq!(clean, recovered, "recovery must be bitwise identical");
    }
}
