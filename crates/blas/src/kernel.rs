//! Register-tiled microkernels for the packed BLAS-3 path.
//!
//! The packed gemm in [`crate::l3`] copies operand panels into contiguous
//! buffers ([`crate::pack`]) and then drives one of the microkernels
//! defined here over MR×NR tiles — the BLASFEO structure: all the
//! cache-blocking and edge handling lives outside the kernel, so a kernel
//! only ever sees full, aligned, zero-padded micro-panels and can be an
//! unrolled straight-line register tile.
//!
//! Three interchangeable implementations sit behind the [`MicroKernel`]
//! trait, selected through the `LA_GEMM_KERNEL` tune knob
//! ([`la_core::tune::GemmKernel`]):
//!
//! * [`RefKernel`] — the reference triple loop. Slow; the bitwise ground
//!   truth the equivalence tests compare everything against.
//! * [`Unrolled`] — an explicitly unrolled register tile, generic over the
//!   scalar type. Performs the *same additions in the same order* as
//!   `RefKernel`, so the two are bitwise identical.
//! * `SimdKernel` — x86-64 AVX2+FMA vectorized tiles for `f32`/`f64`
//!   (behind the `simd` cargo feature, with runtime CPU detection). FMA
//!   contracts the multiply-add rounding, so its results differ from the
//!   scalar kernels by a few ulps; complex types and non-x86 hosts fall
//!   back to the unrolled kernel.
//!
//! Every kernel for a given scalar type shares the same tile shape
//! ([`tile_dims`]), so the packed-panel layout — and therefore the
//! summation *grouping* — is identical across kernels.

use la_core::tune::GemmKernel;
use la_core::Scalar;

/// Largest `MR·NR` over all tile shapes in [`tile_dims`]; accumulator
/// scratch in the macro-kernel is sized by this.
pub const MAX_TILE: usize = 64;

/// The microkernel tile shape `(MR, NR)` for a scalar type. One shape per
/// type, shared by every kernel variant so the packed layout is
/// kernel-independent: `f32` 16×4, `f64` 8×4 (two/two AVX vectors of rows
/// by four broadcast columns), complex types 4×2.
pub fn tile_dims<T: Scalar>() -> (usize, usize) {
    if T::IS_COMPLEX {
        (4, 2)
    } else if std::mem::size_of::<T>() == 4 {
        (16, 4)
    } else {
        (8, 4)
    }
}

/// A register-tiled microkernel: computes one MR×NR tile of
/// `op(A)·op(B)` from packed micro-panels.
///
/// `ap` holds `kb` groups of `mr()` values (one A micro-panel column per
/// depth step), `bp` holds `kb` groups of `nr()` values; both are
/// zero-padded by the packing layer, so the kernel always computes a full
/// tile. The result is written to `acc` in column-major order
/// (`acc[r + s·mr()]`), *overwriting* it; the macro-kernel masks edge
/// tiles when adding `acc` into `C`.
pub trait MicroKernel<T: Scalar>: Sync {
    /// Name recorded in probe spans (`"scalar"`, `"unrolled"`, `"simd"`).
    fn name(&self) -> &'static str;
    /// Tile height (rows of C per tile).
    fn mr(&self) -> usize;
    /// Tile width (columns of C per tile).
    fn nr(&self) -> usize;
    /// Computes the full `mr() × nr()` tile over a depth of `kb`.
    fn tile(&self, kb: usize, ap: &[T], bp: &[T], acc: &mut [T]);
}

/// Reference triple-loop microkernel: one scalar accumulator per tile
/// element, depth innermost. The ground truth for the bitwise
/// kernel-equivalence tests.
pub struct RefKernel<const MR: usize, const NR: usize>;

impl<T: Scalar, const MR: usize, const NR: usize> MicroKernel<T> for RefKernel<MR, NR> {
    fn name(&self) -> &'static str {
        "scalar"
    }
    fn mr(&self) -> usize {
        MR
    }
    fn nr(&self) -> usize {
        NR
    }
    fn tile(&self, kb: usize, ap: &[T], bp: &[T], acc: &mut [T]) {
        for s in 0..NR {
            for r in 0..MR {
                let mut sum = T::zero();
                for l in 0..kb {
                    sum += ap[l * MR + r] * bp[l * NR + s];
                }
                acc[r + s * MR] = sum;
            }
        }
    }
}

/// Explicitly unrolled register-tiled microkernel: the whole MR×NR
/// accumulator block lives in a const-sized array the compiler keeps in
/// registers, with the depth loop outermost. Each accumulator sees the
/// same products in the same order as [`RefKernel`], so results are
/// bitwise identical.
pub struct Unrolled<const MR: usize, const NR: usize>;

impl<T: Scalar, const MR: usize, const NR: usize> MicroKernel<T> for Unrolled<MR, NR> {
    fn name(&self) -> &'static str {
        "unrolled"
    }
    fn mr(&self) -> usize {
        MR
    }
    fn nr(&self) -> usize {
        NR
    }
    fn tile(&self, kb: usize, ap: &[T], bp: &[T], acc: &mut [T]) {
        let mut c = [[T::zero(); MR]; NR];
        for l in 0..kb {
            let av = &ap[l * MR..l * MR + MR];
            let bv = &bp[l * NR..l * NR + NR];
            for (s, cs) in c.iter_mut().enumerate() {
                let bs = bv[s];
                for (r, cv) in cs.iter_mut().enumerate() {
                    *cv += av[r] * bs;
                }
            }
        }
        for (s, cs) in c.iter().enumerate() {
            acc[s * MR..s * MR + MR].copy_from_slice(cs);
        }
    }
}

/// AVX2+FMA microkernel for real types (`simd` cargo feature). The
/// generic [`MicroKernel`] impl dispatches by scalar type at runtime;
/// complex types — and hosts without AVX2/FMA — run the unrolled tile
/// instead, so selecting `simd` is always safe.
#[cfg(feature = "simd")]
pub struct SimdKernel;

#[cfg(feature = "simd")]
mod simd {
    /// Whether the host supports the AVX2+FMA paths (checked once).
    pub(super) fn host_supported() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::OnceLock;
            static OK: OnceLock<bool> = OnceLock::new();
            *OK.get_or_init(|| {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            })
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// 8×4 f64 tile: rows in two 4-lane AVX vectors, four broadcast
    /// columns — eight independent FMA accumulator registers.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available and the slices hold
    /// `kb·8` / `kb·4` / `32` elements respectively.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn tile_f64_8x4(kb: usize, ap: &[f64], bp: &[f64], acc: &mut [f64]) {
        use std::arch::x86_64::*;
        let a = ap.as_ptr();
        let b = bp.as_ptr();
        let mut c0 = [_mm256_setzero_pd(); 4];
        let mut c1 = [_mm256_setzero_pd(); 4];
        for l in 0..kb {
            let a0 = _mm256_loadu_pd(a.add(l * 8));
            let a1 = _mm256_loadu_pd(a.add(l * 8 + 4));
            for s in 0..4 {
                let bv = _mm256_set1_pd(*b.add(l * 4 + s));
                c0[s] = _mm256_fmadd_pd(a0, bv, c0[s]);
                c1[s] = _mm256_fmadd_pd(a1, bv, c1[s]);
            }
        }
        let out = acc.as_mut_ptr();
        for s in 0..4 {
            _mm256_storeu_pd(out.add(s * 8), c0[s]);
            _mm256_storeu_pd(out.add(s * 8 + 4), c1[s]);
        }
    }

    /// 16×4 f32 tile: rows in two 8-lane AVX vectors, four broadcast
    /// columns.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available and the slices hold
    /// `kb·16` / `kb·4` / `64` elements respectively.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn tile_f32_16x4(kb: usize, ap: &[f32], bp: &[f32], acc: &mut [f32]) {
        use std::arch::x86_64::*;
        let a = ap.as_ptr();
        let b = bp.as_ptr();
        let mut c0 = [_mm256_setzero_ps(); 4];
        let mut c1 = [_mm256_setzero_ps(); 4];
        for l in 0..kb {
            let a0 = _mm256_loadu_ps(a.add(l * 16));
            let a1 = _mm256_loadu_ps(a.add(l * 16 + 8));
            for s in 0..4 {
                let bv = _mm256_set1_ps(*b.add(l * 4 + s));
                c0[s] = _mm256_fmadd_ps(a0, bv, c0[s]);
                c1[s] = _mm256_fmadd_ps(a1, bv, c1[s]);
            }
        }
        let out = acc.as_mut_ptr();
        for s in 0..4 {
            _mm256_storeu_ps(out.add(s * 16), c0[s]);
            _mm256_storeu_ps(out.add(s * 16 + 8), c1[s]);
        }
    }
}

#[cfg(feature = "simd")]
impl<T: Scalar> MicroKernel<T> for SimdKernel {
    fn name(&self) -> &'static str {
        "simd"
    }
    fn mr(&self) -> usize {
        tile_dims::<T>().0
    }
    fn nr(&self) -> usize {
        tile_dims::<T>().1
    }
    fn tile(&self, kb: usize, ap: &[T], bp: &[T], acc: &mut [T]) {
        #[cfg(target_arch = "x86_64")]
        if simd::host_supported() {
            use std::any::TypeId;
            let t = TypeId::of::<T>();
            // The TypeId check proves T == f64 (resp. f32), so the
            // slice reinterpretation is an identity cast.
            if t == TypeId::of::<f64>() {
                unsafe {
                    let ap = &*(ap as *const [T] as *const [f64]);
                    let bp = &*(bp as *const [T] as *const [f64]);
                    let acc = &mut *(acc as *mut [T] as *mut [f64]);
                    simd::tile_f64_8x4(kb, ap, bp, acc);
                }
                return;
            }
            if t == TypeId::of::<f32>() {
                unsafe {
                    let ap = &*(ap as *const [T] as *const [f32]);
                    let bp = &*(bp as *const [T] as *const [f32]);
                    let acc = &mut *(acc as *mut [T] as *mut [f32]);
                    simd::tile_f32_16x4(kb, ap, bp, acc);
                }
                return;
            }
        }
        fallback_tile::<T>(kb, ap, bp, acc);
    }
}

/// The unrolled tile at this type's shape — the fallback body for
/// [`SimdKernel`] on unsupported types/hosts.
#[cfg(feature = "simd")]
fn fallback_tile<T: Scalar>(kb: usize, ap: &[T], bp: &[T], acc: &mut [T]) {
    match tile_dims::<T>() {
        (16, 4) => MicroKernel::<T>::tile(&Unrolled::<16, 4>, kb, ap, bp, acc),
        (8, 4) => MicroKernel::<T>::tile(&Unrolled::<8, 4>, kb, ap, bp, acc),
        _ => MicroKernel::<T>::tile(&Unrolled::<4, 2>, kb, ap, bp, acc),
    }
}

/// Resolves a [`GemmKernel`] selection to a concrete kernel for `T`.
/// `Auto` (and `Simd` without support) resolve to the fastest applicable
/// kernel; the returned reference is a promoted ZST, so this is free.
pub fn kernel_for<T: Scalar>(sel: GemmKernel) -> &'static dyn MicroKernel<T> {
    match sel {
        GemmKernel::Scalar => match tile_dims::<T>() {
            (16, 4) => &RefKernel::<16, 4>,
            (8, 4) => &RefKernel::<8, 4>,
            _ => &RefKernel::<4, 2>,
        },
        GemmKernel::Unrolled => unrolled_for::<T>(),
        GemmKernel::Simd | GemmKernel::Auto => {
            #[cfg(feature = "simd")]
            {
                if !T::IS_COMPLEX && simd::host_supported() {
                    return &SimdKernel;
                }
            }
            unrolled_for::<T>()
        }
    }
}

fn unrolled_for<T: Scalar>() -> &'static dyn MicroKernel<T> {
    match tile_dims::<T>() {
        (16, 4) => &Unrolled::<16, 4>,
        (8, 4) => &Unrolled::<8, 4>,
        _ => &Unrolled::<4, 2>,
    }
}

/// Default cache-blocking sizes for the packed path, used when the
/// corresponding [`la_core::tune::TuneConfig`] knob is 0. `MC×KC` panels
/// of A (~256 KiB of f64) target L2; `KC×NC` panels of B target L3.
pub const DEFAULT_MC: usize = 128;
/// Default k-depth of a packed panel (see [`DEFAULT_MC`]).
pub const DEFAULT_KC: usize = 256;
/// Default column width of a packed B panel (see [`DEFAULT_MC`]).
pub const DEFAULT_NC: usize = 512;

/// A resolved packed-gemm execution plan: the concrete microkernel plus
/// the cache-blocking sizes, captured *once* on the calling thread (where
/// scoped `tune::with` overrides are visible) and passed down through the
/// stripe workers and the ABFT recovery reruns so every path computes
/// with the same kernel.
#[derive(Clone, Copy)]
pub struct PackedPlan<T: Scalar> {
    /// The microkernel to drive.
    pub kern: &'static dyn MicroKernel<T>,
    /// Row block of packed A panels.
    pub mc: usize,
    /// Depth block of packed panels.
    pub kc: usize,
    /// Column block of packed B panels.
    pub nc: usize,
    /// When true (an explicit, non-`Auto` kernel selection), even small
    /// products go through the packed path — the equivalence tests use
    /// this to pin the exact code path under test.
    pub force: bool,
}

impl<T: Scalar> PackedPlan<T> {
    /// Builds the plan from a tuning configuration.
    pub fn from_cfg(cfg: &la_core::TuneConfig) -> Self {
        let pick = |v: usize, d: usize| if v == 0 { d } else { v };
        PackedPlan {
            kern: kernel_for::<T>(cfg.gemm_kernel),
            mc: pick(cfg.gemm_mc, DEFAULT_MC).max(1),
            kc: pick(cfg.gemm_kc, DEFAULT_KC).max(1),
            nc: pick(cfg.gemm_nc, DEFAULT_NC).max(1),
            force: cfg.gemm_kernel != GemmKernel::Auto,
        }
    }

    /// Builds the plan from the current thread's tuning configuration.
    pub fn current() -> Self {
        Self::from_cfg(&la_core::tune::current())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_shapes_fit_the_accumulator_scratch() {
        fn check<T: Scalar>() {
            let (mr, nr) = tile_dims::<T>();
            assert!(mr * nr <= MAX_TILE);
            for sel in [GemmKernel::Scalar, GemmKernel::Unrolled, GemmKernel::Simd] {
                let k = kernel_for::<T>(sel);
                assert_eq!((k.mr(), k.nr()), (mr, nr), "{} shape", k.name());
            }
        }
        check::<f32>();
        check::<f64>();
        check::<la_core::C32>();
        check::<la_core::C64>();
    }

    #[test]
    fn scalar_and_unrolled_tiles_are_bitwise_identical() {
        let (mr, nr) = tile_dims::<f64>();
        let kb = 7usize;
        let ap: Vec<f64> = (0..kb * mr).map(|i| (i as f64).sin()).collect();
        let bp: Vec<f64> = (0..kb * nr).map(|i| (i as f64).cos()).collect();
        let mut acc1 = vec![0.0; mr * nr];
        let mut acc2 = vec![1.0; mr * nr];
        kernel_for::<f64>(GemmKernel::Scalar).tile(kb, &ap, &bp, &mut acc1);
        kernel_for::<f64>(GemmKernel::Unrolled).tile(kb, &ap, &bp, &mut acc2);
        assert_eq!(acc1, acc2);
    }

    #[test]
    fn simd_selection_matches_scalar_to_ulp_tolerance() {
        // With the feature off this degenerates to unrolled-vs-scalar
        // (bitwise); with it on, FMA contraction allows a small relative
        // error.
        let (mr, nr) = tile_dims::<f64>();
        let kb = 33usize;
        let ap: Vec<f64> = (0..kb * mr)
            .map(|i| ((i * 37 % 101) as f64) - 50.0)
            .collect();
        let bp: Vec<f64> = (0..kb * nr)
            .map(|i| ((i * 53 % 97) as f64) - 48.0)
            .collect();
        let mut want = vec![0.0; mr * nr];
        let mut got = vec![0.0; mr * nr];
        kernel_for::<f64>(GemmKernel::Scalar).tile(kb, &ap, &bp, &mut want);
        kernel_for::<f64>(GemmKernel::Simd).tile(kb, &ap, &bp, &mut got);
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() <= 1e-9 * (1.0 + w.abs()), "{w} vs {g}");
        }
    }
}
