//! Level 2 BLAS: matrix-vector operations.
//!
//! Matrices are column-major slices with an explicit leading dimension
//! (`a[i + j*lda]`), exactly the Fortran convention, so the `la-lapack`
//! routines can hand sub-blocks through by offsetting into one buffer.

use la_core::{Diag, Scalar, Trans, Uplo};

use crate::l1::{axpy, dotc, dotu};

#[inline(always)]
fn cj<T: Scalar>(conj: bool, x: T) -> T {
    if conj {
        x.conj()
    } else {
        x
    }
}

/// General matrix-vector product (`xGEMV`):
/// `y := alpha*op(A)*x + beta*y` with `op` given by `trans`.
pub fn gemv<T: Scalar>(
    trans: Trans,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    x: &[T],
    incx: usize,
    beta: T,
    y: &mut [T],
    incy: usize,
) {
    let leny = if trans.is_transposed() { n } else { m };
    // y := beta*y
    if beta != T::one() {
        let mut iy = 0;
        for _ in 0..leny {
            y[iy] = if beta.is_zero() {
                T::zero()
            } else {
                beta * y[iy]
            };
            iy += incy;
        }
    }
    if m == 0 || n == 0 || alpha.is_zero() {
        return;
    }
    match trans {
        Trans::No => {
            // Column-sweep: y += (alpha*x_j) * A(:,j), unit stride in A.
            let mut jx = 0;
            for j in 0..n {
                let t = alpha * x[jx];
                if !t.is_zero() {
                    if incy == 1 {
                        axpy(m, t, &a[j * lda..j * lda + m], 1, &mut y[..m], 1);
                    } else {
                        let mut iy = 0;
                        for i in 0..m {
                            y[iy] += t * a[i + j * lda];
                            iy += incy;
                        }
                    }
                }
                jx += incx;
            }
        }
        Trans::Trans | Trans::ConjTrans => {
            let conj = trans.is_conj();
            let mut jy = 0;
            for j in 0..n {
                let col = &a[j * lda..j * lda + m];
                let s = if incx == 1 {
                    if conj {
                        dotc(m, col, 1, &x[..m], 1)
                    } else {
                        dotu(m, col, 1, &x[..m], 1)
                    }
                } else {
                    let mut s = T::zero();
                    let mut ix = 0;
                    for i in 0..m {
                        s += cj(conj, col[i]) * x[ix];
                        ix += incx;
                    }
                    s
                };
                y[jy] += alpha * s;
                jy += incy;
            }
        }
    }
}

/// Unconjugated rank-1 update (`xGER` / `xGERU`): `A := alpha*x*yᵀ + A`.
pub fn geru<T: Scalar>(
    m: usize,
    n: usize,
    alpha: T,
    x: &[T],
    incx: usize,
    y: &[T],
    incy: usize,
    a: &mut [T],
    lda: usize,
) {
    let mut jy = 0;
    for j in 0..n {
        let t = alpha * y[jy];
        if !t.is_zero() {
            if incx == 1 {
                axpy(m, t, &x[..m], 1, &mut a[j * lda..j * lda + m], 1);
            } else {
                let mut ix = 0;
                for i in 0..m {
                    a[i + j * lda] += t * x[ix];
                    ix += incx;
                }
            }
        }
        jy += incy;
    }
}

/// Conjugated rank-1 update (`xGERC`): `A := alpha*x*yᴴ + A`.
pub fn gerc<T: Scalar>(
    m: usize,
    n: usize,
    alpha: T,
    x: &[T],
    incx: usize,
    y: &[T],
    incy: usize,
    a: &mut [T],
    lda: usize,
) {
    let mut jy = 0;
    for j in 0..n {
        let t = alpha * y[jy].conj();
        if !t.is_zero() {
            let mut ix = 0;
            for i in 0..m {
                a[i + j * lda] += t * x[ix];
                ix += incx;
            }
        }
        jy += incy;
    }
}

fn symv_impl<T: Scalar>(
    conj: bool,
    uplo: Uplo,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    x: &[T],
    incx: usize,
    beta: T,
    y: &mut [T],
    incy: usize,
) {
    if beta != T::one() {
        let mut iy = 0;
        for _ in 0..n {
            y[iy] = if beta.is_zero() {
                T::zero()
            } else {
                beta * y[iy]
            };
            iy += incy;
        }
    }
    if n == 0 || alpha.is_zero() {
        return;
    }
    // Column sweep over the stored triangle; the mirrored part is picked up
    // by the accumulating dot product.
    let mut jx = 0;
    let mut jy = 0;
    for j in 0..n {
        let t1 = alpha * x[jx];
        let mut t2 = T::zero();
        match uplo {
            Uplo::Upper => {
                let mut ix = 0;
                let mut iy = 0;
                for i in 0..j {
                    let aij = a[i + j * lda];
                    y[iy] += t1 * aij;
                    t2 += cj(conj, aij) * x[ix];
                    ix += incx;
                    iy += incy;
                }
                let d = if conj {
                    T::from_real(a[j + j * lda].re())
                } else {
                    a[j + j * lda]
                };
                y[jy] += t1 * d + alpha * t2;
            }
            Uplo::Lower => {
                let d = if conj {
                    T::from_real(a[j + j * lda].re())
                } else {
                    a[j + j * lda]
                };
                let mut ix = (j + 1) * incx;
                let mut iy = (j + 1) * incy;
                for i in j + 1..n {
                    let aij = a[i + j * lda];
                    y[iy] += t1 * aij;
                    t2 += cj(conj, aij) * x[ix];
                    ix += incx;
                    iy += incy;
                }
                y[jy] += t1 * d + alpha * t2;
            }
        }
        jx += incx;
        jy += incy;
    }
}

/// Symmetric matrix-vector product (`xSYMV`): `y := alpha*A*x + beta*y`
/// with `A` symmetric, one triangle stored.
pub fn symv<T: Scalar>(
    uplo: Uplo,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    x: &[T],
    incx: usize,
    beta: T,
    y: &mut [T],
    incy: usize,
) {
    symv_impl(false, uplo, n, alpha, a, lda, x, incx, beta, y, incy)
}

/// Hermitian matrix-vector product (`xHEMV`); identical to [`symv`] for
/// real scalars.
pub fn hemv<T: Scalar>(
    uplo: Uplo,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    x: &[T],
    incx: usize,
    beta: T,
    y: &mut [T],
    incy: usize,
) {
    symv_impl(
        T::IS_COMPLEX,
        uplo,
        n,
        alpha,
        a,
        lda,
        x,
        incx,
        beta,
        y,
        incy,
    )
}

/// Symmetric rank-1 update (`xSYR`): `A := alpha*x*xᵀ + A` (one triangle).
pub fn syr<T: Scalar>(
    uplo: Uplo,
    n: usize,
    alpha: T,
    x: &[T],
    incx: usize,
    a: &mut [T],
    lda: usize,
) {
    for j in 0..n {
        let t = alpha * x[j * incx];
        if t.is_zero() {
            continue;
        }
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        for i in lo..hi {
            a[i + j * lda] += x[i * incx] * t;
        }
    }
}

/// Hermitian rank-1 update (`xHER`): `A := alpha*x*xᴴ + A`, `alpha` real.
pub fn her<T: Scalar>(
    uplo: Uplo,
    n: usize,
    alpha: T::Real,
    x: &[T],
    incx: usize,
    a: &mut [T],
    lda: usize,
) {
    for j in 0..n {
        let t = x[j * incx].conj().mul_real(alpha);
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        for i in lo..hi {
            let upd = x[i * incx] * t;
            let aij = &mut a[i + j * lda];
            *aij += upd;
            if i == j {
                // Keep the diagonal exactly real, as xHER guarantees.
                *aij = T::from_real(aij.re());
            }
        }
    }
}

fn syr2_impl<T: Scalar>(
    conj: bool,
    uplo: Uplo,
    n: usize,
    alpha: T,
    x: &[T],
    incx: usize,
    y: &[T],
    incy: usize,
    a: &mut [T],
    lda: usize,
) {
    for j in 0..n {
        let t1 = alpha * cj(conj, y[j * incy]);
        let t2 = cj(conj, alpha * x[j * incx]);
        if t1.is_zero() && t2.is_zero() {
            continue;
        }
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        for i in lo..hi {
            let upd = x[i * incx] * t1 + y[i * incy] * t2;
            let aij = &mut a[i + j * lda];
            *aij += upd;
            if conj && i == j {
                *aij = T::from_real(aij.re());
            }
        }
    }
}

/// Symmetric rank-2 update (`xSYR2`): `A := alpha*x*yᵀ + alpha*y*xᵀ + A`.
pub fn syr2<T: Scalar>(
    uplo: Uplo,
    n: usize,
    alpha: T,
    x: &[T],
    incx: usize,
    y: &[T],
    incy: usize,
    a: &mut [T],
    lda: usize,
) {
    syr2_impl(false, uplo, n, alpha, x, incx, y, incy, a, lda)
}

/// Hermitian rank-2 update (`xHER2`): `A := alpha*x*yᴴ + ᾱ*y*xᴴ + A`.
pub fn her2<T: Scalar>(
    uplo: Uplo,
    n: usize,
    alpha: T,
    x: &[T],
    incx: usize,
    y: &[T],
    incy: usize,
    a: &mut [T],
    lda: usize,
) {
    syr2_impl(T::IS_COMPLEX, uplo, n, alpha, x, incx, y, incy, a, lda)
}

/// Triangular matrix-vector product (`xTRMV`): `x := op(A)*x`.
pub fn trmv<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    n: usize,
    a: &[T],
    lda: usize,
    x: &mut [T],
    incx: usize,
) {
    let unit = diag == Diag::Unit;
    let conj = trans.is_conj();
    match (trans.is_transposed(), uplo) {
        (false, Uplo::Upper) => {
            for j in 0..n {
                let t = x[j * incx];
                if !t.is_zero() {
                    for i in 0..j {
                        let xi = x[i * incx];
                        x[i * incx] = xi + t * a[i + j * lda];
                    }
                    if !unit {
                        x[j * incx] = t * a[j + j * lda];
                    }
                }
            }
        }
        (false, Uplo::Lower) => {
            for j in (0..n).rev() {
                let t = x[j * incx];
                if !t.is_zero() {
                    for i in (j + 1..n).rev() {
                        let xi = x[i * incx];
                        x[i * incx] = xi + t * a[i + j * lda];
                    }
                    if !unit {
                        x[j * incx] = t * a[j + j * lda];
                    }
                }
            }
        }
        (true, Uplo::Upper) => {
            for j in (0..n).rev() {
                let mut t = x[j * incx];
                if !unit {
                    t = t * cj(conj, a[j + j * lda]);
                }
                for i in (0..j).rev() {
                    t += cj(conj, a[i + j * lda]) * x[i * incx];
                }
                x[j * incx] = t;
            }
        }
        (true, Uplo::Lower) => {
            for j in 0..n {
                let mut t = x[j * incx];
                if !unit {
                    t = t * cj(conj, a[j + j * lda]);
                }
                for i in j + 1..n {
                    t += cj(conj, a[i + j * lda]) * x[i * incx];
                }
                x[j * incx] = t;
            }
        }
    }
}

/// Triangular solve with a single right-hand side (`xTRSV`):
/// `x := op(A)⁻¹ x`.
pub fn trsv<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    n: usize,
    a: &[T],
    lda: usize,
    x: &mut [T],
    incx: usize,
) {
    let unit = diag == Diag::Unit;
    let conj = trans.is_conj();
    match (trans.is_transposed(), uplo) {
        (false, Uplo::Upper) => {
            for j in (0..n).rev() {
                if !x[j * incx].is_zero() {
                    if !unit {
                        x[j * incx] = x[j * incx] / a[j + j * lda];
                    }
                    let t = x[j * incx];
                    for i in 0..j {
                        let xi = x[i * incx];
                        x[i * incx] = xi - t * a[i + j * lda];
                    }
                }
            }
        }
        (false, Uplo::Lower) => {
            for j in 0..n {
                if !x[j * incx].is_zero() {
                    if !unit {
                        x[j * incx] = x[j * incx] / a[j + j * lda];
                    }
                    let t = x[j * incx];
                    for i in j + 1..n {
                        let xi = x[i * incx];
                        x[i * incx] = xi - t * a[i + j * lda];
                    }
                }
            }
        }
        (true, Uplo::Upper) => {
            for j in 0..n {
                let mut t = x[j * incx];
                for i in 0..j {
                    t -= cj(conj, a[i + j * lda]) * x[i * incx];
                }
                if !unit {
                    t = t / cj(conj, a[j + j * lda]);
                }
                x[j * incx] = t;
            }
        }
        (true, Uplo::Lower) => {
            for j in (0..n).rev() {
                let mut t = x[j * incx];
                for i in j + 1..n {
                    t -= cj(conj, a[i + j * lda]) * x[i * incx];
                }
                if !unit {
                    t = t / cj(conj, a[j + j * lda]);
                }
                x[j * incx] = t;
            }
        }
    }
}

/// General band matrix-vector product (`xGBMV`). `a` holds LAPACK band
/// storage with the main diagonal at row `ku` (`LDAB >= kl + ku + 1`).
#[allow(clippy::too_many_arguments)]
pub fn gbmv<T: Scalar>(
    trans: Trans,
    m: usize,
    n: usize,
    kl: usize,
    ku: usize,
    alpha: T,
    a: &[T],
    ldab: usize,
    x: &[T],
    incx: usize,
    beta: T,
    y: &mut [T],
    incy: usize,
) {
    let leny = if trans.is_transposed() { n } else { m };
    if beta != T::one() {
        for k in 0..leny {
            y[k * incy] = if beta.is_zero() {
                T::zero()
            } else {
                beta * y[k * incy]
            };
        }
    }
    if alpha.is_zero() {
        return;
    }
    let conj = trans.is_conj();
    for j in 0..n {
        let lo = j.saturating_sub(ku);
        let hi = (j + kl + 1).min(m);
        match trans {
            Trans::No => {
                let t = alpha * x[j * incx];
                for i in lo..hi {
                    y[i * incy] += t * a[ku + i - j + j * ldab];
                }
            }
            _ => {
                let mut s = T::zero();
                for i in lo..hi {
                    s += cj(conj, a[ku + i - j + j * ldab]) * x[i * incx];
                }
                y[j * incy] += alpha * s;
            }
        }
    }
}

/// Triangular band solve (`xTBSV`). `a` holds triangular band storage:
/// for `Uplo::Upper` the diagonal is at row `kd`, for `Uplo::Lower` at row 0.
#[allow(clippy::too_many_arguments)]
pub fn tbsv<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    n: usize,
    kd: usize,
    a: &[T],
    ldab: usize,
    x: &mut [T],
    incx: usize,
) {
    let unit = diag == Diag::Unit;
    let conj = trans.is_conj();
    let at = |i: usize, j: usize| -> T {
        match uplo {
            Uplo::Upper => a[kd + i - j + j * ldab],
            Uplo::Lower => a[i - j + j * ldab],
        }
    };
    match (trans.is_transposed(), uplo) {
        (false, Uplo::Upper) => {
            for j in (0..n).rev() {
                if !x[j * incx].is_zero() {
                    if !unit {
                        x[j * incx] = x[j * incx] / at(j, j);
                    }
                    let t = x[j * incx];
                    for i in j.saturating_sub(kd)..j {
                        let xi = x[i * incx];
                        x[i * incx] = xi - t * at(i, j);
                    }
                }
            }
        }
        (false, Uplo::Lower) => {
            for j in 0..n {
                if !x[j * incx].is_zero() {
                    if !unit {
                        x[j * incx] = x[j * incx] / at(j, j);
                    }
                    let t = x[j * incx];
                    for i in j + 1..(j + kd + 1).min(n) {
                        let xi = x[i * incx];
                        x[i * incx] = xi - t * at(i, j);
                    }
                }
            }
        }
        (true, Uplo::Upper) => {
            for j in 0..n {
                let mut t = x[j * incx];
                for i in j.saturating_sub(kd)..j {
                    t -= cj(conj, at(i, j)) * x[i * incx];
                }
                if !unit {
                    t = t / cj(conj, at(j, j));
                }
                x[j * incx] = t;
            }
        }
        (true, Uplo::Lower) => {
            for j in (0..n).rev() {
                let mut t = x[j * incx];
                for i in j + 1..(j + kd + 1).min(n) {
                    t -= cj(conj, at(i, j)) * x[i * incx];
                }
                if !unit {
                    t = t / cj(conj, at(j, j));
                }
                x[j * incx] = t;
            }
        }
    }
}

/// Symmetric/Hermitian band matrix-vector product (`xSBMV`/`xHBMV`);
/// set `conj = T::IS_COMPLEX` for the Hermitian variant.
#[allow(clippy::too_many_arguments)]
pub fn sbmv<T: Scalar>(
    conj: bool,
    uplo: Uplo,
    n: usize,
    kd: usize,
    alpha: T,
    a: &[T],
    ldab: usize,
    x: &[T],
    incx: usize,
    beta: T,
    y: &mut [T],
    incy: usize,
) {
    if beta != T::one() {
        for k in 0..n {
            y[k * incy] = if beta.is_zero() {
                T::zero()
            } else {
                beta * y[k * incy]
            };
        }
    }
    if alpha.is_zero() {
        return;
    }
    let at = |i: usize, j: usize| -> T {
        match uplo {
            Uplo::Upper => a[kd + i - j + j * ldab],
            Uplo::Lower => a[i - j + j * ldab],
        }
    };
    for j in 0..n {
        let t1 = alpha * x[j * incx];
        let mut t2 = T::zero();
        match uplo {
            Uplo::Upper => {
                for i in j.saturating_sub(kd)..j {
                    let aij = at(i, j);
                    y[i * incy] += t1 * aij;
                    t2 += cj(conj, aij) * x[i * incx];
                }
            }
            Uplo::Lower => {
                for i in j + 1..(j + kd + 1).min(n) {
                    let aij = at(i, j);
                    y[i * incy] += t1 * aij;
                    t2 += cj(conj, aij) * x[i * incx];
                }
            }
        }
        let d = at(j, j);
        let d = if conj { T::from_real(d.re()) } else { d };
        y[j * incy] += t1 * d + alpha * t2;
    }
}

/// Packed symmetric/Hermitian matrix-vector product (`xSPMV`/`xHPMV`);
/// set `conj = T::IS_COMPLEX` for the Hermitian variant.
pub fn spmv<T: Scalar>(
    conj: bool,
    uplo: Uplo,
    n: usize,
    alpha: T,
    ap: &[T],
    x: &[T],
    incx: usize,
    beta: T,
    y: &mut [T],
    incy: usize,
) {
    if beta != T::one() {
        for k in 0..n {
            y[k * incy] = if beta.is_zero() {
                T::zero()
            } else {
                beta * y[k * incy]
            };
        }
    }
    if alpha.is_zero() {
        return;
    }
    let idx = |i: usize, j: usize| -> usize {
        match uplo {
            Uplo::Upper => i + j * (j + 1) / 2,
            Uplo::Lower => i + j * (2 * n - j - 1) / 2,
        }
    };
    for j in 0..n {
        let t1 = alpha * x[j * incx];
        let mut t2 = T::zero();
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j),
            Uplo::Lower => (j + 1, n),
        };
        for i in lo..hi {
            let aij = ap[idx(i, j)];
            y[i * incy] += t1 * aij;
            t2 += cj(conj, aij) * x[i * incx];
        }
        let d = ap[idx(j, j)];
        let d = if conj { T::from_real(d.re()) } else { d };
        y[j * incy] += t1 * d + alpha * t2;
    }
}

/// Packed symmetric/Hermitian rank-2 update (`xSPR2`/`xHPR2`).
pub fn spr2<T: Scalar>(
    conj: bool,
    uplo: Uplo,
    n: usize,
    alpha: T,
    x: &[T],
    incx: usize,
    y: &[T],
    incy: usize,
    ap: &mut [T],
) {
    let idx = |i: usize, j: usize| -> usize {
        match uplo {
            Uplo::Upper => i + j * (j + 1) / 2,
            Uplo::Lower => i + j * (2 * n - j - 1) / 2,
        }
    };
    for j in 0..n {
        let t1 = alpha * cj(conj, y[j * incy]);
        let t2 = cj(conj, alpha * x[j * incx]);
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        for i in lo..hi {
            let upd = x[i * incx] * t1 + y[i * incy] * t2;
            let k = idx(i, j);
            ap[k] += upd;
            if conj && i == j {
                ap[k] = T::from_real(ap[k].re());
            }
        }
    }
}

/// Packed triangular matrix-vector product (`xTPMV`): `x := op(A)*x`.
pub fn tpmv<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    n: usize,
    ap: &[T],
    x: &mut [T],
    incx: usize,
) {
    let idx = |i: usize, j: usize| -> usize {
        match uplo {
            Uplo::Upper => i + j * (j + 1) / 2,
            Uplo::Lower => i + j * (2 * n - j - 1) / 2,
        }
    };
    let unit = diag == Diag::Unit;
    let conj = trans.is_conj();
    match (trans.is_transposed(), uplo) {
        (false, Uplo::Upper) => {
            for j in 0..n {
                let t = x[j * incx];
                for i in 0..j {
                    let xi = x[i * incx];
                    x[i * incx] = xi + t * ap[idx(i, j)];
                }
                if !unit {
                    x[j * incx] = t * ap[idx(j, j)];
                }
            }
        }
        (false, Uplo::Lower) => {
            for j in (0..n).rev() {
                let t = x[j * incx];
                for i in (j + 1..n).rev() {
                    let xi = x[i * incx];
                    x[i * incx] = xi + t * ap[idx(i, j)];
                }
                if !unit {
                    x[j * incx] = t * ap[idx(j, j)];
                }
            }
        }
        (true, Uplo::Upper) => {
            for j in (0..n).rev() {
                let mut t = x[j * incx];
                if !unit {
                    t = t * cj(conj, ap[idx(j, j)]);
                }
                for i in 0..j {
                    t += cj(conj, ap[idx(i, j)]) * x[i * incx];
                }
                x[j * incx] = t;
            }
        }
        (true, Uplo::Lower) => {
            for j in 0..n {
                let mut t = x[j * incx];
                if !unit {
                    t = t * cj(conj, ap[idx(j, j)]);
                }
                for i in j + 1..n {
                    t += cj(conj, ap[idx(i, j)]) * x[i * incx];
                }
                x[j * incx] = t;
            }
        }
    }
}

/// Packed triangular solve (`xTPSV`): `x := op(A)⁻¹ x`.
pub fn tpsv<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    n: usize,
    ap: &[T],
    x: &mut [T],
    incx: usize,
) {
    let idx = |i: usize, j: usize| -> usize {
        match uplo {
            Uplo::Upper => i + j * (j + 1) / 2,
            Uplo::Lower => i + j * (2 * n - j - 1) / 2,
        }
    };
    let unit = diag == Diag::Unit;
    let conj = trans.is_conj();
    match (trans.is_transposed(), uplo) {
        (false, Uplo::Upper) => {
            for j in (0..n).rev() {
                if !x[j * incx].is_zero() {
                    if !unit {
                        x[j * incx] = x[j * incx] / ap[idx(j, j)];
                    }
                    let t = x[j * incx];
                    for i in 0..j {
                        let xi = x[i * incx];
                        x[i * incx] = xi - t * ap[idx(i, j)];
                    }
                }
            }
        }
        (false, Uplo::Lower) => {
            for j in 0..n {
                if !x[j * incx].is_zero() {
                    if !unit {
                        x[j * incx] = x[j * incx] / ap[idx(j, j)];
                    }
                    let t = x[j * incx];
                    for i in j + 1..n {
                        let xi = x[i * incx];
                        x[i * incx] = xi - t * ap[idx(i, j)];
                    }
                }
            }
        }
        (true, Uplo::Upper) => {
            for j in 0..n {
                let mut t = x[j * incx];
                for i in 0..j {
                    t -= cj(conj, ap[idx(i, j)]) * x[i * incx];
                }
                if !unit {
                    t = t / cj(conj, ap[idx(j, j)]);
                }
                x[j * incx] = t;
            }
        }
        (true, Uplo::Lower) => {
            for j in (0..n).rev() {
                let mut t = x[j * incx];
                for i in j + 1..n {
                    t -= cj(conj, ap[idx(i, j)]) * x[i * incx];
                }
                if !unit {
                    t = t / cj(conj, ap[idx(j, j)]);
                }
                x[j * incx] = t;
            }
        }
    }
}
