//! Batched Level-3 BLAS — many independent products dispatched across
//! the work-stealing pool of [`la_core::batch`].
//!
//! The batch workload (BLASFEO, arXiv:1902.08115) is many independent
//! small-to-medium problems; looping over [`crate::gemm`] serially leaves
//! the pool idle, while spawning the striped path per product
//! oversubscribes it. [`gemm_batch`] threads the middle: one worker pool,
//! one product per job, each job inheriting the caller's scoped policies
//! and running with panic isolation and per-job ABFT fault scoping (a
//! corrupted product surfaces as *that item's* `INFO = -102`, never a
//! sibling's).

use la_core::batch::run_batch;
use la_core::{Scalar, Trans};

/// One `C := alpha·op(A)·op(B) + beta·C` product of a [`gemm_batch`]
/// call. Owns borrowed views only; the caller keeps ownership of the
/// buffers.
#[derive(Debug)]
pub struct GemmJob<'a, T> {
    /// Op applied to `A` (`op(A)` is `m × k`).
    pub transa: Trans,
    /// Op applied to `B` (`op(B)` is `k × n`).
    pub transb: Trans,
    /// Rows of `op(A)` and of `C`.
    pub m: usize,
    /// Columns of `op(B)` and of `C`.
    pub n: usize,
    /// Columns of `op(A)` / rows of `op(B)`.
    pub k: usize,
    /// Scale on the product.
    pub alpha: T,
    /// Left operand, column-major with leading dimension `lda`.
    pub a: &'a [T],
    /// Leading dimension of `a`.
    pub lda: usize,
    /// Right operand, column-major with leading dimension `ldb`.
    pub b: &'a [T],
    /// Leading dimension of `b`.
    pub ldb: usize,
    /// Scale on the existing `C`.
    pub beta: T,
    /// Output, column-major with leading dimension `ldc`; updated in
    /// place.
    pub c: &'a mut [T],
    /// Leading dimension of `c`.
    pub ldc: usize,
}

/// Validates one job's dimensions the way the LAPACK argument screen
/// would: returns the negated 1-based index of the first bad argument
/// (counting the [`GemmJob`] fields in declaration order), 0 when clean.
fn screen<T: Scalar>(j: &GemmJob<'_, T>) -> i32 {
    let (ar, ac) = match j.transa {
        Trans::No => (j.m, j.k),
        _ => (j.k, j.m),
    };
    let (br, bc) = match j.transb {
        Trans::No => (j.k, j.n),
        _ => (j.n, j.k),
    };
    if j.lda < ar.max(1) {
        return -8;
    }
    if j.a.len() + 1 < ac * j.lda + ar.min(1) {
        return -7;
    }
    if j.ldb < br.max(1) {
        return -10;
    }
    if j.b.len() + 1 < bc * j.ldb + br.min(1) {
        return -9;
    }
    if j.ldc < j.m.max(1) {
        return -13;
    }
    if j.c.len() + 1 < j.n * j.ldc + j.m.min(1) {
        return -12;
    }
    0
}

/// Runs every product of `jobs` across the work-stealing pool and returns
/// one `INFO` code per job, position-matched: `0` on success, a negated
/// argument index when the job's dimensions don't fit its buffers,
/// `-102` for an unrepaired soft fault detected in that job, `-103` when
/// the inherited cancel token tripped before the job ran, `-104` when the
/// job panicked (isolated — siblings are unaffected).
///
/// Each job runs the full [`crate::gemm`] path, so the scoped
/// [`la_core::tune`] / [`la_core::abft`] / [`la_core::except`] policies
/// of the calling thread govern every product, and per-worker thread
/// budgets are clamped so `workers × stripes` never exceeds the host.
pub fn gemm_batch<T: Scalar>(jobs: &mut [GemmJob<'_, T>]) -> Vec<i32> {
    run_batch(jobs, |_, j| {
        let bad = screen(j);
        if bad != 0 {
            return bad;
        }
        crate::gemm(
            j.transa, j.transb, j.m, j.n, j.k, j.alpha, j.a, j.lda, j.b, j.ldb, j.beta, j.c, j.ldc,
        );
        0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use la_core::tune;

    fn naive_gemm(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        for jj in 0..n {
            for ii in 0..m {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a[ii + kk * m] * b[kk + jj * k];
                }
                c[ii + jj * m] += s;
            }
        }
    }

    #[test]
    fn batch_matches_serial_products() {
        let sizes = [(3usize, 4usize, 5usize), (8, 8, 8), (1, 7, 2), (16, 3, 9)];
        let mk = |len: usize, seed: u64| -> Vec<f64> {
            let mut s = seed;
            (0..len)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
                .collect()
        };
        let a: Vec<Vec<f64>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &(m, _, k))| mk(m * k, i as u64 + 1))
            .collect();
        let b: Vec<Vec<f64>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &(_, n, k))| mk(k * n, i as u64 + 100))
            .collect();
        let mut c: Vec<Vec<f64>> = sizes.iter().map(|&(m, n, _)| vec![0.0; m * n]).collect();
        let mut want = c.clone();
        for (i, &(m, n, k)) in sizes.iter().enumerate() {
            naive_gemm(m, n, k, &a[i], &b[i], &mut want[i]);
        }
        let mut jobs: Vec<GemmJob<'_, f64>> = sizes
            .iter()
            .zip(a.iter().zip(b.iter().zip(c.iter_mut())))
            .map(|(&(m, n, k), (a, (b, c)))| GemmJob {
                transa: Trans::No,
                transb: Trans::No,
                m,
                n,
                k,
                alpha: 1.0,
                a,
                lda: m,
                b,
                ldb: k,
                beta: 1.0,
                c,
                ldc: m,
            })
            .collect();
        let cfg = tune::TuneConfig {
            max_threads: 3,
            oversubscribe: true,
            ..tune::TuneConfig::defaults()
        };
        let infos = tune::with(cfg, || gemm_batch(&mut jobs));
        assert_eq!(infos, vec![0; sizes.len()]);
        drop(jobs);
        for (i, (got, want)) in c.iter().zip(want.iter()).enumerate() {
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g - w).abs() <= 1e-12, "product {i} mismatch");
            }
        }
    }

    #[test]
    fn bad_dimensions_fail_only_their_job() {
        let a = [1.0f64; 4];
        let b = [1.0f64; 4];
        let mut c_ok = [0.0f64; 4];
        let mut c_short = [0.0f64; 2]; // too small for a 2×2 output
        let mut jobs = vec![
            GemmJob {
                transa: Trans::No,
                transb: Trans::No,
                m: 2,
                n: 2,
                k: 2,
                alpha: 1.0,
                a: &a,
                lda: 2,
                b: &b,
                ldb: 2,
                beta: 0.0,
                c: &mut c_ok,
                ldc: 2,
            },
            GemmJob {
                transa: Trans::No,
                transb: Trans::No,
                m: 2,
                n: 2,
                k: 2,
                alpha: 1.0,
                a: &a,
                lda: 2,
                b: &b,
                ldb: 2,
                beta: 0.0,
                c: &mut c_short,
                ldc: 2,
            },
        ];
        let infos = gemm_batch(&mut jobs);
        assert_eq!(infos[0], 0);
        assert_eq!(infos[1], -12);
        drop(jobs);
        assert_eq!(c_ok, [2.0; 4], "sibling job computed normally");
        assert_eq!(c_short, [0.0; 2], "bad job never touched its output");
    }
}
