//! f32-accumulation reroute for the software half-precision types.
//!
//! `F16`/`Bf16` (see `la_core::half`) are storage formats, not compute
//! formats: every arithmetic op round-trips through f32 in software, so
//! running the packed BLAS-3 loop nest natively on them would be both
//! slow (a conversion per flop) and inaccurate (each partial sum rounded
//! to an 8–11-bit significand — an O(k·eps_half) error the half-precision
//! literature works hard to avoid). Instead, the Level-3 entry points
//! consult [`Scalar::IS_HALF`] — a const the compiler folds per
//! instantiation — and reroute: widen the operands to f32 once, run the
//! full packed/striped/SIMD f32 machinery, and round the output back
//! once. One rounding on the way out instead of one per multiply-add,
//! and the half types ride the fast path for free.
//!
//! The widening is exact (every half value is an f32 value), so the
//! result equals "true f32 accumulation of half inputs" — the semantics
//! GPU tensor cores give f16 gemm, and the accuracy model the
//! mixed-precision refinement drivers assume for their lo-precision
//! factorizations.

use la_core::{RealScalar, Scalar};

/// Widens one half-precision scalar to f32 (exact). Only meaningful for
/// `T::IS_HALF` types — the `re().to_f64()` path is how a generic
/// context extracts the value without naming the concrete type.
#[inline(always)]
pub(crate) fn to_f32<T: Scalar>(x: T) -> f32 {
    debug_assert!(T::IS_HALF);
    x.re().to_f64() as f32
}

/// Widens a half-precision slice to a fresh f32 buffer (exact).
pub(crate) fn widen<T: Scalar>(src: &[T]) -> Vec<f32> {
    src.iter().map(|&x| to_f32(x)).collect()
}

/// Rounds an f32 buffer back into the half-precision slice (one rounding
/// per element — the only narrowing in the rerouted operation).
pub(crate) fn narrow<T: Scalar>(src: &[f32], dst: &mut [T]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = T::from_f64(s as f64);
    }
}
