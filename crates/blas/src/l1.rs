//! Level 1 BLAS: vector-vector operations.
//!
//! Signatures follow the Fortran convention (`n`, slice, stride), with
//! 0-based indexing and strictly positive strides. One generic function
//! replaces each S/D/C/Z quadruple; real and complex variants that differ
//! only by conjugation are split (`dotu`/`dotc`) exactly as in BLAS.

use la_core::{RealScalar, Scalar};

/// `y := a*x + y` (`xAXPY`).
pub fn axpy<T: Scalar>(n: usize, a: T, x: &[T], incx: usize, y: &mut [T], incy: usize) {
    if n == 0 || a.is_zero() {
        return;
    }
    if incx == 1 && incy == 1 {
        for (yi, &xi) in y[..n].iter_mut().zip(&x[..n]) {
            *yi += a * xi;
        }
    } else {
        let (mut ix, mut iy) = (0, 0);
        for _ in 0..n {
            y[iy] += a * x[ix];
            ix += incx;
            iy += incy;
        }
    }
}

/// `x := a*x` (`xSCAL`).
pub fn scal<T: Scalar>(n: usize, a: T, x: &mut [T], incx: usize) {
    if incx == 1 {
        for xi in &mut x[..n] {
            *xi *= a;
        }
    } else {
        let mut ix = 0;
        for _ in 0..n {
            x[ix] *= a;
            ix += incx;
        }
    }
}

/// `x := r*x` with a real scalar (`CSSCAL`/`ZDSCAL`; plain `xSCAL` for reals).
pub fn rscal<T: Scalar>(n: usize, r: T::Real, x: &mut [T], incx: usize) {
    if incx == 1 {
        for xi in &mut x[..n] {
            *xi = xi.mul_real(r);
        }
    } else {
        let mut ix = 0;
        for _ in 0..n {
            x[ix] = x[ix].mul_real(r);
            ix += incx;
        }
    }
}

/// `y := x` (`xCOPY`).
pub fn copy<T: Scalar>(n: usize, x: &[T], incx: usize, y: &mut [T], incy: usize) {
    if incx == 1 && incy == 1 {
        y[..n].copy_from_slice(&x[..n]);
    } else {
        let (mut ix, mut iy) = (0, 0);
        for _ in 0..n {
            y[iy] = x[ix];
            ix += incx;
            iy += incy;
        }
    }
}

/// Exchanges `x` and `y` (`xSWAP`).
pub fn swap<T: Scalar>(n: usize, x: &mut [T], incx: usize, y: &mut [T], incy: usize) {
    let (mut ix, mut iy) = (0, 0);
    for _ in 0..n {
        core::mem::swap(&mut x[ix], &mut y[iy]);
        ix += incx;
        iy += incy;
    }
}

/// Unconjugated dot product `xᵀ y` (`xDOT` / `xDOTU`).
pub fn dotu<T: Scalar>(n: usize, x: &[T], incx: usize, y: &[T], incy: usize) -> T {
    let mut s = T::zero();
    if incx == 1 && incy == 1 {
        for (&xi, &yi) in x[..n].iter().zip(&y[..n]) {
            s += xi * yi;
        }
    } else {
        let (mut ix, mut iy) = (0, 0);
        for _ in 0..n {
            s += x[ix] * y[iy];
            ix += incx;
            iy += incy;
        }
    }
    s
}

/// Conjugated dot product `xᴴ y` (`xDOT` / `xDOTC`).
pub fn dotc<T: Scalar>(n: usize, x: &[T], incx: usize, y: &[T], incy: usize) -> T {
    let mut s = T::zero();
    if incx == 1 && incy == 1 {
        for (&xi, &yi) in x[..n].iter().zip(&y[..n]) {
            s += xi.conj() * yi;
        }
    } else {
        let (mut ix, mut iy) = (0, 0);
        for _ in 0..n {
            s += x[ix].conj() * y[iy];
            ix += incx;
            iy += incy;
        }
    }
    s
}

/// Euclidean norm `‖x‖₂` (`xNRM2`), computed with the scaled accumulation
/// of `xLASSQ` so it neither overflows nor underflows prematurely.
pub fn nrm2<T: Scalar>(n: usize, x: &[T], incx: usize) -> T::Real {
    let (mut scale, mut ssq) = (T::Real::zero(), T::Real::one());
    lassq(n, x, incx, &mut scale, &mut ssq);
    scale * ssq.sqrt_r()
}

/// `xLASSQ`: updates `(scale, ssq)` so that
/// `scale² · ssq = old_scale² · old_ssq + Σ |x_i|²` without overflow.
///
/// Exception semantics follow Demmel et al. (arXiv:2207.09281): a NaN
/// element makes `ssq` NaN so the caller's `scale * sqrt(ssq)` is NaN; an
/// Inf element (with no NaN anywhere) makes the result `+Inf`. NaN wins
/// over Inf regardless of encounter order.
pub fn lassq<T: Scalar>(n: usize, x: &[T], incx: usize, scale: &mut T::Real, ssq: &mut T::Real) {
    let mut update = |v: T::Real| {
        let a = v.rabs();
        if a.is_nan() {
            // Poison the sum-of-squares; `scale` stays finite (or Inf),
            // and `scale * sqrt(NaN)` is NaN even for `scale == 0`.
            *ssq = T::Real::nan();
            return;
        }
        if !a.is_finite_r() {
            // ±Inf: the exact sum is +Inf unless a NaN was already seen.
            // `scale/Inf == 0` keeps later finite updates harmless.
            *scale = a;
            if !ssq.is_nan() {
                *ssq = T::Real::one();
            }
            return;
        }
        if a.is_zero() {
            return;
        }
        if *scale < a {
            let r = *scale / a;
            *ssq = T::Real::one() + *ssq * r * r;
            *scale = a;
        } else {
            let r = a / *scale;
            *ssq += r * r;
        }
    };
    let mut ix = 0;
    for _ in 0..n {
        let xi = x[ix];
        update(xi.re());
        if T::IS_COMPLEX {
            update(xi.im());
        }
        ix += incx;
    }
}

/// Sum of `abs1` moduli (`xASUM` / `xCASUM`): `Σ (|re| + |im|)`.
pub fn asum<T: Scalar>(n: usize, x: &[T], incx: usize) -> T::Real {
    let mut s = T::Real::zero();
    let mut ix = 0;
    for _ in 0..n {
        s += x[ix].abs1();
        ix += incx;
    }
    s
}

/// 0-based index of the first element with the largest `abs1` modulus
/// (`IxAMAX`, shifted to 0-based). Returns 0 when `n == 0`.
///
/// NaN semantics are first-NaN-wins, per Demmel et al. (arXiv:2207.09281):
/// the index of the first NaN element is returned, so LU-style pivoting on
/// a poisoned column selects the NaN instead of silently skipping it (the
/// historical `a > best` comparison ignores NaN entirely).
pub fn iamax<T: Scalar>(n: usize, x: &[T], incx: usize) -> usize {
    let mut best = T::Real::zero();
    let mut arg = 0usize;
    let mut ix = 0;
    for k in 0..n {
        let a = x[ix].abs1();
        if a.is_nan() {
            return k;
        }
        if a > best {
            best = a;
            arg = k;
        }
        ix += incx;
    }
    arg
}

/// Generates a real Givens rotation (`xROTG`, real form):
/// returns `(c, s, r)` with `[c s; -s c]ᵀ [a; b] = [r; 0]`.
pub fn rotg<R: RealScalar>(a: R, b: R) -> (R, R, R) {
    // The LAPACK xLARTG formulation: robust and produces c >= 0.
    if b.is_zero() {
        (R::one(), R::zero(), a)
    } else if a.is_zero() {
        (R::zero(), R::one(), b)
    } else {
        let r = a.hypot(b).sign(a);
        let c = a / r;
        let s = b / r;
        (c, s, r)
    }
}

/// Applies a real plane rotation to a pair of vectors (`xROT`):
/// `(x_i, y_i) := (c·x_i + s·y_i, −s·x_i + c·y_i)`.
pub fn rot<T: Scalar>(
    n: usize,
    x: &mut [T],
    incx: usize,
    y: &mut [T],
    incy: usize,
    c: T::Real,
    s: T::Real,
) {
    let (mut ix, mut iy) = (0, 0);
    for _ in 0..n {
        let xi = x[ix];
        let yi = y[iy];
        x[ix] = xi.mul_real(c) + yi.mul_real(s);
        y[iy] = yi.mul_real(c) - xi.mul_real(s);
        ix += incx;
        iy += incy;
    }
}

/// Conjugates a vector in place (`xLACGV`). No-op for real scalars.
pub fn lacgv<T: Scalar>(n: usize, x: &mut [T], incx: usize) {
    if !T::IS_COMPLEX {
        return;
    }
    let mut ix = 0;
    for _ in 0..n {
        x[ix] = x[ix].conj();
        ix += incx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use la_core::C64;

    #[test]
    fn axpy_strided() {
        let x = [1.0f64, 9.0, 2.0, 9.0, 3.0];
        let mut y = [10.0f64, 20.0, 30.0];
        axpy(3, 2.0, &x, 2, &mut y, 1);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn dot_variants() {
        let x = [C64::new(1.0, 2.0), C64::new(3.0, -1.0)];
        let y = [C64::new(2.0, 0.0), C64::new(0.0, 1.0)];
        let du = dotu(2, &x, 1, &y, 1);
        let dc = dotc(2, &x, 1, &y, 1);
        assert_eq!(
            du,
            C64::new(1.0, 2.0) * C64::new(2.0, 0.0) + C64::new(3.0, -1.0) * C64::new(0.0, 1.0)
        );
        assert_eq!(
            dc,
            C64::new(1.0, -2.0) * C64::new(2.0, 0.0) + C64::new(3.0, 1.0) * C64::new(0.0, 1.0)
        );
    }

    #[test]
    fn nrm2_is_scale_safe() {
        let big = 1.0e200;
        let x = [big, big, big, big];
        let r: f64 = nrm2(4, &x, 1);
        assert!((r - 2.0e200).abs() < 1e185);
        let tiny = 1.0e-200;
        let x = [tiny; 9];
        let r: f64 = nrm2(9, &x, 1);
        assert!((r - 3.0e-200).abs() < 1e-214);
    }

    #[test]
    fn nrm2_complex() {
        let x = [C64::new(3.0, 4.0)];
        assert!((nrm2(1, &x, 1) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn asum_iamax() {
        let x = [C64::new(1.0, -1.0), C64::new(0.0, 3.0), C64::new(-2.0, 0.0)];
        assert_eq!(asum(3, &x, 1), 7.0);
        assert_eq!(iamax(3, &x, 1), 1);
        assert_eq!(iamax(0, &x, 1), 0);
    }

    #[test]
    fn reductions_propagate_nan_and_inf_all_four_types() {
        use la_core::C32;

        fn check<T: Scalar>() {
            let nan = T::from_real(T::Real::nan());
            let inf = T::from_real(T::Real::one() / T::Real::zero());
            let fin = |v: f64| T::from_f64(v);

            // nrm2 / lassq: NaN anywhere → NaN, Inf (no NaN) → +Inf.
            let x = [fin(1.0), nan, fin(2.0)];
            assert!(nrm2(3, &x, 1).is_nan(), "{}: nrm2 lost a NaN", T::PREFIX);
            let x = [fin(1.0), inf, fin(2.0)];
            let r = nrm2(3, &x, 1);
            assert!(
                !r.is_finite_r() && !r.is_nan(),
                "{}: nrm2 of an Inf vector must be +Inf, got {r:?}",
                T::PREFIX
            );
            // NaN wins over Inf in either encounter order.
            assert!(nrm2(2, &[nan, inf], 1).is_nan());
            assert!(nrm2(2, &[inf, nan], 1).is_nan());
            // NaN first, before scale ever leaves zero.
            assert!(nrm2(2, &[nan, fin(5.0)], 1).is_nan());
            // Two Infs stay Inf.
            let r = nrm2(2, &[inf, inf], 1);
            assert!(!r.is_finite_r() && !r.is_nan());

            // asum propagates through plain accumulation.
            assert!(asum(3, &[fin(1.0), nan, fin(2.0)], 1).is_nan());
            assert!(!asum(2, &[fin(1.0), inf], 1).is_finite_r());

            // iamax: first NaN wins; Inf dominates finite values.
            assert_eq!(iamax(4, &[fin(1.0), nan, fin(9.0), nan], 1), 1);
            assert_eq!(iamax(3, &[fin(1.0), fin(9.0), inf], 1), 2);
        }
        check::<f32>();
        check::<f64>();
        check::<C32>();
        check::<C64>();

        // Complex: a NaN hiding in the imaginary part must also poison.
        let x = [C64::new(1.0, 0.0), C64::new(0.0, f64::NAN)];
        assert!(nrm2(2, &x, 1).is_nan());
        assert_eq!(iamax(2, &x, 1), 1);
    }

    #[test]
    fn rot_and_rotg_zero_second_component() {
        let (c, s, r) = rotg(3.0f64, 4.0);
        assert!((c * c + s * s - 1.0).abs() < 1e-15);
        assert!((r.abs() - 5.0).abs() < 1e-15);
        let mut x = [3.0f64];
        let mut y = [4.0f64];
        rot(1, &mut x, 1, &mut y, 1, c, s);
        assert!((x[0] - r).abs() < 1e-14);
        assert!(y[0].abs() < 1e-14);
    }

    #[test]
    fn swap_and_copy() {
        let mut x = [1.0f64, 2.0];
        let mut y = [3.0f64, 4.0];
        swap(2, &mut x, 1, &mut y, 1);
        assert_eq!(x, [3.0, 4.0]);
        let mut z = [0.0f64; 2];
        copy(2, &x, 1, &mut z, 1);
        assert_eq!(z, [3.0, 4.0]);
    }

    #[test]
    fn lacgv_conjugates_complex_only() {
        let mut x = [C64::new(1.0, 2.0)];
        lacgv(1, &mut x, 1);
        assert_eq!(x[0], C64::new(1.0, -2.0));
        let mut y = [5.0f64];
        lacgv(1, &mut y, 1);
        assert_eq!(y[0], 5.0);
    }
}
