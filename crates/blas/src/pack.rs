//! Panel packing for the packed BLAS-3 path.
//!
//! The Goto/BLASFEO decomposition copies each operand block *once* into a
//! contiguous, zero-padded buffer laid out exactly the way the microkernel
//! reads it:
//!
//! * **A panels** ([`pack_a`]): `op(A)(ic.., lc..)` as MR-row micro-panels,
//!   each interleaved by depth — `apack[panel·mr·kb + l·mr + r]` — so the
//!   kernel loads `mr` consecutive rows per depth step.
//! * **B panels** ([`pack_b`]): `op(B)(lc.., jc..)` as NR-column
//!   micro-panels interleaved the same way, with `alpha` folded in during
//!   the copy (one pass instead of a separate scale).
//!
//! Transposition and conjugation happen during the copy, so the kernel
//! never sees a stride or a flag; ragged edges are zero-padded to the full
//! tile, so the kernel never sees a partial tile either. Buffers come from
//! a per-thread arena ([`with_arena`]) reused across calls — packing
//! allocates only when a bigger panel than ever before is requested.

use std::cell::RefCell;

use la_core::{MatRef, Scalar, Trans};

/// Runs `f` with two per-thread scratch buffers able to hold `a_len` and
/// `b_len` elements of `T` — the packing arena. The buffers keep their
/// high-water capacity for the life of the thread, so steady-state packed
/// gemm does no allocation.
///
/// The backing store is `u64`-aligned raw bytes reinterpreted per call,
/// which lets one arena serve all four scalar types.
pub fn with_arena<T: Scalar, R>(
    a_len: usize,
    b_len: usize,
    f: impl FnOnce(&mut [T], &mut [T]) -> R,
) -> R {
    thread_local! {
        static ARENA: RefCell<(Vec<u64>, Vec<u64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    }
    ARENA.with(|cell| {
        let mut guard = cell.borrow_mut();
        let (buf_a, buf_b) = &mut *guard;
        let words = |len: usize| (len * std::mem::size_of::<T>()).div_ceil(8);
        if buf_a.len() < words(a_len) {
            buf_a.resize(words(a_len), 0);
        }
        if buf_b.len() < words(b_len) {
            buf_b.resize(words(b_len), 0);
        }
        // SAFETY: every `Scalar` type here (f32/f64/Complex<f32>/
        // Complex<f64>) is plain-old-data with alignment ≤ 8, any bit
        // pattern is a valid value, and the `u64` backing is initialized
        // (resize zero-fills). The two reborrows are disjoint.
        let a = unsafe { std::slice::from_raw_parts_mut(buf_a.as_mut_ptr() as *mut T, a_len) };
        let b = unsafe { std::slice::from_raw_parts_mut(buf_b.as_mut_ptr() as *mut T, b_len) };
        f(a, b)
    })
}

#[inline(always)]
fn cj<T: Scalar>(conj: bool, x: T) -> T {
    if conj {
        x.conj()
    } else {
        x
    }
}

/// Packs the `mb × kb` block of `op(A)` with top-left corner `(ic, lc)`
/// (coordinates in op(A) space) into `buf` as zero-padded `mr`-row
/// micro-panels. `a` is the *stored* matrix; `trans` says how `op` maps
/// into it. `buf` must hold `ceil(mb/mr)·mr·kb` elements.
pub fn pack_a<T: Scalar>(
    buf: &mut [T],
    a: MatRef<'_, T>,
    trans: Trans,
    ic: usize,
    mb: usize,
    lc: usize,
    kb: usize,
    mr: usize,
) {
    let conj = trans.is_conj();
    let mb_pad = mb.div_ceil(mr) * mr;
    match trans {
        Trans::No => {
            for is in (0..mb_pad).step_by(mr) {
                let base = is * kb;
                let rows = mr.min(mb - is);
                for l in 0..kb {
                    let col = a.col(lc + l);
                    let dst = &mut buf[base + l * mr..base + l * mr + mr];
                    dst[..rows].copy_from_slice(&col[ic + is..ic + is + rows]);
                    dst[rows..].fill(T::zero());
                }
            }
        }
        _ => {
            // op(A)(i, l) = conj?(a[l, i]): walk stored columns (one per
            // op-row) and scatter into the depth-interleaved layout.
            for is in (0..mb_pad).step_by(mr) {
                let base = is * kb;
                let rows = mr.min(mb - is);
                for r in 0..rows {
                    let col = a.col(ic + is + r);
                    for l in 0..kb {
                        buf[base + l * mr + r] = cj(conj, col[lc + l]);
                    }
                }
                for r in rows..mr {
                    for l in 0..kb {
                        buf[base + l * mr + r] = T::zero();
                    }
                }
            }
        }
    }
}

/// Packs the `kb × nb` block of `op(B)` with top-left corner `(lc, jc)`
/// (coordinates in op(B) space) into `buf` as zero-padded `nr`-column
/// micro-panels, scaling by `alpha` during the copy. `buf` must hold
/// `ceil(nb/nr)·nr·kb` elements.
#[allow(clippy::too_many_arguments)]
pub fn pack_b<T: Scalar>(
    buf: &mut [T],
    b: MatRef<'_, T>,
    trans: Trans,
    lc: usize,
    kb: usize,
    jc: usize,
    nb: usize,
    nr: usize,
    alpha: T,
) {
    let conj = trans.is_conj();
    let nb_pad = nb.div_ceil(nr) * nr;
    match trans {
        Trans::No => {
            for js in (0..nb_pad).step_by(nr) {
                let base = js * kb;
                let cols = nr.min(nb - js);
                for s in 0..cols {
                    let col = b.col(jc + js + s);
                    for l in 0..kb {
                        buf[base + l * nr + s] = alpha * col[lc + l];
                    }
                }
                for s in cols..nr {
                    for l in 0..kb {
                        buf[base + l * nr + s] = T::zero();
                    }
                }
            }
        }
        _ => {
            // op(B)(l, j) = conj?(b[j, l]): stored column lc+l holds the
            // whole depth step, contiguous in j.
            for js in (0..nb_pad).step_by(nr) {
                let base = js * kb;
                let cols = nr.min(nb - js);
                for l in 0..kb {
                    let col = b.col(lc + l);
                    let dst = &mut buf[base + l * nr..base + l * nr + nr];
                    for s in 0..cols {
                        dst[s] = alpha * cj(conj, col[jc + js + s]);
                    }
                    dst[cols..].fill(T::zero());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_reuses_capacity_and_serves_both_buffers() {
        with_arena::<f64, _>(8, 4, |a, b| {
            assert_eq!((a.len(), b.len()), (8, 4));
            a.fill(1.5);
            b.fill(-2.5);
            assert!(a.iter().all(|&x| x == 1.5));
        });
        // A second, larger request on the same thread still works (grow),
        // as does a different scalar type over the same backing store.
        with_arena::<la_core::C64, _>(16, 16, |a, b| {
            a[15] = la_core::C64::new(1.0, -1.0);
            b[0] = a[15];
            assert_eq!(b[0].im, -1.0);
        });
    }

    #[test]
    fn pack_a_layout_matches_op_a() {
        // 5×3 op(A) packed at mr=4: two panels, second padded.
        let m = 5;
        let k = 3;
        let data: Vec<f64> = (0..m * k).map(|x| x as f64).collect();
        let a = MatRef::new(&data, m, k, m);
        let mr = 4;
        let mut buf = vec![-1.0; m.div_ceil(mr) * mr * k];
        pack_a(&mut buf, a, Trans::No, 0, m, 0, k, mr);
        for l in 0..k {
            for i in 0..m {
                let panel = i / mr;
                let r = i % mr;
                assert_eq!(buf[panel * mr * k + l * mr + r], a.at(i, l));
            }
            // Padding rows are zero.
            assert_eq!(buf[mr * k + l * mr + 3], 0.0);
        }
        // Transposed pack of the same block: op(A) = stored(k×m)ᵀ.
        let stored: Vec<f64> = (0..k * m).map(|x| (x * 7 % 11) as f64).collect();
        let at = MatRef::new(&stored, k, m, k);
        pack_a(&mut buf, at, Trans::Trans, 0, m, 0, k, mr);
        for l in 0..k {
            for i in 0..m {
                let panel = i / mr;
                let r = i % mr;
                assert_eq!(buf[panel * mr * k + l * mr + r], at.at(l, i));
            }
        }
    }

    #[test]
    fn pack_b_folds_alpha_and_conjugates() {
        use la_core::C64;
        let k = 3;
        let n = 3;
        let data: Vec<C64> = (0..n * k)
            .map(|x| C64::new(x as f64, -(x as f64)))
            .collect();
        // Stored n×k, used as op(B) = Bᴴ (k×n).
        let b = MatRef::new(&data, n, k, n);
        let nr = 2;
        let alpha = C64::new(2.0, 0.0);
        let mut buf = vec![C64::new(9.0, 9.0); n.div_ceil(nr) * nr * k];
        pack_b(&mut buf, b, Trans::ConjTrans, 0, k, 0, n, nr, alpha);
        for l in 0..k {
            for j in 0..n {
                let panel = j / nr;
                let s = j % nr;
                assert_eq!(buf[panel * nr * k + l * nr + s], alpha * b.at(j, l).conj());
            }
            // Padded column of the last panel is zeroed.
            assert_eq!(buf[nr * k + l * nr + 1], C64::new(0.0, 0.0));
        }
    }
}
