//! Level 3 BLAS: matrix-matrix operations.
//!
//! `gemm` is the workhorse the LAPACK blocked algorithms lean on (the
//! paper's §1.1: "LAPACK addresses this problem by reorganizing the
//! algorithms to use block matrix operations ... in the innermost loops").
//! The implementation here uses three-level cache blocking with a
//! four-column unrolled inner kernel, and optionally splits the columns of
//! `C` across OS threads (`std::thread::scope`) for large products — the
//! same data-parallel decomposition a Rayon `par_chunks_mut` would express.
//!
//! Every parallel decision point (thread budget, flop threshold) reads the
//! runtime [`la_core::tune`] configuration, so callers can retune or force
//! the serial path per call tree via `tune::with` without recompiling.
//! `trsm`, `trmm`, `syrk`/`herk` and `symm` reuse the same column-striped
//! decomposition as `gemm`: disjoint column bands of the output, one scoped
//! thread each.

use la_core::{probe, tune, Diag, Scalar, Side, Trans, Uplo};

use crate::l1::axpy;

/// Estimated bytes touched by an operation that reads `reads` elements and
/// reads-and-writes `writes` output elements of `T`.
fn probe_bytes<T: Scalar>(reads: usize, writes: usize) -> u64 {
    ((reads + 2 * writes) * std::mem::size_of::<T>()) as u64
}

#[inline(always)]
fn cj<T: Scalar>(conj: bool, x: T) -> T {
    if conj {
        x.conj()
    } else {
        x
    }
}

/// Depth of the k-dimension cache block.
const KC: usize = 128;

/// Graceful degradation of a parallel BLAS-3 operation: snapshots the
/// output, attempts the parallel path, and — if any worker thread panics
/// (`std::thread::scope` re-raises the first worker panic on the caller)
/// — restores the snapshot and re-runs the operation on the serial path,
/// so the process survives and the result is the one the serial code
/// would have produced. The fallback is counted through
/// [`la_core::except::note_parallel_fallback`].
///
/// The snapshot is O(output), negligible against the O(m·n·k) flops that
/// put the operation above the parallel threshold in the first place.
fn with_serial_fallback<T: Scalar>(
    out: &mut [T],
    parallel: impl FnOnce(&mut [T]),
    serial: impl FnOnce(&mut [T]),
) {
    let snapshot = out.to_vec();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| parallel(&mut *out)));
    if attempt.is_err() {
        out.copy_from_slice(&snapshot);
        la_core::except::note_parallel_fallback();
        serial(out);
    }
}

/// Splits the columns of an `n`-column, leading-dimension-`ld` matrix into
/// `stripes` contiguous bands and runs `f(j0, w, band)` on scoped threads,
/// where `band` starts at column `j0` and holds `w` columns. The final
/// band takes whatever tail `data` has, so `data` need only cover
/// `ld*(n-1) + rows` elements, not a full `ld*n`.
fn stripe_cols<T: Scalar, F>(
    routine: &'static str,
    stripes: usize,
    n: usize,
    ld: usize,
    data: &mut [T],
    f: F,
) where
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let base = n / stripes;
    let extra = n % stripes;
    let fref = &f;
    #[cfg(not(feature = "fault-inject"))]
    let _ = routine;
    // Test-only fault injection (see `TuneConfig::fault_inject_par`): read
    // on the calling thread — scoped tune overrides do not cross into the
    // workers — and detonated inside the first spawned stripe so the panic
    // takes the real cross-thread propagation path. Compiled only into
    // builds with the `fault-inject` cargo feature; default builds never
    // read the flag.
    #[cfg(feature = "fault-inject")]
    let inject = tune::current().fault_inject_par;
    #[cfg(not(feature = "fault-inject"))]
    let inject = false;
    std::thread::scope(|s| {
        let mut rest = data;
        let mut j0 = 0usize;
        for t in 0..stripes {
            let w = base + usize::from(t < extra);
            if w == 0 {
                continue;
            }
            let take = if j0 + w >= n { rest.len() } else { ld * w };
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let boom = inject && t == 0;
            s.spawn(move || {
                if boom {
                    panic!("injected BLAS-3 stripe fault");
                }
                fref(j0, w, mine);
                // Silent-corruption injection (one-shot, armed through
                // `la_core::abft::inject`): flips one element of this
                // worker's finished band so the checksum layer above has
                // something real to detect.
                #[cfg(feature = "fault-inject")]
                la_core::abft::inject::maybe_corrupt(routine, t, &mut mine[0]);
            });
            j0 += w;
        }
    });
}

/// Dimension product for a parallel-threshold flop estimate. Computed in
/// `u128` so extreme dimensions (`m·n·k` overflows `usize` already at
/// ~2.6M per side on 64-bit) saturate instead of wrapping around to a
/// small value that would silently force the serial path.
fn flop_product(d0: usize, d1: usize, d2: usize) -> u128 {
    d0 as u128 * d1 as u128 * d2 as u128
}

/// Number of column stripes worth spawning for an `n`-column output under
/// the current tuning config, with `min_cols` columns per stripe as the
/// granularity floor. Returns 1 (serial) when the flop count is below the
/// configured parallel threshold or the thread budget is 1.
fn par_stripes(cfg: &tune::TuneConfig, flops: u128, n: usize, min_cols: usize) -> usize {
    let nt = cfg.threads();
    if nt <= 1 || flops < cfg.par_flops as u128 {
        return 1;
    }
    nt.min(n.div_ceil(min_cols.max(1))).max(1)
}

/// General matrix-matrix product (`xGEMM`):
/// `C := alpha*op(A)*op(B) + beta*C`,
/// where `op(A)` is `m × k` and `op(B)` is `k × n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let _probe = probe::span(
        probe::Layer::Blas,
        "gemm",
        probe::flops::gemm(m, n, k),
        probe_bytes::<T>(m * k + k * n, m * n),
    );
    if m == 0 || n == 0 {
        return;
    }
    // C := beta*C
    if beta != T::one() {
        for j in 0..n {
            let col = &mut c[j * ldc..j * ldc + m];
            if beta.is_zero() {
                col.fill(T::zero());
            } else {
                for ci in col {
                    *ci *= beta;
                }
            }
        }
    }
    if alpha.is_zero() || k == 0 {
        return;
    }

    let cfg = tune::current();
    let stripes = par_stripes(&cfg, flop_product(m, n, k), n, 8);
    probe::note_parallelism(stripes);
    // ABFT (see `crate::abft`): encode the column checksum after the
    // β-scaling, before the product accumulates.
    let check = crate::abft::active(&cfg, flop_product(m, n, k)).map(|pol| {
        crate::abft::gemm_encode(pol, transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc)
    });
    if stripes > 1 {
        with_serial_fallback(
            c,
            |c| {
                gemm_striped(
                    stripes, transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc,
                )
            },
            |c| gemm_serial(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc),
        );
    } else {
        gemm_serial(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
    if let Some(ck) = check {
        crate::abft::gemm_verify(
            ck, stripes, transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc,
        );
    }
}

/// Splits the columns of `C` into `stripes` independent sub-products run
/// on scoped threads (the data-parallel decomposition a Rayon
/// `par_chunks_mut` would express). Exposed at crate level so the split
/// bookkeeping stays testable on single-core machines.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_striped<T: Scalar>(
    stripes: usize,
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    stripe_cols("gemm", stripes, n, ldc, c, |j0, w, cb| {
        let boff = match transb {
            Trans::No => j0 * ldb,
            _ => j0,
        };
        gemm_serial(
            transa,
            transb,
            m,
            w,
            k,
            alpha,
            a,
            lda,
            &b[boff..],
            ldb,
            cb,
            ldc,
        );
    });
}

/// Serial gemm accumulating `alpha*op(A)*op(B)` into `C` (beta already
/// applied): small problems take a simple sweep; larger ones go through
/// the packed GEBP kernel below.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_serial<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if m * n * k >= 24 * 24 * 24 {
        gemm_gebp(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
        gemm_small(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
}

/// Straightforward sweep used for small products and as the reference
/// shape for the packed kernel.
#[allow(clippy::too_many_arguments)]
fn gemm_small<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    let cja = transa.is_conj();
    let cjb = transb.is_conj();
    let bel = |l: usize, j: usize| -> T {
        match transb {
            Trans::No => b[l + j * ldb],
            _ => cj(cjb, b[j + l * ldb]),
        }
    };
    match transa {
        Trans::No => {
            for j in 0..n {
                let ccol = &mut c[j * ldc..j * ldc + m];
                for l in 0..k {
                    let t = alpha * bel(l, j);
                    if !t.is_zero() {
                        axpy(m, t, &a[l * lda..l * lda + m], 1, ccol, 1);
                    }
                }
            }
        }
        _ => {
            for j in 0..n {
                for i in 0..m {
                    let acol = &a[i * lda..i * lda + k];
                    let mut s = T::zero();
                    match transb {
                        Trans::No => {
                            let bcol = &b[j * ldb..j * ldb + k];
                            if cja {
                                for l in 0..k {
                                    s += acol[l].conj() * bcol[l];
                                }
                            } else {
                                for l in 0..k {
                                    s += acol[l] * bcol[l];
                                }
                            }
                        }
                        _ => {
                            for l in 0..k {
                                s += cj(cja, acol[l]) * cj(cjb, b[j + l * ldb]);
                            }
                        }
                    }
                    c[i + j * ldc] += alpha * s;
                }
            }
        }
    }
}

/// Micro-tile height (rows of C held in registers).
const MR: usize = 4;
/// Micro-tile width (columns of C held in registers).
const NR: usize = 4;
/// Row-block of the packed A panel.
const MC: usize = 192;
/// Column-block of the packed B panel.
const NCB: usize = 96;

/// Packed GEBP gemm (Goto-style): op(A) blocks are packed into MR-row
/// micro-panels contiguous in `l`, op(B) into column stripes contiguous
/// in `l`, and a register-tiled MR×NR microkernel does the flops — this
/// is the "block matrix operations in the innermost loops" the paper's
/// §1.1 attributes LAPACK's portability-with-performance to.
#[allow(clippy::too_many_arguments)]
fn gemm_gebp<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    let cja = transa.is_conj();
    let cjb = transb.is_conj();
    // Element accessors for op(A) (i, l) and op(B) (l, j).
    let ael = |i: usize, l: usize| -> T {
        match transa {
            Trans::No => a[i + l * lda],
            _ => cj(cja, a[l + i * lda]),
        }
    };
    let bel = |l: usize, j: usize| -> T {
        match transb {
            Trans::No => b[l + j * ldb],
            _ => cj(cjb, b[j + l * ldb]),
        }
    };

    let mut apack = vec![T::zero(); MC.min(m).div_ceil(MR) * MR * KC.min(k)];
    let mut bpack = vec![T::zero(); NCB.min(n).div_ceil(NR) * NR * KC.min(k)];

    let mut jc = 0;
    while jc < n {
        let nb = NCB.min(n - jc);
        let nb_pad = nb.div_ceil(NR) * NR;
        let mut lc = 0;
        while lc < k {
            let kb = KC.min(k - lc);
            // Pack op(B)(lc..lc+kb, jc..jc+nb): stripe of NR columns,
            // interleaved per l: bpack[stripe][(l*NR + r)].
            for js in (0..nb_pad).step_by(NR) {
                let base = js * kb;
                for l in 0..kb {
                    for r in 0..NR {
                        let j = jc + js + r;
                        bpack[base + l * NR + r] = if js + r < nb {
                            alpha * bel(lc + l, j)
                        } else {
                            T::zero()
                        };
                    }
                }
            }
            let mut ic = 0;
            while ic < m {
                let mb = MC.min(m - ic);
                let mb_pad = mb.div_ceil(MR) * MR;
                // Pack op(A)(ic..ic+mb, lc..lc+kb): micro-panels of MR
                // rows, interleaved per l: apack[panel][(l*MR + r)].
                for is in (0..mb_pad).step_by(MR) {
                    let base = is * kb;
                    match (transa, is + MR <= mb) {
                        (Trans::No, true) => {
                            // Contiguous gather from MR consecutive rows.
                            for l in 0..kb {
                                let src = ic + is + (lc + l) * lda;
                                apack[base + l * MR..base + l * MR + MR]
                                    .copy_from_slice(&a[src..src + MR]);
                            }
                        }
                        _ => {
                            for l in 0..kb {
                                for r in 0..MR {
                                    apack[base + l * MR + r] = if is + r < mb {
                                        ael(ic + is + r, lc + l)
                                    } else {
                                        T::zero()
                                    };
                                }
                            }
                        }
                    }
                }
                // Macro-kernel: register-tiled micro-multiplications.
                for js in (0..nb_pad).step_by(NR) {
                    let bbase = js * kb;
                    for is in (0..mb_pad).step_by(MR) {
                        let abase = is * kb;
                        // MR×NR accumulator in registers.
                        let mut acc = [[T::zero(); NR]; MR];
                        let ap = &apack[abase..abase + kb * MR];
                        let bp = &bpack[bbase..bbase + kb * NR];
                        for l in 0..kb {
                            let av = &ap[l * MR..l * MR + MR];
                            let bv = &bp[l * NR..l * NR + NR];
                            for (r, &ar) in av.iter().enumerate() {
                                for (s, &bs) in bv.iter().enumerate() {
                                    acc[r][s] += ar * bs;
                                }
                            }
                        }
                        // Write back the valid part of the tile.
                        let rows = MR.min(mb - is);
                        let cols = NR.min(nb.saturating_sub(js));
                        for (s, accr) in (0..cols).map(|s| (s, &acc)) {
                            let col = &mut c[(jc + js + s) * ldc + ic + is
                                ..(jc + js + s) * ldc + ic + is + rows];
                            for (r, cv) in col.iter_mut().enumerate() {
                                *cv += accr[r][s];
                            }
                        }
                    }
                }
                ic += mb;
            }
            lc += kb;
        }
        jc += nb;
    }
}

/// Symmetric (`xSYMM`, `conj = false`) or Hermitian (`xHEMM`,
/// `conj = true`) matrix-matrix product:
/// `C := alpha*A*B + beta*C` (`Side::Left`) or `alpha*B*A + beta*C`
/// (`Side::Right`), with `A` symmetric/Hermitian, one triangle stored.
#[allow(clippy::too_many_arguments)]
pub fn symm<T: Scalar>(
    conj: bool,
    side: Side,
    uplo: Uplo,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    // Large symm routes through gemm below; the gemm span nests under this
    // one, so counter totals are inclusive along the call tree.
    let _probe = probe::span(
        probe::Layer::Blas,
        "symm",
        probe::flops::symm(side, m, n),
        probe_bytes::<T>(na * (na + 1) / 2 + m * n, m * n),
    );
    // Full element of the symmetric A from its stored triangle.
    let ael = |i: usize, j: usize| -> T {
        let stored_upper = uplo == Uplo::Upper;
        if (i <= j) == stored_upper || i == j {
            let v = a[i + j * lda];
            if conj && i == j {
                T::from_real(v.re())
            } else {
                v
            }
        } else {
            cj(conj, a[j + i * lda])
        }
    };
    debug_assert!(na <= lda.max(na));
    // Large products: materialise the full symmetric A (O(na²) memory,
    // negligible against the O(m·n·na) flops) and route through gemm so the
    // heavy lifting gets the packed kernel and the tune-driven column
    // striping. Same crossover as gemm's own small-product cutoff.
    if m * n * na >= 24 * 24 * 24 {
        let mut afull = vec![T::zero(); na * na];
        for j in 0..na {
            for i in 0..na {
                afull[i + j * na] = ael(i, j);
            }
        }
        match side {
            Side::Left => gemm(
                Trans::No,
                Trans::No,
                m,
                n,
                m,
                alpha,
                &afull,
                na,
                b,
                ldb,
                beta,
                c,
                ldc,
            ),
            Side::Right => gemm(
                Trans::No,
                Trans::No,
                m,
                n,
                n,
                alpha,
                b,
                ldb,
                &afull,
                na,
                beta,
                c,
                ldc,
            ),
        }
        return;
    }
    for j in 0..n {
        for i in 0..m {
            let mut s = T::zero();
            match side {
                Side::Left => {
                    for l in 0..m {
                        s += ael(i, l) * b[l + j * ldb];
                    }
                }
                Side::Right => {
                    for l in 0..n {
                        s += b[i + l * ldb] * ael(l, j);
                    }
                }
            }
            let cc = &mut c[i + j * ldc];
            *cc = if beta.is_zero() {
                T::zero()
            } else {
                beta * *cc
            } + alpha * s;
        }
    }
}

/// Symmetric rank-k update (`xSYRK`):
/// `C := alpha*op(A)*op(A)ᵀ + beta*C`, updating only the `uplo` triangle.
/// `trans = No` uses `A` (`n × k`); `trans = Trans` uses `Aᵀ`.
#[allow(clippy::too_many_arguments)]
pub fn syrk<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let _probe = probe::span(
        probe::Layer::Blas,
        "syrk",
        probe::flops::syrk(n, k),
        probe_bytes::<T>(n * k, n * (n + 1) / 2),
    );
    syrk_impl(false, uplo, trans, n, k, alpha, a, lda, beta, c, ldc)
}

/// Hermitian rank-k update (`xHERK`):
/// `C := alpha*op(A)*op(A)ᴴ + beta*C` with real `alpha`, `beta`
/// represented as `T` (imaginary parts must be zero).
#[allow(clippy::too_many_arguments)]
pub fn herk<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T::Real,
    a: &[T],
    lda: usize,
    beta: T::Real,
    c: &mut [T],
    ldc: usize,
) {
    let _probe = probe::span(
        probe::Layer::Blas,
        "herk",
        probe::flops::syrk(n, k),
        probe_bytes::<T>(n * k, n * (n + 1) / 2),
    );
    syrk_impl(
        T::IS_COMPLEX,
        uplo,
        trans,
        n,
        k,
        T::from_real(alpha),
        a,
        lda,
        T::from_real(beta),
        c,
        ldc,
    )
}

#[allow(clippy::too_many_arguments)]
fn syrk_impl<T: Scalar>(
    conj: bool,
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    if alpha.is_zero() || k == 0 {
        for j in 0..n {
            let (lo, hi) = match uplo {
                Uplo::Upper => (0, j + 1),
                Uplo::Lower => (j, n),
            };
            for i in lo..hi {
                let cc = &mut c[i + j * ldc];
                *cc = if beta.is_zero() {
                    T::zero()
                } else {
                    beta * *cc
                };
            }
            if conj {
                let cc = &mut c[j + j * ldc];
                *cc = T::from_real(cc.re());
            }
        }
        return;
    }
    // The update decomposes into NB-column blocks touching disjoint column
    // bands of C, so the blocks distribute across scoped threads with no
    // synchronisation. Round-robin dealing balances the triangle's uneven
    // per-block rectangle sizes. Serial and parallel paths run the exact
    // same per-block code, in particular the same summation orders.
    let cfg = tune::current();
    let workers = par_stripes(&cfg, flop_product(n, n, k) / 2, n, SYRK_NB).min(n.div_ceil(SYRK_NB));
    probe::note_parallelism(workers);
    // ABFT: encode over the stored triangle before the update runs (the
    // blocks β-scale internally, so the snapshot is the pristine input).
    let check = crate::abft::active(&cfg, flop_product(n, n, k) / 2).map(|pol| {
        crate::abft::syrk_encode(pol, conj, uplo, trans, n, k, alpha, a, lda, beta, c, ldc)
    });
    if workers > 1 {
        with_serial_fallback(
            c,
            |c| {
                syrk_blocks_par(
                    workers, conj, uplo, trans, n, k, alpha, a, lda, beta, c, ldc,
                )
            },
            |c| syrk_blocks_serial(conj, uplo, trans, n, k, alpha, a, lda, beta, c, ldc),
        );
    } else {
        syrk_blocks_serial(conj, uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
    }
    if let Some(ck) = check {
        crate::abft::syrk_verify(ck, conj, uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
    }
}

/// Column-block width of the rank-k update decomposition.
pub(crate) const SYRK_NB: usize = 48;

/// The parallel rank-k path: NB-column blocks dealt round-robin to
/// `workers` scoped threads. Carries the same fault-injection hook as
/// [`stripe_cols`] so the degradation path is testable here too.
#[allow(clippy::too_many_arguments)]
fn syrk_blocks_par<T: Scalar>(
    workers: usize,
    conj: bool,
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let mut blocks: Vec<(usize, usize, &mut [T])> = Vec::new();
    let mut rest = c;
    let mut j0 = 0usize;
    while j0 < n {
        let jb = SYRK_NB.min(n - j0);
        let take = if j0 + jb >= n { rest.len() } else { ldc * jb };
        let (mine, tail) = rest.split_at_mut(take);
        rest = tail;
        blocks.push((j0, jb, mine));
        j0 += jb;
    }
    let mut work: Vec<Vec<(usize, usize, &mut [T])>> = Vec::new();
    work.resize_with(workers, Vec::new);
    for (idx, blk) in blocks.into_iter().enumerate() {
        work[idx % workers].push(blk);
    }
    // Gated like the `stripe_cols` hook: `fault-inject` builds only.
    #[cfg(feature = "fault-inject")]
    let inject = tune::current().fault_inject_par;
    #[cfg(not(feature = "fault-inject"))]
    let inject = false;
    std::thread::scope(|s| {
        for (t, list) in work.into_iter().enumerate() {
            let boom = inject && t == 0;
            s.spawn(move || {
                if boom {
                    panic!("injected BLAS-3 stripe fault");
                }
                for (j0, jb, cb) in list {
                    syrk_block(
                        conj, uplo, trans, n, k, alpha, a, lda, beta, j0, jb, cb, ldc,
                    );
                    // One-shot silent-corruption hook: hits the diagonal
                    // element of this block (updated under either uplo),
                    // addressed by block index so tests can aim at it.
                    #[cfg(feature = "fault-inject")]
                    la_core::abft::inject::maybe_corrupt("syrk", j0 / SYRK_NB, &mut cb[j0]);
                }
            });
        }
    });
}

/// The serial rank-k path: the same NB-column blocks, in order.
#[allow(clippy::too_many_arguments)]
fn syrk_blocks_serial<T: Scalar>(
    conj: bool,
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let mut j0 = 0usize;
    while j0 < n {
        let jb = SYRK_NB.min(n - j0);
        syrk_block(
            conj,
            uplo,
            trans,
            n,
            k,
            alpha,
            a,
            lda,
            beta,
            j0,
            jb,
            &mut c[j0 * ldc..],
            ldc,
        );
        j0 += jb;
    }
}

/// One NB-column block of a rank-k update: β-scales its triangle portion,
/// accumulates the diagonal triangle with scalar loops, and routes the
/// off-diagonal rectangle through the serial gemm kernel (the parallelism
/// lives one level up, across blocks). `cb` is the column band of `C`
/// starting at column `j0`: block-local column indexing, global rows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn syrk_block<T: Scalar>(
    conj: bool,
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    j0: usize,
    jb: usize,
    cb: &mut [T],
    ldc: usize,
) {
    for j in j0..j0 + jb {
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        for i in lo..hi {
            let cc = &mut cb[i + (j - j0) * ldc];
            *cc = if beta.is_zero() {
                T::zero()
            } else {
                beta * *cc
            };
        }
    }
    // op(A) element (i, l) for the small diagonal triangle.
    let ael = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => a[i + l * lda],
            _ => a[l + i * lda],
        }
    };
    // Diagonal triangle block (jb × jb): scalar loops.
    for j in j0..j0 + jb {
        let (lo, hi) = match uplo {
            Uplo::Upper => (j0, j + 1),
            Uplo::Lower => (j, j0 + jb),
        };
        for i in lo..hi {
            let mut s = T::zero();
            if conj {
                if trans == Trans::No {
                    for l in 0..k {
                        s += ael(i, l) * ael(j, l).conj();
                    }
                } else {
                    for l in 0..k {
                        s += ael(i, l).conj() * ael(j, l);
                    }
                }
            } else {
                for l in 0..k {
                    s += ael(i, l) * ael(j, l);
                }
            }
            let cc = &mut cb[i + (j - j0) * ldc];
            *cc += alpha * s;
            if conj && i == j {
                *cc = T::from_real(cc.re());
            }
        }
    }
    // Off-diagonal rectangle: gemm does the heavy lifting.
    let (ta, tb) = match (trans, conj) {
        (Trans::No, false) => (Trans::No, Trans::Trans),
        (Trans::No, true) => (Trans::No, Trans::ConjTrans),
        (_, false) => (Trans::Trans, Trans::No),
        (_, true) => (Trans::ConjTrans, Trans::No),
    };
    // op(A) column block starting at row/column j0 of the stored A.
    let a_cols: &[T] = match trans {
        Trans::No => &a[j0..],
        _ => &a[j0 * lda..],
    };
    match uplo {
        Uplo::Lower => {
            // Rows j0+jb..n, columns j0..j0+jb.
            let m_rect = n - j0 - jb;
            if m_rect > 0 {
                let a_rows: &[T] = match trans {
                    Trans::No => &a[j0 + jb..],
                    _ => &a[(j0 + jb) * lda..],
                };
                gemm_serial(
                    ta,
                    tb,
                    m_rect,
                    jb,
                    k,
                    alpha,
                    a_rows,
                    lda,
                    a_cols,
                    lda,
                    &mut cb[j0 + jb..],
                    ldc,
                );
            }
        }
        Uplo::Upper => {
            // Rows 0..j0, columns j0..j0+jb.
            if j0 > 0 {
                gemm_serial(ta, tb, j0, jb, k, alpha, a, lda, a_cols, lda, cb, ldc);
            }
        }
    }
}

/// Symmetric rank-2k update (`xSYR2K`):
/// `C := alpha*op(A)*op(B)ᵀ + alpha*op(B)*op(A)ᵀ + beta*C`.
#[allow(clippy::too_many_arguments)]
pub fn syr2k<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let _probe = probe::span(
        probe::Layer::Blas,
        "syr2k",
        probe::flops::syr2k(n, k),
        probe_bytes::<T>(2 * n * k, n * (n + 1) / 2),
    );
    let ael = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => a[i + l * lda],
            _ => a[l + i * lda],
        }
    };
    let bel = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => b[i + l * ldb],
            _ => b[l + i * ldb],
        }
    };
    for j in 0..n {
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        for i in lo..hi {
            let mut s = T::zero();
            for l in 0..k {
                s += ael(i, l) * bel(j, l) + bel(i, l) * ael(j, l);
            }
            let cc = &mut c[i + j * ldc];
            *cc = if beta.is_zero() {
                T::zero()
            } else {
                beta * *cc
            } + alpha * s;
        }
    }
}

/// Triangular matrix-matrix product (`xTRMM`):
/// `B := alpha*op(A)*B` (`Side::Left`) or `B := alpha*B*op(A)`
/// (`Side::Right`), with `A` triangular.
#[allow(clippy::too_many_arguments)]
pub fn trmm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    let _probe = probe::span(
        probe::Layer::Blas,
        "trmm",
        probe::flops::trmm(side, m, n),
        probe_bytes::<T>(na * (na + 1) / 2, m * n),
    );
    trmm_impl(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
}

/// Uninstrumented trmm body: the `Side::Right` path recurses into the
/// left-side algorithm through this entry so the recursion does not open
/// a second probe span for the same user-level call.
#[allow(clippy::too_many_arguments)]
fn trmm_impl<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    match side {
        Side::Left => {
            // Columns of B are independent: op(A)·b_j per column, so the
            // columns stripe across threads exactly like gemm's C (the
            // per-column arithmetic is identical either way).
            let cfg = tune::current();
            let stripes = par_stripes(&cfg, flop_product(m, m, n) / 2, n, 4);
            probe::note_parallelism(stripes);
            // ABFT: encode from the unscaled input (the column kernel
            // applies alpha itself).
            let check = crate::abft::active(&cfg, flop_product(m, m, n) / 2).map(|pol| {
                crate::abft::trmm_encode(pol, uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
            });
            if stripes > 1 {
                with_serial_fallback(
                    b,
                    |b| {
                        stripe_cols("trmm", stripes, n, ldb, b, |_, w, bb| {
                            trmm_left_cols(uplo, trans, diag, m, w, alpha, a, lda, bb, ldb);
                        })
                    },
                    |b| trmm_left_cols(uplo, trans, diag, m, n, alpha, a, lda, b, ldb),
                );
            } else {
                trmm_left_cols(uplo, trans, diag, m, n, alpha, a, lda, b, ldb);
            }
            if let Some(ck) = check {
                crate::abft::trmm_verify(
                    ck, stripes, uplo, trans, diag, m, n, alpha, a, lda, b, ldb,
                );
            }
        }
        Side::Right => {
            if m >= 12 {
                // Cache-friendly path: materialise Bᵀ, apply from the left
                // (unit-stride trmv columns), transpose back. The O(mn)
                // copies are negligible against the O(mn²) compute.
                let cjb = trans == Trans::ConjTrans;
                let mut bt = vec![T::zero(); n * m];
                for j in 0..n {
                    for i in 0..m {
                        let v = b[i + j * ldb];
                        bt[j + i * n] = if cjb { v.conj() } else { v };
                    }
                }
                let ltr = match trans {
                    Trans::No => Trans::Trans,
                    _ => Trans::No,
                };
                trmm_impl(
                    Side::Left,
                    uplo,
                    ltr,
                    diag,
                    n,
                    m,
                    T::one(),
                    a,
                    lda,
                    &mut bt,
                    n,
                );
                for j in 0..n {
                    for i in 0..m {
                        let v = bt[j + i * n];
                        let v = if cjb { v.conj() } else { v };
                        b[i + j * ldb] = if alpha == T::one() { v } else { alpha * v };
                    }
                }
                return;
            }
            // Row i of B: rᵀ := op(A)ᵀ rᵀ. The stored triangle of A is
            // unchanged; only the trans flag composes with the transpose.
            for i in 0..m {
                let row = &mut b[i..];
                match trans {
                    Trans::No => crate::l2::trmv(uplo, Trans::Trans, diag, n, a, lda, row, ldb),
                    Trans::Trans => crate::l2::trmv(uplo, Trans::No, diag, n, a, lda, row, ldb),
                    Trans::ConjTrans => {
                        // r := r Aᴴ  ⇔  rᵀ := Ā rᵀ = conj(A · conj(rᵀ)).
                        crate::l1::lacgv(n, row, ldb);
                        crate::l2::trmv(uplo, Trans::No, diag, n, a, lda, row, ldb);
                        crate::l1::lacgv(n, row, ldb);
                    }
                }
                if alpha != T::one() {
                    let mut idx = 0;
                    for _ in 0..n {
                        row[idx] *= alpha;
                        idx += ldb;
                    }
                }
            }
        }
    }
}

/// Serial left-side trmm over `n` columns of `b`: `b_j := alpha·op(A)·b_j`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn trmm_left_cols<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    for j in 0..n {
        let col = &mut b[j * ldb..j * ldb + m];
        crate::l2::trmv(uplo, trans, diag, m, a, lda, col, 1);
        if alpha != T::one() {
            for x in col {
                *x *= alpha;
            }
        }
    }
}

/// Triangular solve with multiple right-hand sides (`xTRSM`):
/// `op(A)·X = alpha·B` (`Side::Left`) or `X·op(A) = alpha·B`
/// (`Side::Right`); `X` overwrites `B`.
#[allow(clippy::too_many_arguments)]
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    let _probe = probe::span(
        probe::Layer::Blas,
        "trsm",
        probe::flops::trsm(side, m, n),
        probe_bytes::<T>(na * (na + 1) / 2, m * n),
    );
    trsm_impl(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
}

/// Uninstrumented trsm body: the `Side::Right` path recurses into the
/// left-side algorithm through this entry so the recursion does not open
/// a second probe span for the same user-level call.
#[allow(clippy::too_many_arguments)]
fn trsm_impl<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    if alpha != T::one() {
        for j in 0..n {
            for x in &mut b[j * ldb..j * ldb + m] {
                *x = if alpha.is_zero() {
                    T::zero()
                } else {
                    alpha * *x
                };
            }
        }
    }
    if m == 0 || n == 0 {
        return;
    }
    match side {
        Side::Left => {
            // Each right-hand-side column solves independently against the
            // same triangle, so the columns of B stripe across threads the
            // same way gemm stripes C (per-column arithmetic identical to
            // the serial path).
            let cfg = tune::current();
            let stripes = par_stripes(&cfg, flop_product(m, m, n) / 2, n, 4);
            probe::note_parallelism(stripes);
            // ABFT: alpha is already folded into B, so the column sums of
            // B as it stands are the expected values of (eᵀop(A))·X.
            let check = crate::abft::active(&cfg, flop_product(m, m, n) / 2)
                .map(|pol| crate::abft::trsm_encode(pol, uplo, trans, diag, m, n, a, lda, b, ldb));
            if stripes > 1 {
                with_serial_fallback(
                    b,
                    |b| {
                        stripe_cols("trsm", stripes, n, ldb, b, |_, w, bb| {
                            trsm_left_cols(uplo, trans, diag, m, w, a, lda, bb, ldb);
                        })
                    },
                    |b| trsm_left_cols(uplo, trans, diag, m, n, a, lda, b, ldb),
                );
            } else {
                trsm_left_cols(uplo, trans, diag, m, n, a, lda, b, ldb);
            }
            if let Some(ck) = check {
                crate::abft::trsm_verify(ck, stripes, uplo, trans, diag, m, n, a, lda, b, ldb);
            }
        }
        Side::Right => {
            if m >= 12 {
                // Transpose, left-solve (unit-stride columns), transpose
                // back — the same trick as trmm's right side.
                let cjb = trans == Trans::ConjTrans;
                let mut bt = vec![T::zero(); n * m];
                for j in 0..n {
                    for i in 0..m {
                        let v = b[i + j * ldb];
                        bt[j + i * n] = if cjb { v.conj() } else { v };
                    }
                }
                let ltr = match trans {
                    Trans::No => Trans::Trans,
                    _ => Trans::No,
                };
                trsm_impl(
                    Side::Left,
                    uplo,
                    ltr,
                    diag,
                    n,
                    m,
                    T::one(),
                    a,
                    lda,
                    &mut bt,
                    n,
                );
                for j in 0..n {
                    for i in 0..m {
                        let v = bt[j + i * n];
                        b[i + j * ldb] = if cjb { v.conj() } else { v };
                    }
                }
                return;
            }
            // X·op(A) = B  ⇔  op(A)ᵀ·Xᵀ = Bᵀ: solve along the rows of B,
            // composing the transposes (triangle of A is unchanged).
            for i in 0..m {
                let row = &mut b[i..];
                match trans {
                    Trans::No => crate::l2::trsv(uplo, Trans::Trans, diag, n, a, lda, row, ldb),
                    Trans::Trans => crate::l2::trsv(uplo, Trans::No, diag, n, a, lda, row, ldb),
                    Trans::ConjTrans => {
                        // X Aᴴ = B  ⇔  Ā Xᵀ = Bᵀ  ⇔  A conj(Xᵀ) = conj(Bᵀ).
                        crate::l1::lacgv(n, row, ldb);
                        crate::l2::trsv(uplo, Trans::No, diag, n, a, lda, row, ldb);
                        crate::l1::lacgv(n, row, ldb);
                    }
                }
            }
        }
    }
}

/// Serial left-side triangular solve over `n` columns of `b` (alpha
/// already applied): `op(A)·x_j = b_j` per column.
#[allow(clippy::too_many_arguments)]
pub(crate) fn trsm_left_cols<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    let unit = diag == Diag::Unit;
    match (trans.is_transposed(), uplo) {
        (false, Uplo::Lower) => {
            // Forward substitution, vectorized across all right-hand
            // sides: for each pivot k, update rows k+1.. of every column.
            for k in 0..m {
                let akk = a[k + k * lda];
                for j in 0..n {
                    let col = &mut b[j * ldb..j * ldb + m];
                    if !unit {
                        col[k] = col[k] / akk;
                    }
                    let t = col[k];
                    if !t.is_zero() {
                        for (i, ci) in col.iter_mut().enumerate().take(m).skip(k + 1) {
                            *ci -= t * a[i + k * lda];
                        }
                    }
                }
            }
        }
        (false, Uplo::Upper) => {
            for k in (0..m).rev() {
                let akk = a[k + k * lda];
                for j in 0..n {
                    let col = &mut b[j * ldb..j * ldb + m];
                    if !unit {
                        col[k] = col[k] / akk;
                    }
                    let t = col[k];
                    if !t.is_zero() {
                        for (i, ci) in col.iter_mut().enumerate().take(k) {
                            *ci -= t * a[i + k * lda];
                        }
                    }
                }
            }
        }
        (true, _) => {
            // op(A)ᵀ or op(A)ᴴ solve, column by column.
            for j in 0..n {
                let col = &mut b[j * ldb..j * ldb + m];
                crate::l2::trsv(uplo, trans, diag, m, a, lda, col, 1);
            }
        }
    }
}

#[cfg(test)]
mod striped_tests {
    use super::*;

    #[test]
    fn flop_estimates_do_not_wrap_at_extreme_dims() {
        // m·n·k in bare usize wraps already at ~2.6M per side on 64-bit;
        // a wrapped estimate would land below par_flops and silently
        // force the serial path. The u128 product must keep such sizes
        // above any realistic threshold.
        let huge = 1usize << 22; // (2^22)^3 = 2^66 > usize::MAX
        let p = flop_product(huge, huge, huge);
        assert_eq!(p, 1u128 << 66);
        assert!(p > usize::MAX as u128);
        // The wrapped usize computation demonstrates the old failure:
        assert_eq!(huge.wrapping_mul(huge).wrapping_mul(huge), 0);

        // And par_stripes still parallelises at those extremes (multi-
        // thread config, default threshold) instead of reporting 1.
        let cfg = tune::TuneConfig {
            max_threads: 4,
            ..tune::TuneConfig::defaults()
        };
        assert_eq!(
            par_stripes(&cfg, flop_product(huge, huge, huge), huge, 8),
            4
        );
        // Small products still honour the threshold.
        assert_eq!(par_stripes(&cfg, flop_product(8, 8, 8), 8, 8), 1);
    }

    #[test]
    fn striped_split_matches_serial() {
        // Exercises the thread-stripe bookkeeping even on one core.
        let (m, n, k) = (13usize, 23usize, 9usize);
        let a: Vec<f64> = (0..m * k).map(|x| (x % 17) as f64 - 8.0).collect();
        let b: Vec<f64> = (0..k * n).map(|x| (x % 13) as f64 - 6.0).collect();
        for &tb in &[Trans::No, Trans::Trans] {
            let bb: Vec<f64> = if tb == Trans::No {
                b.clone()
            } else {
                // n × k layout for the transposed operand.
                let mut t = vec![0.0; n * k];
                for j in 0..n {
                    for l in 0..k {
                        t[j + l * n] = b[l + j * k];
                    }
                }
                t
            };
            let ldb = if tb == Trans::No { k } else { n };
            let mut c1 = vec![0.0f64; m * n];
            gemm_serial(Trans::No, tb, m, n, k, 1.0, &a, m, &bb, ldb, &mut c1, m);
            for stripes in [2usize, 3, 5] {
                let mut c2 = vec![0.0f64; m * n];
                gemm_striped(
                    stripes,
                    Trans::No,
                    tb,
                    m,
                    n,
                    k,
                    1.0,
                    &a,
                    m,
                    &bb,
                    ldb,
                    &mut c2,
                    m,
                );
                for idx in 0..m * n {
                    assert!(
                        (c1[idx] - c2[idx]).abs() < 1e-12,
                        "{tb:?} stripes={stripes} at {idx}"
                    );
                }
            }
        }
    }
}
