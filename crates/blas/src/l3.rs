//! Level 3 BLAS: matrix-matrix operations.
//!
//! `gemm` is the workhorse the LAPACK blocked algorithms lean on (the
//! paper's §1.1: "LAPACK addresses this problem by reorganizing the
//! algorithms to use block matrix operations ... in the innermost loops").
//! The implementation is a BLASFEO-style packed path: operand panels are
//! copied once into contiguous zero-padded buffers ([`crate::pack`]) and a
//! register-tiled microkernel ([`crate::kernel`]) does the flops, with the
//! MC/KC/NC cache blocking and the kernel choice read from the runtime
//! [`la_core::tune`] configuration. Large products additionally split the
//! columns of `C` across OS threads (`std::thread::scope`) — the same
//! data-parallel decomposition a Rayon `par_chunks_mut` would express.
//!
//! Every decision point (thread budget, flop threshold, kernel, blocking)
//! reads [`la_core::tune`] on the *calling* thread and travels down into
//! the workers as a resolved [`PackedPlan`], so callers can retune or
//! force paths per call tree via `tune::with` without recompiling.
//! `trsm`, `trmm`, `syrk`/`herk` and `symm` reuse the same column-striped
//! decomposition as `gemm` and route their inner updates through the same
//! packed serial gemm, so the microkernel carries the flops of the blocked
//! factorizations above as well.
//!
//! Internally the whole call chain — striping, packing, the macro-kernel,
//! the ABFT checksum passes — passes typed [`MatRef`]/[`MatMut`] views
//! instead of raw `(&[T], lda, offset)` triples; the public signatures
//! keep the Fortran-style slice interface.

use la_core::{probe, tune, Diag, MatMut, MatRef, Scalar, Side, Trans, Uplo};

use crate::kernel::{self, PackedPlan};
use crate::l1::axpy;
use crate::pack;

/// Estimated bytes touched by an operation that reads `reads` elements and
/// reads-and-writes `writes` output elements of `T`.
fn probe_bytes<T: Scalar>(reads: usize, writes: usize) -> u64 {
    ((reads + 2 * writes) * std::mem::size_of::<T>()) as u64
}

#[inline(always)]
fn cj<T: Scalar>(conj: bool, x: T) -> T {
    if conj {
        x.conj()
    } else {
        x
    }
}

/// Graceful degradation of a parallel BLAS-3 operation: snapshots the
/// output, attempts the parallel path, and — if any worker thread panics
/// (`std::thread::scope` re-raises the first worker panic on the caller)
/// — restores the snapshot and re-runs the operation on the serial path,
/// so the process survives and the result is the one the serial code
/// would have produced. The fallback is counted through
/// [`la_core::except::note_parallel_fallback`].
///
/// The snapshot is O(output), negligible against the O(m·n·k) flops that
/// put the operation above the parallel threshold in the first place.
fn with_serial_fallback<T: Scalar>(
    out: &mut [T],
    parallel: impl FnOnce(&mut [T]),
    serial: impl FnOnce(&mut [T]),
) {
    let snapshot = out.to_vec();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| parallel(&mut *out)));
    if attempt.is_err() {
        out.copy_from_slice(&snapshot);
        la_core::except::note_parallel_fallback();
        serial(out);
    }
}

/// Splits the columns of `c` into `stripes` contiguous bands and runs
/// `f(j0, band)` on scoped threads, where `band` starts at column `j0`.
/// [`MatMut::split_at_col`] hands each worker a disjoint view, so the
/// split needs no manual length bookkeeping (the final band may be
/// unpadded, per the view contract).
fn stripe_cols<T: Scalar, F>(routine: &'static str, stripes: usize, c: MatMut<'_, T>, f: F)
where
    F: Fn(usize, MatMut<'_, T>) + Sync,
{
    let n = c.ncols();
    let base = n / stripes;
    let extra = n % stripes;
    let fref = &f;
    #[cfg(not(feature = "fault-inject"))]
    let _ = routine;
    // Test-only fault injection (see `TuneConfig::fault_inject_par`): read
    // on the calling thread — scoped tune overrides do not cross into the
    // workers — and detonated inside the first spawned stripe so the panic
    // takes the real cross-thread propagation path. Compiled only into
    // builds with the `fault-inject` cargo feature; default builds never
    // read the flag.
    #[cfg(feature = "fault-inject")]
    let inject = tune::current().fault_inject_par;
    #[cfg(not(feature = "fault-inject"))]
    let inject = false;
    std::thread::scope(|s| {
        let mut rest = c;
        let mut j0 = 0usize;
        for t in 0..stripes {
            let w = base + usize::from(t < extra);
            if w == 0 {
                continue;
            }
            let (mine, tail) = rest.split_at_col(w);
            rest = tail;
            let boom = inject && t == 0;
            s.spawn(move || {
                let mut mine = mine;
                if boom {
                    panic!("injected BLAS-3 stripe fault");
                }
                fref(j0, mine.rb());
                // Silent-corruption injection (one-shot, armed through
                // `la_core::abft::inject`): flips one element of this
                // worker's finished band so the checksum layer above has
                // something real to detect.
                #[cfg(feature = "fault-inject")]
                la_core::abft::inject::maybe_corrupt(routine, t, &mut mine.as_mut_slice()[0]);
                #[cfg(not(feature = "fault-inject"))]
                let _ = &mut mine;
            });
            j0 += w;
        }
    });
}

/// Dimension product for a parallel-threshold flop estimate. Computed in
/// `u128` so extreme dimensions (`m·n·k` overflows `usize` already at
/// ~2.6M per side on 64-bit) saturate instead of wrapping around to a
/// small value that would silently force the serial path.
fn flop_product(d0: usize, d1: usize, d2: usize) -> u128 {
    d0 as u128 * d1 as u128 * d2 as u128
}

/// Number of column stripes worth spawning for an `n`-column output under
/// the current tuning config, with `min_cols` columns per stripe as the
/// granularity floor. Returns 1 (serial) when the flop count is below the
/// configured parallel threshold or the thread budget is 1.
fn par_stripes(cfg: &tune::TuneConfig, flops: u128, n: usize, min_cols: usize) -> usize {
    let nt = cfg.threads();
    if nt <= 1 || flops < cfg.par_flops as u128 {
        return 1;
    }
    nt.min(n.div_ceil(min_cols.max(1))).max(1)
}

/// Depth (`k`) extent of op(A) given its stored view.
fn op_k<T: Scalar>(transa: Trans, a: &MatRef<'_, T>) -> usize {
    match transa {
        Trans::No => a.ncols(),
        _ => a.nrows(),
    }
}

/// General matrix-matrix product (`xGEMM`):
/// `C := alpha*op(A)*op(B) + beta*C`,
/// where `op(A)` is `m × k` and `op(B)` is `k × n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    // Software half types: widen once, run the packed f32 machinery
    // (32-bit accumulation), round C back once. See `crate::halfp`.
    if T::IS_HALF {
        let af = crate::halfp::widen(a);
        let bf = crate::halfp::widen(b);
        let mut cf = crate::halfp::widen(c);
        gemm(
            transa,
            transb,
            m,
            n,
            k,
            crate::halfp::to_f32(alpha),
            &af,
            lda,
            &bf,
            ldb,
            crate::halfp::to_f32(beta),
            &mut cf,
            ldc,
        );
        crate::halfp::narrow(&cf, c);
        return;
    }
    let _probe = probe::span(
        probe::Layer::Blas,
        "gemm",
        probe::flops::gemm(m, n, k),
        probe_bytes::<T>(m * k + k * n, m * n),
    );
    if m == 0 || n == 0 {
        return;
    }
    // C := beta*C
    if beta != T::one() {
        for j in 0..n {
            let col = &mut c[j * ldc..j * ldc + m];
            if beta.is_zero() {
                col.fill(T::zero());
            } else {
                for ci in col {
                    *ci *= beta;
                }
            }
        }
    }
    if alpha.is_zero() || k == 0 {
        return;
    }

    let cfg = tune::current();
    let plan = PackedPlan::<T>::from_cfg(&cfg);
    let stripes = par_stripes(&cfg, flop_product(m, n, k), n, 8);
    probe::note_parallelism(stripes);
    probe::note_kernel(if !plan.force && m * n * k < SMALL_CROSSOVER {
        "small"
    } else {
        plan.kern.name()
    });
    let (ar, ac) = if transa == Trans::No { (m, k) } else { (k, m) };
    let (br, bc) = if transb == Trans::No { (k, n) } else { (n, k) };
    let av = MatRef::new(a, ar, ac, lda);
    let bv = MatRef::new(b, br, bc, ldb);
    // ABFT (see `crate::abft`): encode the column checksum after the
    // β-scaling, before the product accumulates.
    let check = crate::abft::active(&cfg, flop_product(m, n, k)).map(|pol| {
        crate::abft::gemm_encode(
            pol,
            transa,
            transb,
            alpha,
            av,
            bv,
            MatRef::new(c, m, n, ldc),
        )
    });
    if stripes > 1 {
        with_serial_fallback(
            c,
            |c| {
                gemm_striped(
                    stripes,
                    &plan,
                    transa,
                    transb,
                    alpha,
                    av,
                    bv,
                    MatMut::new(c, m, n, ldc),
                )
            },
            |c| {
                gemm_serial(
                    &plan,
                    transa,
                    transb,
                    alpha,
                    av,
                    bv,
                    MatMut::new(c, m, n, ldc),
                )
            },
        );
    } else {
        gemm_serial(
            &plan,
            transa,
            transb,
            alpha,
            av,
            bv,
            MatMut::new(c, m, n, ldc),
        );
    }
    if let Some(ck) = check {
        crate::abft::gemm_verify(
            ck,
            stripes,
            &plan,
            transa,
            transb,
            alpha,
            av,
            bv,
            MatMut::new(c, m, n, ldc),
        );
    }
}

/// Splits the columns of `C` into `stripes` independent sub-products run
/// on scoped threads (the data-parallel decomposition a Rayon
/// `par_chunks_mut` would express). Exposed at crate level so the split
/// bookkeeping stays testable on single-core machines.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_striped<T: Scalar>(
    stripes: usize,
    plan: &PackedPlan<T>,
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
) {
    let k = op_k(transa, &a);
    stripe_cols("gemm", stripes, c, |j0, cb| {
        let w = cb.ncols();
        let bsub = match transb {
            Trans::No => b.subview(0, j0, k, w),
            _ => b.subview(j0, 0, w, k),
        };
        gemm_serial(plan, transa, transb, alpha, a, bsub, cb);
    });
}

/// Products below this `m·n·k` run the unpacked sweep under an `Auto`
/// kernel selection (packing overhead dominates); an explicit kernel
/// selection forces the packed path at every size.
const SMALL_CROSSOVER: usize = 24 * 24 * 24;

/// Serial gemm accumulating `alpha*op(A)*op(B)` into `C` (beta already
/// applied): small problems take a simple sweep; larger ones — or any
/// problem under a forced kernel choice — go through the packed
/// microkernel path.
pub(crate) fn gemm_serial<T: Scalar>(
    plan: &PackedPlan<T>,
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    let k = op_k(transa, &a);
    if m == 0 || n == 0 || k == 0 || alpha.is_zero() {
        return;
    }
    if plan.force || m * n * k >= SMALL_CROSSOVER {
        gemm_packed(plan, transa, transb, alpha, a, b, c);
    } else {
        gemm_small(transa, transb, alpha, a, b, c);
    }
}

/// Straightforward sweep used for small products, where packing overhead
/// would dominate.
fn gemm_small<T: Scalar>(
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    mut c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    let k = op_k(transa, &a);
    let cja = transa.is_conj();
    let cjb = transb.is_conj();
    let bel = |l: usize, j: usize| -> T {
        match transb {
            Trans::No => b.at(l, j),
            _ => cj(cjb, b.at(j, l)),
        }
    };
    match transa {
        Trans::No => {
            for j in 0..n {
                let ccol = c.col_mut(j);
                for l in 0..k {
                    let t = alpha * bel(l, j);
                    if !t.is_zero() {
                        axpy(m, t, a.col(l), 1, ccol, 1);
                    }
                }
            }
        }
        _ => {
            for j in 0..n {
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = T::zero();
                    match transb {
                        Trans::No => {
                            let bcol = b.col(j);
                            if cja {
                                for l in 0..k {
                                    s += acol[l].conj() * bcol[l];
                                }
                            } else {
                                for l in 0..k {
                                    s += acol[l] * bcol[l];
                                }
                            }
                        }
                        _ => {
                            for l in 0..k {
                                s += cj(cja, acol[l]) * cj(cjb, b.at(j, l));
                            }
                        }
                    }
                    *c.at_mut(i, j) += alpha * s;
                }
            }
        }
    }
}

/// Packed gemm (Goto/BLASFEO GEBP): op(B) panels of `KC×NC` and op(A)
/// blocks of `MC×KC` are packed once into the thread-local arena, and the
/// plan's microkernel computes full MR×NR register tiles; ragged edges
/// are zero-padded in the panels and masked at write-back, so every
/// kernel invocation is a full tile and results are deterministic for a
/// given plan.
fn gemm_packed<T: Scalar>(
    plan: &PackedPlan<T>,
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    mut c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    let k = op_k(transa, &a);
    let kern = plan.kern;
    let (mr, nr) = (kern.mr(), kern.nr());
    let (mc, kc, nc) = (plan.mc, plan.kc, plan.nc);
    let a_cap = mc.min(m).div_ceil(mr) * mr * kc.min(k);
    let b_cap = nc.min(n).div_ceil(nr) * nr * kc.min(k);
    pack::with_arena::<T, _>(a_cap, b_cap, |apack, bpack| {
        let mut acc = [T::zero(); kernel::MAX_TILE];
        let acc = &mut acc[..mr * nr];
        let mut jc = 0;
        while jc < n {
            let nb = nc.min(n - jc);
            let nb_pad = nb.div_ceil(nr) * nr;
            let mut lc = 0;
            while lc < k {
                let kb = kc.min(k - lc);
                pack::pack_b(
                    &mut bpack[..nb_pad * kb],
                    b,
                    transb,
                    lc,
                    kb,
                    jc,
                    nb,
                    nr,
                    alpha,
                );
                let mut ic = 0;
                while ic < m {
                    let mb = mc.min(m - ic);
                    let mb_pad = mb.div_ceil(mr) * mr;
                    pack::pack_a(&mut apack[..mb_pad * kb], a, transa, ic, mb, lc, kb, mr);
                    for js in (0..nb_pad).step_by(nr) {
                        let bp = &bpack[js * kb..js * kb + kb * nr];
                        let cols = nr.min(nb - js);
                        for is in (0..mb_pad).step_by(mr) {
                            let ap = &apack[is * kb..is * kb + kb * mr];
                            kern.tile(kb, ap, bp, acc);
                            // Masked write-back of the valid tile part.
                            let rows = mr.min(mb - is);
                            for s in 0..cols {
                                let col = c.col_mut(jc + js + s);
                                let col = &mut col[ic + is..ic + is + rows];
                                for (r, cv) in col.iter_mut().enumerate() {
                                    *cv += acc[r + s * mr];
                                }
                            }
                        }
                    }
                    ic += mb;
                }
                lc += kb;
            }
            jc += nb;
        }
    });
}

/// Symmetric (`xSYMM`, `conj = false`) or Hermitian (`xHEMM`,
/// `conj = true`) matrix-matrix product:
/// `C := alpha*A*B + beta*C` (`Side::Left`) or `alpha*B*A + beta*C`
/// (`Side::Right`), with `A` symmetric/Hermitian, one triangle stored.
#[allow(clippy::too_many_arguments)]
pub fn symm<T: Scalar>(
    conj: bool,
    side: Side,
    uplo: Uplo,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    // Large symm routes through gemm below; the gemm span nests under this
    // one, so counter totals are inclusive along the call tree.
    let _probe = probe::span(
        probe::Layer::Blas,
        "symm",
        probe::flops::symm(side, m, n),
        probe_bytes::<T>(na * (na + 1) / 2 + m * n, m * n),
    );
    // Full element of the symmetric A from its stored triangle.
    let ael = |i: usize, j: usize| -> T {
        let stored_upper = uplo == Uplo::Upper;
        if (i <= j) == stored_upper || i == j {
            let v = a[i + j * lda];
            if conj && i == j {
                T::from_real(v.re())
            } else {
                v
            }
        } else {
            cj(conj, a[j + i * lda])
        }
    };
    debug_assert!(na <= lda.max(na));
    // Large products: materialise the full symmetric A (O(na²) memory,
    // negligible against the O(m·n·na) flops) and route through gemm so the
    // heavy lifting gets the packed kernel and the tune-driven column
    // striping. Same crossover as gemm's own small-product cutoff.
    if m * n * na >= SMALL_CROSSOVER {
        let mut afull = vec![T::zero(); na * na];
        for j in 0..na {
            for i in 0..na {
                afull[i + j * na] = ael(i, j);
            }
        }
        match side {
            Side::Left => gemm(
                Trans::No,
                Trans::No,
                m,
                n,
                m,
                alpha,
                &afull,
                na,
                b,
                ldb,
                beta,
                c,
                ldc,
            ),
            Side::Right => gemm(
                Trans::No,
                Trans::No,
                m,
                n,
                n,
                alpha,
                b,
                ldb,
                &afull,
                na,
                beta,
                c,
                ldc,
            ),
        }
        return;
    }
    for j in 0..n {
        for i in 0..m {
            let mut s = T::zero();
            match side {
                Side::Left => {
                    for l in 0..m {
                        s += ael(i, l) * b[l + j * ldb];
                    }
                }
                Side::Right => {
                    for l in 0..n {
                        s += b[i + l * ldb] * ael(l, j);
                    }
                }
            }
            let cc = &mut c[i + j * ldc];
            *cc = if beta.is_zero() {
                T::zero()
            } else {
                beta * *cc
            } + alpha * s;
        }
    }
}

/// Symmetric rank-k update (`xSYRK`):
/// `C := alpha*op(A)*op(A)ᵀ + beta*C`, updating only the `uplo` triangle.
/// `trans = No` uses `A` (`n × k`); `trans = Trans` uses `Aᵀ`.
#[allow(clippy::too_many_arguments)]
pub fn syrk<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    // Software half types reroute through f32 (see `crate::halfp`).
    if T::IS_HALF {
        let af = crate::halfp::widen(a);
        let mut cf = crate::halfp::widen(c);
        syrk(
            uplo,
            trans,
            n,
            k,
            crate::halfp::to_f32(alpha),
            &af,
            lda,
            crate::halfp::to_f32(beta),
            &mut cf,
            ldc,
        );
        crate::halfp::narrow(&cf, c);
        return;
    }
    let _probe = probe::span(
        probe::Layer::Blas,
        "syrk",
        probe::flops::syrk(n, k),
        probe_bytes::<T>(n * k, n * (n + 1) / 2),
    );
    syrk_impl(false, uplo, trans, n, k, alpha, a, lda, beta, c, ldc)
}

/// Hermitian rank-k update (`xHERK`):
/// `C := alpha*op(A)*op(A)ᴴ + beta*C` with real `alpha`, `beta`
/// represented as `T` (imaginary parts must be zero).
#[allow(clippy::too_many_arguments)]
pub fn herk<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T::Real,
    a: &[T],
    lda: usize,
    beta: T::Real,
    c: &mut [T],
    ldc: usize,
) {
    let _probe = probe::span(
        probe::Layer::Blas,
        "herk",
        probe::flops::syrk(n, k),
        probe_bytes::<T>(n * k, n * (n + 1) / 2),
    );
    syrk_impl(
        T::IS_COMPLEX,
        uplo,
        trans,
        n,
        k,
        T::from_real(alpha),
        a,
        lda,
        T::from_real(beta),
        c,
        ldc,
    )
}

#[allow(clippy::too_many_arguments)]
fn syrk_impl<T: Scalar>(
    conj: bool,
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    if alpha.is_zero() || k == 0 {
        for j in 0..n {
            let (lo, hi) = match uplo {
                Uplo::Upper => (0, j + 1),
                Uplo::Lower => (j, n),
            };
            for i in lo..hi {
                let cc = &mut c[i + j * ldc];
                *cc = if beta.is_zero() {
                    T::zero()
                } else {
                    beta * *cc
                };
            }
            if conj {
                let cc = &mut c[j + j * ldc];
                *cc = T::from_real(cc.re());
            }
        }
        return;
    }
    // The update decomposes into NB-column blocks touching disjoint column
    // bands of C, so the blocks distribute across scoped threads with no
    // synchronisation. Round-robin dealing balances the triangle's uneven
    // per-block rectangle sizes. Serial and parallel paths run the exact
    // same per-block code, in particular the same summation orders.
    let cfg = tune::current();
    let plan = PackedPlan::<T>::from_cfg(&cfg);
    let workers = par_stripes(&cfg, flop_product(n, n, k) / 2, n, SYRK_NB).min(n.div_ceil(SYRK_NB));
    probe::note_parallelism(workers);
    probe::note_kernel(plan.kern.name());
    let (ar, ac) = if trans == Trans::No { (n, k) } else { (k, n) };
    let av = MatRef::new(a, ar, ac, lda);
    // ABFT: encode over the stored triangle before the update runs (the
    // blocks β-scale internally, so the snapshot is the pristine input).
    let check = crate::abft::active(&cfg, flop_product(n, n, k) / 2).map(|pol| {
        crate::abft::syrk_encode(
            pol,
            conj,
            uplo,
            trans,
            k,
            alpha,
            av,
            beta,
            MatRef::new(c, n, n, ldc),
        )
    });
    if workers > 1 {
        with_serial_fallback(
            c,
            |c| {
                syrk_blocks_par(
                    workers,
                    &plan,
                    conj,
                    uplo,
                    trans,
                    n,
                    k,
                    alpha,
                    av,
                    beta,
                    MatMut::new(c, n, n, ldc),
                )
            },
            |c| {
                syrk_blocks_serial(
                    &plan,
                    conj,
                    uplo,
                    trans,
                    n,
                    k,
                    alpha,
                    av,
                    beta,
                    MatMut::new(c, n, n, ldc),
                )
            },
        );
    } else {
        syrk_blocks_serial(
            &plan,
            conj,
            uplo,
            trans,
            n,
            k,
            alpha,
            av,
            beta,
            MatMut::new(c, n, n, ldc),
        );
    }
    if let Some(ck) = check {
        crate::abft::syrk_verify(
            ck,
            &plan,
            conj,
            uplo,
            trans,
            k,
            alpha,
            av,
            beta,
            MatMut::new(c, n, n, ldc),
        );
    }
}

/// Column-block width of the rank-k update decomposition.
pub(crate) const SYRK_NB: usize = 48;

/// The parallel rank-k path: NB-column blocks dealt round-robin to
/// `workers` scoped threads. Carries the same fault-injection hook as
/// [`stripe_cols`] so the degradation path is testable here too.
#[allow(clippy::too_many_arguments)]
fn syrk_blocks_par<T: Scalar>(
    workers: usize,
    plan: &PackedPlan<T>,
    conj: bool,
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
) {
    let mut blocks: Vec<(usize, usize, MatMut<'_, T>)> = Vec::new();
    let mut rest = c;
    let mut j0 = 0usize;
    while j0 < n {
        let jb = SYRK_NB.min(n - j0);
        let (mine, tail) = rest.split_at_col(jb);
        rest = tail;
        blocks.push((j0, jb, mine));
        j0 += jb;
    }
    let mut work: Vec<Vec<(usize, usize, MatMut<'_, T>)>> = Vec::new();
    work.resize_with(workers, Vec::new);
    for (idx, blk) in blocks.into_iter().enumerate() {
        work[idx % workers].push(blk);
    }
    // Gated like the `stripe_cols` hook: `fault-inject` builds only.
    #[cfg(feature = "fault-inject")]
    let inject = tune::current().fault_inject_par;
    #[cfg(not(feature = "fault-inject"))]
    let inject = false;
    std::thread::scope(|s| {
        for (t, list) in work.into_iter().enumerate() {
            let boom = inject && t == 0;
            s.spawn(move || {
                if boom {
                    panic!("injected BLAS-3 stripe fault");
                }
                for (j0, jb, mut cb) in list {
                    syrk_block(plan, conj, uplo, trans, k, alpha, a, beta, j0, jb, cb.rb());
                    // One-shot silent-corruption hook: hits the diagonal
                    // element of this block (updated under either uplo),
                    // addressed by block index so tests can aim at it.
                    #[cfg(feature = "fault-inject")]
                    la_core::abft::inject::maybe_corrupt(
                        "syrk",
                        j0 / SYRK_NB,
                        &mut cb.as_mut_slice()[j0],
                    );
                    #[cfg(not(feature = "fault-inject"))]
                    let _ = (jb, &mut cb);
                }
            });
        }
    });
}

/// The serial rank-k path: the same NB-column blocks, in order.
#[allow(clippy::too_many_arguments)]
fn syrk_blocks_serial<T: Scalar>(
    plan: &PackedPlan<T>,
    conj: bool,
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
) {
    let mut rest = c;
    let mut j0 = 0usize;
    while j0 < n {
        let jb = SYRK_NB.min(n - j0);
        let (mine, tail) = rest.split_at_col(jb);
        rest = tail;
        syrk_block(plan, conj, uplo, trans, k, alpha, a, beta, j0, jb, mine);
        j0 += jb;
    }
}

/// One NB-column block of a rank-k update: β-scales its triangle portion,
/// computes the diagonal block through the packed gemm into a scratch
/// square (folding only the stored triangle back), and routes the
/// off-diagonal rectangle through the serial gemm directly — so nearly
/// all the flops run on the microkernel. `cb` is the column band of `C`
/// starting at column `j0` (full `n` rows, `jb` columns).
#[allow(clippy::too_many_arguments)]
pub(crate) fn syrk_block<T: Scalar>(
    plan: &PackedPlan<T>,
    conj: bool,
    uplo: Uplo,
    trans: Trans,
    k: usize,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    j0: usize,
    jb: usize,
    mut cb: MatMut<'_, T>,
) {
    let n = cb.nrows();
    for j in j0..j0 + jb {
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        let col = cb.col_mut(j - j0);
        for cc in &mut col[lo..hi] {
            *cc = if beta.is_zero() {
                T::zero()
            } else {
                beta * *cc
            };
        }
    }
    let (ta, tb) = match (trans, conj) {
        (Trans::No, false) => (Trans::No, Trans::Trans),
        (Trans::No, true) => (Trans::No, Trans::ConjTrans),
        (_, false) => (Trans::Trans, Trans::No),
        (_, true) => (Trans::ConjTrans, Trans::No),
    };
    // op(A) rows j0..j0+jb as a stored subview.
    let a_blk = match trans {
        Trans::No => a.subview(j0, 0, jb, k),
        _ => a.subview(0, j0, k, jb),
    };
    // Diagonal block: full jb×jb product into scratch, stored triangle
    // folded back (the Hermitian case keeps the diagonal real, as the
    // kernel contract requires).
    let mut diag = vec![T::zero(); jb * jb];
    gemm_serial(
        plan,
        ta,
        tb,
        alpha,
        a_blk,
        a_blk,
        MatMut::new(&mut diag, jb, jb, jb),
    );
    for j in j0..j0 + jb {
        let (lo, hi) = match uplo {
            Uplo::Upper => (j0, j + 1),
            Uplo::Lower => (j, j0 + jb),
        };
        let dcol = &diag[(j - j0) * jb..(j - j0) * jb + jb];
        let ccol = cb.col_mut(j - j0);
        for i in lo..hi {
            let cc = &mut ccol[i];
            *cc += dcol[i - j0];
            if conj && i == j {
                *cc = T::from_real(cc.re());
            }
        }
    }
    // Off-diagonal rectangle: gemm does the heavy lifting.
    match uplo {
        Uplo::Lower => {
            // Rows j0+jb..n, columns j0..j0+jb.
            let m_rect = n - j0 - jb;
            if m_rect > 0 {
                let a_rows = match trans {
                    Trans::No => a.subview(j0 + jb, 0, m_rect, k),
                    _ => a.subview(0, j0 + jb, k, m_rect),
                };
                gemm_serial(
                    plan,
                    ta,
                    tb,
                    alpha,
                    a_rows,
                    a_blk,
                    cb.subview(j0 + jb, 0, m_rect, jb),
                );
            }
        }
        Uplo::Upper => {
            // Rows 0..j0, columns j0..j0+jb.
            if j0 > 0 {
                let a_rows = match trans {
                    Trans::No => a.subview(0, 0, j0, k),
                    _ => a.subview(0, 0, k, j0),
                };
                gemm_serial(plan, ta, tb, alpha, a_rows, a_blk, cb.subview(0, 0, j0, jb));
            }
        }
    }
}

/// Symmetric rank-2k update (`xSYR2K`):
/// `C := alpha*op(A)*op(B)ᵀ + alpha*op(B)*op(A)ᵀ + beta*C`.
#[allow(clippy::too_many_arguments)]
pub fn syr2k<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let _probe = probe::span(
        probe::Layer::Blas,
        "syr2k",
        probe::flops::syr2k(n, k),
        probe_bytes::<T>(2 * n * k, n * (n + 1) / 2),
    );
    if n == 0 {
        return;
    }
    let cfg = tune::current();
    let plan = PackedPlan::<T>::from_cfg(&cfg);
    // Large updates decompose like syrk: NB-column blocks whose diagonal
    // squares and off-diagonal rectangles route through the packed gemm
    // (two accumulations, one per product term).
    if !alpha.is_zero() && k > 0 && (plan.force || n * n * k >= SMALL_CROSSOVER) {
        probe::note_kernel(plan.kern.name());
        let (r, cdim) = if trans == Trans::No { (n, k) } else { (k, n) };
        let av = MatRef::new(a, r, cdim, lda);
        let bv = MatRef::new(b, r, cdim, ldb);
        let mut cv = MatMut::new(c, n, n, ldc);
        let mut j0 = 0usize;
        while j0 < n {
            let jb = SYRK_NB.min(n - j0);
            syr2k_block(&plan, uplo, trans, k, alpha, av, bv, beta, j0, jb, cv.rb());
            j0 += jb;
        }
        return;
    }
    let ael = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => a[i + l * lda],
            _ => a[l + i * lda],
        }
    };
    let bel = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => b[i + l * ldb],
            _ => b[l + i * ldb],
        }
    };
    for j in 0..n {
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        for i in lo..hi {
            let mut s = T::zero();
            for l in 0..k {
                s += ael(i, l) * bel(j, l) + bel(i, l) * ael(j, l);
            }
            let cc = &mut c[i + j * ldc];
            *cc = if beta.is_zero() {
                T::zero()
            } else {
                beta * *cc
            } + alpha * s;
        }
    }
}

/// One NB-column block of the rank-2k update (see [`syrk_block`] for the
/// decomposition): the two product terms accumulate through the packed
/// gemm. `cv` is the whole `n × n` output view; this block updates its
/// columns `j0..j0+jb`.
#[allow(clippy::too_many_arguments)]
fn syr2k_block<T: Scalar>(
    plan: &PackedPlan<T>,
    uplo: Uplo,
    trans: Trans,
    k: usize,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    j0: usize,
    jb: usize,
    cv: MatMut<'_, T>,
) {
    let n = cv.nrows();
    let mut cb = cv.subview(0, j0, n, jb);
    for j in j0..j0 + jb {
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        let col = cb.col_mut(j - j0);
        for cc in &mut col[lo..hi] {
            *cc = if beta.is_zero() {
                T::zero()
            } else {
                beta * *cc
            };
        }
    }
    // syr2k is symmetric (never conjugating): any transposed op maps to
    // a plain transpose in the gemm terms.
    let t = if trans == Trans::No {
        Trans::No
    } else {
        Trans::Trans
    };
    let (ta, tb) = match t {
        Trans::No => (Trans::No, Trans::Trans),
        _ => (Trans::Trans, Trans::No),
    };
    fn rows_of<'s, T: Scalar>(
        src: MatRef<'s, T>,
        t: Trans,
        k: usize,
        r0: usize,
        rb: usize,
    ) -> MatRef<'s, T> {
        match t {
            Trans::No => src.subview(r0, 0, rb, k),
            _ => src.subview(0, r0, k, rb),
        }
    }
    let a_blk = rows_of(a, t, k, j0, jb);
    let b_blk = rows_of(b, t, k, j0, jb);
    // Diagonal block: alpha·(op(A)op(B)ᵀ + op(B)op(A)ᵀ) into scratch,
    // triangle folded back.
    let mut diag = vec![T::zero(); jb * jb];
    gemm_serial(
        plan,
        ta,
        tb,
        alpha,
        a_blk,
        b_blk,
        MatMut::new(&mut diag, jb, jb, jb),
    );
    gemm_serial(
        plan,
        ta,
        tb,
        alpha,
        b_blk,
        a_blk,
        MatMut::new(&mut diag, jb, jb, jb),
    );
    for j in j0..j0 + jb {
        let (lo, hi) = match uplo {
            Uplo::Upper => (j0, j + 1),
            Uplo::Lower => (j, j0 + jb),
        };
        let dcol = &diag[(j - j0) * jb..(j - j0) * jb + jb];
        let ccol = cb.col_mut(j - j0);
        for i in lo..hi {
            ccol[i] += dcol[i - j0];
        }
    }
    // Off-diagonal rectangle, two accumulations.
    let (r0, rb) = match uplo {
        Uplo::Lower => (j0 + jb, n - j0 - jb),
        Uplo::Upper => (0, j0),
    };
    if rb > 0 {
        let a_rows = rows_of(a, t, k, r0, rb);
        let b_rows = rows_of(b, t, k, r0, rb);
        let dst0 = match uplo {
            Uplo::Lower => j0 + jb,
            Uplo::Upper => 0,
        };
        gemm_serial(
            plan,
            ta,
            tb,
            alpha,
            a_rows,
            b_blk,
            cb.rb().subview(dst0, 0, rb, jb),
        );
        gemm_serial(
            plan,
            ta,
            tb,
            alpha,
            b_rows,
            a_blk,
            cb.rb().subview(dst0, 0, rb, jb),
        );
    }
}

/// Order at or below which the triangular kernels stay on their
/// per-column Level-2 forms; above it they go blocked, with the
/// off-diagonal updates on the packed gemm.
const TRX_NB: usize = 48;

/// Triangular matrix-matrix product (`xTRMM`):
/// `B := alpha*op(A)*B` (`Side::Left`) or `B := alpha*B*op(A)`
/// (`Side::Right`), with `A` triangular.
#[allow(clippy::too_many_arguments)]
pub fn trmm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    let _probe = probe::span(
        probe::Layer::Blas,
        "trmm",
        probe::flops::trmm(side, m, n),
        probe_bytes::<T>(na * (na + 1) / 2, m * n),
    );
    trmm_impl(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
}

/// Uninstrumented trmm body: the `Side::Right` path recurses into the
/// left-side algorithm through this entry so the recursion does not open
/// a second probe span for the same user-level call.
#[allow(clippy::too_many_arguments)]
fn trmm_impl<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    match side {
        Side::Left => {
            if m == 0 || n == 0 {
                return;
            }
            // Column bands of B are independent: band := alpha·op(A)·band,
            // so the columns stripe across threads exactly like gemm's C.
            let cfg = tune::current();
            let plan = PackedPlan::<T>::from_cfg(&cfg);
            let stripes = par_stripes(&cfg, flop_product(m, m, n) / 2, n, 4);
            probe::note_parallelism(stripes);
            probe::note_kernel(plan.kern.name());
            let av = MatRef::new(a, m, m, lda);
            // ABFT: encode from the unscaled input (the column kernel
            // applies alpha itself).
            let check = crate::abft::active(&cfg, flop_product(m, m, n) / 2).map(|pol| {
                crate::abft::trmm_encode(
                    pol,
                    uplo,
                    trans,
                    diag,
                    alpha,
                    av,
                    MatRef::new(b, m, n, ldb),
                )
            });
            if stripes > 1 {
                with_serial_fallback(
                    b,
                    |b| {
                        stripe_cols("trmm", stripes, MatMut::new(b, m, n, ldb), |_, bb| {
                            trmm_left_cols(&plan, uplo, trans, diag, alpha, av, bb);
                        })
                    },
                    |b| {
                        trmm_left_cols(
                            &plan,
                            uplo,
                            trans,
                            diag,
                            alpha,
                            av,
                            MatMut::new(b, m, n, ldb),
                        )
                    },
                );
            } else {
                trmm_left_cols(
                    &plan,
                    uplo,
                    trans,
                    diag,
                    alpha,
                    av,
                    MatMut::new(b, m, n, ldb),
                );
            }
            if let Some(ck) = check {
                crate::abft::trmm_verify(
                    ck,
                    stripes,
                    &plan,
                    uplo,
                    trans,
                    diag,
                    alpha,
                    av,
                    MatMut::new(b, m, n, ldb),
                );
            }
        }
        Side::Right => {
            if m >= 12 {
                // Cache-friendly path: materialise Bᵀ, apply from the left
                // (unit-stride trmv columns), transpose back. The O(mn)
                // copies are negligible against the O(mn²) compute.
                let cjb = trans == Trans::ConjTrans;
                let mut bt = vec![T::zero(); n * m];
                for j in 0..n {
                    for i in 0..m {
                        let v = b[i + j * ldb];
                        bt[j + i * n] = if cjb { v.conj() } else { v };
                    }
                }
                let ltr = match trans {
                    Trans::No => Trans::Trans,
                    _ => Trans::No,
                };
                trmm_impl(
                    Side::Left,
                    uplo,
                    ltr,
                    diag,
                    n,
                    m,
                    T::one(),
                    a,
                    lda,
                    &mut bt,
                    n,
                );
                for j in 0..n {
                    for i in 0..m {
                        let v = bt[j + i * n];
                        let v = if cjb { v.conj() } else { v };
                        b[i + j * ldb] = if alpha == T::one() { v } else { alpha * v };
                    }
                }
                return;
            }
            // Row i of B: rᵀ := op(A)ᵀ rᵀ. The stored triangle of A is
            // unchanged; only the trans flag composes with the transpose.
            for i in 0..m {
                let row = &mut b[i..];
                match trans {
                    Trans::No => crate::l2::trmv(uplo, Trans::Trans, diag, n, a, lda, row, ldb),
                    Trans::Trans => crate::l2::trmv(uplo, Trans::No, diag, n, a, lda, row, ldb),
                    Trans::ConjTrans => {
                        // r := r Aᴴ  ⇔  rᵀ := Ā rᵀ = conj(A · conj(rᵀ)).
                        crate::l1::lacgv(n, row, ldb);
                        crate::l2::trmv(uplo, Trans::No, diag, n, a, lda, row, ldb);
                        crate::l1::lacgv(n, row, ldb);
                    }
                }
                if alpha != T::one() {
                    let mut idx = 0;
                    for _ in 0..n {
                        row[idx] *= alpha;
                        idx += ldb;
                    }
                }
            }
        }
    }
}

/// Serial left-side trmm: `b := alpha·op(A)·b` over every column of the
/// band. Small orders run a trmv per column; larger ones go blocked —
/// per diagonal block, the triangular part stays a trmv while the
/// off-diagonal contribution comes from the packed gemm into a scratch
/// panel (the scratch sidesteps aliasing between the read and written
/// row ranges of `b`).
pub(crate) fn trmm_left_cols<T: Scalar>(
    plan: &PackedPlan<T>,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let m = b.nrows();
    let w = b.ncols();
    if m == 0 || w == 0 {
        return;
    }
    if m <= TRX_NB {
        for j in 0..w {
            let col = b.col_mut(j);
            crate::l2::trmv(uplo, trans, diag, m, a.as_slice(), a.lda(), col, 1);
            if alpha != T::one() {
                for x in col {
                    *x *= alpha;
                }
            }
        }
        return;
    }
    // Whether op(A) acts as a *lower* triangular factor (row i draws on
    // rows ≤ i): stored-lower untransposed, or stored-upper transposed.
    let eff_lower = (uplo == Uplo::Lower) != trans.is_transposed();
    let nblk = m.div_ceil(TRX_NB);
    let mut tmp = vec![T::zero(); TRX_NB * w];
    let mut step = |i0: usize, ib: usize| {
        // Off-diagonal contribution op(A)[block, rest]·B[rest] into tmp.
        let (r0, rb) = if eff_lower {
            (0, i0)
        } else {
            (i0 + ib, m - i0 - ib)
        };
        let use_tmp = rb > 0;
        if use_tmp {
            tmp[..ib * w].fill(T::zero());
            let (asub, ta) = match (uplo, eff_lower) {
                (Uplo::Lower, true) => (a.subview(i0, 0, ib, i0), Trans::No),
                (Uplo::Upper, true) => (a.subview(0, i0, i0, ib), trans),
                (Uplo::Upper, false) => (a.subview(i0, i0 + ib, ib, rb), Trans::No),
                (Uplo::Lower, false) => (a.subview(i0 + ib, i0, rb, ib), trans),
            };
            gemm_serial(
                plan,
                ta,
                Trans::No,
                T::one(),
                asub,
                b.as_ref().subview(r0, 0, rb, w),
                MatMut::new(&mut tmp[..ib * w], ib, w, ib),
            );
        }
        // Diagonal block in place, then combine and scale.
        let ad = a.subview(i0, i0, ib, ib);
        for j in 0..w {
            let seg = &mut b.col_mut(j)[i0..i0 + ib];
            crate::l2::trmv(uplo, trans, diag, ib, ad.as_slice(), ad.lda(), seg, 1);
            let tcol = &tmp[j * ib..j * ib + ib];
            for (x, &t) in seg.iter_mut().zip(tcol) {
                let v = if use_tmp { *x + t } else { *x };
                *x = if alpha == T::one() { v } else { alpha * v };
            }
        }
    };
    if eff_lower {
        // Descending: each block reads the still-unmodified rows above it.
        for bi in (0..nblk).rev() {
            let i0 = bi * TRX_NB;
            step(i0, TRX_NB.min(m - i0));
        }
    } else {
        // Ascending: each block reads the still-unmodified rows below it.
        for bi in 0..nblk {
            let i0 = bi * TRX_NB;
            step(i0, TRX_NB.min(m - i0));
        }
    }
}

/// Triangular solve with multiple right-hand sides (`xTRSM`):
/// `op(A)·X = alpha·B` (`Side::Left`) or `X·op(A) = alpha·B`
/// (`Side::Right`); `X` overwrites `B`.
#[allow(clippy::too_many_arguments)]
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    // Software half types reroute through f32 (see `crate::halfp`).
    if T::IS_HALF {
        let af = crate::halfp::widen(a);
        let mut bf = crate::halfp::widen(b);
        trsm(
            side,
            uplo,
            trans,
            diag,
            m,
            n,
            crate::halfp::to_f32(alpha),
            &af,
            lda,
            &mut bf,
            ldb,
        );
        crate::halfp::narrow(&bf, b);
        return;
    }
    let _probe = probe::span(
        probe::Layer::Blas,
        "trsm",
        probe::flops::trsm(side, m, n),
        probe_bytes::<T>(na * (na + 1) / 2, m * n),
    );
    trsm_impl(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
}

/// Uninstrumented trsm body: the `Side::Right` path recurses into the
/// left-side algorithm through this entry so the recursion does not open
/// a second probe span for the same user-level call.
#[allow(clippy::too_many_arguments)]
fn trsm_impl<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    if alpha != T::one() {
        for j in 0..n {
            for x in &mut b[j * ldb..j * ldb + m] {
                *x = if alpha.is_zero() {
                    T::zero()
                } else {
                    alpha * *x
                };
            }
        }
    }
    if m == 0 || n == 0 {
        return;
    }
    match side {
        Side::Left => {
            // Each right-hand-side column solves independently against the
            // same triangle, so the columns of B stripe across threads the
            // same way gemm stripes C (per-column arithmetic identical to
            // the serial path).
            let cfg = tune::current();
            let plan = PackedPlan::<T>::from_cfg(&cfg);
            let stripes = par_stripes(&cfg, flop_product(m, m, n) / 2, n, 4);
            probe::note_parallelism(stripes);
            probe::note_kernel(plan.kern.name());
            let av = MatRef::new(a, m, m, lda);
            // ABFT: alpha is already folded into B, so the column sums of
            // B as it stands are the expected values of (eᵀop(A))·X.
            let check = crate::abft::active(&cfg, flop_product(m, m, n) / 2).map(|pol| {
                crate::abft::trsm_encode(pol, uplo, trans, diag, av, MatRef::new(b, m, n, ldb))
            });
            if stripes > 1 {
                with_serial_fallback(
                    b,
                    |b| {
                        stripe_cols("trsm", stripes, MatMut::new(b, m, n, ldb), |_, bb| {
                            trsm_left_cols(&plan, uplo, trans, diag, av, bb);
                        })
                    },
                    |b| trsm_left_cols(&plan, uplo, trans, diag, av, MatMut::new(b, m, n, ldb)),
                );
            } else {
                trsm_left_cols(&plan, uplo, trans, diag, av, MatMut::new(b, m, n, ldb));
            }
            if let Some(ck) = check {
                crate::abft::trsm_verify(
                    ck,
                    stripes,
                    &plan,
                    uplo,
                    trans,
                    diag,
                    av,
                    MatMut::new(b, m, n, ldb),
                );
            }
        }
        Side::Right => {
            if m >= 12 {
                // Transpose, left-solve (unit-stride columns), transpose
                // back — the same trick as trmm's right side.
                let cjb = trans == Trans::ConjTrans;
                let mut bt = vec![T::zero(); n * m];
                for j in 0..n {
                    for i in 0..m {
                        let v = b[i + j * ldb];
                        bt[j + i * n] = if cjb { v.conj() } else { v };
                    }
                }
                let ltr = match trans {
                    Trans::No => Trans::Trans,
                    _ => Trans::No,
                };
                trsm_impl(
                    Side::Left,
                    uplo,
                    ltr,
                    diag,
                    n,
                    m,
                    T::one(),
                    a,
                    lda,
                    &mut bt,
                    n,
                );
                for j in 0..n {
                    for i in 0..m {
                        let v = bt[j + i * n];
                        b[i + j * ldb] = if cjb { v.conj() } else { v };
                    }
                }
                return;
            }
            // X·op(A) = B  ⇔  op(A)ᵀ·Xᵀ = Bᵀ: solve along the rows of B,
            // composing the transposes (triangle of A is unchanged).
            for i in 0..m {
                let row = &mut b[i..];
                match trans {
                    Trans::No => crate::l2::trsv(uplo, Trans::Trans, diag, n, a, lda, row, ldb),
                    Trans::Trans => crate::l2::trsv(uplo, Trans::No, diag, n, a, lda, row, ldb),
                    Trans::ConjTrans => {
                        // X Aᴴ = B  ⇔  Ā Xᵀ = Bᵀ  ⇔  A conj(Xᵀ) = conj(Bᵀ).
                        crate::l1::lacgv(n, row, ldb);
                        crate::l2::trsv(uplo, Trans::No, diag, n, a, lda, row, ldb);
                        crate::l1::lacgv(n, row, ldb);
                    }
                }
            }
        }
    }
}

/// Serial left-side triangular solve over the columns of `b` (alpha
/// already applied): `op(A)·x_j = b_j`. Small orders run the unblocked
/// substitution; larger ones solve TRX_NB diagonal blocks and push the
/// rank-`kb` updates of the remaining rows through the packed gemm (the
/// solved block is staged in a scratch panel to keep the gemm operands
/// non-overlapping).
pub(crate) fn trsm_left_cols<T: Scalar>(
    plan: &PackedPlan<T>,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let m = b.nrows();
    let w = b.ncols();
    if m == 0 || w == 0 {
        return;
    }
    if m <= TRX_NB {
        trsm_cols_unblocked(uplo, trans, diag, a, b);
        return;
    }
    let eff_lower = (uplo == Uplo::Lower) != trans.is_transposed();
    let nblk = m.div_ceil(TRX_NB);
    let mut tmp = vec![T::zero(); TRX_NB * w];
    let mut step = |k0: usize, kb: usize| {
        // Solve the diagonal block.
        let ad = a.subview(k0, k0, kb, kb);
        trsm_cols_unblocked(uplo, trans, diag, ad, b.rb().subview(k0, 0, kb, w));
        // Eliminate the solved block from the remaining rows.
        let (r0, rb) = if eff_lower {
            (k0 + kb, m - k0 - kb)
        } else {
            (0, k0)
        };
        if rb == 0 {
            return;
        }
        for j in 0..w {
            tmp[j * kb..j * kb + kb].copy_from_slice(&b.col(j)[k0..k0 + kb]);
        }
        let (asub, ta) = match (uplo, eff_lower) {
            (Uplo::Lower, true) => (a.subview(k0 + kb, k0, rb, kb), Trans::No),
            (Uplo::Upper, true) => (a.subview(k0, k0 + kb, kb, rb), trans),
            (Uplo::Upper, false) => (a.subview(0, k0, k0, kb), Trans::No),
            (Uplo::Lower, false) => (a.subview(k0, 0, kb, k0), trans),
        };
        gemm_serial(
            plan,
            ta,
            Trans::No,
            -T::one(),
            asub,
            MatRef::new(&tmp[..kb * w], kb, w, kb),
            b.rb().subview(r0, 0, rb, w),
        );
    };
    if eff_lower {
        // Forward: ascending blocks.
        for bi in 0..nblk {
            let k0 = bi * TRX_NB;
            step(k0, TRX_NB.min(m - k0));
        }
    } else {
        // Backward: descending blocks.
        for bi in (0..nblk).rev() {
            let k0 = bi * TRX_NB;
            step(k0, TRX_NB.min(m - k0));
        }
    }
}

/// Unblocked left-side solve over the columns of `b`: vectorized
/// forward/backward substitution for the untransposed cases, a trsv per
/// column otherwise.
fn trsm_cols_unblocked<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let m = b.nrows();
    let n = b.ncols();
    let unit = diag == Diag::Unit;
    match (trans.is_transposed(), uplo) {
        (false, Uplo::Lower) => {
            // Forward substitution, vectorized across all right-hand
            // sides: for each pivot k, update rows k+1.. of every column.
            for k in 0..m {
                let acol = a.col(k);
                let akk = acol[k];
                for j in 0..n {
                    let col = b.col_mut(j);
                    if !unit {
                        col[k] = col[k] / akk;
                    }
                    let t = col[k];
                    if !t.is_zero() {
                        for (ci, &aik) in col[k + 1..m].iter_mut().zip(&acol[k + 1..m]) {
                            *ci -= t * aik;
                        }
                    }
                }
            }
        }
        (false, Uplo::Upper) => {
            for k in (0..m).rev() {
                let acol = a.col(k);
                let akk = acol[k];
                for j in 0..n {
                    let col = b.col_mut(j);
                    if !unit {
                        col[k] = col[k] / akk;
                    }
                    let t = col[k];
                    if !t.is_zero() {
                        for (ci, &aik) in col[..k].iter_mut().zip(&acol[..k]) {
                            *ci -= t * aik;
                        }
                    }
                }
            }
        }
        (true, _) => {
            // op(A)ᵀ or op(A)ᴴ solve, column by column.
            for j in 0..n {
                let col = b.col_mut(j);
                crate::l2::trsv(uplo, trans, diag, m, a.as_slice(), a.lda(), col, 1);
            }
        }
    }
}

#[cfg(test)]
mod half_route_tests {
    use super::*;
    use la_core::half::{Bf16, F16};
    use la_core::RealScalar;

    fn widen_h<T: Scalar>(s: &[T]) -> Vec<f32> {
        s.iter().map(|x| x.re().to_f64() as f32).collect()
    }

    /// gemm on a half type must equal: widen to f32, f32 gemm, round back
    /// once — NOT per-flop half rounding. 64 summands of 1/64 distinguish
    /// the two in f16 (per-step rounding at eps=2⁻¹⁰ drifts measurably).
    fn gemm_accumulates_in_f32<T: Scalar>() {
        let k = 64usize;
        let a: Vec<T> = (0..k).map(|_| T::from_f64(1.0 / 64.0)).collect();
        let b: Vec<T> = (0..k).map(|_| T::from_f64(1.0)).collect();
        let mut c = vec![T::zero(); 1];
        // 1×1 product: row vector (lda=1) times column vector.
        gemm(
            Trans::No,
            Trans::No,
            1,
            1,
            k,
            T::one(),
            &a,
            1,
            &b,
            k,
            T::zero(),
            &mut c,
            1,
        );
        // Reference: exact f32 accumulation, one final rounding.
        let af = widen_h(&a);
        let sum: f32 = af.iter().sum();
        assert_eq!(
            c[0].re().to_f64() as f32,
            T::from_f64(sum as f64).re().to_f64() as f32,
            "{} gemm must accumulate in f32",
            T::PREFIX
        );
    }

    #[test]
    fn half_gemm_routes_through_f32() {
        gemm_accumulates_in_f32::<F16>();
        gemm_accumulates_in_f32::<Bf16>();
    }

    #[test]
    fn half_trsm_and_syrk_run_and_agree_with_f32() {
        // 3×3 unit-lower solve and rank-k update, checked against the
        // same operation in f32 with one final rounding per element.
        let n = 3usize;
        let a_f32 = [2.0f32, 0.5, 0.25, 0.0, 4.0, 0.5, 0.0, 0.0, 8.0];
        let b_f32 = [1.0f32, 2.0, 3.0];
        let a: Vec<F16> = a_f32.iter().map(|&x| F16::from_f32(x)).collect();
        let mut b: Vec<F16> = b_f32.iter().map(|&x| F16::from_f32(x)).collect();
        let mut bref = b_f32;
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            n,
            1,
            F16::from_f32(1.0),
            &a,
            n,
            &mut b,
            n,
        );
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            n,
            1,
            1.0f32,
            &a_f32,
            n,
            &mut bref,
            n,
        );
        for i in 0..n {
            assert_eq!(b[i].to_f32(), F16::from_f32(bref[i]).to_f32(), "row {i}");
        }

        let mut c = vec![F16::from_f32(0.0); n * n];
        let mut cref = vec![0.0f32; n * n];
        syrk(
            Uplo::Lower,
            Trans::No,
            n,
            n,
            F16::from_f32(1.0),
            &a,
            n,
            F16::from_f32(0.0),
            &mut c,
            n,
        );
        syrk(
            Uplo::Lower,
            Trans::No,
            n,
            n,
            1.0f32,
            &a_f32,
            n,
            0.0f32,
            &mut cref,
            n,
        );
        for j in 0..n {
            for i in j..n {
                assert_eq!(
                    c[i + j * n].to_f32(),
                    F16::from_f32(cref[i + j * n]).to_f32(),
                    "({i},{j})"
                );
            }
        }
    }
}

#[cfg(test)]
mod striped_tests {
    use super::*;

    #[test]
    fn flop_estimates_do_not_wrap_at_extreme_dims() {
        // m·n·k in bare usize wraps already at ~2.6M per side on 64-bit;
        // a wrapped estimate would land below par_flops and silently
        // force the serial path. The u128 product must keep such sizes
        // above any realistic threshold.
        let huge = 1usize << 22; // (2^22)^3 = 2^66 > usize::MAX
        let p = flop_product(huge, huge, huge);
        assert_eq!(p, 1u128 << 66);
        assert!(p > usize::MAX as u128);
        // The wrapped usize computation demonstrates the old failure:
        assert_eq!(huge.wrapping_mul(huge).wrapping_mul(huge), 0);

        // And par_stripes still parallelises at those extremes (multi-
        // thread config — oversubscribed on purpose, since this host may
        // have a single core — and the default threshold) instead of
        // reporting 1.
        let cfg = tune::TuneConfig {
            max_threads: 4,
            oversubscribe: true,
            ..tune::TuneConfig::defaults()
        };
        assert_eq!(
            par_stripes(&cfg, flop_product(huge, huge, huge), huge, 8),
            4
        );
        // Small products still honour the threshold.
        assert_eq!(par_stripes(&cfg, flop_product(8, 8, 8), 8, 8), 1);
    }

    #[test]
    fn striped_split_matches_serial() {
        // Exercises the thread-stripe bookkeeping even on one core.
        let (m, n, k) = (13usize, 23usize, 9usize);
        let plan = PackedPlan::<f64>::from_cfg(&tune::TuneConfig::defaults());
        let a: Vec<f64> = (0..m * k).map(|x| (x % 17) as f64 - 8.0).collect();
        let b: Vec<f64> = (0..k * n).map(|x| (x % 13) as f64 - 6.0).collect();
        let av = MatRef::new(&a, m, k, m);
        for &tb in &[Trans::No, Trans::Trans] {
            let bb: Vec<f64> = if tb == Trans::No {
                b.clone()
            } else {
                // n × k layout for the transposed operand.
                let mut t = vec![0.0; n * k];
                for j in 0..n {
                    for l in 0..k {
                        t[j + l * n] = b[l + j * k];
                    }
                }
                t
            };
            let bv = if tb == Trans::No {
                MatRef::new(&bb, k, n, k)
            } else {
                MatRef::new(&bb, n, k, n)
            };
            let mut c1 = vec![0.0f64; m * n];
            gemm_serial(
                &plan,
                Trans::No,
                tb,
                1.0,
                av,
                bv,
                MatMut::new(&mut c1, m, n, m),
            );
            for stripes in [2usize, 3, 5] {
                let mut c2 = vec![0.0f64; m * n];
                gemm_striped(
                    stripes,
                    &plan,
                    Trans::No,
                    tb,
                    1.0,
                    av,
                    bv,
                    MatMut::new(&mut c2, m, n, m),
                );
                for idx in 0..m * n {
                    assert!(
                        (c1[idx] - c2[idx]).abs() < 1e-12,
                        "{tb:?} stripes={stripes} at {idx}"
                    );
                }
            }
        }
    }
}
