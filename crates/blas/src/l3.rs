//! Level 3 BLAS: matrix-matrix operations.
//!
//! `gemm` is the workhorse the LAPACK blocked algorithms lean on (the
//! paper's §1.1: "LAPACK addresses this problem by reorganizing the
//! algorithms to use block matrix operations ... in the innermost loops").
//! The implementation here uses three-level cache blocking with a
//! four-column unrolled inner kernel, and optionally splits the columns of
//! `C` across OS threads (`std::thread::scope`) for large products — the
//! same data-parallel decomposition a Rayon `par_chunks_mut` would express.

use la_core::{Diag, Scalar, Side, Trans, Uplo};

use crate::l1::axpy;

#[inline(always)]
fn cj<T: Scalar>(conj: bool, x: T) -> T {
    if conj {
        x.conj()
    } else {
        x
    }
}

/// Depth of the k-dimension cache block.
const KC: usize = 128;
/// Flop threshold (m·n·k) above which `gemm` goes parallel — high enough
/// that the blocked-factorization panel updates (tall, skinny `k`) stay
/// serial where thread startup would dominate.
const PAR_FLOPS: usize = 200 * 200 * 200;

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8)
}

/// General matrix-matrix product (`xGEMM`):
/// `C := alpha*op(A)*op(B) + beta*C`,
/// where `op(A)` is `m × k` and `op(B)` is `k × n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    // C := beta*C
    if beta != T::one() {
        for j in 0..n {
            let col = &mut c[j * ldc..j * ldc + m];
            if beta.is_zero() {
                col.fill(T::zero());
            } else {
                for ci in col {
                    *ci *= beta;
                }
            }
        }
    }
    if alpha.is_zero() || k == 0 {
        return;
    }

    let nt = max_threads();
    if nt > 1 && m * n * k >= PAR_FLOPS && n >= 8 * nt && c.len() >= ldc * n {
        gemm_striped(nt.min(n), transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
        gemm_serial(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
}

/// Splits the columns of `C` into `stripes` independent sub-products run
/// on scoped threads (the data-parallel decomposition a Rayon
/// `par_chunks_mut` would express). Exposed at crate level so the split
/// bookkeeping stays testable on single-core machines.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_striped<T: Scalar>(
    stripes: usize,
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    let base = n / stripes;
    let extra = n % stripes;
    std::thread::scope(|s| {
        let mut rest = &mut c[..ldc * n];
        let mut j0 = 0usize;
        for t in 0..stripes {
            let w = base + usize::from(t < extra);
            let (mine, tail) = rest.split_at_mut(ldc * w);
            rest = tail;
            let boff = match transb {
                Trans::No => j0 * ldb,
                _ => j0,
            };
            let bsub = &b[boff..];
            s.spawn(move || {
                gemm_serial(transa, transb, m, w, k, alpha, a, lda, bsub, ldb, mine, ldc);
            });
            j0 += w;
        }
    });
}

/// Serial gemm accumulating `alpha*op(A)*op(B)` into `C` (beta already
/// applied): small problems take a simple sweep; larger ones go through
/// the packed GEBP kernel below.
#[allow(clippy::too_many_arguments)]
fn gemm_serial<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if m * n * k >= 24 * 24 * 24 {
        gemm_gebp(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
        gemm_small(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
}

/// Straightforward sweep used for small products and as the reference
/// shape for the packed kernel.
#[allow(clippy::too_many_arguments)]
fn gemm_small<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    let cja = transa.is_conj();
    let cjb = transb.is_conj();
    let bel = |l: usize, j: usize| -> T {
        match transb {
            Trans::No => b[l + j * ldb],
            _ => cj(cjb, b[j + l * ldb]),
        }
    };
    match transa {
        Trans::No => {
            for j in 0..n {
                let ccol = &mut c[j * ldc..j * ldc + m];
                for l in 0..k {
                    let t = alpha * bel(l, j);
                    if !t.is_zero() {
                        axpy(m, t, &a[l * lda..l * lda + m], 1, ccol, 1);
                    }
                }
            }
        }
        _ => {
            for j in 0..n {
                for i in 0..m {
                    let acol = &a[i * lda..i * lda + k];
                    let mut s = T::zero();
                    match transb {
                        Trans::No => {
                            let bcol = &b[j * ldb..j * ldb + k];
                            if cja {
                                for l in 0..k {
                                    s += acol[l].conj() * bcol[l];
                                }
                            } else {
                                for l in 0..k {
                                    s += acol[l] * bcol[l];
                                }
                            }
                        }
                        _ => {
                            for l in 0..k {
                                s += cj(cja, acol[l]) * cj(cjb, b[j + l * ldb]);
                            }
                        }
                    }
                    c[i + j * ldc] += alpha * s;
                }
            }
        }
    }
}

/// Micro-tile height (rows of C held in registers).
const MR: usize = 4;
/// Micro-tile width (columns of C held in registers).
const NR: usize = 4;
/// Row-block of the packed A panel.
const MC: usize = 192;
/// Column-block of the packed B panel.
const NCB: usize = 96;

/// Packed GEBP gemm (Goto-style): op(A) blocks are packed into MR-row
/// micro-panels contiguous in `l`, op(B) into column stripes contiguous
/// in `l`, and a register-tiled MR×NR microkernel does the flops — this
/// is the "block matrix operations in the innermost loops" the paper's
/// §1.1 attributes LAPACK's portability-with-performance to.
#[allow(clippy::too_many_arguments)]
fn gemm_gebp<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    let cja = transa.is_conj();
    let cjb = transb.is_conj();
    // Element accessors for op(A) (i, l) and op(B) (l, j).
    let ael = |i: usize, l: usize| -> T {
        match transa {
            Trans::No => a[i + l * lda],
            _ => cj(cja, a[l + i * lda]),
        }
    };
    let bel = |l: usize, j: usize| -> T {
        match transb {
            Trans::No => b[l + j * ldb],
            _ => cj(cjb, b[j + l * ldb]),
        }
    };

    let mut apack = vec![T::zero(); MC.min(m).div_ceil(MR) * MR * KC.min(k)];
    let mut bpack = vec![T::zero(); NCB.min(n).div_ceil(NR) * NR * KC.min(k)];

    let mut jc = 0;
    while jc < n {
        let nb = NCB.min(n - jc);
        let nb_pad = nb.div_ceil(NR) * NR;
        let mut lc = 0;
        while lc < k {
            let kb = KC.min(k - lc);
            // Pack op(B)(lc..lc+kb, jc..jc+nb): stripe of NR columns,
            // interleaved per l: bpack[stripe][(l*NR + r)].
            for js in (0..nb_pad).step_by(NR) {
                let base = js * kb;
                for l in 0..kb {
                    for r in 0..NR {
                        let j = jc + js + r;
                        bpack[base + l * NR + r] = if js + r < nb {
                            alpha * bel(lc + l, j)
                        } else {
                            T::zero()
                        };
                    }
                }
            }
            let mut ic = 0;
            while ic < m {
                let mb = MC.min(m - ic);
                let mb_pad = mb.div_ceil(MR) * MR;
                // Pack op(A)(ic..ic+mb, lc..lc+kb): micro-panels of MR
                // rows, interleaved per l: apack[panel][(l*MR + r)].
                for is in (0..mb_pad).step_by(MR) {
                    let base = is * kb;
                    match (transa, is + MR <= mb) {
                        (Trans::No, true) => {
                            // Contiguous gather from MR consecutive rows.
                            for l in 0..kb {
                                let src = ic + is + (lc + l) * lda;
                                apack[base + l * MR..base + l * MR + MR]
                                    .copy_from_slice(&a[src..src + MR]);
                            }
                        }
                        _ => {
                            for l in 0..kb {
                                for r in 0..MR {
                                    apack[base + l * MR + r] = if is + r < mb {
                                        ael(ic + is + r, lc + l)
                                    } else {
                                        T::zero()
                                    };
                                }
                            }
                        }
                    }
                }
                // Macro-kernel: register-tiled micro-multiplications.
                for js in (0..nb_pad).step_by(NR) {
                    let bbase = js * kb;
                    for is in (0..mb_pad).step_by(MR) {
                        let abase = is * kb;
                        // MR×NR accumulator in registers.
                        let mut acc = [[T::zero(); NR]; MR];
                        let ap = &apack[abase..abase + kb * MR];
                        let bp = &bpack[bbase..bbase + kb * NR];
                        for l in 0..kb {
                            let av = &ap[l * MR..l * MR + MR];
                            let bv = &bp[l * NR..l * NR + NR];
                            for (r, &ar) in av.iter().enumerate() {
                                for (s, &bs) in bv.iter().enumerate() {
                                    acc[r][s] += ar * bs;
                                }
                            }
                        }
                        // Write back the valid part of the tile.
                        let rows = MR.min(mb - is);
                        let cols = NR.min(nb.saturating_sub(js));
                        for (s, accr) in (0..cols).map(|s| (s, &acc)) {
                            let col =
                                &mut c[(jc + js + s) * ldc + ic + is..(jc + js + s) * ldc + ic + is + rows];
                            for (r, cv) in col.iter_mut().enumerate() {
                                *cv += accr[r][s];
                            }
                        }
                    }
                }
                ic += mb;
            }
            lc += kb;
        }
        jc += nb;
    }
}

/// Symmetric (`xSYMM`, `conj = false`) or Hermitian (`xHEMM`,
/// `conj = true`) matrix-matrix product:
/// `C := alpha*A*B + beta*C` (`Side::Left`) or `alpha*B*A + beta*C`
/// (`Side::Right`), with `A` symmetric/Hermitian, one triangle stored.
#[allow(clippy::too_many_arguments)]
pub fn symm<T: Scalar>(
    conj: bool,
    side: Side,
    uplo: Uplo,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    // Full element of the symmetric A from its stored triangle.
    let ael = |i: usize, j: usize| -> T {
        let stored_upper = uplo == Uplo::Upper;
        if (i <= j) == stored_upper || i == j {
            let v = a[i + j * lda];
            if conj && i == j {
                T::from_real(v.re())
            } else {
                v
            }
        } else {
            cj(conj, a[j + i * lda])
        }
    };
    debug_assert!(na <= lda.max(na));
    for j in 0..n {
        for i in 0..m {
            let mut s = T::zero();
            match side {
                Side::Left => {
                    for l in 0..m {
                        s += ael(i, l) * b[l + j * ldb];
                    }
                }
                Side::Right => {
                    for l in 0..n {
                        s += b[i + l * ldb] * ael(l, j);
                    }
                }
            }
            let cc = &mut c[i + j * ldc];
            *cc = if beta.is_zero() { T::zero() } else { beta * *cc } + alpha * s;
        }
    }
}

/// Symmetric rank-k update (`xSYRK`):
/// `C := alpha*op(A)*op(A)ᵀ + beta*C`, updating only the `uplo` triangle.
/// `trans = No` uses `A` (`n × k`); `trans = Trans` uses `Aᵀ`.
#[allow(clippy::too_many_arguments)]
pub fn syrk<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    syrk_impl(false, uplo, trans, n, k, alpha, a, lda, beta, c, ldc)
}

/// Hermitian rank-k update (`xHERK`):
/// `C := alpha*op(A)*op(A)ᴴ + beta*C` with real `alpha`, `beta`
/// represented as `T` (imaginary parts must be zero).
#[allow(clippy::too_many_arguments)]
pub fn herk<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T::Real,
    a: &[T],
    lda: usize,
    beta: T::Real,
    c: &mut [T],
    ldc: usize,
) {
    syrk_impl(
        T::IS_COMPLEX,
        uplo,
        trans,
        n,
        k,
        T::from_real(alpha),
        a,
        lda,
        T::from_real(beta),
        c,
        ldc,
    )
}

#[allow(clippy::too_many_arguments)]
fn syrk_impl<T: Scalar>(
    conj: bool,
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    // Scale the target triangle by beta first, then accumulate with the
    // rectangular bulk routed through gemm (this is what makes the blocked
    // Cholesky actually faster than the unblocked one).
    for j in 0..n {
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        for i in lo..hi {
            let cc = &mut c[i + j * ldc];
            *cc = if beta.is_zero() { T::zero() } else { beta * *cc };
        }
    }
    if alpha.is_zero() || k == 0 {
        if conj {
            for j in 0..n {
                let cc = &mut c[j + j * ldc];
                *cc = T::from_real(cc.re());
            }
        }
        return;
    }
    // op(A) element (i, l) for the small diagonal triangles.
    let ael = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => a[i + l * lda],
            _ => a[l + i * lda],
        }
    };
    const NB: usize = 48;
    let mut j0 = 0;
    while j0 < n {
        let jb = NB.min(n - j0);
        // Diagonal triangle block (jb × jb): scalar loops.
        for j in j0..j0 + jb {
            let (lo, hi) = match uplo {
                Uplo::Upper => (j0, j + 1),
                Uplo::Lower => (j, j0 + jb),
            };
            for i in lo..hi {
                let mut s = T::zero();
                if conj {
                    if trans == Trans::No {
                        for l in 0..k {
                            s += ael(i, l) * ael(j, l).conj();
                        }
                    } else {
                        for l in 0..k {
                            s += ael(i, l).conj() * ael(j, l);
                        }
                    }
                } else {
                    for l in 0..k {
                        s += ael(i, l) * ael(j, l);
                    }
                }
                let cc = &mut c[i + j * ldc];
                *cc += alpha * s;
                if conj && i == j {
                    *cc = T::from_real(cc.re());
                }
            }
        }
        // Off-diagonal rectangle: gemm does the heavy lifting.
        match uplo {
            Uplo::Lower => {
                // Rows j0+jb..n, columns j0..j0+jb.
                let m_rect = n - j0 - jb;
                if m_rect > 0 {
                    let (ta, tb, aoff_rows, aoff_cols) = match (trans, conj) {
                        (Trans::No, false) => (Trans::No, Trans::Trans, j0 + jb, j0),
                        (Trans::No, true) => (Trans::No, Trans::ConjTrans, j0 + jb, j0),
                        (_, false) => (Trans::Trans, Trans::No, j0 + jb, j0),
                        (_, true) => (Trans::ConjTrans, Trans::No, j0 + jb, j0),
                    };
                    // op(A) row block / column block starting offsets in the
                    // stored A.
                    let a_rows: &[T] = match trans {
                        Trans::No => &a[aoff_rows..],
                        _ => &a[aoff_rows * lda..],
                    };
                    let a_cols: &[T] = match trans {
                        Trans::No => &a[aoff_cols..],
                        _ => &a[aoff_cols * lda..],
                    };
                    gemm(
                        ta,
                        tb,
                        m_rect,
                        jb,
                        k,
                        alpha,
                        a_rows,
                        lda,
                        a_cols,
                        lda,
                        T::one(),
                        &mut c[j0 + jb + j0 * ldc..],
                        ldc,
                    );
                }
            }
            Uplo::Upper => {
                // Rows 0..j0, columns j0..j0+jb.
                if j0 > 0 {
                    let (ta, tb) = match (trans, conj) {
                        (Trans::No, false) => (Trans::No, Trans::Trans),
                        (Trans::No, true) => (Trans::No, Trans::ConjTrans),
                        (_, false) => (Trans::Trans, Trans::No),
                        (_, true) => (Trans::ConjTrans, Trans::No),
                    };
                    let a_rows: &[T] = a; // rows 0.. / cols 0..
                    let a_cols: &[T] = match trans {
                        Trans::No => &a[j0..],
                        _ => &a[j0 * lda..],
                    };
                    gemm(
                        ta,
                        tb,
                        j0,
                        jb,
                        k,
                        alpha,
                        a_rows,
                        lda,
                        a_cols,
                        lda,
                        T::one(),
                        &mut c[j0 * ldc..],
                        ldc,
                    );
                }
            }
        }
        j0 += jb;
    }
}

/// Symmetric rank-2k update (`xSYR2K`):
/// `C := alpha*op(A)*op(B)ᵀ + alpha*op(B)*op(A)ᵀ + beta*C`.
#[allow(clippy::too_many_arguments)]
pub fn syr2k<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let ael = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => a[i + l * lda],
            _ => a[l + i * lda],
        }
    };
    let bel = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => b[i + l * ldb],
            _ => b[l + i * ldb],
        }
    };
    for j in 0..n {
        let (lo, hi) = match uplo {
            Uplo::Upper => (0, j + 1),
            Uplo::Lower => (j, n),
        };
        for i in lo..hi {
            let mut s = T::zero();
            for l in 0..k {
                s += ael(i, l) * bel(j, l) + bel(i, l) * ael(j, l);
            }
            let cc = &mut c[i + j * ldc];
            *cc = if beta.is_zero() { T::zero() } else { beta * *cc } + alpha * s;
        }
    }
}


/// Triangular matrix-matrix product (`xTRMM`):
/// `B := alpha*op(A)*B` (`Side::Left`) or `B := alpha*B*op(A)`
/// (`Side::Right`), with `A` triangular.
#[allow(clippy::too_many_arguments)]
pub fn trmm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    match side {
        Side::Left => {
            // Apply op(A) to each column of B.
            for j in 0..n {
                let col = &mut b[j * ldb..j * ldb + m];
                crate::l2::trmv(uplo, trans, diag, m, a, lda, col, 1);
                if alpha != T::one() {
                    for x in col {
                        *x *= alpha;
                    }
                }
            }
        }
        Side::Right => {
            if m >= 12 {
                // Cache-friendly path: materialise Bᵀ, apply from the left
                // (unit-stride trmv columns), transpose back. The O(mn)
                // copies are negligible against the O(mn²) compute.
                let cjb = trans == Trans::ConjTrans;
                let mut bt = vec![T::zero(); n * m];
                for j in 0..n {
                    for i in 0..m {
                        let v = b[i + j * ldb];
                        bt[j + i * n] = if cjb { v.conj() } else { v };
                    }
                }
                let ltr = match trans {
                    Trans::No => Trans::Trans,
                    _ => Trans::No,
                };
                trmm(Side::Left, uplo, ltr, diag, n, m, T::one(), a, lda, &mut bt, n);
                for j in 0..n {
                    for i in 0..m {
                        let v = bt[j + i * n];
                        let v = if cjb { v.conj() } else { v };
                        b[i + j * ldb] = if alpha == T::one() { v } else { alpha * v };
                    }
                }
                return;
            }
            // Row i of B: rᵀ := op(A)ᵀ rᵀ. The stored triangle of A is
            // unchanged; only the trans flag composes with the transpose.
            for i in 0..m {
                let row = &mut b[i..];
                match trans {
                    Trans::No => crate::l2::trmv(uplo, Trans::Trans, diag, n, a, lda, row, ldb),
                    Trans::Trans => crate::l2::trmv(uplo, Trans::No, diag, n, a, lda, row, ldb),
                    Trans::ConjTrans => {
                        // r := r Aᴴ  ⇔  rᵀ := Ā rᵀ = conj(A · conj(rᵀ)).
                        crate::l1::lacgv(n, row, ldb);
                        crate::l2::trmv(uplo, Trans::No, diag, n, a, lda, row, ldb);
                        crate::l1::lacgv(n, row, ldb);
                    }
                }
                if alpha != T::one() {
                    let mut idx = 0;
                    for _ in 0..n {
                        row[idx] *= alpha;
                        idx += ldb;
                    }
                }
            }
        }
    }
}

/// Triangular solve with multiple right-hand sides (`xTRSM`):
/// `op(A)·X = alpha·B` (`Side::Left`) or `X·op(A) = alpha·B`
/// (`Side::Right`); `X` overwrites `B`.
#[allow(clippy::too_many_arguments)]
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    if alpha != T::one() {
        for j in 0..n {
            for x in &mut b[j * ldb..j * ldb + m] {
                *x = if alpha.is_zero() { T::zero() } else { alpha * *x };
            }
        }
    }
    if m == 0 || n == 0 {
        return;
    }
    let unit = diag == Diag::Unit;
    match side {
        Side::Left => match (trans.is_transposed(), uplo) {
            (false, Uplo::Lower) => {
                // Forward substitution, vectorized across all right-hand
                // sides: for each pivot k, update rows k+1.. of every column.
                for k in 0..m {
                    let akk = a[k + k * lda];
                    for j in 0..n {
                        let col = &mut b[j * ldb..j * ldb + m];
                        if !unit {
                            col[k] = col[k] / akk;
                        }
                        let t = col[k];
                        if !t.is_zero() {
                            for (i, ci) in col.iter_mut().enumerate().take(m).skip(k + 1) {
                                *ci -= t * a[i + k * lda];
                            }
                        }
                    }
                }
            }
            (false, Uplo::Upper) => {
                for k in (0..m).rev() {
                    let akk = a[k + k * lda];
                    for j in 0..n {
                        let col = &mut b[j * ldb..j * ldb + m];
                        if !unit {
                            col[k] = col[k] / akk;
                        }
                        let t = col[k];
                        if !t.is_zero() {
                            for (i, ci) in col.iter_mut().enumerate().take(k) {
                                *ci -= t * a[i + k * lda];
                            }
                        }
                    }
                }
            }
            (true, _) => {
                // op(A)ᵀ or op(A)ᴴ solve, column by column.
                for j in 0..n {
                    let col = &mut b[j * ldb..j * ldb + m];
                    crate::l2::trsv(uplo, trans, diag, m, a, lda, col, 1);
                }
            }
        },
        Side::Right => {
            if m >= 12 {
                // Transpose, left-solve (unit-stride columns), transpose
                // back — the same trick as trmm's right side.
                let cjb = trans == Trans::ConjTrans;
                let mut bt = vec![T::zero(); n * m];
                for j in 0..n {
                    for i in 0..m {
                        let v = b[i + j * ldb];
                        bt[j + i * n] = if cjb { v.conj() } else { v };
                    }
                }
                let ltr = match trans {
                    Trans::No => Trans::Trans,
                    _ => Trans::No,
                };
                trsm(Side::Left, uplo, ltr, diag, n, m, T::one(), a, lda, &mut bt, n);
                for j in 0..n {
                    for i in 0..m {
                        let v = bt[j + i * n];
                        b[i + j * ldb] = if cjb { v.conj() } else { v };
                    }
                }
                return;
            }
            // X·op(A) = B  ⇔  op(A)ᵀ·Xᵀ = Bᵀ: solve along the rows of B,
            // composing the transposes (triangle of A is unchanged).
            for i in 0..m {
                let row = &mut b[i..];
                match trans {
                    Trans::No => crate::l2::trsv(uplo, Trans::Trans, diag, n, a, lda, row, ldb),
                    Trans::Trans => crate::l2::trsv(uplo, Trans::No, diag, n, a, lda, row, ldb),
                    Trans::ConjTrans => {
                        // X Aᴴ = B  ⇔  Ā Xᵀ = Bᵀ  ⇔  A conj(Xᵀ) = conj(Bᵀ).
                        crate::l1::lacgv(n, row, ldb);
                        crate::l2::trsv(uplo, Trans::No, diag, n, a, lda, row, ldb);
                        crate::l1::lacgv(n, row, ldb);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod striped_tests {
    use super::*;

    #[test]
    fn striped_split_matches_serial() {
        // Exercises the thread-stripe bookkeeping even on one core.
        let (m, n, k) = (13usize, 23usize, 9usize);
        let a: Vec<f64> = (0..m * k).map(|x| (x % 17) as f64 - 8.0).collect();
        let b: Vec<f64> = (0..k * n).map(|x| (x % 13) as f64 - 6.0).collect();
        for &tb in &[Trans::No, Trans::Trans] {
            let bb: Vec<f64> = if tb == Trans::No {
                b.clone()
            } else {
                // n × k layout for the transposed operand.
                let mut t = vec![0.0; n * k];
                for j in 0..n {
                    for l in 0..k {
                        t[j + l * n] = b[l + j * k];
                    }
                }
                t
            };
            let ldb = if tb == Trans::No { k } else { n };
            let mut c1 = vec![0.0f64; m * n];
            gemm_serial(Trans::No, tb, m, n, k, 1.0, &a, m, &bb, ldb, &mut c1, m);
            for stripes in [2usize, 3, 5] {
                let mut c2 = vec![0.0f64; m * n];
                gemm_striped(stripes, Trans::No, tb, m, n, k, 1.0, &a, m, &bb, ldb, &mut c2, m);
                for idx in 0..m * n {
                    assert!((c1[idx] - c2[idx]).abs() < 1e-12, "{tb:?} stripes={stripes} at {idx}");
                }
            }
        }
    }
}
