//! # la-blas — from-scratch generic BLAS
//!
//! The Basic Linear Algebra Subprograms the LAPACK substrate is built on
//! (paper §1.1: "LAPACK requires that highly optimized block matrix
//! operations be already implemented on each machine"). Everything here is
//! implemented from scratch, generic over [`la_core::Scalar`], so one
//! function covers the S/D/C/Z quadruple the paper's interface blocks
//! enumerate by hand.
//!
//! Conventions: column-major storage, explicit leading dimensions,
//! 0-based indices, strictly positive strides.

#![warn(missing_docs)]
// Fortran-convention numerics: indexed loops over strided buffers, long
// LAPACK argument lists and in-place `x = x op y` updates are the house
// style here (they mirror the reference BLAS/LAPACK routines line for
// line), so the corresponding pedantic lints are disabled crate-wide.
#![allow(
    clippy::assign_op_pattern,
    clippy::too_many_arguments,
    clippy::type_complexity,
    clippy::needless_range_loop,
    clippy::manual_memcpy,
    clippy::manual_swap
)]

pub(crate) mod abft;
pub mod batch;
pub(crate) mod halfp;
pub mod kernel;
pub mod l1;
pub mod l2;
pub mod l3;
pub mod pack;

pub use batch::{gemm_batch, GemmJob};
pub use l1::{
    asum, axpy, copy, dotc, dotu, iamax, lacgv, lassq, nrm2, rot, rotg, rscal, scal, swap,
};
pub use l2::{
    gbmv, gemv, gerc, geru, hemv, her, her2, sbmv, spmv, spr2, symv, syr, syr2, tbsv, tpmv, tpsv,
    trmv, trsv,
};
pub use l3::{gemm, herk, symm, syr2k, syrk, trmm, trsm};
