//! Property-based tests for the BLAS layer: algebraic identities that
//! must hold for any input (within roundoff), across shapes and strides.
//!
//! Dependency-free: each property is checked over a deterministic sweep of
//! seeded pseudo-random cases (SplitMix64) instead of a proptest strategy,
//! so the suite runs fully offline.

use la_blas::*;
use la_core::{Diag, Side, Trans, Uplo, C64};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e3779b97f4a7c15))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    /// Uniform in [-1, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }
    fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
    fn vec_f64(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_f64()).collect()
    }
}

const CASES: usize = 96;

#[test]
fn axpy_is_linear() {
    let mut rng = Rng::new(11);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 16);
        let (a, b) = (rng.next_f64(), rng.next_f64());
        let x = rng.vec_f64(n);
        let y0 = rng.vec_f64(n);
        // axpy(a) then axpy(b) == axpy(a + b).
        let mut y1 = y0.clone();
        axpy(n, a, &x, 1, &mut y1, 1);
        axpy(n, b, &x, 1, &mut y1, 1);
        let mut y2 = y0.clone();
        axpy(n, a + b, &x, 1, &mut y2, 1);
        for i in 0..n {
            assert!((y1[i] - y2[i]).abs() < 1e-12);
        }
    }
}

#[test]
fn dot_is_bilinear_and_symmetric() {
    let mut rng = Rng::new(12);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 16);
        let x = rng.vec_f64(n);
        let y = rng.vec_f64(n);
        assert!((dotu(n, &x, 1, &y, 1) - dotu(n, &y, 1, &x, 1)).abs() < 1e-13);
        // Cauchy–Schwarz.
        let d = dotu(n, &x, 1, &y, 1).abs();
        assert!(d <= nrm2(n, &x, 1) * nrm2(n, &y, 1) + 1e-12);
    }
}

#[test]
fn nrm2_stride_invariant() {
    let mut rng = Rng::new(13);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 12);
        let inc = rng.range_usize(1, 4);
        let xs = rng.vec_f64(n * inc);
        let gathered: Vec<f64> = (0..n).map(|i| xs[i * inc]).collect();
        let a: f64 = nrm2(n, &xs, inc);
        let b: f64 = nrm2(n, &gathered, 1);
        assert!((a - b).abs() < 1e-13 * (1.0 + b));
    }
}

#[test]
fn gemv_matches_manual() {
    let mut rng = Rng::new(14);
    for _ in 0..CASES {
        let (m, n) = (rng.range_usize(1, 10), rng.range_usize(1, 10));
        let a = rng.vec_f64(m * n);
        let x = rng.vec_f64(n);
        let mut y = vec![0.0f64; m];
        gemv(Trans::No, m, n, 1.0, &a, m, &x, 1, 0.0, &mut y, 1);
        for i in 0..m {
            let want: f64 = (0..n).map(|j| a[i + j * m] * x[j]).sum();
            assert!((y[i] - want).abs() < 1e-12 * (1.0 + want.abs()));
        }
    }
}

#[test]
fn gemm_associates_with_vectors() {
    // (A·B)·x == A·(B·x).
    let mut rng = Rng::new(15);
    for _ in 0..CASES {
        let (m, n, k1) = (
            rng.range_usize(1, 7),
            rng.range_usize(1, 7),
            rng.range_usize(1, 7),
        );
        let a = rng.vec_f64(m * k1);
        let b = rng.vec_f64(k1 * n);
        let x = rng.vec_f64(n);
        let mut ab = vec![0.0f64; m * n];
        gemm(
            Trans::No,
            Trans::No,
            m,
            n,
            k1,
            1.0,
            &a,
            m,
            &b,
            k1,
            0.0,
            &mut ab,
            m,
        );
        let mut abx = vec![0.0f64; m];
        gemv(Trans::No, m, n, 1.0, &ab, m, &x, 1, 0.0, &mut abx, 1);
        let mut bx = vec![0.0f64; k1];
        gemv(Trans::No, k1, n, 1.0, &b, k1, &x, 1, 0.0, &mut bx, 1);
        let mut a_bx = vec![0.0f64; m];
        gemv(Trans::No, m, k1, 1.0, &a, m, &bx, 1, 0.0, &mut a_bx, 1);
        for i in 0..m {
            assert!((abx[i] - a_bx[i]).abs() < 1e-11 * (1.0 + a_bx[i].abs()));
        }
    }
}

#[test]
fn complex_gemm_conj_transpose_identity() {
    // (A·Aᴴ)ᴴ = A·Aᴴ (the product is Hermitian).
    let mut rng = Rng::new(16);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 6);
        let a: Vec<C64> = (0..n * n)
            .map(|_| C64::new(rng.next_f64(), rng.next_f64()))
            .collect();
        let mut h = vec![C64::zero(); n * n];
        gemm(
            Trans::No,
            Trans::ConjTrans,
            n,
            n,
            n,
            C64::one(),
            &a,
            n,
            &a,
            n,
            C64::zero(),
            &mut h,
            n,
        );
        for j in 0..n {
            for i in 0..n {
                assert!((h[i + j * n] - h[j + i * n].conj()).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn symm_equals_gemm_on_symmetric_input() {
    let mut rng = Rng::new(17);
    for _ in 0..CASES {
        let (n, m) = (rng.range_usize(1, 7), rng.range_usize(1, 7));
        let mut s = vec![0.0f64; n * n];
        for j in 0..n {
            for i in 0..=j {
                let v = rng.next_f64();
                s[i + j * n] = v;
                s[j + i * n] = v;
            }
        }
        let b = rng.vec_f64(n * m);
        let mut c1 = vec![0.0f64; n * m];
        symm(
            false,
            Side::Left,
            Uplo::Upper,
            n,
            m,
            1.0,
            &s,
            n,
            &b,
            n,
            0.0,
            &mut c1,
            n,
        );
        let mut c2 = vec![0.0f64; n * m];
        gemm(
            Trans::No,
            Trans::No,
            n,
            m,
            n,
            1.0,
            &s,
            n,
            &b,
            n,
            0.0,
            &mut c2,
            n,
        );
        for k in 0..n * m {
            assert!((c1[k] - c2[k]).abs() < 1e-11);
        }
    }
}

#[test]
fn trsv_consistent_with_trsm() {
    let mut rng = Rng::new(18);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 8);
        let mut t = vec![0.0f64; n * n];
        for j in 0..n {
            for i in 0..=j {
                t[i + j * n] = rng.next_f64();
            }
            t[j + j * n] = 3.0 + t[j + j * n].abs();
        }
        let b = rng.vec_f64(n);
        let mut x1 = b.clone();
        trsv(Uplo::Upper, Trans::No, Diag::NonUnit, n, &t, n, &mut x1, 1);
        let mut x2 = b.clone();
        trsm(
            Side::Left,
            Uplo::Upper,
            Trans::No,
            Diag::NonUnit,
            n,
            1,
            1.0,
            &t,
            n,
            &mut x2,
            n,
        );
        for i in 0..n {
            assert!((x1[i] - x2[i]).abs() < 1e-12);
        }
    }
}

#[test]
fn rot_preserves_norm() {
    let mut rng = Rng::new(19);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 10);
        let theta = (rng.next_f64() + 1.0) * std::f64::consts::PI;
        let mut x = rng.vec_f64(n);
        let mut y = rng.vec_f64(n);
        let before = (nrm2(n, &x, 1).powi(2) + nrm2(n, &y, 1).powi(2)).sqrt();
        rot(n, &mut x, 1, &mut y, 1, theta.cos(), theta.sin());
        let after = (nrm2(n, &x, 1).powi(2) + nrm2(n, &y, 1).powi(2)).sqrt();
        assert!((before - after).abs() < 1e-12 * (1.0 + before));
    }
}

#[test]
fn iamax_finds_maximum() {
    let mut rng = Rng::new(20);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 20);
        let x = rng.vec_f64(n);
        let k = iamax(n, &x, 1);
        for &v in &x {
            assert!(v.abs() <= x[k].abs() + 1e-15);
        }
    }
}

#[test]
fn gemm_zero_dimensions_are_noops() {
    let a: Vec<f64> = vec![];
    let b: Vec<f64> = vec![];
    let mut c: Vec<f64> = vec![];
    gemm(
        Trans::No,
        Trans::No,
        0,
        0,
        0,
        1.0,
        &a,
        1,
        &b,
        1,
        0.0,
        &mut c,
        1,
    );
    // k = 0 with beta = 2: C scales only.
    let mut c = vec![1.0f64, 2.0];
    gemm(
        Trans::No,
        Trans::No,
        2,
        1,
        0,
        1.0,
        &a,
        2,
        &b,
        1,
        2.0,
        &mut c,
        2,
    );
    assert_eq!(c, vec![2.0, 4.0]);
}

#[test]
fn gemm_beta_zero_overwrites_nan() {
    // beta = 0 must clear even NaN-poisoned C (the BLAS convention).
    let a = vec![1.0f64];
    let b = vec![1.0f64];
    let mut c = vec![f64::NAN];
    gemm(
        Trans::No,
        Trans::No,
        1,
        1,
        1,
        1.0,
        &a,
        1,
        &b,
        1,
        0.0,
        &mut c,
        1,
    );
    assert_eq!(c[0], 1.0);
}
