//! Property-based tests for the BLAS layer: algebraic identities that
//! must hold for any input (within roundoff), across shapes and strides.

use la_blas::*;
use la_core::{Diag, Side, Trans, Uplo, C64};
use proptest::prelude::*;

fn val() -> impl Strategy<Value = f64> {
    -1.0f64..1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn axpy_is_linear(n in 1usize..16, a in val(), b in val(), seed in 0u64..500) {
        let mut k = seed;
        let mut next = move || {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((k >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let y0: Vec<f64> = (0..n).map(|_| next()).collect();
        // axpy(a) then axpy(b) == axpy(a + b).
        let mut y1 = y0.clone();
        axpy(n, a, &x, 1, &mut y1, 1);
        axpy(n, b, &x, 1, &mut y1, 1);
        let mut y2 = y0.clone();
        axpy(n, a + b, &x, 1, &mut y2, 1);
        for i in 0..n {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn dot_is_bilinear_and_symmetric(n in 1usize..16, seed in 0u64..500) {
        let mut k = seed;
        let mut next = move || {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((k >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let y: Vec<f64> = (0..n).map(|_| next()).collect();
        prop_assert!((dotu(n, &x, 1, &y, 1) - dotu(n, &y, 1, &x, 1)).abs() < 1e-13);
        // Cauchy–Schwarz.
        let d = dotu(n, &x, 1, &y, 1).abs();
        prop_assert!(d <= nrm2(n, &x, 1) * nrm2(n, &y, 1) + 1e-12);
    }

    #[test]
    fn nrm2_stride_invariant(n in 1usize..12, inc in 1usize..4, seed in 0u64..500) {
        let mut k = seed;
        let mut next = move || {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((k >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let xs: Vec<f64> = (0..n * inc).map(|_| next()).collect();
        let gathered: Vec<f64> = (0..n).map(|i| xs[i * inc]).collect();
        let a: f64 = nrm2(n, &xs, inc);
        let b: f64 = nrm2(n, &gathered, 1);
        prop_assert!((a - b).abs() < 1e-13 * (1.0 + b));
    }

    #[test]
    fn gemv_matches_manual(m in 1usize..10, n in 1usize..10, seed in 0u64..500) {
        let mut k = seed;
        let mut next = move || {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((k >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a: Vec<f64> = (0..m * n).map(|_| next()).collect();
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut y = vec![0.0f64; m];
        gemv(Trans::No, m, n, 1.0, &a, m, &x, 1, 0.0, &mut y, 1);
        for i in 0..m {
            let want: f64 = (0..n).map(|j| a[i + j * m] * x[j]).sum();
            prop_assert!((y[i] - want).abs() < 1e-12 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn gemm_associates_with_vectors(m in 1usize..7, n in 1usize..7, k1 in 1usize..7, seed in 0u64..500) {
        // (A·B)·x == A·(B·x).
        let mut st = seed;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((st >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a: Vec<f64> = (0..m * k1).map(|_| next()).collect();
        let b: Vec<f64> = (0..k1 * n).map(|_| next()).collect();
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut ab = vec![0.0f64; m * n];
        gemm(Trans::No, Trans::No, m, n, k1, 1.0, &a, m, &b, k1, 0.0, &mut ab, m);
        let mut abx = vec![0.0f64; m];
        gemv(Trans::No, m, n, 1.0, &ab, m, &x, 1, 0.0, &mut abx, 1);
        let mut bx = vec![0.0f64; k1];
        gemv(Trans::No, k1, n, 1.0, &b, k1, &x, 1, 0.0, &mut bx, 1);
        let mut a_bx = vec![0.0f64; m];
        gemv(Trans::No, m, k1, 1.0, &a, m, &bx, 1, 0.0, &mut a_bx, 1);
        for i in 0..m {
            prop_assert!((abx[i] - a_bx[i]).abs() < 1e-11 * (1.0 + a_bx[i].abs()));
        }
    }

    #[test]
    fn complex_gemm_conj_transpose_identity(n in 1usize..6, seed in 0u64..300) {
        // (A·Aᴴ)ᴴ = A·Aᴴ (the product is Hermitian).
        let mut st = seed;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((st >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a: Vec<C64> = (0..n * n).map(|_| C64::new(next(), next())).collect();
        let mut h = vec![C64::zero(); n * n];
        gemm(Trans::No, Trans::ConjTrans, n, n, n, C64::one(), &a, n, &a, n, C64::zero(), &mut h, n);
        for j in 0..n {
            for i in 0..n {
                prop_assert!((h[i + j * n] - h[j + i * n].conj()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn symm_equals_gemm_on_symmetric_input(n in 1usize..7, m in 1usize..7, seed in 0u64..300) {
        let mut st = seed;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((st >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut s = vec![0.0f64; n * n];
        for j in 0..n {
            for i in 0..=j {
                let v = next();
                s[i + j * n] = v;
                s[j + i * n] = v;
            }
        }
        let b: Vec<f64> = (0..n * m).map(|_| next()).collect();
        let mut c1 = vec![0.0f64; n * m];
        symm(false, Side::Left, Uplo::Upper, n, m, 1.0, &s, n, &b, n, 0.0, &mut c1, n);
        let mut c2 = vec![0.0f64; n * m];
        gemm(Trans::No, Trans::No, n, m, n, 1.0, &s, n, &b, n, 0.0, &mut c2, n);
        for k in 0..n * m {
            prop_assert!((c1[k] - c2[k]).abs() < 1e-11);
        }
    }

    #[test]
    fn trsv_consistent_with_trsm(n in 1usize..8, seed in 0u64..300) {
        let mut st = seed;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((st >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut t = vec![0.0f64; n * n];
        for j in 0..n {
            for i in 0..=j {
                t[i + j * n] = next();
            }
            t[j + j * n] = 3.0 + t[j + j * n].abs();
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut x1 = b.clone();
        trsv(Uplo::Upper, Trans::No, Diag::NonUnit, n, &t, n, &mut x1, 1);
        let mut x2 = b.clone();
        trsm(Side::Left, Uplo::Upper, Trans::No, Diag::NonUnit, n, 1, 1.0, &t, n, &mut x2, n);
        for i in 0..n {
            prop_assert!((x1[i] - x2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn rot_preserves_norm(n in 1usize..10, theta in 0.0f64..6.28, seed in 0u64..300) {
        let mut st = seed;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((st >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut y: Vec<f64> = (0..n).map(|_| next()).collect();
        let before = (nrm2(n, &x, 1).powi(2) + nrm2(n, &y, 1).powi(2)).sqrt();
        rot(n, &mut x, 1, &mut y, 1, theta.cos(), theta.sin());
        let after = (nrm2(n, &x, 1).powi(2) + nrm2(n, &y, 1).powi(2)).sqrt();
        prop_assert!((before - after).abs() < 1e-12 * (1.0 + before));
    }

    #[test]
    fn iamax_finds_maximum(n in 1usize..20, seed in 0u64..300) {
        let mut st = seed;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((st >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let k = iamax(n, &x, 1);
        for &v in &x {
            prop_assert!(v.abs() <= x[k].abs() + 1e-15);
        }
    }
}

#[test]
fn gemm_zero_dimensions_are_noops() {
    let a: Vec<f64> = vec![];
    let b: Vec<f64> = vec![];
    let mut c: Vec<f64> = vec![];
    gemm(Trans::No, Trans::No, 0, 0, 0, 1.0, &a, 1, &b, 1, 0.0, &mut c, 1);
    // k = 0 with beta = 2: C scales only.
    let mut c = vec![1.0f64, 2.0];
    gemm(Trans::No, Trans::No, 2, 1, 0, 1.0, &a, 2, &b, 1, 2.0, &mut c, 2);
    assert_eq!(c, vec![2.0, 4.0]);
}

#[test]
fn gemm_beta_zero_overwrites_nan() {
    // beta = 0 must clear even NaN-poisoned C (the BLAS convention).
    let a = vec![1.0f64];
    let b = vec![1.0f64];
    let mut c = vec![f64::NAN];
    gemm(Trans::No, Trans::No, 1, 1, 1, 1.0, &a, 1, &b, 1, 0.0, &mut c, 1);
    assert_eq!(c[0], 1.0);
}
