//! Cross-checks every BLAS routine against a naive reference
//! implementation, for all four scalar instantiations (S/D/C/Z) and a grid
//! of shapes, transposes, triangles and strides.

// The reference kernels mirror the BLAS argument lists verbatim.
#![allow(clippy::too_many_arguments)]

use la_blas::*;
use la_core::{Diag, RealScalar, Scalar, Side, Trans, Uplo, C32, C64};

/// Deterministic pseudo-random scalar stream (splitmix64-based) so tests
/// need no external RNG and are reproducible across platforms.
struct Stream(u64);

impl Stream {
    fn new(seed: u64) -> Self {
        Stream(seed)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn real(&mut self) -> f64 {
        // Uniform in [-1, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }
    fn scalar<T: Scalar>(&mut self) -> T {
        let re = self.real();
        let im = self.real();
        T::from_re_im(
            <T::Real as Scalar>::from_f64(re),
            <T::Real as Scalar>::from_f64(im),
        )
    }
    fn vec<T: Scalar>(&mut self, n: usize) -> Vec<T> {
        (0..n).map(|_| self.scalar()).collect()
    }
}

fn tol<T: Scalar>(n: usize) -> f64 {
    T::eps().to_f64() * 50.0 * (n as f64 + 1.0)
}

fn assert_close<T: Scalar>(got: &[T], want: &[T], scale: f64, ctx: &str) {
    assert_eq!(got.len(), want.len());
    let t = tol::<T>(got.len()) * scale.max(1.0);
    for (k, (&g, &w)) in got.iter().zip(want).enumerate() {
        let d = (g - w).abs().to_f64();
        assert!(
            d <= t,
            "{ctx}: element {k}: got {g}, want {w}, |diff| = {d:.3e} > {t:.3e}"
        );
    }
}

/// Naive dense op(A) as an (m, n, row-major closure) triple.
fn op_el<T: Scalar>(trans: Trans, a: &[T], lda: usize, i: usize, j: usize) -> T {
    match trans {
        Trans::No => a[i + j * lda],
        Trans::Trans => a[j + i * lda],
        Trans::ConjTrans => a[j + i * lda].conj(),
    }
}

fn gemm_ref<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    for j in 0..n {
        for i in 0..m {
            let mut s = T::zero();
            for l in 0..k {
                s += op_el(transa, a, lda, i, l) * op_el(transb, b, ldb, l, j);
            }
            let cc = &mut c[i + j * ldc];
            *cc = beta * *cc + alpha * s;
        }
    }
}

fn gemm_suite<T: Scalar + 'static>() {
    let mut rng = Stream::new(42);
    for &(m, n, k) in &[(1, 1, 1), (3, 2, 4), (7, 5, 6), (16, 16, 16), (33, 17, 25)] {
        for &ta in &[Trans::No, Trans::Trans, Trans::ConjTrans] {
            for &tb in &[Trans::No, Trans::Trans, Trans::ConjTrans] {
                let (am, an) = if ta == Trans::No { (m, k) } else { (k, m) };
                let (bm, bn) = if tb == Trans::No { (k, n) } else { (n, k) };
                let lda = am + 2;
                let ldb = bm + 1;
                let ldc = m + 3;
                let a = rng.vec::<T>(lda * an);
                let b = rng.vec::<T>(ldb * bn);
                let c0 = rng.vec::<T>(ldc * n);
                let alpha = rng.scalar::<T>();
                let beta = rng.scalar::<T>();
                let mut c = c0.clone();
                gemm(ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc);
                let mut cref = c0.clone();
                gemm_ref(
                    ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut cref, ldc,
                );
                assert_close(
                    &c,
                    &cref,
                    k as f64,
                    &format!("gemm {m}x{n}x{k} {ta:?} {tb:?}"),
                );
            }
        }
    }
}

#[test]
fn gemm_matches_reference_s() {
    gemm_suite::<f32>();
}
#[test]
fn gemm_matches_reference_d() {
    gemm_suite::<f64>();
}
#[test]
fn gemm_matches_reference_c() {
    gemm_suite::<C32>();
}
#[test]
fn gemm_matches_reference_z() {
    gemm_suite::<C64>();
}

#[test]
fn gemm_large_parallel_path() {
    // Big enough to cross the parallel threshold.
    let mut rng = Stream::new(7);
    let (m, n, k) = (96, 96, 96);
    let a = rng.vec::<f64>(m * k);
    let b = rng.vec::<f64>(k * n);
    let mut c = vec![0.0f64; m * n];
    gemm(
        Trans::No,
        Trans::No,
        m,
        n,
        k,
        1.0,
        &a,
        m,
        &b,
        k,
        0.0,
        &mut c,
        m,
    );
    let mut cref = vec![0.0f64; m * n];
    gemm_ref(
        Trans::No,
        Trans::No,
        m,
        n,
        k,
        1.0,
        &a,
        m,
        &b,
        k,
        0.0,
        &mut cref,
        m,
    );
    assert_close(&c, &cref, k as f64, "parallel gemm 96^3");
}

fn gemv_suite<T: Scalar>() {
    let mut rng = Stream::new(3);
    for &(m, n) in &[(1, 1), (4, 3), (9, 12), (17, 5)] {
        for &tr in &[Trans::No, Trans::Trans, Trans::ConjTrans] {
            for &(incx, incy) in &[(1usize, 1usize), (2, 3)] {
                let lda = m + 1;
                let a = rng.vec::<T>(lda * n);
                let (xl, yl) = if tr == Trans::No { (n, m) } else { (m, n) };
                let x = rng.vec::<T>(xl * incx);
                let y0 = rng.vec::<T>(yl * incy);
                let alpha = rng.scalar::<T>();
                let beta = rng.scalar::<T>();
                let mut y = y0.clone();
                gemv(tr, m, n, alpha, &a, lda, &x, incx, beta, &mut y, incy);
                // Reference via gemm on gathered vectors.
                let xg: Vec<T> = (0..xl).map(|i| x[i * incx]).collect();
                let mut yg: Vec<T> = (0..yl).map(|i| y0[i * incy]).collect();
                let (gm, gn) = if tr == Trans::No { (m, n) } else { (n, m) };
                gemm_ref(
                    tr,
                    Trans::No,
                    gm,
                    1,
                    gn,
                    alpha,
                    &a,
                    lda,
                    &xg,
                    gn.max(1),
                    beta,
                    &mut yg,
                    gm.max(1),
                );
                let got: Vec<T> = (0..yl).map(|i| y[i * incy]).collect();
                assert_close(
                    &got,
                    &yg,
                    n as f64,
                    &format!("gemv {m}x{n} {tr:?} incx={incx}"),
                );
            }
        }
    }
}

#[test]
fn gemv_matches_reference_all_types() {
    gemv_suite::<f32>();
    gemv_suite::<f64>();
    gemv_suite::<C32>();
    gemv_suite::<C64>();
}

#[test]
fn ger_variants() {
    let mut rng = Stream::new(5);
    let (m, n) = (6, 4);
    let x = rng.vec::<C64>(m);
    let y = rng.vec::<C64>(n);
    let alpha = rng.scalar::<C64>();
    let a0 = rng.vec::<C64>(m * n);

    let mut a = a0.clone();
    geru(m, n, alpha, &x, 1, &y, 1, &mut a, m);
    for j in 0..n {
        for i in 0..m {
            let want = a0[i + j * m] + alpha * x[i] * y[j];
            assert!((a[i + j * m] - want).abs() < 1e-12);
        }
    }

    let mut a = a0.clone();
    gerc(m, n, alpha, &x, 1, &y, 1, &mut a, m);
    for j in 0..n {
        for i in 0..m {
            let want = a0[i + j * m] + alpha * x[i] * y[j].conj();
            assert!((a[i + j * m] - want).abs() < 1e-12);
        }
    }
}

/// Builds a dense Hermitian (or symmetric) matrix and its triangle-only
/// representation for testing symv/hemv/syr/her/syr2/her2.
fn herm_pair(rng: &mut Stream, n: usize, conj: bool) -> (Vec<C64>, Vec<C64>) {
    let mut full = vec![C64::zero(); n * n];
    for j in 0..n {
        for i in 0..=j {
            let v: C64 = rng.scalar();
            let v = if i == j && conj {
                C64::from_real(v.re)
            } else {
                v
            };
            full[i + j * n] = v;
            full[j + i * n] = if conj { v.conj() } else { v };
        }
    }
    (full.clone(), full)
}

#[test]
fn symv_hemv_match_dense_gemv() {
    let mut rng = Stream::new(11);
    let n = 9;
    for conj in [false, true] {
        let (full, tri) = herm_pair(&mut rng, n, conj);
        let x = rng.vec::<C64>(n);
        let y0 = rng.vec::<C64>(n);
        let alpha = rng.scalar::<C64>();
        let beta = rng.scalar::<C64>();
        for uplo in [Uplo::Upper, Uplo::Lower] {
            // Poison the unused triangle to prove it is never read.
            let mut t = tri.clone();
            for j in 0..n {
                for i in 0..n {
                    let unused = match uplo {
                        Uplo::Upper => i > j,
                        Uplo::Lower => i < j,
                    };
                    if unused {
                        t[i + j * n] = C64::new(f64::NAN, f64::NAN);
                    }
                }
            }
            let mut y = y0.clone();
            if conj {
                hemv(uplo, n, alpha, &t, n, &x, 1, beta, &mut y, 1);
            } else {
                symv(uplo, n, alpha, &t, n, &x, 1, beta, &mut y, 1);
            }
            let mut yref = y0.clone();
            gemv(Trans::No, n, n, alpha, &full, n, &x, 1, beta, &mut yref, 1);
            assert_close(&y, &yref, n as f64, &format!("symv conj={conj} {uplo:?}"));
        }
    }
}

#[test]
fn rank_updates_preserve_structure() {
    let mut rng = Stream::new(13);
    let n = 7;
    let x = rng.vec::<C64>(n);
    let y = rng.vec::<C64>(n);
    for uplo in [Uplo::Upper, Uplo::Lower] {
        // her: A + alpha x x^H stays Hermitian with real diagonal.
        let (_, tri) = herm_pair(&mut rng, n, true);
        let mut a = tri.clone();
        her(uplo, n, 0.7, &x, 1, &mut a, n);
        for j in 0..n {
            assert!(a[j + j * n].im.abs() < 1e-14, "her diagonal must stay real");
            for i in 0..n {
                let stored = match uplo {
                    Uplo::Upper => i <= j,
                    Uplo::Lower => i >= j,
                };
                if stored {
                    let want = tri[i + j * n] + x[i] * x[j].conj() * C64::from_real(0.7);
                    assert!((a[i + j * n] - want).abs() < 1e-12);
                }
            }
        }
        // her2 against explicit formula.
        let (_, tri) = herm_pair(&mut rng, n, true);
        let mut a = tri.clone();
        let alpha = rng.scalar::<C64>();
        her2(uplo, n, alpha, &x, 1, &y, 1, &mut a, n);
        for j in 0..n {
            for i in 0..n {
                let stored = match uplo {
                    Uplo::Upper => i <= j,
                    Uplo::Lower => i >= j,
                };
                if stored {
                    let mut want = tri[i + j * n]
                        + alpha * x[i] * y[j].conj()
                        + alpha.conj() * y[i] * x[j].conj();
                    if i == j {
                        want = C64::from_real(want.re);
                    }
                    assert!(
                        (a[i + j * n] - want).abs() < 1e-12,
                        "her2 {uplo:?} ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn trmv_trsv_roundtrip() {
    let mut rng = Stream::new(17);
    let n = 10;
    for uplo in [Uplo::Upper, Uplo::Lower] {
        for trans in [Trans::No, Trans::Trans, Trans::ConjTrans] {
            for diag in [Diag::NonUnit, Diag::Unit] {
                // Well-conditioned triangular matrix.
                let mut a = rng.vec::<C64>(n * n);
                for j in 0..n {
                    a[j + j * n] = C64::from_real(3.0) + a[j + j * n];
                }
                let x0 = rng.vec::<C64>(n);
                let mut x = x0.clone();
                trmv(uplo, trans, diag, n, &a, n, &mut x, 1);
                trsv(uplo, trans, diag, n, &a, n, &mut x, 1);
                assert_close(
                    &x,
                    &x0,
                    n as f64,
                    &format!("trmv∘trsv {uplo:?} {trans:?} {diag:?}"),
                );
            }
        }
    }
}

#[test]
fn trsm_solves_and_trmm_inverts_it() {
    let mut rng = Stream::new(19);
    let (m, n) = (8, 5);
    for side in [Side::Left, Side::Right] {
        let na = if side == Side::Left { m } else { n };
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for trans in [Trans::No, Trans::Trans, Trans::ConjTrans] {
                for diag in [Diag::NonUnit, Diag::Unit] {
                    let mut a = rng.vec::<C64>(na * na);
                    for j in 0..na {
                        a[j + j * na] = C64::from_real(4.0) + a[j + j * na];
                    }
                    let b0 = rng.vec::<C64>(m * n);
                    let mut b = b0.clone();
                    let alpha = C64::new(1.5, -0.5);
                    trsm(side, uplo, trans, diag, m, n, alpha, &a, na, &mut b, m);
                    // Undo: X·op(A) (or op(A)·X) should give back alpha*B.
                    trmm(side, uplo, trans, diag, m, n, C64::one(), &a, na, &mut b, m);
                    let want: Vec<C64> = b0.iter().map(|&v| alpha * v).collect();
                    assert_close(
                        &b,
                        &want,
                        (m + n) as f64,
                        &format!("trsm/trmm {side:?} {uplo:?} {trans:?} {diag:?}"),
                    );
                }
            }
        }
    }
}

#[test]
fn syrk_herk_match_gemm() {
    let mut rng = Stream::new(23);
    let (n, k) = (7, 9);
    for trans in [Trans::No, Trans::Trans] {
        let (am, an) = if trans == Trans::No { (n, k) } else { (k, n) };
        let a = rng.vec::<C64>(am * an);
        // syrk vs gemm(A, A^T)
        let mut c = vec![C64::zero(); n * n];
        syrk(
            Uplo::Upper,
            trans,
            n,
            k,
            C64::one(),
            &a,
            am,
            C64::zero(),
            &mut c,
            n,
        );
        let mut cref = vec![C64::zero(); n * n];
        let other = if trans == Trans::No {
            Trans::Trans
        } else {
            Trans::No
        };
        gemm_ref(
            trans,
            other,
            n,
            n,
            k,
            C64::one(),
            &a,
            am,
            &a,
            am,
            C64::zero(),
            &mut cref,
            n,
        );
        for j in 0..n {
            for i in 0..=j {
                assert!(
                    (c[i + j * n] - cref[i + j * n]).abs() < 1e-12,
                    "syrk {trans:?}"
                );
            }
        }
        // herk vs gemm(A, A^H): use ConjTrans pairing.
        let mut c = vec![C64::zero(); n * n];
        herk(Uplo::Lower, trans, n, k, 1.0, &a, am, 0.0, &mut c, n);
        let mut cref = vec![C64::zero(); n * n];
        let other = if trans == Trans::No {
            Trans::ConjTrans
        } else {
            Trans::No
        };
        let first = if trans == Trans::No {
            Trans::No
        } else {
            Trans::ConjTrans
        };
        gemm_ref(
            first,
            other,
            n,
            n,
            k,
            C64::one(),
            &a,
            am,
            &a,
            am,
            C64::zero(),
            &mut cref,
            n,
        );
        for j in 0..n {
            for i in j..n {
                assert!(
                    (c[i + j * n] - cref[i + j * n]).abs() < 1e-12,
                    "herk {trans:?}"
                );
            }
        }
    }
}

#[test]
fn syr2k_matches_gemm_sum() {
    let mut rng = Stream::new(29);
    let (n, k) = (6, 4);
    let a = rng.vec::<f64>(n * k);
    let b = rng.vec::<f64>(n * k);
    let mut c = vec![0.0f64; n * n];
    syr2k(
        Uplo::Upper,
        Trans::No,
        n,
        k,
        2.0,
        &a,
        n,
        &b,
        n,
        0.0,
        &mut c,
        n,
    );
    let mut cref = vec![0.0f64; n * n];
    gemm_ref(
        Trans::No,
        Trans::Trans,
        n,
        n,
        k,
        2.0,
        &a,
        n,
        &b,
        n,
        0.0,
        &mut cref,
        n,
    );
    gemm_ref(
        Trans::No,
        Trans::Trans,
        n,
        n,
        k,
        2.0,
        &b,
        n,
        &a,
        n,
        1.0,
        &mut cref,
        n,
    );
    for j in 0..n {
        for i in 0..=j {
            assert!((c[i + j * n] - cref[i + j * n]).abs() < 1e-12);
        }
    }
}

#[test]
fn symm_matches_dense_gemm() {
    let mut rng = Stream::new(31);
    let (m, n) = (6, 5);
    for side in [Side::Left, Side::Right] {
        let na = if side == Side::Left { m } else { n };
        let (full_small, _) = herm_pair(&mut rng, na, true);
        let b = rng.vec::<C64>(m * n);
        let c0 = rng.vec::<C64>(m * n);
        let alpha = rng.scalar::<C64>();
        let beta = rng.scalar::<C64>();
        for uplo in [Uplo::Upper, Uplo::Lower] {
            let mut c = c0.clone();
            symm(
                true,
                side,
                uplo,
                m,
                n,
                alpha,
                &full_small,
                na,
                &b,
                m,
                beta,
                &mut c,
                m,
            );
            let mut cref = c0.clone();
            match side {
                Side::Left => gemm_ref(
                    Trans::No,
                    Trans::No,
                    m,
                    n,
                    m,
                    alpha,
                    &full_small,
                    na,
                    &b,
                    m,
                    beta,
                    &mut cref,
                    m,
                ),
                Side::Right => gemm_ref(
                    Trans::No,
                    Trans::No,
                    m,
                    n,
                    n,
                    alpha,
                    &b,
                    m,
                    &full_small,
                    na,
                    beta,
                    &mut cref,
                    m,
                ),
            }
            assert_close(
                &c,
                &cref,
                (m * n) as f64,
                &format!("hemm {side:?} {uplo:?}"),
            );
        }
    }
}

#[test]
fn band_routines_match_dense() {
    let mut rng = Stream::new(37);
    let (m, n, kl, ku) = (8, 8, 2, 1);
    // Dense banded matrix + its band storage.
    let mut dense = vec![C64::zero(); m * n];
    let ldab = kl + ku + 1;
    let mut band = vec![C64::zero(); ldab * n];
    for j in 0..n {
        for i in j.saturating_sub(ku)..(j + kl + 1).min(m) {
            let v: C64 = rng.scalar();
            dense[i + j * m] = v;
            band[ku + i - j + j * ldab] = v;
        }
    }
    let x = rng.vec::<C64>(m.max(n));
    for trans in [Trans::No, Trans::Trans, Trans::ConjTrans] {
        let ylen = if trans == Trans::No { m } else { n };
        let mut y = vec![C64::zero(); ylen];
        gbmv(
            trans,
            m,
            n,
            kl,
            ku,
            C64::one(),
            &band,
            ldab,
            &x,
            1,
            C64::zero(),
            &mut y,
            1,
        );
        let mut yref = vec![C64::zero(); ylen];
        gemv(
            trans,
            m,
            n,
            C64::one(),
            &dense,
            m,
            &x,
            1,
            C64::zero(),
            &mut yref,
            1,
        );
        assert_close(&y, &yref, n as f64, &format!("gbmv {trans:?}"));
    }

    // tbsv roundtrip on an upper-triangular band.
    let kd = 2;
    let ldab = kd + 1;
    let mut tband = vec![C64::zero(); ldab * n];
    let mut tdense = vec![C64::zero(); n * n];
    for j in 0..n {
        for i in j.saturating_sub(kd)..=j {
            let v: C64 = if i == j {
                C64::from_real(3.0) + rng.scalar()
            } else {
                rng.scalar()
            };
            tband[kd + i - j + j * ldab] = v;
            tdense[i + j * n] = v;
        }
    }
    for trans in [Trans::No, Trans::Trans, Trans::ConjTrans] {
        let x0 = rng.vec::<C64>(n);
        let mut xb = x0.clone();
        tbsv(
            Uplo::Upper,
            trans,
            Diag::NonUnit,
            n,
            kd,
            &tband,
            ldab,
            &mut xb,
            1,
        );
        let mut xd = x0.clone();
        trsv(Uplo::Upper, trans, Diag::NonUnit, n, &tdense, n, &mut xd, 1);
        assert_close(&xb, &xd, n as f64, &format!("tbsv {trans:?}"));
    }

    // sbmv vs dense hemv.
    let kd = 2;
    let ldab = kd + 1;
    let mut hb = vec![C64::zero(); ldab * n];
    let mut hd = vec![C64::zero(); n * n];
    for j in 0..n {
        for i in j.saturating_sub(kd)..=j {
            let v: C64 = if i == j {
                C64::from_real(rng.scalar::<C64>().re)
            } else {
                rng.scalar()
            };
            hb[kd + i - j + j * ldab] = v;
            hd[i + j * n] = v;
            hd[j + i * n] = v.conj();
        }
    }
    let x = rng.vec::<C64>(n);
    let mut y = vec![C64::zero(); n];
    sbmv(
        true,
        Uplo::Upper,
        n,
        kd,
        C64::one(),
        &hb,
        ldab,
        &x,
        1,
        C64::zero(),
        &mut y,
        1,
    );
    let mut yref = vec![C64::zero(); n];
    gemv(
        Trans::No,
        n,
        n,
        C64::one(),
        &hd,
        n,
        &x,
        1,
        C64::zero(),
        &mut yref,
        1,
    );
    assert_close(&y, &yref, n as f64, "hbmv");
}

#[test]
fn packed_routines_match_dense() {
    let mut rng = Stream::new(41);
    let n = 7;
    for uplo in [Uplo::Upper, Uplo::Lower] {
        // Hermitian dense + packed.
        let (full, _) = herm_pair(&mut rng, n, true);
        let mut ap = vec![C64::zero(); n * (n + 1) / 2];
        let idx = |i: usize, j: usize| -> usize {
            match uplo {
                Uplo::Upper => i + j * (j + 1) / 2,
                Uplo::Lower => i + j * (2 * n - j - 1) / 2,
            }
        };
        for j in 0..n {
            match uplo {
                Uplo::Upper => {
                    for i in 0..=j {
                        ap[idx(i, j)] = full[i + j * n];
                    }
                }
                Uplo::Lower => {
                    for i in j..n {
                        ap[idx(i, j)] = full[i + j * n];
                    }
                }
            }
        }
        let x = rng.vec::<C64>(n);
        let mut y = vec![C64::zero(); n];
        spmv(
            true,
            uplo,
            n,
            C64::one(),
            &ap,
            &x,
            1,
            C64::zero(),
            &mut y,
            1,
        );
        let mut yref = vec![C64::zero(); n];
        gemv(
            Trans::No,
            n,
            n,
            C64::one(),
            &full,
            n,
            &x,
            1,
            C64::zero(),
            &mut yref,
            1,
        );
        assert_close(&y, &yref, n as f64, &format!("hpmv {uplo:?}"));

        // tpmv/tpsv roundtrip.
        let mut tp = vec![C64::zero(); n * (n + 1) / 2];
        for (k, v) in tp.iter_mut().enumerate() {
            *v = C64::new(0.1 * (k as f64 + 1.0), -0.05 * k as f64);
        }
        for j in 0..n {
            tp[idx(j, j)] = C64::from_real(2.0 + j as f64 * 0.1);
        }
        for trans in [Trans::No, Trans::Trans, Trans::ConjTrans] {
            let x0 = rng.vec::<C64>(n);
            let mut x = x0.clone();
            tpmv(uplo, trans, Diag::NonUnit, n, &tp, &mut x, 1);
            tpsv(uplo, trans, Diag::NonUnit, n, &tp, &mut x, 1);
            assert_close(&x, &x0, n as f64, &format!("tpmv∘tpsv {uplo:?} {trans:?}"));
        }
    }
}

#[test]
fn spr2_matches_dense_syr2() {
    let mut rng = Stream::new(43);
    let n = 6;
    for uplo in [Uplo::Upper, Uplo::Lower] {
        let x = rng.vec::<C64>(n);
        let y = rng.vec::<C64>(n);
        let alpha = rng.scalar::<C64>();
        let mut dense = vec![C64::zero(); n * n];
        let mut ap = vec![C64::zero(); n * (n + 1) / 2];
        her2(uplo, n, alpha, &x, 1, &y, 1, &mut dense, n);
        spr2(true, uplo, n, alpha, &x, 1, &y, 1, &mut ap);
        let idx = |i: usize, j: usize| -> usize {
            match uplo {
                Uplo::Upper => i + j * (j + 1) / 2,
                Uplo::Lower => i + j * (2 * n - j - 1) / 2,
            }
        };
        for j in 0..n {
            let range: Vec<usize> = match uplo {
                Uplo::Upper => (0..=j).collect(),
                Uplo::Lower => (j..n).collect(),
            };
            for i in range {
                assert!((ap[idx(i, j)] - dense[i + j * n]).abs() < 1e-12);
            }
        }
    }
}
