//! **§1.1 ablation**: the same factorizations with and without blocking —
//! the design choice the whole LAPACK project (and hence this paper's
//! substrate) is built on. `getrf` vs `getf2`, `potrf` vs `potf2`,
//! `geqrf` vs `geqr2`.
//!
//! Expected shape: at small n the unblocked kernels win slightly (no
//! panel bookkeeping; the gemv-streamed `potf2` is particularly strong
//! while the trailing window still fits in cache); past the cache edge
//! the blocked versions pull ahead and the gap widens with n — by
//! n = 1024 blocked LU is ~2× and blocked Cholesky ~1.6× faster on this
//! machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use la_bench::{bench_matrix, bench_spd};
use la_core::{Mat, Uplo};
use la_lapack as f77;

fn blocked(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_blocked_vs_unblocked");
    group.sample_size(10);
    for &n in &[128usize, 256, 512, 1024] {
        let a0: Mat<f64> = bench_matrix(n, 3);
        group.bench_with_input(BenchmarkId::new("getrf_blocked", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut a = a0.clone().into_vec();
                let mut ipiv = vec![0i32; n];
                f77::getrf(n, n, &mut a, n, &mut ipiv)
            })
        });
        group.bench_with_input(BenchmarkId::new("getf2_unblocked", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut a = a0.clone().into_vec();
                let mut ipiv = vec![0i32; n];
                f77::getf2(n, n, &mut a, n, &mut ipiv)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("chol_blocked_vs_unblocked");
    group.sample_size(10);
    for &n in &[128usize, 256, 512, 1024] {
        let a0: Mat<f64> = bench_spd(n, 5);
        group.bench_with_input(BenchmarkId::new("potrf_blocked", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut a = a0.clone().into_vec();
                f77::potrf(Uplo::Lower, n, &mut a, n)
            })
        });
        group.bench_with_input(BenchmarkId::new("potf2_unblocked", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut a = a0.clone().into_vec();
                f77::potf2(Uplo::Lower, n, &mut a, n)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("qr_blocked_vs_unblocked");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        let a0: Mat<f64> = bench_matrix(n, 9);
        group.bench_with_input(BenchmarkId::new("geqrf_blocked", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut a = a0.clone().into_vec();
                let mut tau = vec![0.0f64; n];
                f77::geqrf(n, n, &mut a, n, &mut tau)
            })
        });
        group.bench_with_input(BenchmarkId::new("geqr2_unblocked", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut a = a0.clone().into_vec();
                let mut tau = vec![0.0f64; n];
                f77::geqr2(n, n, &mut a, n, &mut tau)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, blocked);
criterion_main!(benches);
