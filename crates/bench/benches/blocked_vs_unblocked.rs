//! **§1.1 ablation**: the same factorizations with and without blocking —
//! the design choice the whole LAPACK project (and hence this paper's
//! substrate) is built on. `getrf` vs `getf2`, `potrf` vs `potf2`,
//! `geqrf` vs `geqr2`.
//!
//! Expected shape: at small n the unblocked kernels win slightly (no
//! panel bookkeeping; the gemv-streamed `potf2` is particularly strong
//! while the trailing window still fits in cache); past the cache edge
//! the blocked versions pull ahead and the gap widens with n — by
//! n = 1024 blocked LU is ~2× and blocked Cholesky ~1.6× faster on this
//! machine.
//!
//! Plain `harness = false` binary timed with `std::time` — no criterion.

use la_bench::{bench_matrix, bench_spd, timeit};
use la_core::{Mat, Uplo};
use la_lapack as f77;

fn main() {
    println!("== LU: getrf (blocked) vs getf2 (unblocked) ==");
    for &n in &[128usize, 256, 512, 1024] {
        let a0: Mat<f64> = bench_matrix(n, 3);
        let reps = if n <= 256 { 5 } else { 2 };
        let t_blk = timeit(reps, || {
            let mut a = a0.clone().into_vec();
            let mut ipiv = vec![0i32; n];
            f77::getrf(n, n, &mut a, n, &mut ipiv)
        });
        let t_unb = timeit(reps, || {
            let mut a = a0.clone().into_vec();
            let mut ipiv = vec![0i32; n];
            f77::getf2(n, n, &mut a, n, &mut ipiv)
        });
        println!(
            "n={n:5}  getrf {:9.2} ms   getf2 {:9.2} ms   ratio {:4.2}x",
            t_blk * 1e3,
            t_unb * 1e3,
            t_unb / t_blk
        );
    }

    println!("== Cholesky: potrf (blocked) vs potf2 (unblocked) ==");
    for &n in &[128usize, 256, 512, 1024] {
        let a0: Mat<f64> = bench_spd(n, 5);
        let reps = if n <= 256 { 5 } else { 2 };
        let t_blk = timeit(reps, || {
            let mut a = a0.clone().into_vec();
            f77::potrf(Uplo::Lower, n, &mut a, n)
        });
        let t_unb = timeit(reps, || {
            let mut a = a0.clone().into_vec();
            f77::potf2(Uplo::Lower, n, &mut a, n)
        });
        println!(
            "n={n:5}  potrf {:9.2} ms   potf2 {:9.2} ms   ratio {:4.2}x",
            t_blk * 1e3,
            t_unb * 1e3,
            t_unb / t_blk
        );
    }

    println!("== QR: geqrf (blocked) vs geqr2 (unblocked) ==");
    for &n in &[128usize, 256] {
        let a0: Mat<f64> = bench_matrix(n, 9);
        let t_blk = timeit(5, || {
            let mut a = a0.clone().into_vec();
            let mut tau = vec![0.0f64; n];
            f77::geqrf(n, n, &mut a, n, &mut tau)
        });
        let t_unb = timeit(5, || {
            let mut a = a0.clone().into_vec();
            let mut tau = vec![0.0f64; n];
            f77::geqr2(n, n, &mut a, n, &mut tau)
        });
        println!(
            "n={n:5}  geqrf {:9.2} ms   geqr2 {:9.2} ms   ratio {:4.2}x",
            t_blk * 1e3,
            t_unb * 1e3,
            t_unb / t_blk
        );
    }
}
