//! **§1.1 claim**: "LAPACK addresses this problem by reorganizing the
//! algorithms to use block matrix operations … and so provide a
//! transportable way to achieve high efficiency."
//!
//! Measures the Level-3 substrate directly: the naive triple loop (the
//! memory access pattern the paper says EISPACK/LINPACK are stuck with)
//! against this library's packed register-tiled GEMM (which also splits
//! C's columns across threads when more than one core is available),
//! plus `trsm`/`syrk`, the operations that dominate the blocked
//! factorizations' trailing updates.
//!
//! Expected shape: blocked ≫ naive once the matrices exceed the cache
//! (≈15× at n = 512 on the single-core reference machine).
//!
//! Plain `harness = false` binary timed with `std::time` — no criterion,
//! so the suite builds with no network access.

use la_bench::{gemm_naive, timeit};
use la_core::Trans;

fn main() {
    println!("== gemm_f64: naive ijl vs blocked (GFLOP/s) ==");
    for &n in &[64usize, 128, 256, 512] {
        let a: Vec<f64> = (0..n * n).map(|k| (k % 97) as f64 / 97.0).collect();
        let b: Vec<f64> = (0..n * n).map(|k| (k % 89) as f64 / 89.0).collect();
        let flops = 2.0 * (n as f64).powi(3);
        let reps = if n <= 128 { 10 } else { 3 };
        let mut cbuf = vec![0.0f64; n * n];
        let t_naive = timeit(reps, || gemm_naive(n, n, n, &a, &b, &mut cbuf));
        let t_blocked = timeit(reps, || {
            la_blas::gemm(
                Trans::No,
                Trans::No,
                n,
                n,
                n,
                1.0,
                &a,
                n,
                &b,
                n,
                0.0,
                &mut cbuf,
                n,
            )
        });
        println!(
            "n={n:4}  naive {:8.2} ms ({:6.2} GF/s)   blocked {:8.2} ms ({:6.2} GF/s)   ratio {:5.1}x",
            t_naive * 1e3,
            flops / t_naive / 1e9,
            t_blocked * 1e3,
            flops / t_blocked / 1e9,
            t_naive / t_blocked
        );
    }

    println!("== trsm / syrk f64 ==");
    for &n in &[128usize, 384] {
        let mut t: Vec<f64> = (0..n * n).map(|k| (k % 31) as f64 / 31.0).collect();
        for i in 0..n {
            t[i + i * n] = 4.0;
        }
        let b0: Vec<f64> = (0..n * n).map(|k| (k % 53) as f64 / 53.0).collect();
        let t_trsm = timeit(5, || {
            let mut b = b0.clone();
            la_blas::trsm(
                la_core::Side::Left,
                la_core::Uplo::Lower,
                Trans::No,
                la_core::Diag::NonUnit,
                n,
                n,
                1.0,
                &t,
                n,
                &mut b,
                n,
            );
            b
        });
        let mut cbuf = vec![0.0f64; n * n];
        let t_syrk = timeit(5, || {
            la_blas::syrk(
                la_core::Uplo::Lower,
                Trans::No,
                n,
                n,
                1.0,
                &b0,
                n,
                0.0,
                &mut cbuf,
                n,
            )
        });
        println!(
            "n={n:4}  trsm {:8.2} ms   syrk {:8.2} ms",
            t_trsm * 1e3,
            t_syrk * 1e3
        );
    }
}
