//! **§1.1 claim**: "LAPACK addresses this problem by reorganizing the
//! algorithms to use block matrix operations … and so provide a
//! transportable way to achieve high efficiency."
//!
//! Measures the Level-3 substrate directly: the naive triple loop (the
//! memory access pattern the paper says EISPACK/LINPACK are stuck with)
//! against this library's packed register-tiled GEMM (which also splits
//! C's columns across threads when more than one core is available).
//!
//! Expected shape: blocked ≫ naive once the matrices exceed the cache
//! (≈15× at n = 512 on the single-core reference machine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use la_bench::gemm_naive;
use la_core::Trans;

fn blas3(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_f64");
    group.sample_size(10);
    for &n in &[64usize, 128, 256, 512] {
        let a: Vec<f64> = (0..n * n).map(|k| (k % 97) as f64 / 97.0).collect();
        let b: Vec<f64> = (0..n * n).map(|k| (k % 89) as f64 / 89.0).collect();
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("naive_ijl", n), &n, |bch, &n| {
            let mut cbuf = vec![0.0f64; n * n];
            bch.iter(|| gemm_naive(n, n, n, &a, &b, &mut cbuf))
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, &n| {
            let mut cbuf = vec![0.0f64; n * n];
            bch.iter(|| {
                // Stay under the parallel threshold by benchmarking a
                // column stripe sequentially... instead just call gemm
                // (it decides internally); the separate serial measurement
                // comes from the small sizes below the threshold.
                la_blas::gemm(Trans::No, Trans::No, n, n, n, 1.0, &a, n, &b, n, 0.0, &mut cbuf, n)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("trsm_syrk_f64");
    group.sample_size(10);
    for &n in &[128usize, 384] {
        let mut t: Vec<f64> = (0..n * n).map(|k| (k % 31) as f64 / 31.0).collect();
        for i in 0..n {
            t[i + i * n] = 4.0;
        }
        let b0: Vec<f64> = (0..n * n).map(|k| (k % 53) as f64 / 53.0).collect();
        group.bench_with_input(BenchmarkId::new("trsm", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut b = b0.clone();
                la_blas::trsm(
                    la_core::Side::Left,
                    la_core::Uplo::Lower,
                    Trans::No,
                    la_core::Diag::NonUnit,
                    n,
                    n,
                    1.0,
                    &t,
                    n,
                    &mut b,
                    n,
                );
                b
            })
        });
        group.bench_with_input(BenchmarkId::new("syrk", n), &n, |bch, &n| {
            let mut cbuf = vec![0.0f64; n * n];
            bch.iter(|| {
                la_blas::syrk(la_core::Uplo::Lower, Trans::No, n, n, 1.0, &b0, n, 0.0, &mut cbuf, n)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, blas3);
criterion_main!(benches);
