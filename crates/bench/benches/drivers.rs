//! **Appendix G coverage bench**: one representative from each driver
//! family of the paper's routine list, timed through the `la90`
//! interface, in both single and double precision — the "similar
//! functionality … in both single and double precision" property of
//! §1.1 as a measurable artifact.
//!
//! Expected shape: structure exploitation pays — `posv < sysv < gesv`
//! on an SPD matrix; `gtsv`/`ptsv` are O(n) and essentially free;
//! `syevd` beats `syev` as n grows; `gesvd`/`geev` are the most
//! expensive.
//!
//! Plain `harness = false` binary timed with `std::time` — no criterion.

use la90::Jobz;
use la_bench::{bench_herm, bench_matrix, bench_spd, rowsum_rhs, timeit};
use la_core::{Mat, Scalar};

fn solvers<T: Scalar>(tag: &str) {
    let n = 256usize;
    let nrhs = 4usize;
    println!("== solvers_{tag}, n={n}, nrhs={nrhs} ==");
    let gen: Mat<T> = bench_matrix(n, 3);
    let spd: Mat<T> = bench_spd(n, 5);
    let herm: Mat<T> = bench_herm(n, 7);
    let b_gen = rowsum_rhs(&gen, nrhs);
    let b_spd = rowsum_rhs(&spd, nrhs);
    let b_herm = rowsum_rhs(&herm, nrhs);

    let t = timeit(5, || {
        let mut a = gen.clone();
        let mut b = b_gen.clone();
        la90::gesv(&mut a, &mut b).unwrap();
    });
    println!("LA_GESV  {:9.2} ms", t * 1e3);
    let t = timeit(5, || {
        let mut a = spd.clone();
        let mut b = b_spd.clone();
        la90::posv(&mut a, &mut b).unwrap();
    });
    println!("LA_POSV  {:9.2} ms", t * 1e3);
    let t = timeit(5, || {
        let mut a = herm.clone();
        let mut b = b_herm.clone();
        la90::hesv(&mut a, &mut b).unwrap();
    });
    println!("LA_SYSV  {:9.2} ms", t * 1e3);

    // O(n) structured solvers.
    let dl = vec![T::from_f64(1.0); n - 1];
    let d = vec![T::from_f64(5.0); n];
    let du = vec![T::from_f64(0.5); n - 1];
    let t = timeit(20, || {
        let mut dl = dl.clone();
        let mut d = d.clone();
        let mut du = du.clone();
        let mut b = vec![T::from_f64(1.0); n];
        la90::gtsv(&mut dl, &mut d, &mut du, &mut b).unwrap();
    });
    println!("LA_GTSV  {:9.3} ms", t * 1e3);
    let dr = vec![T::Real::from_f64(3.0); n];
    let er = vec![T::from_f64(1.0); n - 1];
    let t = timeit(20, || {
        let mut dr = dr.clone();
        let mut er = er.clone();
        let mut b = vec![T::from_f64(1.0); n];
        la90::ptsv::<T, _>(&mut dr, &mut er, &mut b).unwrap();
    });
    println!("LA_PTSV  {:9.3} ms", t * 1e3);
}

fn decompositions<T: Scalar + la90::EigDriver>(tag: &str) {
    for &n in &[64usize, 128] {
        println!("== decompositions_{tag}, n={n} ==");
        let herm: Mat<T> = bench_herm(n, 11);
        let gen: Mat<T> = bench_matrix(n, 13);
        let t = timeit(3, || {
            let mut a = herm.clone();
            la90::syev(&mut a, Jobz::Vectors).unwrap()
        });
        println!("LA_SYEV  {:9.2} ms", t * 1e3);
        let t = timeit(3, || {
            let mut a = herm.clone();
            la90::syevd(&mut a, Jobz::Vectors).unwrap()
        });
        println!("LA_SYEVD {:9.2} ms", t * 1e3);
        let t = timeit(3, || {
            let mut a = gen.clone();
            la90::gesvd(&mut a, true, true).unwrap()
        });
        println!("LA_GESVD {:9.2} ms", t * 1e3);
        let t = timeit(3, || {
            let mut a = gen.clone();
            la90::geev(&mut a, false, true).unwrap()
        });
        println!("LA_GEEV  {:9.2} ms", t * 1e3);
        let b0 = rowsum_rhs(&gen, 4);
        let t = timeit(3, || {
            let mut a = gen.clone();
            let mut b = b0.clone();
            la90::gels(&mut a, &mut b).unwrap();
        });
        println!("LA_GELS  {:9.2} ms", t * 1e3);
    }
}

fn main() {
    solvers::<f32>("s");
    solvers::<f64>("d");
    decompositions::<f64>("d");
    decompositions::<la_core::C64>("z");
}
