//! **Appendix G coverage bench**: one representative from each driver
//! family of the paper's routine list, timed through the `la90`
//! interface, in both single and double precision — the "similar
//! functionality … in both single and double precision" property of
//! §1.1 as a measurable artifact.
//!
//! Expected shape: structure exploitation pays — `posv < sysv < gesv`
//! on an SPD matrix; `gtsv`/`ptsv` are O(n) and essentially free;
//! `syevd` beats `syev` as n grows; `gesvd`/`geev` are the most
//! expensive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use la_bench::{bench_herm, bench_matrix, bench_spd, rowsum_rhs};
use la_core::{Mat, RealScalar, Scalar};
use la90::Jobz;

fn solvers<T: Scalar>(c: &mut Criterion, tag: &str) {
    let n = 256usize;
    let nrhs = 4usize;
    let mut group = c.benchmark_group(format!("solvers_{tag}_n{n}"));
    group.sample_size(10);
    let gen: Mat<T> = bench_matrix(n, 3);
    let spd: Mat<T> = bench_spd(n, 5);
    let herm: Mat<T> = bench_herm(n, 7);
    let b_gen = rowsum_rhs(&gen, nrhs);
    let b_spd = rowsum_rhs(&spd, nrhs);
    let b_herm = rowsum_rhs(&herm, nrhs);

    group.bench_function("LA_GESV", |bch| {
        bch.iter(|| {
            let mut a = gen.clone();
            let mut b = b_gen.clone();
            la90::gesv(&mut a, &mut b).unwrap();
        })
    });
    group.bench_function("LA_POSV", |bch| {
        bch.iter(|| {
            let mut a = spd.clone();
            let mut b = b_spd.clone();
            la90::posv(&mut a, &mut b).unwrap();
        })
    });
    group.bench_function("LA_SYSV", |bch| {
        bch.iter(|| {
            let mut a = herm.clone();
            let mut b = b_herm.clone();
            la90::hesv(&mut a, &mut b).unwrap();
        })
    });
    // O(n) structured solvers.
    let dl = vec![T::from_f64(1.0); n - 1];
    let d = vec![T::from_f64(5.0); n];
    let du = vec![T::from_f64(0.5); n - 1];
    group.bench_function("LA_GTSV", |bch| {
        bch.iter(|| {
            let mut dl = dl.clone();
            let mut d = d.clone();
            let mut du = du.clone();
            let mut b = vec![T::from_f64(1.0); n];
            la90::gtsv(&mut dl, &mut d, &mut du, &mut b).unwrap();
        })
    });
    let dr = vec![T::Real::from_f64(3.0); n];
    let er = vec![T::from_f64(1.0); n - 1];
    group.bench_function("LA_PTSV", |bch| {
        bch.iter(|| {
            let mut dr = dr.clone();
            let mut er = er.clone();
            let mut b = vec![T::from_f64(1.0); n];
            la90::ptsv::<T, _>(&mut dr, &mut er, &mut b).unwrap();
        })
    });
    group.finish();
}

fn decompositions<T: Scalar + la90::EigDriver>(c: &mut Criterion, tag: &str) {
    let mut group = c.benchmark_group(format!("decompositions_{tag}"));
    group.sample_size(10);
    for &n in &[64usize, 128] {
        let herm: Mat<T> = bench_herm(n, 11);
        let gen: Mat<T> = bench_matrix(n, 13);
        group.bench_with_input(BenchmarkId::new("LA_SYEV", n), &n, |bch, _| {
            bch.iter(|| {
                let mut a = herm.clone();
                la90::syev(&mut a, Jobz::Vectors).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("LA_SYEVD", n), &n, |bch, _| {
            bch.iter(|| {
                let mut a = herm.clone();
                la90::syevd(&mut a, Jobz::Vectors).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("LA_GESVD", n), &n, |bch, _| {
            bch.iter(|| {
                let mut a = gen.clone();
                la90::gesvd(&mut a, true, true).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("LA_GEEV", n), &n, |bch, _| {
            bch.iter(|| {
                let mut a = gen.clone();
                la90::geev(&mut a, false, true).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("LA_GELS", n), &n, |bch, _| {
            let b0 = rowsum_rhs(&gen, 4);
            bch.iter(|| {
                let mut a = gen.clone();
                let mut b = b0.clone();
                la90::gels(&mut a, &mut b).unwrap();
            })
        });
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    solvers::<f32>(c, "s");
    solvers::<f64>(c, "d");
    decompositions::<f64>(c, "d");
    decompositions::<la_core::C64>(c, "z");
}

criterion_group!(benches, all);
criterion_main!(benches);
