//! **Figure 3 (Example 3)**: `F77GESV` vs `F90GESV` at N = 500, NRHS = 2,
//! single precision — the wrapper-overhead experiment. Also sweeps N to
//! show where (if anywhere) the wrapper's checks and allocation matter.
//!
//! Expected shape (paper): the two times are indistinguishable; the
//! interface layer is free relative to the O(N³) factorization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use la_bench::{bench_matrix, rowsum_rhs};
use la_core::Mat;
use la_lapack as f77;

fn overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("example3_gesv_n500");
    group.sample_size(20);
    let n = 500usize;
    let nrhs = 2usize;
    let a0: Mat<f32> = bench_matrix(n, 1998);
    let b0 = rowsum_rhs(&a0, nrhs);

    group.bench_function("F77GESV", |bch| {
        bch.iter(|| {
            let mut a = a0.clone().into_vec();
            let mut b = b0.clone().into_vec();
            let mut ipiv = vec![0i32; n];
            let info = f77::gesv(n, nrhs, &mut a, n, &mut ipiv, &mut b, n);
            assert_eq!(info, 0);
            b
        })
    });
    group.bench_function("F90GESV", |bch| {
        bch.iter(|| {
            let mut a = a0.clone();
            let mut b = b0.clone();
            la90::gesv(&mut a, &mut b).unwrap();
            b
        })
    });
    group.finish();

    // N sweep: the relative overhead shrinks as N grows.
    let mut group = c.benchmark_group("example3_gesv_sweep");
    group.sample_size(20);
    for &n in &[50usize, 100, 200, 400] {
        let a0: Mat<f32> = bench_matrix(n, 7);
        let b0 = rowsum_rhs(&a0, nrhs);
        group.bench_with_input(BenchmarkId::new("F77GESV", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut a = a0.clone().into_vec();
                let mut b = b0.clone().into_vec();
                let mut ipiv = vec![0i32; n];
                f77::gesv(n, nrhs, &mut a, n, &mut ipiv, &mut b, n)
            })
        });
        group.bench_with_input(BenchmarkId::new("F90GESV", n), &n, |bch, _| {
            bch.iter(|| {
                let mut a = a0.clone();
                let mut b = b0.clone();
                la90::gesv(&mut a, &mut b).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, overhead);
criterion_main!(benches);
