//! **Figure 3 (Example 3)**: `F77GESV` vs `F90GESV` at N = 500, NRHS = 2,
//! single precision — the wrapper-overhead experiment. Also sweeps N to
//! show where (if anywhere) the wrapper's checks and allocation matter.
//!
//! Expected shape (paper): the two times are indistinguishable; the
//! interface layer is free relative to the O(N³) factorization.
//!
//! Plain `harness = false` binary timed with `std::time` — no criterion.

use la_bench::{bench_matrix, rowsum_rhs, timeit};
use la_core::Mat;
use la_lapack as f77;

fn measure(n: usize, nrhs: usize, seed: u64, reps: usize) -> (f64, f64) {
    let a0: Mat<f32> = bench_matrix(n, seed);
    let b0 = rowsum_rhs(&a0, nrhs);
    let t77 = timeit(reps, || {
        let mut a = a0.clone().into_vec();
        let mut b = b0.clone().into_vec();
        let mut ipiv = vec![0i32; n];
        let info = f77::gesv(n, nrhs, &mut a, n, &mut ipiv, &mut b, n);
        assert_eq!(info, 0);
        b
    });
    let t90 = timeit(reps, || {
        let mut a = a0.clone();
        let mut b = b0.clone();
        la90::gesv(&mut a, &mut b).unwrap();
        b
    });
    (t77, t90)
}

fn main() {
    println!("== Example 3: F77GESV vs F90GESV, N=500, NRHS=2, f32 ==");
    let (t77, t90) = measure(500, 2, 1998, 5);
    println!(
        "F77GESV {:8.2} ms   F90GESV {:8.2} ms   overhead {:+5.1}%",
        t77 * 1e3,
        t90 * 1e3,
        (t90 / t77 - 1.0) * 100.0
    );

    println!("== N sweep (relative overhead shrinks as N grows) ==");
    for &n in &[50usize, 100, 200, 400] {
        let (t77, t90) = measure(n, 2, 7, 10);
        println!(
            "n={n:4}  F77 {:8.3} ms   F90 {:8.3} ms   overhead {:+5.1}%",
            t77 * 1e3,
            t90 * 1e3,
            (t90 / t77 - 1.0) * 100.0
        );
    }
}
