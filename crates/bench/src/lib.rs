//! Shared helpers for the benchmark suite: deterministic test matrices of
//! every structure class, plus a deliberately naive reference GEMM used
//! as the "no blocking" baseline in the §1.1 experiments.

use la_core::{Mat, RealScalar, Scalar};
use la_lapack::{lagge, spectrum, Dist, Larnv, SpectrumMode};

/// A reproducible random general matrix with condition number ~100.
pub fn bench_matrix<T: Scalar>(n: usize, seed: u64) -> Mat<T> {
    let d = spectrum::<T::Real>(SpectrumMode::Geometric, n, T::Real::from_f64(100.0));
    let mut rng = Larnv::new(seed);
    Mat::from_col_major(n, n, lagge::<T>(&mut rng, n, n, &d))
}

/// A reproducible random Hermitian positive definite matrix.
pub fn bench_spd<T: Scalar>(n: usize, seed: u64) -> Mat<T> {
    let mut rng = Larnv::new(seed);
    let g: Mat<T> = Mat::from_fn(n, n, |_, _| rng.scalar(Dist::Normal));
    let mut a: Mat<T> = Mat::zeros(n, n);
    la_blas::gemm(
        la_core::Trans::ConjTrans,
        la_core::Trans::No,
        n,
        n,
        n,
        T::one(),
        g.as_slice(),
        n,
        g.as_slice(),
        n,
        T::zero(),
        a.as_mut_slice(),
        n,
    );
    for i in 0..n {
        a[(i, i)] += T::from_real(T::Real::from_usize(n));
    }
    a
}

/// A reproducible random Hermitian (indefinite) matrix.
pub fn bench_herm<T: Scalar>(n: usize, seed: u64) -> Mat<T> {
    let mut rng = Larnv::new(seed);
    let mut a: Mat<T> = Mat::zeros(n, n);
    for j in 0..n {
        for i in 0..=j {
            let v: T = if i == j {
                T::from_real(rng.real(Dist::Uniform11))
            } else {
                rng.scalar(Dist::Uniform11)
            };
            a[(i, j)] = v;
            a[(j, i)] = v.conj();
        }
    }
    a
}

/// The textbook three-loop GEMM with no blocking and the worst loop order
/// for column-major data — the "LINPACK-era memory access pattern" the
/// paper's §1.1 motivates against.
pub fn gemm_naive<T: Scalar>(m: usize, n: usize, k: usize, a: &[T], b: &[T], c: &mut [T]) {
    for i in 0..m {
        for j in 0..n {
            let mut s = T::zero();
            for l in 0..k {
                s += a[i + l * m] * b[l + j * k];
            }
            c[i + j * m] = s;
        }
    }
}

/// Right-hand side with known solution `x = (1, …, 1)ᵀ` (scaled per
/// column as in the paper's examples).
pub fn rowsum_rhs<T: Scalar>(a: &Mat<T>, nrhs: usize) -> Mat<T> {
    let (m, n) = a.shape();
    Mat::from_fn(m, nrhs, |i, j| {
        let mut s = T::zero();
        for kk in 0..n {
            s += a[(i, kk)];
        }
        s * T::from_f64((j + 1) as f64)
    })
}
