//! Shared helpers for the benchmark suite: deterministic test matrices of
//! every structure class, a deliberately naive reference GEMM used as the
//! "no blocking" baseline in the §1.1 experiments, a self-contained
//! SplitMix64 PRNG (no external `rand` — the suite must build offline),
//! and a minimal wall-clock timing harness replacing criterion.

use la_core::{Mat, RealScalar, Scalar};
use la_lapack::{lagge, spectrum, Dist, Larnv, SpectrumMode};

/// SplitMix64: tiny, deterministic, dependency-free PRNG for benchmark
/// data. Same stream on every host, so timings are comparable run to run.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the stream; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[-1, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }
}

/// Times `f` over `reps` repetitions and returns the *minimum* wall-clock
/// seconds per call (the usual low-noise estimator for single-threaded
/// kernels).
pub fn timeit<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// A reproducible random general matrix with condition number ~100.
pub fn bench_matrix<T: Scalar>(n: usize, seed: u64) -> Mat<T> {
    let d = spectrum::<T::Real>(SpectrumMode::Geometric, n, T::Real::from_f64(100.0));
    let mut rng = Larnv::new(seed);
    Mat::from_col_major(n, n, lagge::<T>(&mut rng, n, n, &d))
}

/// A reproducible random Hermitian positive definite matrix.
pub fn bench_spd<T: Scalar>(n: usize, seed: u64) -> Mat<T> {
    let mut rng = Larnv::new(seed);
    let g: Mat<T> = Mat::from_fn(n, n, |_, _| rng.scalar(Dist::Normal));
    let mut a: Mat<T> = Mat::zeros(n, n);
    la_blas::gemm(
        la_core::Trans::ConjTrans,
        la_core::Trans::No,
        n,
        n,
        n,
        T::one(),
        g.as_slice(),
        n,
        g.as_slice(),
        n,
        T::zero(),
        a.as_mut_slice(),
        n,
    );
    for i in 0..n {
        a[(i, i)] += T::from_real(T::Real::from_usize(n));
    }
    a
}

/// A reproducible random Hermitian (indefinite) matrix.
pub fn bench_herm<T: Scalar>(n: usize, seed: u64) -> Mat<T> {
    let mut rng = Larnv::new(seed);
    let mut a: Mat<T> = Mat::zeros(n, n);
    for j in 0..n {
        for i in 0..=j {
            let v: T = if i == j {
                T::from_real(rng.real(Dist::Uniform11))
            } else {
                rng.scalar(Dist::Uniform11)
            };
            a[(i, j)] = v;
            a[(j, i)] = v.conj();
        }
    }
    a
}

/// The textbook three-loop GEMM with no blocking and the worst loop order
/// for column-major data — the "LINPACK-era memory access pattern" the
/// paper's §1.1 motivates against.
pub fn gemm_naive<T: Scalar>(m: usize, n: usize, k: usize, a: &[T], b: &[T], c: &mut [T]) {
    for i in 0..m {
        for j in 0..n {
            let mut s = T::zero();
            for l in 0..k {
                s += a[i + l * m] * b[l + j * k];
            }
            c[i + j * m] = s;
        }
    }
}

/// Right-hand side with known solution `x = (1, …, 1)ᵀ` (scaled per
/// column as in the paper's examples).
pub fn rowsum_rhs<T: Scalar>(a: &Mat<T>, nrhs: usize) -> Mat<T> {
    let (m, n) = a.shape();
    Mat::from_fn(m, nrhs, |i, j| {
        let mut s = T::zero();
        for kk in 0..n {
            s += a[(i, kk)];
        }
        s * T::from_f64((j + 1) as f64)
    })
}
