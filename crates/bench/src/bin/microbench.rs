fn main() {
    use std::time::Instant;
    for &n in &[256usize, 512] {
        let a: Vec<f64> = (0..n * n).map(|k| (k % 97) as f64 / 97.0).collect();
        let b: Vec<f64> = (0..n * n).map(|k| (k % 89) as f64 / 89.0).collect();
        let mut c = vec![0.0f64; n * n];
        // warmup
        la_blas::gemm(
            la_core::Trans::No,
            la_core::Trans::No,
            n,
            n,
            n,
            1.0,
            &a,
            n,
            &b,
            n,
            0.0,
            &mut c,
            n,
        );
        let reps = if n == 256 { 20 } else { 5 };
        let t = Instant::now();
        for _ in 0..reps {
            la_blas::gemm(
                la_core::Trans::No,
                la_core::Trans::No,
                n,
                n,
                n,
                1.0,
                &a,
                n,
                &b,
                n,
                0.0,
                &mut c,
                n,
            );
        }
        let el = t.elapsed().as_secs_f64() / reps as f64;
        println!(
            "gemm n={n}: {:.3} ms, {:.2} GFLOP/s",
            el * 1e3,
            2.0 * (n as f64).powi(3) / el / 1e9
        );
    }
    // potrf vs potf2 at 512
    for &n in &[512usize] {
        let g: Vec<f64> = (0..n * n)
            .map(|k| ((k * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        let mut spd = vec![0.0f64; n * n];
        la_blas::gemm(
            la_core::Trans::Trans,
            la_core::Trans::No,
            n,
            n,
            n,
            1.0,
            &g,
            n,
            &g,
            n,
            0.0,
            &mut spd,
            n,
        );
        for i in 0..n {
            spd[i + i * n] += n as f64;
        }
        for (name, blocked) in [("potf2", false), ("potrf", true)] {
            let t = Instant::now();
            let reps = 5;
            for _ in 0..reps {
                let mut f = spd.clone();
                if blocked {
                    la_lapack::potrf(la_core::Uplo::Lower, n, &mut f, n);
                } else {
                    la_lapack::potf2(la_core::Uplo::Lower, n, &mut f, n);
                }
            }
            println!(
                "{name} n={n}: {:.2} ms",
                t.elapsed().as_secs_f64() / reps as f64 * 1e3
            );
        }
    }
}
