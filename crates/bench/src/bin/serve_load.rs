//! Load generator for the `la-serve` solve service: emits
//! `BENCH_serve.json` with p50/p99 latency and goodput versus client
//! concurrency, clean mode and (with `--chaos`, `fault-inject` builds
//! only) a chaos soak that injects silent corruption, worker panics,
//! NaN-poisoned inputs and expired deadlines into live traffic.
//!
//! The chaos soak enforces the serving invariants and exits non-zero on
//! violation: **zero wrong answers served** (every served answer is
//! independently residual-checked here, outside the service), **zero
//! pool poisonings** (no panic ever escapes a job boundary), and every
//! job resolves — completed or a typed rejection, nothing hangs.
//!
//! `--overload` adds the open-loop overload comparison: the same
//! arrival schedule, paced at 2× measured capacity (wedged workers and
//! bursts injected on top with `--chaos`), runs against the fixed-depth
//! queue bound and against the adaptive admission controller, and both
//! rows land in an `"overload"` JSON section for `bench_gate` to hold
//! the line on (`--max-overload-p99-ms`, `--min-overload-goodput`).
//! The same invariants apply, plus: every *admitted* job must resolve.
//!
//! `--quick` shrinks the sweep for CI and writes
//! `BENCH_serve.quick.json`, leaving the checked-in baseline untouched.

use std::time::Instant;

use la_bench::{bench_matrix, bench_spd, rowsum_rhs};
use la_core::json::JsonBuf;
use la_core::{Mat, RealScalar, Scalar, Trans};
use la_serve::{JobSpec, Rejection, ServeConfig, Service, SolveOp};

/// Independent residual check (the soak's own notion of "wrong", applied
/// to the data actually submitted): `‖b − A·x‖∞ ≤ 64·n·ε·(n·max|A|·‖x‖∞
/// + ‖b‖∞)` per column, NaN answers always wrong.
fn plausible(a: &Mat<f64>, b: &Mat<f64>, x: &Mat<f64>) -> bool {
    let n = a.nrows();
    let nrhs = b.ncols();
    let mut r = b.clone();
    let rld = r.lda();
    la_blas::gemm(
        Trans::No,
        Trans::No,
        n,
        nrhs,
        n,
        -1.0,
        a.as_slice(),
        a.lda(),
        x.as_slice(),
        x.lda(),
        1.0,
        r.as_mut_slice(),
        rld,
    );
    let mut amax = 0.0f64;
    for v in a.as_slice() {
        amax = amax.maxr(v.abs1());
    }
    let tol = f64::EPS * 64.0 * n as f64;
    for j in 0..nrhs {
        let (mut rn, mut xn, mut bn) = (0.0f64, 0.0f64, 0.0f64);
        for i in 0..n {
            rn = rn.maxr(r[(i, j)].abs());
            xn = xn.maxr(x[(i, j)].abs());
            bn = bn.maxr(b[(i, j)].abs());
        }
        if !rn.is_finite() || !xn.is_finite() {
            return false;
        }
        let den = n as f64 * amax * xn + bn;
        if den > 0.0 && rn / den > tol {
            return false;
        }
    }
    true
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

struct SweepRow {
    op: String,
    mode: &'static str,
    concurrency: usize,
    n: usize,
    jobs: u64,
    completed: u64,
    rejected: u64,
    p50_ms: f64,
    p99_ms: f64,
    goodput_jps: f64,
    wrong: u64,
    pool_poisonings: u64,
}

/// Submits with bounded retry on backpressure — a closed-loop client
/// never gives up on shed, it backs off and resubmits.
fn submit_with_retry(
    svc: &Service<f64>,
    mut make: impl FnMut() -> JobSpec<f64>,
) -> la_serve::JobHandle<f64> {
    loop {
        match svc.submit(make()) {
            Ok(h) => return h,
            Err(Rejection::Overloaded { .. }) => {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            Err(other) => panic!("serve_load: unexpected submit rejection: {other}"),
        }
    }
}

/// One clean-mode cell: `concurrency` closed-loop clients, each running
/// `jobs_per_client` solves of `op` at size `n` against a service with
/// `concurrency` workers.
fn run_clean(op: SolveOp, concurrency: usize, n: usize, jobs_per_client: u64) -> SweepRow {
    let svc: Service<f64> = Service::start(ServeConfig {
        workers: concurrency,
        queue_depth: 4 * concurrency.max(1),
        ..ServeConfig::default()
    });
    let gen: Mat<f64> = bench_matrix(n, 17);
    let spd: Mat<f64> = bench_spd(n, 23);
    let a = match op {
        SolveOp::Gesv | SolveOp::GesvMixed => &gen,
        SolveOp::Posv(_) | SolveOp::PosvMixed(_) => &spd,
    };
    let b = rowsum_rhs(a, 2);
    let t0 = Instant::now();
    let (mut lats, mut wrong, mut rejected) = (Vec::new(), 0u64, 0u64);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                let svc = &svc;
                let (a, b) = (a, &b);
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(jobs_per_client as usize);
                    let (mut wrong, mut rejected) = (0u64, 0u64);
                    for _ in 0..jobs_per_client {
                        let t = Instant::now();
                        let h = submit_with_retry(svc, || JobSpec::new(op, a.clone(), b.clone()));
                        match h.wait() {
                            Ok(out) => {
                                lats.push(t.elapsed().as_secs_f64() * 1e3);
                                if !plausible(a, b, &out.x) {
                                    wrong += 1;
                                }
                            }
                            Err(_) => rejected += 1,
                        }
                    }
                    (lats, wrong, rejected)
                })
            })
            .collect();
        for h in handles {
            let (l, w, r) = h.join().expect("client thread");
            lats.extend(l);
            wrong += w;
            rejected += r;
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let stats = svc.stats();
    svc.shutdown();
    lats.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let jobs = concurrency as u64 * jobs_per_client;
    SweepRow {
        op: op.as_str().to_string(),
        mode: "clean",
        concurrency,
        n,
        jobs,
        completed: stats.completed,
        rejected,
        p50_ms: percentile(&lats, 0.50),
        p99_ms: percentile(&lats, 0.99),
        goodput_jps: stats.completed as f64 / wall.max(1e-9),
        wrong,
        pool_poisonings: stats.pool_poisonings,
    }
}

#[cfg(feature = "fault-inject")]
mod chaos_run {
    use super::*;
    use la_serve::chaos::{chaos_tune, quiet_chaos_panics, ChaosEvent, ChaosPlan};

    pub struct ChaosOutcome {
        pub row: SweepRow,
        pub events: [(&'static str, u64); 7],
        pub rejections: Vec<(&'static str, u64)>,
        pub degraded: u64,
        pub panics_isolated: u64,
        pub stuck: u64,
        pub respawned: u64,
        pub unresolved: u64,
        /// p50 of submit → typed `Panicked` rejection round trips: the
        /// measured end-to-end cost of panic isolation.
        pub panic_p50_ms: f64,
    }

    /// The chaos soak: `clients` closed-loop clients driving `jobs` total
    /// jobs (ops rotating over all four drivers) while a deterministic
    /// chaos plan injects faults. Runs under [`chaos_tune`] so the
    /// ABFT-protected blocked paths engage at soak sizes.
    pub fn run(clients: usize, n: usize, jobs: u64, seed: u64) -> ChaosOutcome {
        quiet_chaos_panics();
        let svc: Service<f64> = la_core::tune::with(chaos_tune(), || {
            Service::start(ServeConfig {
                workers: clients,
                queue_depth: 4 * clients.max(1),
                max_attempts: 3,
                // The plan injects wedged workers: the watchdog is what
                // resolves them, so the soak runs with it armed.
                watchdog: Some(std::time::Duration::from_millis(150)),
                ..ServeConfig::default()
            })
        });
        let gen: Mat<f64> = bench_matrix(n, 31);
        let spd: Mat<f64> = bench_spd(n, 37);
        let bg = rowsum_rhs(&gen, 2);
        let bs = rowsum_rhs(&spd, 2);
        const OPS: [SolveOp; 4] = [
            SolveOp::Gesv,
            SolveOp::Posv(la_core::Uplo::Upper),
            SolveOp::GesvMixed,
            SolveOp::PosvMixed(la_core::Uplo::Upper),
        ];
        let t0 = Instant::now();
        let per_client = jobs / clients as u64;
        type ClientOut = (Vec<f64>, u64, [u64; 7], Vec<(&'static str, u64)>, Vec<f64>);
        let (mut lats, mut wrong) = (Vec::new(), 0u64);
        let mut panic_lats: Vec<f64> = Vec::new();
        let mut events = [0u64; 7];
        let mut rej_kinds: std::collections::BTreeMap<&'static str, u64> = Default::default();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|ci| {
                    let svc = &svc;
                    let (gen, spd, bg, bs) = (&gen, &spd, &bg, &bs);
                    s.spawn(move || -> ClientOut {
                        let mut plan = ChaosPlan::new(seed.wrapping_add(ci as u64));
                        let mut lats = Vec::new();
                        let mut wrong = 0u64;
                        let mut events = [0u64; 7];
                        let mut rejs: Vec<(&'static str, u64)> = Vec::new();
                        let mut panic_lats: Vec<f64> = Vec::new();
                        let bump = |rejs: &mut Vec<(&'static str, u64)>, k| match rejs
                            .iter_mut()
                            .find(|(name, _)| *name == k)
                        {
                            Some((_, c)) => *c += 1,
                            None => rejs.push((k, 1)),
                        };
                        for i in 0..per_client {
                            let op = OPS[((ci as u64 + i) % 4) as usize];
                            let (a0, b0) = match op {
                                SolveOp::Gesv | SolveOp::GesvMixed => (gen, bg),
                                _ => (spd, bs),
                            };
                            let ev = plan.next_event();
                            events[match ev {
                                ChaosEvent::Clean => 0,
                                ChaosEvent::SoftFault => 1,
                                ChaosEvent::WorkerPanic => 2,
                                ChaosEvent::Poison => 3,
                                ChaosEvent::PastDeadline => 4,
                                ChaosEvent::WedgedWorker => 5,
                                ChaosEvent::Burst => 6,
                            }] += 1;
                            let spec = plan.apply(
                                ev,
                                JobSpec::new(op, a0.clone(), b0.clone()).tenant(match ev {
                                    ChaosEvent::Clean => "steady",
                                    _ => "chaotic",
                                }),
                            );
                            // Keep what was actually submitted for the
                            // independent wrongness check (Poison mutates A).
                            let (a_sub, b_sub) = (spec_a(&spec), b0.clone());
                            let t = Instant::now();
                            let h = {
                                let mut spec = Some(spec);
                                submit_with_retry(svc, || spec.take().expect("one submit"))
                            };
                            match h.wait() {
                                Ok(out) => {
                                    lats.push(t.elapsed().as_secs_f64() * 1e3);
                                    if !plausible(&a_sub, &b_sub, &out.x) {
                                        wrong += 1;
                                    }
                                }
                                Err(r) => {
                                    if matches!(r, Rejection::Panicked { .. }) {
                                        panic_lats.push(t.elapsed().as_secs_f64() * 1e3);
                                    }
                                    bump(
                                        &mut rejs,
                                        match r {
                                            Rejection::Overloaded { .. } => "overloaded",
                                            Rejection::DeadlineExceeded => "deadline_exceeded",
                                            Rejection::Failed(_) => "failed",
                                            Rejection::Panicked { .. } => "panicked",
                                            Rejection::ResidualRejected { .. } => {
                                                "residual_rejected"
                                            }
                                            Rejection::Stuck { .. } => "stuck",
                                            Rejection::ShuttingDown => "shutting_down",
                                        },
                                    );
                                }
                            }
                        }
                        (lats, wrong, events, rejs, panic_lats)
                    })
                })
                .collect();
            for h in handles {
                let (l, w, ev, rj, pl) = h.join().expect("chaos client");
                lats.extend(l);
                wrong += w;
                for (i, c) in ev.iter().enumerate() {
                    events[i] += c;
                }
                for (k, c) in rj {
                    *rej_kinds.entry(k).or_insert(0) += c;
                }
                panic_lats.extend(pl);
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        // Disarm any corruption that never found a matching stripe so it
        // cannot leak into later runs in the same process.
        la_core::abft::inject::disarm();
        let stats = svc.stats();
        svc.shutdown();
        lats.sort_by(|x, y| x.partial_cmp(y).unwrap());
        panic_lats.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let total = per_client * clients as u64;
        let rejected: u64 = rej_kinds.values().sum();
        let unresolved = total - stats.completed - rejected;
        ChaosOutcome {
            row: SweepRow {
                op: "all".to_string(),
                mode: "chaos",
                concurrency: clients,
                n,
                jobs: total,
                completed: stats.completed,
                rejected,
                p50_ms: percentile(&lats, 0.50),
                p99_ms: percentile(&lats, 0.99),
                goodput_jps: stats.completed as f64 / wall.max(1e-9),
                wrong,
                pool_poisonings: stats.pool_poisonings,
            },
            events: [
                ("clean", events[0]),
                ("soft_fault", events[1]),
                ("worker_panic", events[2]),
                ("poison", events[3]),
                ("past_deadline", events[4]),
                ("wedged_worker", events[5]),
                ("burst", events[6]),
            ],
            rejections: rej_kinds.into_iter().collect(),
            degraded: stats.degraded,
            panics_isolated: stats.panics_isolated,
            stuck: stats.stuck,
            respawned: stats.respawned,
            unresolved,
            panic_p50_ms: percentile(&panic_lats, 0.50),
        }
    }

    /// The spec's matrix, cloned (fields are crate-private to la-serve, so
    /// the soak reconstructs the submitted A from the event semantics).
    fn spec_a(spec: &JobSpec<f64>) -> Mat<f64> {
        spec.matrix().clone()
    }
}

/// Open-loop overload mode (`--overload`): arrivals are paced at a fixed
/// multiple of the measured service capacity and shed arrivals are
/// *lost*, never retried — the regime a closed-loop client cannot
/// produce and the one admission control exists for. The same offered
/// schedule runs twice, against the fixed-depth bound and against the
/// adaptive controller (target-delay admission + brownout), so the two
/// rows in the JSON are directly comparable. With `--chaos`
/// (`fault-inject` builds), wedged workers and arrival bursts are
/// injected on top.
mod overload {
    use super::*;
    use la_serve::Priority;
    use std::time::Duration;

    pub struct OverloadRow {
        pub mode: &'static str,
        pub workers: usize,
        pub n: usize,
        /// Queueing-delay target handed to the adaptive controller
        /// (recorded on the fixed row too, for comparison).
        pub target_ms: f64,
        pub offered_jps: f64,
        pub jobs: u64,
        pub served: u64,
        pub shed: u64,
        pub rejected: u64,
        pub stuck: u64,
        pub respawned: u64,
        pub brownout_served: u64,
        pub p50_ms: f64,
        pub p99_ms: f64,
        pub goodput_jps: f64,
        pub wrong: u64,
        pub pool_poisonings: u64,
        pub unresolved: u64,
    }

    /// Median closed-loop solve latency on an idle one-worker service:
    /// the per-job service time the open-loop pacing is derived from.
    pub fn calibrate_service_ms(n: usize) -> f64 {
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let a: Mat<f64> = bench_matrix(n, 17);
        let b = rowsum_rhs(&a, 2);
        let mut lats = Vec::new();
        for _ in 0..12 {
            let t = Instant::now();
            let h = submit_with_retry(&svc, || JobSpec::new(SolveOp::Gesv, a.clone(), b.clone()));
            h.wait().expect("calibration solve failed");
            lats.push(t.elapsed().as_secs_f64() * 1e3);
        }
        svc.shutdown();
        lats.sort_by(|x, y| x.partial_cmp(y).unwrap());
        lats[lats.len() / 2]
    }

    /// Pacing that survives coarse OS sleep granularity: sleep for the
    /// bulk of the gap, spin the last stretch.
    fn pace_until(next: Instant) {
        loop {
            let now = Instant::now();
            if now >= next {
                return;
            }
            let gap = next - now;
            if gap > Duration::from_millis(1) {
                std::thread::sleep(gap - Duration::from_millis(1));
            } else {
                // Yield, don't spin: on a small box a spinning generator
                // starves the very workers it is trying to overload.
                std::thread::yield_now();
            }
        }
    }

    /// One overload scenario: both admission modes run against the
    /// same copy of these parameters so the comparison is apples to
    /// apples.
    #[derive(Clone, Copy)]
    pub struct Scenario {
        pub workers: usize,
        pub n: usize,
        pub jobs: u64,
        pub service_ms: f64,
        pub stall: Duration,
        pub oversub: f64,
    }

    pub fn run(adaptive: bool, chaos: bool, sc: Scenario) -> OverloadRow {
        let Scenario {
            workers,
            n,
            jobs,
            service_ms,
            stall,
            oversub,
        } = sc;
        // Target queueing delay: a few service times, floored at an
        // absolute SLO so the target stays meaningful against OS
        // scheduling quanta when single solves are microseconds. The
        // fixed baseline gets no target — its only defence is the
        // depth bound.
        let target_ms = (4.0 * service_ms).max(5.0);
        let svc: Service<f64> = Service::start(ServeConfig {
            workers,
            queue_depth: 256,
            target_delay: if adaptive {
                Some(Duration::from_secs_f64(target_ms / 1e3))
            } else {
                None
            },
            brownout: adaptive,
            watchdog: Some(stall),
            ..ServeConfig::default()
        });
        let gen: Mat<f64> = bench_matrix(n, 17);
        let b = rowsum_rhs(&gen, 2);
        // Seed the admission controller's service-time EWMA so the
        // adaptive bound is in force from the first paced arrival
        // (a cold controller admits up to the depth cap).
        for _ in 0..8 {
            submit_with_retry(&svc, || JobSpec::new(SolveOp::Gesv, gen.clone(), b.clone()))
                .wait()
                .expect("overload warmup solve failed");
        }
        let interval = Duration::from_secs_f64(service_ms / 1e3 / (workers as f64 * oversub));
        let offered_jps = 1.0 / interval.as_secs_f64();
        const PRIOS: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];
        // Handles stream to a concurrent collector that waits them in
        // admission (≈ completion) order *while the generator keeps
        // submitting* — waiting after the fact would fold the rest of
        // the submission window into every early job's measured latency.
        // Residual checks are deferred so the collector never lags the
        // completion rate.
        let (tx, rx) = std::sync::mpsc::channel::<(Instant, la_serve::JobHandle<f64>)>();
        let mut shed = 0u64;
        let t0 = Instant::now();
        let (served_outs, rejected, unresolved) = std::thread::scope(|s| {
            let collector = s.spawn(move || {
                let mut outs: Vec<(f64, la_serve::SolveOutput<f64>)> = Vec::new();
                let (mut rejected, mut unresolved) = (0u64, 0u64);
                for (t, h) in rx {
                    match h.wait_for(Duration::from_secs(120)) {
                        Ok(Ok(out)) => outs.push((t.elapsed().as_secs_f64() * 1e3, out)),
                        Ok(Err(_)) => rejected += 1,
                        Err(_) => unresolved += 1,
                    }
                }
                (outs, rejected, unresolved)
            });
            let mut next = Instant::now();
            for i in 0..jobs {
                // A burst compresses a handful of arrivals onto one
                // instant; every other arrival is paced at the offered
                // rate. The generator never waits for an answer (open
                // loop).
                let in_burst = chaos && i % 50 < 4;
                if !in_burst {
                    pace_until(next);
                }
                next += interval;
                #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
                let mut spec = JobSpec::new(SolveOp::Gesv, gen.clone(), b.clone())
                    .priority(PRIOS[(i % 3) as usize]);
                #[cfg(feature = "fault-inject")]
                if chaos && i % 2000 == 7 {
                    spec = spec.chaos_wedge(if i % 4000 == 7 {
                        la_serve::chaos::WedgeKind::Hard
                    } else {
                        la_serve::chaos::WedgeKind::Cooperative
                    });
                }
                match svc.submit(spec) {
                    Ok(h) => tx.send((Instant::now(), h)).expect("collector alive"),
                    Err(Rejection::Overloaded { retry_after, .. }) => {
                        shed += 1;
                        // The arrival is lost, but the hint must be sane.
                        assert!(
                            retry_after > Duration::ZERO,
                            "overload shed without a retry_after hint"
                        );
                    }
                    Err(other) => panic!("overload submit: unexpected rejection: {other}"),
                }
            }
            drop(tx);
            collector.join().expect("collector thread")
        });
        let wall = t0.elapsed().as_secs_f64();
        let served = served_outs.len() as u64;
        let mut wrong = 0u64;
        let mut lats: Vec<f64> = Vec::with_capacity(served_outs.len());
        for (lat, out) in &served_outs {
            lats.push(*lat);
            if !plausible(&gen, &b, &out.x) {
                wrong += 1;
            }
        }
        let stats = svc.stats();
        svc.shutdown();
        lats.sort_by(|x, y| x.partial_cmp(y).unwrap());
        OverloadRow {
            mode: if adaptive { "adaptive" } else { "fixed" },
            workers,
            n,
            target_ms,
            offered_jps,
            jobs,
            served,
            shed,
            rejected,
            stuck: stats.stuck,
            respawned: stats.respawned,
            brownout_served: stats.brownout_served,
            p50_ms: percentile(&lats, 0.50),
            p99_ms: percentile(&lats, 0.99),
            goodput_jps: served as f64 / wall.max(1e-9),
            wrong,
            pool_poisonings: stats.pool_poisonings,
            unresolved,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let chaos = args.iter().any(|a| a == "--chaos");
    let do_overload = args.iter().any(|a| a == "--overload");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mode = if quick { " (quick)" } else { "" };
    println!("== serve_load{mode}: {cores} core(s) ==");

    #[cfg(not(feature = "fault-inject"))]
    if chaos {
        eprintln!("serve_load: --chaos requires building with --features fault-inject");
        std::process::exit(2);
    }

    let n = if quick { 48 } else { 96 };
    let jobs_per_client = if quick { 12 } else { 25 };
    let concurrencies: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let ops = [
        SolveOp::Gesv,
        SolveOp::Posv(la_core::Uplo::Upper),
        SolveOp::GesvMixed,
    ];

    let mut rows: Vec<SweepRow> = Vec::new();
    for &c in concurrencies {
        for op in ops {
            let row = run_clean(op, c, n, jobs_per_client);
            println!(
                "  {:<11} c={:<2} n={:<4} jobs={:<4} p50 {:8.3} ms  p99 {:8.3} ms  {:8.1} jobs/s",
                row.op, row.concurrency, row.n, row.jobs, row.p50_ms, row.p99_ms, row.goodput_jps
            );
            assert_eq!(row.wrong, 0, "clean mode served a wrong answer");
            assert_eq!(row.pool_poisonings, 0, "clean mode poisoned the pool");
            rows.push(row);
        }
    }

    let mut failed = false;
    #[cfg(feature = "fault-inject")]
    let chaos_outcome = if chaos {
        let (clients, cn, jobs) = if quick { (4, 24, 400) } else { (4, 32, 1500) };
        println!("-- chaos soak: {jobs} jobs, {clients} clients, n={cn} --");
        let out = chaos_run::run(clients, cn, jobs, 0xC0FFEE);
        let r = &out.row;
        println!(
            "  chaos       c={:<2} n={:<4} jobs={:<4} p50 {:8.3} ms  p99 {:8.3} ms  {:8.1} jobs/s",
            r.concurrency, r.n, r.jobs, r.p50_ms, r.p99_ms, r.goodput_jps
        );
        println!(
            "  served {} / rejected {} (degraded {}, panics isolated {}, \
             stuck {}, respawned {}, panic-isolation p50 {:.3} ms)",
            r.completed,
            r.rejected,
            out.degraded,
            out.panics_isolated,
            out.stuck,
            out.respawned,
            out.panic_p50_ms
        );
        for (k, v) in &out.events {
            println!("    event {k:<14} {v}");
        }
        for (k, v) in &out.rejections {
            println!("    rejection {k:<18} {v}");
        }
        if r.wrong > 0 {
            eprintln!("  CHAOS VIOLATION: {} wrong answer(s) served", r.wrong);
            failed = true;
        }
        if r.pool_poisonings > 0 {
            eprintln!(
                "  CHAOS VIOLATION: {} panic(s) escaped a job boundary",
                r.pool_poisonings
            );
            failed = true;
        }
        if out.unresolved > 0 {
            eprintln!(
                "  CHAOS VIOLATION: {} job(s) neither served nor rejected",
                out.unresolved
            );
            failed = true;
        }
        Some(out)
    } else {
        None
    };

    let overload_rows: Vec<overload::OverloadRow> = if do_overload {
        // Enough arrivals that the run is *sustained* overload — many
        // multiples of the controller's reaction window — not one
        // transient burst.
        let (oworkers, on, ojobs, stall_ms) = if quick {
            (2, 96, 6000, 15)
        } else {
            (2, 128, 16000, 20)
        };
        let sc = overload::Scenario {
            workers: oworkers,
            n: on,
            jobs: ojobs,
            service_ms: overload::calibrate_service_ms(on),
            stall: std::time::Duration::from_millis(stall_ms),
            oversub: 2.0,
        };
        println!(
            "-- overload: open loop at {:.1}x capacity (service ~{:.3} ms, \
             {oworkers} workers, n={on}, {ojobs} arrivals{}) --",
            sc.oversub,
            sc.service_ms,
            if chaos { ", chaos wedges+bursts" } else { "" }
        );
        let mut rows = Vec::new();
        for adaptive in [false, true] {
            let r = overload::run(adaptive, chaos, sc);
            println!(
                "  {:<9} offered {:7.1}/s  goodput {:7.1}/s  p50 {:8.3} ms  p99 {:8.3} ms  \
                 shed {:<4} stuck {:<3} respawned {:<2} brownout-served {}",
                r.mode,
                r.offered_jps,
                r.goodput_jps,
                r.p50_ms,
                r.p99_ms,
                r.shed,
                r.stuck,
                r.respawned,
                r.brownout_served
            );
            if r.wrong > 0 {
                eprintln!(
                    "  OVERLOAD VIOLATION ({}): {} wrong answer(s) served",
                    r.mode, r.wrong
                );
                failed = true;
            }
            if r.pool_poisonings > 0 {
                eprintln!(
                    "  OVERLOAD VIOLATION ({}): {} panic(s) escaped a job boundary",
                    r.mode, r.pool_poisonings
                );
                failed = true;
            }
            if r.unresolved > 0 {
                eprintln!(
                    "  OVERLOAD VIOLATION ({}): {} admitted job(s) never resolved",
                    r.mode, r.unresolved
                );
                failed = true;
            }
            rows.push(r);
        }
        rows
    } else {
        Vec::new()
    };

    // --- Emit JSON ----------------------------------------------------
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("host");
    j.begin_obj();
    j.field_uint("cores", cores as u64);
    j.end_obj();
    j.key("serve_sweep");
    j.begin_arr();
    #[cfg(feature = "fault-inject")]
    let rows_iter = rows.iter().chain(chaos_outcome.as_ref().map(|o| &o.row));
    #[cfg(not(feature = "fault-inject"))]
    let rows_iter = rows.iter();
    for r in rows_iter {
        j.begin_obj();
        j.field_str("op", &r.op);
        j.field_str("mode", r.mode);
        j.field_uint("concurrency", r.concurrency as u64);
        j.field_uint("n", r.n as u64);
        j.field_uint("jobs", r.jobs);
        j.field_uint("completed", r.completed);
        j.field_uint("rejected", r.rejected);
        j.field_num("p50_ms", r.p50_ms);
        j.field_num("p99_ms", r.p99_ms);
        j.field_num("goodput_jps", r.goodput_jps);
        j.field_uint("wrong", r.wrong);
        j.field_uint("pool_poisonings", r.pool_poisonings);
        j.end_obj();
    }
    j.end_arr();
    #[cfg(feature = "fault-inject")]
    if let Some(out) = &chaos_outcome {
        j.key("chaos_summary");
        j.begin_obj();
        j.field_uint("jobs", out.row.jobs);
        j.field_uint("completed", out.row.completed);
        j.field_uint("rejected", out.row.rejected);
        j.field_uint("wrong", out.row.wrong);
        j.field_uint("pool_poisonings", out.row.pool_poisonings);
        j.field_uint("unresolved", out.unresolved);
        j.field_uint("degraded", out.degraded);
        j.field_uint("panics_isolated", out.panics_isolated);
        j.field_uint("stuck", out.stuck);
        j.field_uint("respawned", out.respawned);
        j.field_num("panic_isolation_p50_ms", out.panic_p50_ms);
        j.key("events");
        j.begin_obj();
        for (k, v) in &out.events {
            j.field_uint(k, *v);
        }
        j.end_obj();
        j.key("rejections");
        j.begin_obj();
        for (k, v) in &out.rejections {
            j.field_uint(k, *v);
        }
        j.end_obj();
        j.end_obj();
    }
    if !overload_rows.is_empty() {
        j.key("overload");
        j.begin_arr();
        for r in &overload_rows {
            j.begin_obj();
            j.field_str("mode", r.mode);
            j.field_uint("workers", r.workers as u64);
            j.field_uint("n", r.n as u64);
            j.field_num("target_ms", r.target_ms);
            j.field_num("offered_jps", r.offered_jps);
            j.field_uint("jobs", r.jobs);
            j.field_uint("served", r.served);
            j.field_uint("shed", r.shed);
            j.field_uint("rejected", r.rejected);
            j.field_uint("stuck", r.stuck);
            j.field_uint("respawned", r.respawned);
            j.field_uint("brownout_served", r.brownout_served);
            j.field_num("p50_ms", r.p50_ms);
            j.field_num("p99_ms", r.p99_ms);
            j.field_num("goodput_jps", r.goodput_jps);
            j.field_uint("wrong", r.wrong);
            j.field_uint("pool_poisonings", r.pool_poisonings);
            j.field_uint("unresolved", r.unresolved);
            j.end_obj();
        }
        j.end_arr();
    }
    j.end_obj();
    let path = if quick {
        "BENCH_serve.quick.json"
    } else {
        "BENCH_serve.json"
    };
    std::fs::write(path, j.into_string()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
    if failed {
        std::process::exit(1);
    }
}
