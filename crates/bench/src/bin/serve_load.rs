//! Load generator for the `la-serve` solve service: emits
//! `BENCH_serve.json` with p50/p99 latency and goodput versus client
//! concurrency, clean mode and (with `--chaos`, `fault-inject` builds
//! only) a chaos soak that injects silent corruption, worker panics,
//! NaN-poisoned inputs and expired deadlines into live traffic.
//!
//! The chaos soak enforces the serving invariants and exits non-zero on
//! violation: **zero wrong answers served** (every served answer is
//! independently residual-checked here, outside the service), **zero
//! pool poisonings** (no panic ever escapes a job boundary), and every
//! job resolves — completed or a typed rejection, nothing hangs.
//!
//! `--quick` shrinks the sweep for CI and writes
//! `BENCH_serve.quick.json`, leaving the checked-in baseline untouched.

use std::time::Instant;

use la_bench::{bench_matrix, bench_spd, rowsum_rhs};
use la_core::json::JsonBuf;
use la_core::{Mat, RealScalar, Scalar, Trans};
use la_serve::{JobSpec, Rejection, ServeConfig, Service, SolveOp};

/// Independent residual check (the soak's own notion of "wrong", applied
/// to the data actually submitted): `‖b − A·x‖∞ ≤ 64·n·ε·(n·max|A|·‖x‖∞
/// + ‖b‖∞)` per column, NaN answers always wrong.
fn plausible(a: &Mat<f64>, b: &Mat<f64>, x: &Mat<f64>) -> bool {
    let n = a.nrows();
    let nrhs = b.ncols();
    let mut r = b.clone();
    let rld = r.lda();
    la_blas::gemm(
        Trans::No,
        Trans::No,
        n,
        nrhs,
        n,
        -1.0,
        a.as_slice(),
        a.lda(),
        x.as_slice(),
        x.lda(),
        1.0,
        r.as_mut_slice(),
        rld,
    );
    let mut amax = 0.0f64;
    for v in a.as_slice() {
        amax = amax.maxr(v.abs1());
    }
    let tol = f64::EPS * 64.0 * n as f64;
    for j in 0..nrhs {
        let (mut rn, mut xn, mut bn) = (0.0f64, 0.0f64, 0.0f64);
        for i in 0..n {
            rn = rn.maxr(r[(i, j)].abs());
            xn = xn.maxr(x[(i, j)].abs());
            bn = bn.maxr(b[(i, j)].abs());
        }
        if !rn.is_finite() || !xn.is_finite() {
            return false;
        }
        let den = n as f64 * amax * xn + bn;
        if den > 0.0 && rn / den > tol {
            return false;
        }
    }
    true
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

struct SweepRow {
    op: String,
    mode: &'static str,
    concurrency: usize,
    n: usize,
    jobs: u64,
    completed: u64,
    rejected: u64,
    p50_ms: f64,
    p99_ms: f64,
    goodput_jps: f64,
    wrong: u64,
    pool_poisonings: u64,
}

/// Submits with bounded retry on backpressure — a closed-loop client
/// never gives up on shed, it backs off and resubmits.
fn submit_with_retry(
    svc: &Service<f64>,
    mut make: impl FnMut() -> JobSpec<f64>,
) -> la_serve::JobHandle<f64> {
    loop {
        match svc.submit(make()) {
            Ok(h) => return h,
            Err(Rejection::Overloaded { .. }) => {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            Err(other) => panic!("serve_load: unexpected submit rejection: {other}"),
        }
    }
}

/// One clean-mode cell: `concurrency` closed-loop clients, each running
/// `jobs_per_client` solves of `op` at size `n` against a service with
/// `concurrency` workers.
fn run_clean(op: SolveOp, concurrency: usize, n: usize, jobs_per_client: u64) -> SweepRow {
    let svc: Service<f64> = Service::start(ServeConfig {
        workers: concurrency,
        queue_depth: 4 * concurrency.max(1),
        ..ServeConfig::default()
    });
    let gen: Mat<f64> = bench_matrix(n, 17);
    let spd: Mat<f64> = bench_spd(n, 23);
    let a = match op {
        SolveOp::Gesv | SolveOp::GesvMixed => &gen,
        SolveOp::Posv(_) | SolveOp::PosvMixed(_) => &spd,
    };
    let b = rowsum_rhs(a, 2);
    let t0 = Instant::now();
    let (mut lats, mut wrong, mut rejected) = (Vec::new(), 0u64, 0u64);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                let svc = &svc;
                let (a, b) = (a, &b);
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(jobs_per_client as usize);
                    let (mut wrong, mut rejected) = (0u64, 0u64);
                    for _ in 0..jobs_per_client {
                        let t = Instant::now();
                        let h = submit_with_retry(svc, || JobSpec::new(op, a.clone(), b.clone()));
                        match h.wait() {
                            Ok(out) => {
                                lats.push(t.elapsed().as_secs_f64() * 1e3);
                                if !plausible(a, b, &out.x) {
                                    wrong += 1;
                                }
                            }
                            Err(_) => rejected += 1,
                        }
                    }
                    (lats, wrong, rejected)
                })
            })
            .collect();
        for h in handles {
            let (l, w, r) = h.join().expect("client thread");
            lats.extend(l);
            wrong += w;
            rejected += r;
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let stats = svc.stats();
    svc.shutdown();
    lats.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let jobs = concurrency as u64 * jobs_per_client;
    SweepRow {
        op: op.as_str().to_string(),
        mode: "clean",
        concurrency,
        n,
        jobs,
        completed: stats.completed,
        rejected,
        p50_ms: percentile(&lats, 0.50),
        p99_ms: percentile(&lats, 0.99),
        goodput_jps: stats.completed as f64 / wall.max(1e-9),
        wrong,
        pool_poisonings: stats.pool_poisonings,
    }
}

#[cfg(feature = "fault-inject")]
mod chaos_run {
    use super::*;
    use la_serve::chaos::{chaos_tune, quiet_chaos_panics, ChaosEvent, ChaosPlan};

    pub struct ChaosOutcome {
        pub row: SweepRow,
        pub events: [(&'static str, u64); 5],
        pub rejections: Vec<(&'static str, u64)>,
        pub degraded: u64,
        pub panics_isolated: u64,
        pub unresolved: u64,
        /// p50 of submit → typed `Panicked` rejection round trips: the
        /// measured end-to-end cost of panic isolation.
        pub panic_p50_ms: f64,
    }

    /// The chaos soak: `clients` closed-loop clients driving `jobs` total
    /// jobs (ops rotating over all four drivers) while a deterministic
    /// chaos plan injects faults. Runs under [`chaos_tune`] so the
    /// ABFT-protected blocked paths engage at soak sizes.
    pub fn run(clients: usize, n: usize, jobs: u64, seed: u64) -> ChaosOutcome {
        quiet_chaos_panics();
        let svc: Service<f64> = la_core::tune::with(chaos_tune(), || {
            Service::start(ServeConfig {
                workers: clients,
                queue_depth: 4 * clients.max(1),
                max_attempts: 3,
                ..ServeConfig::default()
            })
        });
        let gen: Mat<f64> = bench_matrix(n, 31);
        let spd: Mat<f64> = bench_spd(n, 37);
        let bg = rowsum_rhs(&gen, 2);
        let bs = rowsum_rhs(&spd, 2);
        const OPS: [SolveOp; 4] = [
            SolveOp::Gesv,
            SolveOp::Posv(la_core::Uplo::Upper),
            SolveOp::GesvMixed,
            SolveOp::PosvMixed(la_core::Uplo::Upper),
        ];
        let t0 = Instant::now();
        let per_client = jobs / clients as u64;
        type ClientOut = (Vec<f64>, u64, [u64; 5], Vec<(&'static str, u64)>, Vec<f64>);
        let (mut lats, mut wrong) = (Vec::new(), 0u64);
        let mut panic_lats: Vec<f64> = Vec::new();
        let mut events = [0u64; 5];
        let mut rej_kinds: std::collections::BTreeMap<&'static str, u64> = Default::default();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|ci| {
                    let svc = &svc;
                    let (gen, spd, bg, bs) = (&gen, &spd, &bg, &bs);
                    s.spawn(move || -> ClientOut {
                        let mut plan = ChaosPlan::new(seed.wrapping_add(ci as u64));
                        let mut lats = Vec::new();
                        let mut wrong = 0u64;
                        let mut events = [0u64; 5];
                        let mut rejs: Vec<(&'static str, u64)> = Vec::new();
                        let mut panic_lats: Vec<f64> = Vec::new();
                        let bump = |rejs: &mut Vec<(&'static str, u64)>, k| match rejs
                            .iter_mut()
                            .find(|(name, _)| *name == k)
                        {
                            Some((_, c)) => *c += 1,
                            None => rejs.push((k, 1)),
                        };
                        for i in 0..per_client {
                            let op = OPS[((ci as u64 + i) % 4) as usize];
                            let (a0, b0) = match op {
                                SolveOp::Gesv | SolveOp::GesvMixed => (gen, bg),
                                _ => (spd, bs),
                            };
                            let ev = plan.next_event();
                            events[match ev {
                                ChaosEvent::Clean => 0,
                                ChaosEvent::SoftFault => 1,
                                ChaosEvent::WorkerPanic => 2,
                                ChaosEvent::Poison => 3,
                                ChaosEvent::PastDeadline => 4,
                            }] += 1;
                            let spec = plan.apply(
                                ev,
                                JobSpec::new(op, a0.clone(), b0.clone()).tenant(match ev {
                                    ChaosEvent::Clean => "steady",
                                    _ => "chaotic",
                                }),
                            );
                            // Keep what was actually submitted for the
                            // independent wrongness check (Poison mutates A).
                            let (a_sub, b_sub) = (spec_a(&spec), b0.clone());
                            let t = Instant::now();
                            let h = {
                                let mut spec = Some(spec);
                                submit_with_retry(svc, || spec.take().expect("one submit"))
                            };
                            match h.wait() {
                                Ok(out) => {
                                    lats.push(t.elapsed().as_secs_f64() * 1e3);
                                    if !plausible(&a_sub, &b_sub, &out.x) {
                                        wrong += 1;
                                    }
                                }
                                Err(r) => {
                                    if matches!(r, Rejection::Panicked { .. }) {
                                        panic_lats.push(t.elapsed().as_secs_f64() * 1e3);
                                    }
                                    bump(
                                        &mut rejs,
                                        match r {
                                            Rejection::Overloaded { .. } => "overloaded",
                                            Rejection::DeadlineExceeded => "deadline_exceeded",
                                            Rejection::Failed(_) => "failed",
                                            Rejection::Panicked { .. } => "panicked",
                                            Rejection::ResidualRejected { .. } => {
                                                "residual_rejected"
                                            }
                                            Rejection::ShuttingDown => "shutting_down",
                                        },
                                    );
                                }
                            }
                        }
                        (lats, wrong, events, rejs, panic_lats)
                    })
                })
                .collect();
            for h in handles {
                let (l, w, ev, rj, pl) = h.join().expect("chaos client");
                lats.extend(l);
                wrong += w;
                for (i, c) in ev.iter().enumerate() {
                    events[i] += c;
                }
                for (k, c) in rj {
                    *rej_kinds.entry(k).or_insert(0) += c;
                }
                panic_lats.extend(pl);
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        // Disarm any corruption that never found a matching stripe so it
        // cannot leak into later runs in the same process.
        la_core::abft::inject::disarm();
        let stats = svc.stats();
        svc.shutdown();
        lats.sort_by(|x, y| x.partial_cmp(y).unwrap());
        panic_lats.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let total = per_client * clients as u64;
        let rejected: u64 = rej_kinds.values().sum();
        let unresolved = total - stats.completed - rejected;
        ChaosOutcome {
            row: SweepRow {
                op: "all".to_string(),
                mode: "chaos",
                concurrency: clients,
                n,
                jobs: total,
                completed: stats.completed,
                rejected,
                p50_ms: percentile(&lats, 0.50),
                p99_ms: percentile(&lats, 0.99),
                goodput_jps: stats.completed as f64 / wall.max(1e-9),
                wrong,
                pool_poisonings: stats.pool_poisonings,
            },
            events: [
                ("clean", events[0]),
                ("soft_fault", events[1]),
                ("worker_panic", events[2]),
                ("poison", events[3]),
                ("past_deadline", events[4]),
            ],
            rejections: rej_kinds.into_iter().collect(),
            degraded: stats.degraded,
            panics_isolated: stats.panics_isolated,
            unresolved,
            panic_p50_ms: percentile(&panic_lats, 0.50),
        }
    }

    /// The spec's matrix, cloned (fields are crate-private to la-serve, so
    /// the soak reconstructs the submitted A from the event semantics).
    fn spec_a(spec: &JobSpec<f64>) -> Mat<f64> {
        spec.matrix().clone()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let chaos = args.iter().any(|a| a == "--chaos");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mode = if quick { " (quick)" } else { "" };
    println!("== serve_load{mode}: {cores} core(s) ==");

    #[cfg(not(feature = "fault-inject"))]
    if chaos {
        eprintln!("serve_load: --chaos requires building with --features fault-inject");
        std::process::exit(2);
    }

    let n = if quick { 48 } else { 96 };
    let jobs_per_client = if quick { 12 } else { 25 };
    let concurrencies: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let ops = [
        SolveOp::Gesv,
        SolveOp::Posv(la_core::Uplo::Upper),
        SolveOp::GesvMixed,
    ];

    let mut rows: Vec<SweepRow> = Vec::new();
    for &c in concurrencies {
        for op in ops {
            let row = run_clean(op, c, n, jobs_per_client);
            println!(
                "  {:<11} c={:<2} n={:<4} jobs={:<4} p50 {:8.3} ms  p99 {:8.3} ms  {:8.1} jobs/s",
                row.op, row.concurrency, row.n, row.jobs, row.p50_ms, row.p99_ms, row.goodput_jps
            );
            assert_eq!(row.wrong, 0, "clean mode served a wrong answer");
            assert_eq!(row.pool_poisonings, 0, "clean mode poisoned the pool");
            rows.push(row);
        }
    }

    #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
    let mut failed = false;
    #[cfg(feature = "fault-inject")]
    let chaos_outcome = if chaos {
        let (clients, cn, jobs) = if quick { (4, 24, 400) } else { (4, 32, 1500) };
        println!("-- chaos soak: {jobs} jobs, {clients} clients, n={cn} --");
        let out = chaos_run::run(clients, cn, jobs, 0xC0FFEE);
        let r = &out.row;
        println!(
            "  chaos       c={:<2} n={:<4} jobs={:<4} p50 {:8.3} ms  p99 {:8.3} ms  {:8.1} jobs/s",
            r.concurrency, r.n, r.jobs, r.p50_ms, r.p99_ms, r.goodput_jps
        );
        println!(
            "  served {} / rejected {} (degraded {}, panics isolated {}, \
             panic-isolation p50 {:.3} ms)",
            r.completed, r.rejected, out.degraded, out.panics_isolated, out.panic_p50_ms
        );
        for (k, v) in &out.events {
            println!("    event {k:<14} {v}");
        }
        for (k, v) in &out.rejections {
            println!("    rejection {k:<18} {v}");
        }
        if r.wrong > 0 {
            eprintln!("  CHAOS VIOLATION: {} wrong answer(s) served", r.wrong);
            failed = true;
        }
        if r.pool_poisonings > 0 {
            eprintln!(
                "  CHAOS VIOLATION: {} panic(s) escaped a job boundary",
                r.pool_poisonings
            );
            failed = true;
        }
        if out.unresolved > 0 {
            eprintln!(
                "  CHAOS VIOLATION: {} job(s) neither served nor rejected",
                out.unresolved
            );
            failed = true;
        }
        Some(out)
    } else {
        None
    };

    // --- Emit JSON ----------------------------------------------------
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("host");
    j.begin_obj();
    j.field_uint("cores", cores as u64);
    j.end_obj();
    j.key("serve_sweep");
    j.begin_arr();
    #[cfg(feature = "fault-inject")]
    let rows_iter = rows.iter().chain(chaos_outcome.as_ref().map(|o| &o.row));
    #[cfg(not(feature = "fault-inject"))]
    let rows_iter = rows.iter();
    for r in rows_iter {
        j.begin_obj();
        j.field_str("op", &r.op);
        j.field_str("mode", r.mode);
        j.field_uint("concurrency", r.concurrency as u64);
        j.field_uint("n", r.n as u64);
        j.field_uint("jobs", r.jobs);
        j.field_uint("completed", r.completed);
        j.field_uint("rejected", r.rejected);
        j.field_num("p50_ms", r.p50_ms);
        j.field_num("p99_ms", r.p99_ms);
        j.field_num("goodput_jps", r.goodput_jps);
        j.field_uint("wrong", r.wrong);
        j.field_uint("pool_poisonings", r.pool_poisonings);
        j.end_obj();
    }
    j.end_arr();
    #[cfg(feature = "fault-inject")]
    if let Some(out) = &chaos_outcome {
        j.key("chaos_summary");
        j.begin_obj();
        j.field_uint("jobs", out.row.jobs);
        j.field_uint("completed", out.row.completed);
        j.field_uint("rejected", out.row.rejected);
        j.field_uint("wrong", out.row.wrong);
        j.field_uint("pool_poisonings", out.row.pool_poisonings);
        j.field_uint("unresolved", out.unresolved);
        j.field_uint("degraded", out.degraded);
        j.field_uint("panics_isolated", out.panics_isolated);
        j.field_num("panic_isolation_p50_ms", out.panic_p50_ms);
        j.key("events");
        j.begin_obj();
        for (k, v) in &out.events {
            j.field_uint(k, *v);
        }
        j.end_obj();
        j.key("rejections");
        j.begin_obj();
        for (k, v) in &out.rejections {
            j.field_uint(k, *v);
        }
        j.end_obj();
        j.end_obj();
    }
    j.end_obj();
    let path = if quick {
        "BENCH_serve.quick.json"
    } else {
        "BENCH_serve.json"
    };
    std::fs::write(path, j.into_string()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
    if failed {
        std::process::exit(1);
    }
}
