//! Per-kernel gemm throughput table: times `dgemm` (f64, No/No) for each
//! `LA_GEMM_KERNEL` selection at a range of sizes and prints wall-clock
//! and GF/s. Generates the kernel comparison table in `EXPERIMENTS.md`.
//!
//! Usage: `kernel_bench [n ...]` — sizes default to `256 512 1024`;
//! pass explicit sizes (e.g. `kernel_bench 256 512 1024 2048`) for the
//! full table. Best-of-3 per point. The `simd` row only appears when the
//! binary is built with `--features simd` (otherwise the Simd selection
//! would silently fall back to the unrolled kernel and mislabel the row).
//!
//! Blocking parameters come from [`la_core::tune`], so `LA_GEMM_MC`,
//! `LA_GEMM_KC`, and `LA_GEMM_NC` override the cache blocking for
//! parameter sweeps.

use la_core::tune::{self, GemmKernel};
use la_core::Trans;
use std::time::Instant;

fn main() {
    let mut sizes: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().unwrap_or_else(|_| panic!("bad size {a:?}")))
        .collect();
    if sizes.is_empty() {
        sizes = vec![256, 512, 1024];
    }
    let mut kernels = vec![GemmKernel::Scalar, GemmKernel::Unrolled];
    if cfg!(feature = "simd") {
        kernels.push(GemmKernel::Simd);
    }
    kernels.push(GemmKernel::Auto);
    println!("== kernel_bench: dgemm best-of-3, serial, per LA_GEMM_KERNEL ==");
    for &n in &sizes {
        let a: Vec<f64> = (0..n * n)
            .map(|i| ((i * 7 % 13) as f64 - 6.0) / 7.0)
            .collect();
        let b: Vec<f64> = (0..n * n)
            .map(|i| ((i * 5 % 11) as f64 - 5.0) / 7.0)
            .collect();
        for &kern in &kernels {
            let cfg = tune::TuneConfig {
                gemm_kernel: kern,
                ..tune::TuneConfig::defaults()
            };
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let mut c = vec![0.0f64; n * n];
                let t0 = Instant::now();
                tune::with(cfg, || {
                    la_blas::gemm(
                        Trans::No,
                        Trans::No,
                        n,
                        n,
                        n,
                        1.0,
                        &a,
                        n,
                        &b,
                        n,
                        0.0,
                        &mut c,
                        n,
                    );
                });
                best = best.min(t0.elapsed().as_secs_f64());
                std::hint::black_box(&c);
            }
            let gf = 2.0 * (n as f64).powi(3) / best / 1e9;
            println!(
                "n={n:5} kernel={:<8} {:9.2} ms  {:6.2} GF/s",
                format!("{kern:?}").to_lowercase(),
                best * 1e3,
                gf
            );
        }
    }
}
