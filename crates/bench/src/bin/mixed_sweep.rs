//! Mixed-precision refinement sweep: times the `DSGESV`-lineage drivers
//! (`gesv_mixed` / `posv_mixed`) against their plain full-precision
//! counterparts across sizes — at every level of the precision lattice
//! (f32, f16, bf16, and f32 with double-double residuals) — and emits
//! `BENCH_mixed.json` in the current directory.
//!
//! The benchmark matrices are well-conditioned (condition ~100), so the
//! low-precision path must converge (`iter ≥ 0`) — the sweep asserts it
//! on every timed run; a fallback would silently time the wrong
//! algorithm. The half-precision levels take more refinement steps
//! (coarser factorization) but must still converge on these matrices.
//!
//! Besides the timing rows, the sweep records the `dd_hilbert` accuracy
//! section: the componentwise backward error `gesvxx` (double-double
//! residual refinement) achieves on the n = 12 Hilbert system — the
//! measurement `bench_gate --max-dd-berr` holds at ≤ 4ε.
//!
//! `--quick` shrinks the sweep for CI (n = 512 only, still best-of-3)
//! and writes `BENCH_mixed.quick.json`, leaving the checked-in baseline
//! untouched; the `bench_gate` binary compares the two and additionally
//! enforces the ≥1.2× mixed-over-full floor on the baseline at n ≥ 1024
//! plus the `--min-lattice-speedup` floor on the half-precision rows.

use la_bench::{bench_matrix, bench_spd, timeit};
use la_core::json::JsonBuf;
use la_core::tune::{self, MixedLo, RefineMode};
use la_core::{Mat, Uplo};
use la_lapack as f77;

struct Row {
    op: &'static str,
    n: usize,
    ms: f64,
    iter: i32,
}

/// Times one `gesv_mixed` run at the given lattice level / residual mode.
fn time_gesv_mixed(
    n: usize,
    reps: usize,
    gen: &Mat<f64>,
    b: &[f64],
    level: MixedLo,
    refine: RefineMode,
) -> (f64, i32) {
    let cfg = tune::TuneConfig {
        mixed_lo: level,
        refine,
        ..tune::current()
    };
    tune::with(cfg, || {
        let mut last_iter = 0i32;
        let ms = timeit(reps, || {
            let mut a = gen.clone();
            let mut x = vec![0.0f64; n];
            let mut ipiv = vec![0i32; n];
            let mut iter = 0i32;
            assert_eq!(
                f77::gesv_mixed(
                    n,
                    1,
                    a.as_mut_slice(),
                    n,
                    &mut ipiv,
                    b,
                    n,
                    &mut x,
                    n,
                    &mut iter
                ),
                0
            );
            assert!(
                iter >= 0,
                "bench matrix must take the mixed path at {level:?}/{refine:?} (iter={iter})"
            );
            last_iter = iter;
            x
        }) * 1e3;
        (ms, last_iter)
    })
}

/// Componentwise backward error of `x` for `A·x = b`, residual measured
/// in double-double so the measurement is trustworthy at ε.
fn comp_berr(n: usize, a: &Mat<f64>, b: &[f64], x: &[f64]) -> f64 {
    let mut berr = 0.0f64;
    for i in 0..n {
        let mut acc = la_core::dd::Dd::from_f64(b[i]);
        let mut denom = b[i].abs();
        for k in 0..n {
            acc = acc.fma_acc(-a[(i, k)], x[k]);
            denom += (a[(i, k)] * x[k]).abs();
        }
        if denom > 0.0 {
            berr = berr.max(acc.to_f64().abs() / denom);
        }
    }
    berr
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mode = if quick { " (quick)" } else { "" };
    println!("== mixed_sweep{mode}: {cores} core(s) ==");

    let reps = 3;
    let sizes: &[usize] = if quick { &[512] } else { &[256, 512, 1024] };

    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        let gen: Mat<f64> = bench_matrix(n, 3);
        let spd: Mat<f64> = bench_spd(n, 9);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();

        // Plain full-precision LU solve.
        let ms = timeit(reps, || {
            let mut a = gen.clone();
            let mut bx = b.clone();
            let mut ipiv = vec![0i32; n];
            assert_eq!(
                f77::gesv(n, 1, a.as_mut_slice(), n, &mut ipiv, &mut bx, n),
                0
            );
            bx
        }) * 1e3;
        println!("gesv_full   n={n:5}  {ms:9.2} ms");
        rows.push(Row {
            op: "gesv_full",
            n,
            ms,
            iter: 0,
        });

        // Mixed: f32 factorization + f64 refinement. Must converge.
        let mut last_iter = 0i32;
        let ms = timeit(reps, || {
            let mut a = gen.clone();
            let mut x = vec![0.0f64; n];
            let mut ipiv = vec![0i32; n];
            let mut iter = 0i32;
            assert_eq!(
                f77::gesv_mixed(
                    n,
                    1,
                    a.as_mut_slice(),
                    n,
                    &mut ipiv,
                    &b,
                    n,
                    &mut x,
                    n,
                    &mut iter
                ),
                0
            );
            assert!(iter >= 0, "bench matrix must take the mixed path");
            last_iter = iter;
            x
        }) * 1e3;
        println!("gesv_mixed  n={n:5}  {ms:9.2} ms  (iter={last_iter})");
        rows.push(Row {
            op: "gesv_mixed",
            n,
            ms,
            iter: last_iter,
        });

        // The rest of the lattice: half-precision demotion targets (the
        // factorization reroutes through f32 accumulation, so these time
        // the conversion + extra-refinement cost of the narrower
        // formats) and double-double residuals on the f32 edge. The
        // half levels get a tighter spectrum (condition 10): refinement
        // contracts the error by ~κ·ε_lo per step, and bf16's ε = 2⁻⁷
        // needs κ well below 100 to converge inside ITERMAX — the half
        // benchmark should time the half path, not the fallback.
        let lat: Mat<f64> = {
            let d = f77::spectrum::<f64>(f77::SpectrumMode::Geometric, n, 10.0);
            let mut rng = f77::Larnv::new(17);
            Mat::from_col_major(n, n, f77::lagge::<f64>(&mut rng, n, n, &d))
        };
        for (op, level, refine) in [
            ("gesv_mixed_f16", MixedLo::F16, RefineMode::Working),
            ("gesv_mixed_bf16", MixedLo::Bf16, RefineMode::Working),
            ("gesv_mixed_dd", MixedLo::F32, RefineMode::Dd),
        ] {
            let m = if refine == RefineMode::Dd { &gen } else { &lat };
            let (ms, iter) = time_gesv_mixed(n, reps, m, &b, level, refine);
            println!("{op:<15} n={n:5}  {ms:9.2} ms  (iter={iter})");
            rows.push(Row { op, n, ms, iter });
        }

        // Plain full-precision Cholesky solve.
        let ms = timeit(reps, || {
            let mut a = spd.clone();
            let mut bx = b.clone();
            assert_eq!(
                f77::posv(Uplo::Lower, n, 1, a.as_mut_slice(), n, &mut bx, n),
                0
            );
            bx
        }) * 1e3;
        println!("posv_full   n={n:5}  {ms:9.2} ms");
        rows.push(Row {
            op: "posv_full",
            n,
            ms,
            iter: 0,
        });

        let ms = timeit(reps, || {
            let mut a = spd.clone();
            let mut x = vec![0.0f64; n];
            let mut iter = 0i32;
            assert_eq!(
                f77::posv_mixed(
                    Uplo::Lower,
                    n,
                    1,
                    a.as_mut_slice(),
                    n,
                    &b,
                    n,
                    &mut x,
                    n,
                    &mut iter
                ),
                0
            );
            assert!(iter >= 0, "bench SPD matrix must take the mixed path");
            last_iter = iter;
            x
        }) * 1e3;
        println!("posv_mixed  n={n:5}  {ms:9.2} ms  (iter={last_iter})");
        rows.push(Row {
            op: "posv_mixed",
            n,
            ms,
            iter: last_iter,
        });
    }

    // --- Emit JSON ----------------------------------------------------
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("host");
    j.begin_obj();
    j.field_uint("cores", cores as u64);
    j.end_obj();
    j.key("mixed_sweep");
    j.begin_arr();
    for r in &rows {
        j.begin_obj();
        j.field_str("op", r.op);
        j.field_uint("n", r.n as u64);
        j.field_num("ms", r.ms);
        j.field_uint("iter", r.iter.max(0) as u64);
        j.end_obj();
    }
    j.end_arr();
    // Headline: end-to-end mixed speedup over the plain driver.
    j.key("speedup_mixed_vs_full");
    j.begin_obj();
    for family in ["gesv", "posv"] {
        for &n in sizes {
            let full = rows
                .iter()
                .find(|r| r.op == format!("{family}_full") && r.n == n)
                .map(|r| r.ms);
            let mixed = rows
                .iter()
                .find(|r| r.op == format!("{family}_mixed") && r.n == n)
                .map(|r| r.ms);
            if let (Some(f), Some(m)) = (full, mixed) {
                if m > 0.0 {
                    j.field_num(&format!("{family}_{n}"), f / m);
                }
            }
        }
    }
    j.end_obj();
    // Per-lattice-level speedup over the plain full-precision driver
    // (f16/bf16 reroute through f32 compute, so they bound the price of
    // the narrower storage; dd times the extended-residual loop).
    j.key("speedup_lattice_vs_full");
    j.begin_obj();
    for level in ["f16", "bf16", "dd"] {
        for &n in sizes {
            let full = rows
                .iter()
                .find(|r| r.op == "gesv_full" && r.n == n)
                .map(|r| r.ms);
            let lo = rows
                .iter()
                .find(|r| r.op == format!("gesv_mixed_{level}") && r.n == n)
                .map(|r| r.ms);
            if let (Some(f), Some(m)) = (full, lo) {
                if m > 0.0 {
                    j.field_num(&format!("gesv_{level}_{n}"), f / m);
                }
            }
        }
    }
    j.end_obj();
    // Accuracy row for the CI gate: componentwise backward error of the
    // extra-precise (double-double residual) gesvxx on the n = 12
    // Hilbert system — must stay ≤ 4ε (`bench_gate --max-dd-berr`).
    {
        let n = 12;
        let hil: Mat<f64> = Mat::from_fn(n, n, |i, j| 1.0 / (i + j + 1) as f64);
        let bh: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut ah = hil.clone();
        let mut xh = vec![0.0f64; n];
        la90::gesvxx(&mut ah, &bh, &mut xh).expect("gesvxx on Hilbert");
        let berr = comp_berr(n, &hil, &bh, &xh);
        println!(
            "dd_hilbert  n={n:5}  comp berr {berr:.3e}  (4eps = {:.3e})",
            4.0 * f64::EPSILON
        );
        j.key("dd_hilbert");
        j.begin_obj();
        j.field_uint("n", n as u64);
        j.field_num("berr", berr);
        j.end_obj();
    }
    j.end_obj();
    let path = if quick {
        "BENCH_mixed.quick.json"
    } else {
        "BENCH_mixed.json"
    };
    std::fs::write(path, j.into_string()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
