//! Mixed-precision refinement sweep: times the `DSGESV`-lineage drivers
//! (`gesv_mixed` / `posv_mixed`) against their plain full-precision
//! counterparts across sizes and emits `BENCH_mixed.json` in the current
//! directory.
//!
//! The benchmark matrices are well-conditioned (condition ~100), so the
//! low-precision path must converge (`iter ≥ 0`) — the sweep asserts it
//! on every timed run; a fallback would silently time the wrong
//! algorithm.
//!
//! `--quick` shrinks the sweep for CI (n = 512 only, still best-of-3)
//! and writes `BENCH_mixed.quick.json`, leaving the checked-in baseline
//! untouched; the `bench_gate` binary compares the two and additionally
//! enforces the ≥1.2× mixed-over-full floor on the baseline at n ≥ 1024.

use la_bench::{bench_matrix, bench_spd, timeit};
use la_core::json::JsonBuf;
use la_core::{Mat, Uplo};
use la_lapack as f77;

struct Row {
    op: &'static str,
    n: usize,
    ms: f64,
    iter: i32,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mode = if quick { " (quick)" } else { "" };
    println!("== mixed_sweep{mode}: {cores} core(s) ==");

    let reps = 3;
    let sizes: &[usize] = if quick { &[512] } else { &[256, 512, 1024] };

    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        let gen: Mat<f64> = bench_matrix(n, 3);
        let spd: Mat<f64> = bench_spd(n, 9);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();

        // Plain full-precision LU solve.
        let ms = timeit(reps, || {
            let mut a = gen.clone();
            let mut bx = b.clone();
            let mut ipiv = vec![0i32; n];
            assert_eq!(
                f77::gesv(n, 1, a.as_mut_slice(), n, &mut ipiv, &mut bx, n),
                0
            );
            bx
        }) * 1e3;
        println!("gesv_full   n={n:5}  {ms:9.2} ms");
        rows.push(Row {
            op: "gesv_full",
            n,
            ms,
            iter: 0,
        });

        // Mixed: f32 factorization + f64 refinement. Must converge.
        let mut last_iter = 0i32;
        let ms = timeit(reps, || {
            let mut a = gen.clone();
            let mut x = vec![0.0f64; n];
            let mut ipiv = vec![0i32; n];
            let mut iter = 0i32;
            assert_eq!(
                f77::gesv_mixed(
                    n,
                    1,
                    a.as_mut_slice(),
                    n,
                    &mut ipiv,
                    &b,
                    n,
                    &mut x,
                    n,
                    &mut iter
                ),
                0
            );
            assert!(iter >= 0, "bench matrix must take the mixed path");
            last_iter = iter;
            x
        }) * 1e3;
        println!("gesv_mixed  n={n:5}  {ms:9.2} ms  (iter={last_iter})");
        rows.push(Row {
            op: "gesv_mixed",
            n,
            ms,
            iter: last_iter,
        });

        // Plain full-precision Cholesky solve.
        let ms = timeit(reps, || {
            let mut a = spd.clone();
            let mut bx = b.clone();
            assert_eq!(
                f77::posv(Uplo::Lower, n, 1, a.as_mut_slice(), n, &mut bx, n),
                0
            );
            bx
        }) * 1e3;
        println!("posv_full   n={n:5}  {ms:9.2} ms");
        rows.push(Row {
            op: "posv_full",
            n,
            ms,
            iter: 0,
        });

        let ms = timeit(reps, || {
            let mut a = spd.clone();
            let mut x = vec![0.0f64; n];
            let mut iter = 0i32;
            assert_eq!(
                f77::posv_mixed(
                    Uplo::Lower,
                    n,
                    1,
                    a.as_mut_slice(),
                    n,
                    &b,
                    n,
                    &mut x,
                    n,
                    &mut iter
                ),
                0
            );
            assert!(iter >= 0, "bench SPD matrix must take the mixed path");
            last_iter = iter;
            x
        }) * 1e3;
        println!("posv_mixed  n={n:5}  {ms:9.2} ms  (iter={last_iter})");
        rows.push(Row {
            op: "posv_mixed",
            n,
            ms,
            iter: last_iter,
        });
    }

    // --- Emit JSON ----------------------------------------------------
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("host");
    j.begin_obj();
    j.field_uint("cores", cores as u64);
    j.end_obj();
    j.key("mixed_sweep");
    j.begin_arr();
    for r in &rows {
        j.begin_obj();
        j.field_str("op", r.op);
        j.field_uint("n", r.n as u64);
        j.field_num("ms", r.ms);
        j.field_uint("iter", r.iter.max(0) as u64);
        j.end_obj();
    }
    j.end_arr();
    // Headline: end-to-end mixed speedup over the plain driver.
    j.key("speedup_mixed_vs_full");
    j.begin_obj();
    for family in ["gesv", "posv"] {
        for &n in sizes {
            let full = rows
                .iter()
                .find(|r| r.op == format!("{family}_full") && r.n == n)
                .map(|r| r.ms);
            let mixed = rows
                .iter()
                .find(|r| r.op == format!("{family}_mixed") && r.n == n)
                .map(|r| r.ms);
            if let (Some(f), Some(m)) = (full, mixed) {
                if m > 0.0 {
                    j.field_num(&format!("{family}_{n}"), f / m);
                }
            }
        }
    }
    j.end_obj();
    j.end_obj();
    let path = if quick {
        "BENCH_mixed.quick.json"
    } else {
        "BENCH_mixed.json"
    };
    std::fs::write(path, j.into_string()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
