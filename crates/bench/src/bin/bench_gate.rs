//! CI performance gate: compares a fresh quick-mode sweep
//! (`BENCH_blas3.quick.json`, from `blas3_sweep --quick`) against the
//! checked-in baseline (`BENCH_blas3.json`) and exits non-zero if any
//! tracked operation regressed by more than the threshold.
//!
//! Runner speeds vary, so raw ratios are useless: the gate first
//! normalizes every per-row `fresh/baseline` ratio by the median ratio
//! across all rows (the machine-speed calibration), then applies the
//! tolerance to the normalized ratios. A uniformly slower runner shifts
//! the median, not the verdict; a single op that got slower *relative to
//! the others* trips the gate.
//!
//! Usage: `bench_gate [baseline.json] [fresh.json] [--threshold 1.25]
//! [--min-gemm-speedup 3.0] [--min-mixed-speedup 1.2]
//! [--min-lattice-speedup 0.3] [--max-dd-berr 8.9e-16]
//! [--max-abft-overhead 1.10] [--min-dag-speedup 1.15]
//! [--max-p99-ms 50] [--min-goodput 500]
//! [--max-overload-p99-ms 120] [--min-overload-goodput 300]`
//!
//! `--min-gemm-speedup` enforces an absolute floor on the baseline's
//! recorded `speedup_packed_vs_prepacked` ratios for `gemm` at n ≥ 512:
//! the packed register-blocked microkernel path must keep its headline
//! win over the pre-packed loop-nest substrate. As with the other
//! absolute checks, the floor reads the checked-in baseline so it guards
//! the committed measurement; the ratio rule guards fresh runs.
//!
//! The same gate covers the mixed-precision sweep (`BENCH_mixed.json` /
//! `BENCH_mixed.quick.json` from `mixed_sweep`): rows in its
//! `mixed_sweep` section join the normalized regression comparison, and
//! `--min-mixed-speedup` additionally enforces an absolute floor on the
//! baseline's recorded `speedup_mixed_vs_full` for `gesv` at n ≥ 1024 —
//! the end-to-end win the mixed drivers exist to deliver. The floor reads
//! the checked-in baseline (quick CI sweeps stop at n = 512), so it
//! guards the committed measurement, while the ratio rule guards fresh
//! runs against relative regressions.
//!
//! Two lattice checks ride the same baseline: `--min-lattice-speedup`
//! floors the `speedup_lattice_vs_full` f16/bf16 ratios at n ≥ 1024 (the
//! software half formats reroute through f32 compute, so they must not
//! collapse below a sanity fraction of the plain-f64 driver), and
//! `--max-dd-berr` ceilings the `dd_hilbert.berr` accuracy row — the
//! componentwise backward error the double-double-residual `gesvxx`
//! achieves on the n = 12 Hilbert system, committed at ≤ 4ε.
//!
//! Likewise for the ABFT sweep (`BENCH_abft.json` from `abft_sweep`):
//! its `abft_sweep` rows join the regression comparison, and
//! `--max-abft-overhead` enforces an absolute ceiling on the baseline's
//! recorded `abft_overhead` *verify* ratios at n ≥ 1024 — the O(n²)
//! checksums must stay cheap relative to the O(n³) compute.
//!
//! The tile-dag sweep (`BENCH_dag.json` / `BENCH_dag.quick.json` from
//! `dag_sweep`) follows the same pattern: rows in its `dag_sweep`
//! section join the normalized regression comparison, and
//! `--min-dag-speedup` enforces an absolute floor on the baseline's
//! recorded `speedup_dag_vs_blocked` at n ≥ 2048 — the task-graph
//! runtime must keep beating the fork-join blocked path on at least one
//! of `getrf`/`potrf` (the routines whose trailing updates the dag
//! overlaps across panel steps).
//!
//! Every check tolerates a missing *baseline* file uniformly: the first
//! run of a new sweep has nothing committed yet, so the gate prints a
//! clear "no baseline committed" message and passes instead of erroring,
//! letting the gate land before the baseline does. A present-but-
//! malformed baseline (missing section, no matching entries) still exits
//! non-zero — that is a config error, not a first run.
//!
//! The serving sweep (`BENCH_serve.json` from `serve_load`) is gated by
//! `--max-p99-ms` (ceiling on the clean-mode p99 latencies recorded in
//! the baseline's `serve_sweep` rows) and `--min-goodput` (floor on the
//! clean-mode jobs/s); whenever the serve baseline is present, every row
//! must also record `wrong == 0` and `pool_poisonings == 0` — the
//! service never serves a wrong answer and no panic ever escapes a job
//! boundary. A missing `BENCH_serve.json` is tolerated with a clear
//! message (first run: no baseline committed yet), so the gate can land
//! before the baseline does. `--serve-baseline <path>` overrides the
//! default path.
//!
//! The overload comparison (`serve_load --overload`, the baseline's
//! `overload` section) is gated by `--max-overload-p99-ms` (ceiling on
//! the *adaptive* row's served-job p99 — the admission controller must
//! keep latency bounded where the fixed-depth row is allowed to blow
//! past it) and `--min-overload-goodput` (floor on the adaptive row's
//! jobs/s under 2× oversubscription). Every overload row — fixed and
//! adaptive — must also record `wrong == 0`, `pool_poisonings == 0` and
//! `unresolved == 0`: overload may shed, it may never corrupt, poison,
//! or hang. A baseline without an `overload` section (not yet
//! committed) is tolerated with a clear message, same as a missing
//! file.

use la_core::json::Json;

/// One measured point, keyed for cross-file matching.
struct Point {
    op: String,
    n: u64,
    threads: u64,
    nb: u64,
    ms: f64,
}

/// Load every tracked sweep row from `path`. `None` means the file does
/// not exist (first run, nothing committed yet); parse errors on a
/// present file still panic — corrupt data should never pass silently.
fn load(path: &str) -> Option<Vec<Point>> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let mut pts = Vec::new();
    for section in [
        "thread_sweep",
        "nb_sweep",
        "mixed_sweep",
        "abft_sweep",
        "dag_sweep",
    ] {
        let Some(arr) = doc.get(section).and_then(|v| v.as_arr()) else {
            continue;
        };
        for row in arr {
            let get_u = |k: &str| row.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
            let (Some(op), Some(ms)) = (
                row.get("op").and_then(|v| v.as_str()),
                row.get("ms").and_then(|v| v.as_f64()),
            ) else {
                continue;
            };
            pts.push(Point {
                op: op.to_string(),
                n: get_u("n"),
                threads: get_u("threads"),
                nb: get_u("nb"),
                ms,
            });
        }
    }
    Some(pts)
}

/// Parse the committed baseline for an absolute floor/ceiling check.
/// `None` means the file is absent — the caller prints the uniform
/// "first run" message and skips the check.
fn load_baseline_doc(path: &str) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    Some(Json::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = 1.25f64;
    let mut min_gemm: Option<f64> = None;
    let mut min_mixed: Option<f64> = None;
    let mut min_lattice: Option<f64> = None;
    let mut max_dd_berr: Option<f64> = None;
    let mut max_abft: Option<f64> = None;
    let mut min_dag: Option<f64> = None;
    let mut max_p99: Option<f64> = None;
    let mut min_goodput: Option<f64> = None;
    let mut max_ov_p99: Option<f64> = None;
    let mut min_ov_goodput: Option<f64> = None;
    let mut serve_path = "BENCH_serve.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            let v = it.next().expect("--threshold needs a value");
            threshold = v.parse().expect("bad threshold");
        } else if a == "--min-gemm-speedup" {
            let v = it.next().expect("--min-gemm-speedup needs a value");
            min_gemm = Some(v.parse().expect("bad min-gemm-speedup"));
        } else if a == "--min-mixed-speedup" {
            let v = it.next().expect("--min-mixed-speedup needs a value");
            min_mixed = Some(v.parse().expect("bad min-mixed-speedup"));
        } else if a == "--min-lattice-speedup" {
            let v = it.next().expect("--min-lattice-speedup needs a value");
            min_lattice = Some(v.parse().expect("bad min-lattice-speedup"));
        } else if a == "--max-dd-berr" {
            let v = it.next().expect("--max-dd-berr needs a value");
            max_dd_berr = Some(v.parse().expect("bad max-dd-berr"));
        } else if a == "--min-dag-speedup" {
            let v = it.next().expect("--min-dag-speedup needs a value");
            min_dag = Some(v.parse().expect("bad min-dag-speedup"));
        } else if a == "--max-abft-overhead" {
            let v = it.next().expect("--max-abft-overhead needs a value");
            max_abft = Some(v.parse().expect("bad max-abft-overhead"));
        } else if a == "--max-p99-ms" {
            let v = it.next().expect("--max-p99-ms needs a value");
            max_p99 = Some(v.parse().expect("bad max-p99-ms"));
        } else if a == "--min-goodput" {
            let v = it.next().expect("--min-goodput needs a value");
            min_goodput = Some(v.parse().expect("bad min-goodput"));
        } else if a == "--max-overload-p99-ms" {
            let v = it.next().expect("--max-overload-p99-ms needs a value");
            max_ov_p99 = Some(v.parse().expect("bad max-overload-p99-ms"));
        } else if a == "--min-overload-goodput" {
            let v = it.next().expect("--min-overload-goodput needs a value");
            min_ov_goodput = Some(v.parse().expect("bad min-overload-goodput"));
        } else if a == "--serve-baseline" {
            let v = it.next().expect("--serve-baseline needs a value");
            serve_path = v.clone();
        } else {
            paths.push(a);
        }
    }
    let baseline_path = paths.first().copied().unwrap_or("BENCH_blas3.json");
    let fresh_path = paths.get(1).copied().unwrap_or("BENCH_blas3.quick.json");

    let baseline = load(baseline_path);
    let fresh = load(fresh_path).unwrap_or_else(|| {
        eprintln!("bench_gate: missing fresh sweep {fresh_path} (run the sweep first)");
        std::process::exit(2);
    });

    let mut failed = false;
    if let Some(baseline) = &baseline {
        // Match rows on (op, n, threads, nb); the quick sweep covers a
        // subset of the baseline grid, so the comparison runs on the
        // intersection.
        let mut ratios: Vec<(String, f64)> = Vec::new();
        for f in &fresh {
            let Some(b) = baseline
                .iter()
                .find(|b| b.op == f.op && b.n == f.n && b.threads == f.threads && b.nb == f.nb)
            else {
                continue;
            };
            if b.ms > 0.0 && f.ms > 0.0 {
                let key = format!("{} n={} threads={} nb={}", f.op, f.n, f.threads, f.nb);
                ratios.push((key, f.ms / b.ms));
            }
        }
        if ratios.is_empty() {
            eprintln!("bench_gate: no comparable rows between {baseline_path} and {fresh_path}");
            std::process::exit(2);
        }

        // Machine-speed calibration: divide out the median ratio.
        let mut sorted: Vec<f64> = ratios.iter().map(|(_, r)| *r).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        println!(
            "bench_gate: {} comparable rows, median fresh/baseline ratio {median:.3} \
             (normalizing), threshold {threshold:.2}",
            ratios.len()
        );

        for (key, r) in &ratios {
            let norm = r / median;
            let flag = if norm > threshold {
                failed = true;
                "  << REGRESSION"
            } else {
                ""
            };
            println!("  {key:<34} ratio {r:7.3}  normalized {norm:7.3}{flag}");
        }
    } else {
        println!(
            "bench_gate: no baseline committed at {baseline_path} (first run) — \
             skipping regression comparison"
        );
    }
    // The absolute floors/ceilings below all read the committed baseline;
    // parse it once. `None` (file absent) makes every check print the
    // uniform first-run message and pass.
    let base_doc = load_baseline_doc(baseline_path);
    let skip = |check: &str| {
        println!(
            "bench_gate: no baseline committed at {baseline_path} (first run) — skipping {check}"
        );
    };
    // Absolute floor on the baseline's packed-over-prepacked gemm
    // speedup: the packed microkernel path must keep its headline win
    // over the pre-packed loop-nest substrate at the sizes where the
    // cache blocking pays (n ≥ 512).
    if min_gemm.is_some() && base_doc.is_none() {
        skip("gemm-speedup floor");
    }
    if let (Some(floor), Some(doc)) = (min_gemm, &base_doc) {
        let Some(Json::Obj(speedups)) = doc.get("speedup_packed_vs_prepacked") else {
            eprintln!("bench_gate: {baseline_path} has no speedup_packed_vs_prepacked section");
            std::process::exit(2);
        };
        let mut checked = 0usize;
        for (key, val) in speedups {
            let Some((family, n)) = key.rsplit_once('_') else {
                continue;
            };
            let n: u64 = n.parse().unwrap_or(0);
            if family != "gemm" || n < 512 {
                continue;
            }
            let s = val.as_f64().unwrap_or(0.0);
            checked += 1;
            let flag = if s < floor {
                failed = true;
                "  << BELOW FLOOR"
            } else {
                ""
            };
            println!("  packed speedup {key:<22} {s:7.3}  (floor {floor:.2}){flag}");
        }
        if checked == 0 {
            eprintln!("bench_gate: no gemm packed-speedup entries at n >= 512 in {baseline_path}");
            std::process::exit(2);
        }
    }
    // Absolute floor on the baseline's mixed-over-full speedup: the
    // mixed drivers must keep paying for themselves end-to-end at the
    // sizes the paper's argument rests on (gesv, n ≥ 1024).
    if min_mixed.is_some() && base_doc.is_none() {
        skip("mixed-speedup floor");
    }
    if let (Some(floor), Some(doc)) = (min_mixed, &base_doc) {
        let Some(Json::Obj(speedups)) = doc.get("speedup_mixed_vs_full") else {
            eprintln!("bench_gate: {baseline_path} has no speedup_mixed_vs_full section");
            std::process::exit(2);
        };
        let mut checked = 0usize;
        for (key, val) in speedups {
            let Some((family, n)) = key.rsplit_once('_') else {
                continue;
            };
            let n: u64 = n.parse().unwrap_or(0);
            if family != "gesv" || n < 1024 {
                continue;
            }
            let s = val.as_f64().unwrap_or(0.0);
            checked += 1;
            let flag = if s < floor {
                failed = true;
                "  << BELOW FLOOR"
            } else {
                ""
            };
            println!("  mixed speedup {key:<23} {s:7.3}  (floor {floor:.2}){flag}");
        }
        if checked == 0 {
            eprintln!("bench_gate: no gesv speedup entries at n >= 1024 in {baseline_path}");
            std::process::exit(2);
        }
    }
    // Absolute floor on the baseline's per-lattice-level speedup: the
    // software half formats reroute through f32 compute, so they carry
    // conversion + extra-refinement cost — the floor is a sanity
    // fraction of the plain-f64 driver, not a speedup claim, and it
    // catches a half path that silently falls off a performance cliff.
    if min_lattice.is_some() && base_doc.is_none() {
        skip("lattice-speedup floor");
    }
    if let (Some(floor), Some(doc)) = (min_lattice, &base_doc) {
        let Some(Json::Obj(speedups)) = doc.get("speedup_lattice_vs_full") else {
            eprintln!("bench_gate: {baseline_path} has no speedup_lattice_vs_full section");
            std::process::exit(2);
        };
        let mut checked = 0usize;
        for (key, val) in speedups {
            let Some((level, n)) = key.rsplit_once('_') else {
                continue;
            };
            let n: u64 = n.parse().unwrap_or(0);
            if !level.starts_with("gesv_") || n < 1024 {
                continue;
            }
            let s = val.as_f64().unwrap_or(0.0);
            checked += 1;
            let flag = if s < floor {
                failed = true;
                "  << BELOW FLOOR"
            } else {
                ""
            };
            println!("  lattice speedup {key:<21} {s:7.3}  (floor {floor:.2}){flag}");
        }
        if checked == 0 {
            eprintln!("bench_gate: no lattice speedup entries at n >= 1024 in {baseline_path}");
            std::process::exit(2);
        }
    }
    // Absolute ceiling on the baseline's extra-precise-refinement
    // accuracy row: the double-double-residual gesvxx must keep the
    // n = 12 Hilbert system's componentwise backward error at working
    // precision (the committed measurement is ~ε; the gate holds 4ε).
    if max_dd_berr.is_some() && base_doc.is_none() {
        skip("dd-berr ceiling");
    }
    if let (Some(ceiling), Some(doc)) = (max_dd_berr, &base_doc) {
        let Some(row) = doc.get("dd_hilbert") else {
            eprintln!("bench_gate: {baseline_path} has no dd_hilbert section");
            std::process::exit(2);
        };
        let Some(berr) = row.get("berr").and_then(|v| v.as_f64()) else {
            eprintln!("bench_gate: dd_hilbert section in {baseline_path} has no berr field");
            std::process::exit(2);
        };
        let flag = if berr > ceiling {
            failed = true;
            "  << ABOVE CEILING"
        } else {
            ""
        };
        println!("  dd_hilbert comp berr {berr:28.3e}  (ceiling {ceiling:.3e}){flag}");
    }
    // Absolute ceiling on the baseline's ABFT verify overhead: detection
    // must stay an O(n²) tax on O(n³) work at the sizes that matter.
    if max_abft.is_some() && base_doc.is_none() {
        skip("abft-overhead ceiling");
    }
    if let (Some(ceiling), Some(doc)) = (max_abft, &base_doc) {
        let Some(Json::Obj(overheads)) = doc.get("abft_overhead") else {
            eprintln!("bench_gate: {baseline_path} has no abft_overhead section");
            std::process::exit(2);
        };
        let mut checked = 0usize;
        for (key, val) in overheads {
            // Keys are `<op>_<policy>_<n>`; the ceiling applies to the
            // verify ratios at n ≥ 1024.
            let Some((head, n)) = key.rsplit_once('_') else {
                continue;
            };
            let n: u64 = n.parse().unwrap_or(0);
            if !head.ends_with("_verify") || n < 1024 {
                continue;
            }
            let r = val.as_f64().unwrap_or(f64::INFINITY);
            checked += 1;
            let flag = if r > ceiling {
                failed = true;
                "  << ABOVE CEILING"
            } else {
                ""
            };
            println!("  abft overhead {key:<23} {r:7.3}  (ceiling {ceiling:.2}){flag}");
        }
        if checked == 0 {
            eprintln!("bench_gate: no verify overhead entries at n >= 1024 in {baseline_path}");
            std::process::exit(2);
        }
    }
    // Absolute floor on the baseline's dag-over-blocked speedup: the
    // tile task-graph runtime must keep beating the fork-join blocked
    // path at the sizes where inter-step overlap pays (n ≥ 2048), on at
    // least one of getrf/potrf — the routines whose trailing updates
    // the dag pipelines across panel steps.
    if min_dag.is_some() && base_doc.is_none() {
        skip("dag-speedup floor");
    }
    if let (Some(floor), Some(doc)) = (min_dag, &base_doc) {
        let Some(Json::Obj(speedups)) = doc.get("speedup_dag_vs_blocked") else {
            eprintln!("bench_gate: {baseline_path} has no speedup_dag_vs_blocked section");
            std::process::exit(2);
        };
        let mut checked = 0usize;
        let mut best = 0.0f64;
        for (key, val) in speedups {
            let Some((family, n)) = key.rsplit_once('_') else {
                continue;
            };
            let n: u64 = n.parse().unwrap_or(0);
            if !(family == "getrf" || family == "potrf") || n < 2048 {
                continue;
            }
            let s = val.as_f64().unwrap_or(0.0);
            checked += 1;
            best = best.max(s);
            let flag = if s < floor { "  (below floor)" } else { "" };
            println!("  dag speedup {key:<25} {s:7.3}  (floor {floor:.2}){flag}");
        }
        if checked == 0 {
            eprintln!(
                "bench_gate: no getrf/potrf dag-speedup entries at n >= 2048 in {baseline_path}"
            );
            std::process::exit(2);
        }
        if best < floor {
            failed = true;
            println!("  dag speedup: best getrf/potrf ratio {best:.3} << BELOW FLOOR {floor:.2}");
        }
    }
    // Serving gate: latency ceiling and goodput floor over the clean-mode
    // rows of the committed serve baseline, plus the unconditional
    // robustness invariants (zero wrong answers, zero pool poisonings)
    // across every row — clean and chaos alike. A missing baseline is
    // tolerated: the gate can land before the first `serve_load` run is
    // committed.
    let want_serve = max_p99.is_some() || min_goodput.is_some();
    let want_overload = max_ov_p99.is_some() || min_ov_goodput.is_some();
    if want_serve || want_overload {
        match std::fs::read_to_string(&serve_path) {
            Err(_) => {
                println!(
                    "bench_gate: no serve baseline committed at {serve_path} \
                     (first run) — skipping serve checks"
                );
            }
            Ok(text) => {
                let doc = Json::parse(&text).unwrap_or_else(|e| panic!("parse {serve_path}: {e}"));
                if want_serve {
                    let Some(rows) = doc.get("serve_sweep").and_then(|v| v.as_arr()) else {
                        eprintln!("bench_gate: {serve_path} has no serve_sweep section");
                        std::process::exit(2);
                    };
                    let mut checked = 0usize;
                    for row in rows {
                        let get_s = |k: &str| row.get(k).and_then(|v| v.as_str()).unwrap_or("?");
                        let get_f =
                            |k: &str| row.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
                        let key = format!(
                            "{} {} c={}",
                            get_s("op"),
                            get_s("mode"),
                            get_f("concurrency") as u64
                        );
                        let wrong = get_f("wrong");
                        let poisonings = get_f("pool_poisonings");
                        if !(wrong == 0.0 && poisonings == 0.0) {
                            failed = true;
                            println!(
                                "  serve {key:<28} wrong {wrong} poisonings {poisonings}  \
                                 << INVARIANT VIOLATED"
                            );
                        }
                        if get_s("mode") != "clean" {
                            continue;
                        }
                        checked += 1;
                        let p99 = get_f("p99_ms");
                        let goodput = get_f("goodput_jps");
                        let mut flag = "";
                        // NaN (absent field) fails the check rather than
                        // slipping past a `<` comparison.
                        if let Some(ceiling) = max_p99 {
                            if p99.is_nan() || p99 > ceiling {
                                failed = true;
                                flag = "  << P99 ABOVE CEILING";
                            }
                        }
                        if let Some(floor) = min_goodput {
                            if flag.is_empty() && (goodput.is_nan() || goodput < floor) {
                                failed = true;
                                flag = "  << GOODPUT BELOW FLOOR";
                            }
                        }
                        println!(
                            "  serve {key:<28} p99 {p99:8.3} ms  goodput {goodput:9.1} jobs/s{flag}"
                        );
                    }
                    if checked == 0 {
                        eprintln!("bench_gate: no clean serve_sweep rows in {serve_path}");
                        std::process::exit(2);
                    }
                }
                // Overload comparison: robustness invariants on every
                // row; the latency ceiling and goodput floor bind on the
                // adaptive row, the one the admission controller owns.
                // An absent section is the pre-commit state, not an
                // error — warn and pass, like a missing baseline file.
                if want_overload {
                    match doc.get("overload").and_then(|v| v.as_arr()) {
                        None => {
                            println!(
                                "bench_gate: {serve_path} has no overload section \
                                 (not yet committed) — skipping overload checks"
                            );
                        }
                        Some(rows) => {
                            let mut checked = 0usize;
                            for row in rows {
                                let get_s =
                                    |k: &str| row.get(k).and_then(|v| v.as_str()).unwrap_or("?");
                                let get_f = |k: &str| {
                                    row.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN)
                                };
                                let mode = get_s("mode");
                                let wrong = get_f("wrong");
                                let poisonings = get_f("pool_poisonings");
                                let unresolved = get_f("unresolved");
                                if !(wrong == 0.0 && poisonings == 0.0 && unresolved == 0.0) {
                                    failed = true;
                                    println!(
                                        "  overload {mode:<9} wrong {wrong} poisonings \
                                         {poisonings} unresolved {unresolved}  \
                                         << INVARIANT VIOLATED"
                                    );
                                }
                                let p99 = get_f("p99_ms");
                                let goodput = get_f("goodput_jps");
                                let mut flag = "";
                                if mode == "adaptive" {
                                    checked += 1;
                                    if let Some(ceiling) = max_ov_p99 {
                                        if p99.is_nan() || p99 > ceiling {
                                            failed = true;
                                            flag = "  << P99 ABOVE CEILING";
                                        }
                                    }
                                    if let Some(floor) = min_ov_goodput {
                                        if flag.is_empty() && (goodput.is_nan() || goodput < floor)
                                        {
                                            failed = true;
                                            flag = "  << GOODPUT BELOW FLOOR";
                                        }
                                    }
                                }
                                println!(
                                    "  overload {mode:<9} p99 {p99:8.3} ms  goodput \
                                     {goodput:9.1} jobs/s  shed {}{flag}",
                                    get_f("shed")
                                );
                            }
                            if checked == 0 {
                                eprintln!(
                                    "bench_gate: overload section in {serve_path} has no \
                                     adaptive row"
                                );
                                std::process::exit(2);
                            }
                        }
                    }
                }
            }
        }
    }
    if failed {
        eprintln!("bench_gate: performance gate failed (threshold {threshold:.2}x)");
        std::process::exit(1);
    }
    println!("bench_gate: OK");
}
