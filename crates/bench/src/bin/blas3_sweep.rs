//! Tuning sweep for the parallel BLAS-3 layer: measures the Level-3
//! kernels and the blocked factorizations across thread counts and block
//! sizes via scoped [`la_core::tune`] overrides, and emits the results as
//! `BENCH_blas3.json` in the current directory.
//!
//! Every configuration is set through `tune::with` — the same mechanism
//! callers use — so the sweep doubles as an end-to-end check that the
//! runtime tuning actually steers the substrate.
//!
//! `--quick` shrinks the sweep for CI (n = 512 only, still best-of-3)
//! and writes `BENCH_blas3.quick.json` instead, leaving the checked-in
//! baseline untouched; the `bench_gate` binary compares the two.

use la_bench::{bench_matrix, bench_spd, timeit};
use la_core::json::JsonBuf;
use la_core::{tune, Mat, Trans, Uplo};
use la_lapack as f77;

fn cfg_threads(t: usize) -> tune::TuneConfig {
    tune::TuneConfig {
        max_threads: t,
        // The sweep measures striping behavior at the *requested* budget
        // even when it exceeds the host cores (the committed baselines
        // predate the host-core clamp and were taken that way).
        oversubscribe: true,
        ..tune::TuneConfig::defaults()
    }
}

struct Row {
    op: &'static str,
    n: usize,
    threads: usize,
    nb: usize,
    ms: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let auto = tune::TuneConfig::defaults().threads();
    let mode = if quick { " (quick)" } else { "" };
    println!("== blas3_sweep{mode}: {cores} core(s), auto thread budget {auto} ==");

    // Quick mode drops the n=1024 grid but keeps best-of-5 timing:
    // fewer reps are too noisy to gate on now that the packed microkernel
    // path has made the serial n=512 rows only a few ms long.
    let reps = 5;
    let sizes: &[usize] = if quick { &[512] } else { &[512, 1024] };

    let mut rows: Vec<Row> = Vec::new();
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .iter()
        .copied()
        .filter(|&t| t == 1 || t <= 2 * cores)
        .collect();

    // --- Level-3 kernels across thread counts -------------------------
    for &n in sizes {
        let a: Mat<f64> = bench_matrix(n, 3);
        let b: Mat<f64> = bench_matrix(n, 5);
        let mut tri = a.clone();
        for i in 0..n {
            tri[(i, i)] += 4.0;
        }
        for &t in &thread_counts {
            let ms = timeit(reps, || {
                let mut c: Mat<f64> = Mat::zeros(n, n);
                tune::with(cfg_threads(t), || {
                    la_blas::gemm(
                        Trans::No,
                        Trans::No,
                        n,
                        n,
                        n,
                        1.0,
                        a.as_slice(),
                        n,
                        b.as_slice(),
                        n,
                        0.0,
                        c.as_mut_slice(),
                        n,
                    );
                });
                c
            }) * 1e3;
            println!("gemm   n={n:5}  threads={t}  {ms:9.2} ms");
            rows.push(Row {
                op: "gemm",
                n,
                threads: t,
                nb: 0,
                ms,
            });

            let ms = timeit(reps, || {
                let mut c: Mat<f64> = Mat::zeros(n, n);
                tune::with(cfg_threads(t), || {
                    la_blas::syrk(
                        Uplo::Lower,
                        Trans::No,
                        n,
                        n,
                        1.0,
                        a.as_slice(),
                        n,
                        0.0,
                        c.as_mut_slice(),
                        n,
                    );
                });
                c
            }) * 1e3;
            println!("syrk   n={n:5}  threads={t}  {ms:9.2} ms");
            rows.push(Row {
                op: "syrk",
                n,
                threads: t,
                nb: 0,
                ms,
            });

            let ms = timeit(reps, || {
                let mut x = b.clone();
                tune::with(cfg_threads(t), || {
                    la_blas::trsm(
                        la_core::Side::Left,
                        Uplo::Lower,
                        Trans::No,
                        la_core::Diag::NonUnit,
                        n,
                        n,
                        1.0,
                        tri.as_slice(),
                        n,
                        x.as_mut_slice(),
                        n,
                    );
                });
                x
            }) * 1e3;
            println!("trsm   n={n:5}  threads={t}  {ms:9.2} ms");
            rows.push(Row {
                op: "trsm",
                n,
                threads: t,
                nb: 0,
                ms,
            });
        }
    }

    // --- Factorizations across thread counts --------------------------
    for &n in sizes {
        let gen: Mat<f64> = bench_matrix(n, 7);
        let spd: Mat<f64> = bench_spd(n, 9);
        for &t in &thread_counts {
            let ms = timeit(reps, || {
                let mut a = gen.clone();
                let mut ipiv = vec![0i32; n];
                tune::with(cfg_threads(t), || {
                    assert_eq!(f77::getrf(n, n, a.as_mut_slice(), n, &mut ipiv), 0);
                });
                a
            }) * 1e3;
            println!("getrf  n={n:5}  threads={t}  {ms:9.2} ms");
            rows.push(Row {
                op: "getrf",
                n,
                threads: t,
                nb: 0,
                ms,
            });

            let ms = timeit(reps, || {
                let mut a = spd.clone();
                tune::with(cfg_threads(t), || {
                    assert_eq!(f77::potrf(Uplo::Lower, n, a.as_mut_slice(), n), 0);
                });
                a
            }) * 1e3;
            println!("potrf  n={n:5}  threads={t}  {ms:9.2} ms");
            rows.push(Row {
                op: "potrf",
                n,
                threads: t,
                nb: 0,
                ms,
            });
        }
    }

    // --- NB sweep for the blocked factorizations (auto threads) -------
    let n = 512usize;
    let gen: Mat<f64> = bench_matrix(n, 11);
    let spd: Mat<f64> = bench_spd(n, 13);
    for &nb in &[16usize, 32, 64, 96, 128] {
        let cfg = tune::TuneConfig {
            nb_getrf: nb,
            nb_potrf: nb,
            crossover: 0,
            ..tune::TuneConfig::defaults()
        };
        let ms = timeit(reps, || {
            let mut a = gen.clone();
            let mut ipiv = vec![0i32; n];
            tune::with(cfg, || {
                assert_eq!(f77::getrf(n, n, a.as_mut_slice(), n, &mut ipiv), 0);
            });
            a
        }) * 1e3;
        println!("getrf  n={n:5}  nb={nb:3}       {ms:9.2} ms");
        rows.push(Row {
            op: "getrf_nb",
            n,
            threads: 0,
            nb,
            ms,
        });

        let ms = timeit(reps, || {
            let mut a = spd.clone();
            tune::with(cfg, || {
                assert_eq!(f77::potrf(Uplo::Lower, n, a.as_mut_slice(), n), 0);
            });
            a
        }) * 1e3;
        println!("potrf  n={n:5}  nb={nb:3}       {ms:9.2} ms");
        rows.push(Row {
            op: "potrf_nb",
            n,
            threads: 0,
            nb,
            ms,
        });
    }

    // --- Emit JSON ----------------------------------------------------
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("host");
    j.begin_obj();
    j.field_uint("cores", cores as u64);
    j.field_uint("auto_thread_budget", auto as u64);
    j.end_obj();
    // Pre-PR reference (serial trailing-update substrate, single-core
    // container): potrf/getrf wall-clock before the parallel BLAS-3 layer
    // landed. Kept verbatim for cross-revision comparison.
    j.key("pre_pr_serial_baseline_ms");
    j.begin_obj();
    j.field_num("potrf_512", 7.99);
    j.field_num("getrf_512", 12.47);
    j.field_num("potrf_1024", 54.37);
    j.field_num("getrf_1024", 98.33);
    j.field_uint("host_cores", 1);
    j.end_obj();
    // Serial gemm wall-clock on the unpacked loop-nest substrate
    // immediately before the packed register-blocked microkernel path
    // landed, same single-core container. Kept verbatim: the
    // `speedup_packed_vs_prepacked` section below (and the
    // `bench_gate --min-gemm-speedup` floor) measure against it.
    j.key("pre_packed_gemm_baseline_ms");
    j.begin_obj();
    j.field_num("gemm_512", 42.296);
    j.field_num("gemm_1024", 249.516);
    j.field_uint("host_cores", 1);
    j.end_obj();
    for (key, ops) in [
        (
            "thread_sweep",
            &["gemm", "syrk", "trsm", "getrf", "potrf"][..],
        ),
        ("nb_sweep", &["getrf_nb", "potrf_nb"][..]),
    ] {
        j.key(key);
        j.begin_arr();
        for r in rows.iter().filter(|r| ops.contains(&r.op)) {
            j.begin_obj();
            j.field_str("op", r.op);
            j.field_uint("n", r.n as u64);
            j.field_uint("threads", r.threads as u64);
            j.field_uint("nb", r.nb as u64);
            j.field_num("ms", r.ms);
            j.end_obj();
        }
        j.end_arr();
    }
    // Headline speedups: best parallel time over the forced-serial time.
    j.key("speedup_vs_serial");
    j.begin_obj();
    for op in ["gemm", "syrk", "trsm", "getrf", "potrf"] {
        for &n in sizes {
            let serial = rows
                .iter()
                .find(|r| r.op == op && r.n == n && r.threads == 1)
                .map(|r| r.ms);
            let best = rows
                .iter()
                .filter(|r| r.op == op && r.n == n && r.threads > 1)
                .map(|r| r.ms)
                .fold(f64::INFINITY, f64::min);
            if let Some(s) = serial {
                if best.is_finite() {
                    j.field_num(&format!("{op}_{n}"), s / best);
                }
            }
        }
    }
    j.end_obj();
    // Packed-path headline: fresh serial gemm against the recorded
    // pre-packed serial baseline. `bench_gate --min-gemm-speedup`
    // enforces an absolute floor on these ratios at n ≥ 512.
    j.key("speedup_packed_vs_prepacked");
    j.begin_obj();
    for (n, pre_ms) in [(512usize, 42.296f64), (1024, 249.516)] {
        let fresh = rows
            .iter()
            .find(|r| r.op == "gemm" && r.n == n && r.threads == 1)
            .map(|r| r.ms);
        if let Some(ms) = fresh {
            j.field_num(&format!("gemm_{n}"), pre_ms / ms);
        }
    }
    j.end_obj();
    j.end_obj();
    let path = if quick {
        "BENCH_blas3.quick.json"
    } else {
        "BENCH_blas3.json"
    };
    std::fs::write(path, j.into_string()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
