//! Blocked-vs-dag sweep for the tile task-graph factorizations:
//! measures `getrf`/`potrf`/`geqrf` under `LA_FACTOR=blocked` and
//! `LA_FACTOR=dag` at a fixed thread budget, records the graph shape the
//! probe layer observed (task count, edge count, critical path,
//! occupancy), and emits `BENCH_dag.json` in the current directory.
//!
//! Both algorithm families are selected through `tune::with` — the same
//! scoped override callers use — so the sweep doubles as an end-to-end
//! check that `FactorAlgo::Dag` actually routes the public entry points
//! through the tile runtime.
//!
//! `--quick` shrinks the sweep for CI (n = 512 only) and writes
//! `BENCH_dag.quick.json` instead, leaving the checked-in baseline
//! untouched; `bench_gate --min-dag-speedup` enforces the committed
//! baseline's dag-over-blocked floor at n ≥ 2048.

use la_bench::{bench_matrix, bench_spd, timeit};
use la_core::json::JsonBuf;
use la_core::probe::{self, ProbePolicy};
use la_core::{tune, Mat, Uplo};
use la_lapack as f77;

/// Tile order used for every dag row (recorded in the `nb` column so
/// `bench_gate` matches rows across runs).
const TILE_NB: usize = 192;
/// Thread budget for both families. Oversubscription mirrors the other
/// committed baselines, which predate the host-core clamp.
const THREADS: usize = 4;

fn blocked_cfg() -> tune::TuneConfig {
    tune::TuneConfig {
        max_threads: THREADS,
        oversubscribe: true,
        ..tune::TuneConfig::defaults()
    }
}

fn dag_cfg() -> tune::TuneConfig {
    tune::TuneConfig {
        factor: tune::FactorAlgo::Dag,
        tile_nb: TILE_NB,
        ..blocked_cfg()
    }
}

struct Row {
    op: String,
    n: usize,
    nb: usize,
    ms: f64,
    gflops: f64,
}

/// Model flop counts for the square factorizations (LAPACK working
///-note formulas), used only for the reported GF/s column.
fn flops(family: &str, n: usize) -> f64 {
    let n3 = (n as f64).powi(3);
    match family {
        "getrf" => 2.0 / 3.0 * n3,
        "potrf" => 1.0 / 3.0 * n3,
        "geqrf" => 4.0 / 3.0 * n3,
        _ => unreachable!(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mode = if quick { " (quick)" } else { "" };
    println!("== dag_sweep{mode}: {cores} core(s), threads={THREADS}, tile_nb={TILE_NB} ==");

    let reps = 3;
    let sizes: &[usize] = if quick { &[512] } else { &[512, 1024, 2048] };

    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        let gen: Mat<f64> = bench_matrix(n, 17);
        let spd: Mat<f64> = bench_spd(n, 19);
        for (algo, cfg, nb) in [
            ("blocked", blocked_cfg(), 0usize),
            ("dag", dag_cfg(), TILE_NB),
        ] {
            let ms = timeit(reps, || {
                let mut a = gen.clone();
                let mut ipiv = vec![0i32; n];
                tune::with(cfg, || {
                    assert_eq!(f77::getrf(n, n, a.as_mut_slice(), n, &mut ipiv), 0);
                });
                a
            }) * 1e3;
            push(&mut rows, "getrf", algo, n, nb, ms);

            let ms = timeit(reps, || {
                let mut a = spd.clone();
                tune::with(cfg, || {
                    assert_eq!(f77::potrf(Uplo::Lower, n, a.as_mut_slice(), n), 0);
                });
                a
            }) * 1e3;
            push(&mut rows, "potrf", algo, n, nb, ms);

            let ms = timeit(reps, || {
                let mut a = gen.clone();
                let mut tau = vec![0.0f64; n];
                tune::with(cfg, || {
                    assert_eq!(f77::geqrf(n, n, a.as_mut_slice(), n, &mut tau), 0);
                });
                a
            }) * 1e3;
            push(&mut rows, "geqrf", algo, n, nb, ms);
        }
    }

    // --- Graph shape at the largest measured size ----------------------
    // One probed dag run per routine; the span tree carries the task
    // count, inferred edge count, critical path and worker occupancy the
    // runtime recorded.
    let n = *sizes.last().unwrap();
    let gen: Mat<f64> = bench_matrix(n, 17);
    let spd: Mat<f64> = bench_spd(n, 19);
    let mut shapes: Vec<(&'static str, probe::DagShape)> = Vec::new();
    let mut shape_of = |routine: &'static str, f: &mut dyn FnMut()| {
        probe::reset();
        probe::with_policy(ProbePolicy::Spans, || tune::with(dag_cfg(), f));
        let report = probe::snapshot();
        if let Some(shape) = report
            .spans
            .iter()
            .find_map(|s| s.find(routine))
            .and_then(|s| s.dag)
        {
            println!(
                "{routine:10} n={n:5}  tasks={} edges={} critical_path={} occupancy={:.2}",
                shape.tasks, shape.edges, shape.critical_path, shape.occupancy
            );
            shapes.push((routine, shape));
        }
    };
    shape_of("getrf_dag", &mut || {
        let mut a = gen.clone();
        let mut ipiv = vec![0i32; n];
        assert_eq!(f77::getrf(n, n, a.as_mut_slice(), n, &mut ipiv), 0);
    });
    shape_of("potrf_dag", &mut || {
        let mut a = spd.clone();
        assert_eq!(f77::potrf(Uplo::Lower, n, a.as_mut_slice(), n), 0);
    });
    shape_of("geqrf_dag", &mut || {
        let mut a = gen.clone();
        let mut tau = vec![0.0f64; n];
        assert_eq!(f77::geqrf(n, n, a.as_mut_slice(), n, &mut tau), 0);
    });

    // --- Emit JSON ----------------------------------------------------
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("host");
    j.begin_obj();
    j.field_uint("cores", cores as u64);
    j.field_uint("threads", THREADS as u64);
    j.field_uint("tile_nb", TILE_NB as u64);
    j.end_obj();
    j.key("dag_sweep");
    j.begin_arr();
    for r in &rows {
        j.begin_obj();
        j.field_str("op", &r.op);
        j.field_uint("n", r.n as u64);
        j.field_uint("threads", THREADS as u64);
        j.field_uint("nb", r.nb as u64);
        j.field_num("ms", r.ms);
        j.field_num("gflops", r.gflops);
        j.end_obj();
    }
    j.end_arr();
    // Headline ratios: blocked wall-clock over dag wall-clock, per
    // routine and size. `bench_gate --min-dag-speedup` enforces a floor
    // on the getrf/potrf entries at n ≥ 2048.
    j.key("speedup_dag_vs_blocked");
    j.begin_obj();
    for family in ["getrf", "potrf", "geqrf"] {
        for &n in sizes {
            let find = |algo: &str| {
                rows.iter()
                    .find(|r| r.op == format!("{family}_{algo}") && r.n == n)
                    .map(|r| r.ms)
            };
            if let (Some(blocked), Some(dag)) = (find("blocked"), find("dag")) {
                j.field_num(&format!("{family}_{n}"), blocked / dag);
            }
        }
    }
    j.end_obj();
    j.key("dag_shape");
    j.begin_arr();
    for (routine, s) in &shapes {
        j.begin_obj();
        j.field_str("routine", routine);
        j.field_uint("n", n as u64);
        j.field_uint("tasks", s.tasks);
        j.field_uint("edges", s.edges);
        j.field_uint("critical_path", s.critical_path);
        j.field_uint("workers", s.workers);
        j.field_num("occupancy", s.occupancy);
        j.end_obj();
    }
    j.end_arr();
    j.end_obj();
    let path = if quick {
        "BENCH_dag.quick.json"
    } else {
        "BENCH_dag.json"
    };
    std::fs::write(path, j.into_string()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

fn push(rows: &mut Vec<Row>, family: &str, algo: &str, n: usize, nb: usize, ms: f64) {
    let gflops = flops(family, n) / (ms * 1e-3) / 1e9;
    println!("{family:6} {algo:8} n={n:5}  {ms:9.2} ms  {gflops:7.2} GF/s");
    rows.push(Row {
        op: format!("{family}_{algo}"),
        n,
        nb,
        ms,
        gflops,
    });
}
