//! ABFT overhead sweep: times the checksum-protected entry points
//! (`gemm`, `getrf`, `potrf`) under each [`AbftPolicy`] and emits
//! `BENCH_abft.json` in the current directory.
//!
//! The headline numbers are the `abft_overhead` ratios —
//! `<op>_verify_<n>` and `<op>_recover_<n>`, each policy's time over the
//! `Off` time at the same size. The Huang–Abraham checksums cost O(n²)
//! against the O(n³) compute, so the ratio must approach 1 as n grows;
//! `bench_gate --max-abft-overhead` enforces the ceiling on the verify
//! ratios at n ≥ 1024.
//!
//! `--quick` shrinks the sweep for CI (n = 512 only) and writes
//! `BENCH_abft.quick.json`, leaving the checked-in baseline untouched.

use la_bench::{bench_matrix, bench_spd, timeit};
use la_core::abft::{self, AbftPolicy};
use la_core::json::JsonBuf;
use la_core::{Mat, Trans, Uplo};
use la_lapack as f77;

struct Row {
    op: &'static str,
    policy: &'static str,
    n: usize,
    ms: f64,
}

const POLICIES: [(AbftPolicy, &str); 3] = [
    (AbftPolicy::Off, "off"),
    (AbftPolicy::Verify, "verify"),
    (AbftPolicy::Recover, "recover"),
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mode = if quick { " (quick)" } else { "" };
    println!("== abft_sweep{mode}: {cores} core(s) ==");

    let reps = 9;
    let sizes: &[usize] = if quick { &[512] } else { &[512, 1024, 2048] };

    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        let gen: Mat<f64> = bench_matrix(n, 3);
        let spd: Mat<f64> = bench_spd(n, 9);
        let bmat: Mat<f64> = bench_matrix(n, 7);

        // Per-op, per-policy best-of-reps, with the policies interleaved
        // *inside* each rep: shared machines drift on minute scales, so
        // timing each policy's reps consecutively would fold that drift
        // straight into the overhead ratios. Back-to-back runs keep each
        // off/verify/recover comparison inside one drift window.
        const OPS: [&str; 3] = ["gemm", "getrf", "potrf"];
        let mut best = [[f64::INFINITY; 3]; 3];
        for _ in 0..reps {
            for (pi, (pol, _)) in POLICIES.iter().enumerate() {
                // gemm: C = A·B (the canonical checksum identity).
                let mut c: Mat<f64> = Mat::zeros(n, n);
                let ms = abft::with_policy(*pol, || {
                    timeit(1, || {
                        let checks0 = abft::checks();
                        la_blas::gemm(
                            Trans::No,
                            Trans::No,
                            n,
                            n,
                            n,
                            1.0,
                            gen.as_slice(),
                            n,
                            bmat.as_slice(),
                            n,
                            0.0,
                            c.as_mut_slice(),
                            n,
                        );
                        // Guard against timing the wrong configuration.
                        assert_eq!(pol.enabled(), abft::checks() > checks0);
                    })
                }) * 1e3;
                best[0][pi] = best[0][pi].min(ms);

                // getrf: blocked LU with the row-sum factor identity.
                let ms = abft::with_policy(*pol, || {
                    timeit(1, || {
                        let mut a = gen.clone();
                        let mut ipiv = vec![0i32; n];
                        assert_eq!(f77::getrf(n, n, a.as_mut_slice(), n, &mut ipiv), 0);
                        a
                    })
                }) * 1e3;
                best[1][pi] = best[1][pi].min(ms);

                // potrf: blocked Cholesky.
                let ms = abft::with_policy(*pol, || {
                    timeit(1, || {
                        let mut a = spd.clone();
                        assert_eq!(f77::potrf(Uplo::Lower, n, a.as_mut_slice(), n), 0);
                        a
                    })
                }) * 1e3;
                best[2][pi] = best[2][pi].min(ms);
            }
        }
        for (oi, &op) in OPS.iter().enumerate() {
            for (pi, &(_, pname)) in POLICIES.iter().enumerate() {
                let ms = best[oi][pi];
                println!("{op:6} {pname:7} n={n:5}  {ms:9.2} ms");
                rows.push(Row {
                    op,
                    policy: pname,
                    n,
                    ms,
                });
            }
        }
    }

    // --- Emit JSON ----------------------------------------------------
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("host");
    j.begin_obj();
    j.field_uint("cores", cores as u64);
    j.end_obj();
    j.key("abft_sweep");
    j.begin_arr();
    for r in &rows {
        j.begin_obj();
        j.field_str("op", &format!("{}_{}", r.op, r.policy));
        j.field_uint("n", r.n as u64);
        j.field_num("ms", r.ms);
        j.end_obj();
    }
    j.end_arr();
    // Headline: per-policy overhead over Off at the same size.
    j.key("abft_overhead");
    j.begin_obj();
    for op in ["gemm", "getrf", "potrf"] {
        for &n in sizes {
            let time = |pname: &str| {
                rows.iter()
                    .find(|r| r.op == op && r.policy == pname && r.n == n)
                    .map(|r| r.ms)
            };
            if let (Some(off), Some(v), Some(rec)) = (time("off"), time("verify"), time("recover"))
            {
                if off > 0.0 {
                    j.field_num(&format!("{op}_verify_{n}"), v / off);
                    j.field_num(&format!("{op}_recover_{n}"), rec / off);
                }
            }
        }
    }
    j.end_obj();
    j.end_obj();
    let path = if quick {
        "BENCH_abft.quick.json"
    } else {
        "BENCH_abft.json"
    };
    std::fs::write(path, j.into_string()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
