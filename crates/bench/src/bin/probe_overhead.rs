//! Measures the overhead of the `la_core::probe` policies on a real
//! driver workload: `la90` `gesv` on a 256×256 system, repeated, under
//! `Off`, `Counters` and `Spans`. Results feed the EXPERIMENTS.md entry
//! that the `LA_PROFILE=off` cost is below timing noise.

use la_bench::{bench_matrix, timeit};
use la_core::probe::{self, ProbePolicy};
use la_core::Mat;

fn gesv_once(a0: &Mat<f64>, b0: &Mat<f64>) {
    let mut a = a0.clone();
    let mut b = b0.clone();
    la90::gesv(&mut a, &mut b).expect("gesv");
}

fn main() {
    let n = 256usize;
    let reps = 20usize;
    let a0: Mat<f64> = bench_matrix(n, 17);
    let b0: Mat<f64> = bench_matrix(n, 19);
    // Warm up allocators and code paths.
    gesv_once(&a0, &b0);

    println!("== probe_overhead: la90::gesv, n={n}, {reps} reps per policy ==");
    let mut baseline = 0.0f64;
    for (name, pol) in [
        ("off", ProbePolicy::Off),
        ("counters", ProbePolicy::Counters),
        ("spans", ProbePolicy::Spans),
    ] {
        probe::reset();
        let ms = probe::with_policy(pol, || timeit(reps, || gesv_once(&a0, &b0))) * 1e3;
        if name == "off" {
            baseline = ms;
            println!("{name:<10} {ms:8.3} ms/solve");
        } else {
            let pct = (ms / baseline - 1.0) * 100.0;
            println!("{name:<10} {ms:8.3} ms/solve  ({pct:+.1}% vs off)");
        }
    }
    let rep = probe::snapshot();
    println!("\nfinal spans-policy report:\n{}", rep.to_table());
}
