//! Per-tenant bookkeeping: fault-streak circuit breaker (gemm kernel
//! demotion) and accounting snapshots.

use la_core::tune::GemmKernel;

/// One step down the kernel ladder. `Scalar` is the floor — the reference
/// triple loop has no SIMD, no unrolling, and no further fallback.
fn demote_kernel(k: GemmKernel) -> GemmKernel {
    match k {
        GemmKernel::Auto | GemmKernel::Simd => GemmKernel::Unrolled,
        GemmKernel::Unrolled | GemmKernel::Scalar => GemmKernel::Scalar,
    }
}

/// Mutable per-tenant state the service keeps under its tenants lock.
#[derive(Debug)]
pub(crate) struct TenantState {
    /// Kernel override for this tenant; `None` means the ambient tuning
    /// config's kernel (no demotion has happened yet).
    kernel: Option<GemmKernel>,
    /// Consecutive faulty jobs (panic / soft fault / residual failure /
    /// re-screened NaN). A clean completion resets it.
    streak: u32,
    demotions: u32,
    completed: u64,
    rejected: u64,
    degraded: u64,
    stuck: u64,
    brownout_served: u64,
    flops: u64,
    nanos: u64,
}

impl TenantState {
    pub(crate) fn new() -> Self {
        TenantState {
            kernel: None,
            streak: 0,
            demotions: 0,
            completed: 0,
            rejected: 0,
            degraded: 0,
            stuck: 0,
            brownout_served: 0,
            flops: 0,
            nanos: 0,
        }
    }

    /// The kernel override currently applied to this tenant's jobs.
    pub(crate) fn kernel(&self) -> Option<GemmKernel> {
        self.kernel
    }

    /// Folds a job's probe counters into the tenant's totals.
    pub(crate) fn account(&mut self, rows: &[la_core::probe::CounterRow]) {
        for r in rows {
            self.flops += r.flops;
            self.nanos += r.nanos;
        }
    }

    /// Records a served answer. A faulty-but-recovered job (`degraded`)
    /// still counts toward the breaker streak: the tenant's workload is
    /// provoking faults even when the ladder absorbs them. `brownout`
    /// marks answers served below full quality (overload brownout) —
    /// visible in the report, not a fault.
    pub(crate) fn record_completed(&mut self, degraded: bool, brownout: bool, threshold: u32) {
        self.completed += 1;
        if brownout {
            self.brownout_served += 1;
        }
        if degraded {
            self.degraded += 1;
            self.bump_streak(threshold);
        } else {
            self.streak = 0;
        }
    }

    /// Records a rejection; `faulty` marks the fault-streak kinds (panic,
    /// residual rejection, unrecovered soft fault) as opposed to load
    /// shedding or deadline misses, which say nothing about the tenant's
    /// numerics.
    pub(crate) fn record_rejected(&mut self, faulty: bool, threshold: u32) {
        self.rejected += 1;
        if faulty {
            self.bump_streak(threshold);
        }
    }

    /// Records a watchdog-resolved wedged job. Counts as a rejection but
    /// never toward the fault streak — a wedge is a liveness problem;
    /// demoting the gemm kernel would not help and only slows the tenant
    /// further.
    pub(crate) fn record_stuck(&mut self) {
        self.rejected += 1;
        self.stuck += 1;
    }

    /// Breaker: `threshold` consecutive faults demote one kernel level
    /// and restart the streak, so a persistently faulty tenant walks
    /// simd → unrolled → scalar rather than jumping to the floor.
    fn bump_streak(&mut self, threshold: u32) {
        self.streak += 1;
        if threshold > 0 && self.streak >= threshold {
            let from = self.kernel.unwrap_or(la_core::tune::current().gemm_kernel);
            let to = demote_kernel(from);
            if to != from {
                self.kernel = Some(to);
                self.demotions += 1;
            }
            self.streak = 0;
        }
    }

    pub(crate) fn report(&self, tenant: &str) -> TenantReport {
        TenantReport {
            tenant: tenant.to_string(),
            completed: self.completed,
            rejected: self.rejected,
            degraded: self.degraded,
            stuck: self.stuck,
            brownout_served: self.brownout_served,
            kernel: self.kernel,
            demotions: self.demotions,
            fault_streak: self.streak,
            flops: self.flops,
            nanos: self.nanos,
        }
    }
}

/// Snapshot of one tenant's serving history, from
/// [`crate::Service::tenant_report`] / [`crate::Service::tenant_reports`].
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant name (the [`crate::JobSpec::tenant`] key).
    pub tenant: String,
    /// Jobs answered (including degraded ones).
    pub completed: u64,
    /// Jobs rejected, for any [`crate::Rejection`] reason.
    pub rejected: u64,
    /// Answered jobs that needed the degradation ladder.
    pub degraded: u64,
    /// Jobs resolved [`crate::Rejection::Stuck`] by the watchdog (subset
    /// of `rejected`).
    pub stuck: u64,
    /// Answered jobs served below full quality under overload brownout
    /// (subset of `completed`).
    pub brownout_served: u64,
    /// Kernel override in force (`None`: never demoted — ambient config).
    pub kernel: Option<GemmKernel>,
    /// Times the circuit breaker stepped the kernel down a level.
    pub demotions: u32,
    /// Current consecutive-fault count toward the next demotion.
    pub fault_streak: u32,
    /// Probe-counted flops attributed to this tenant's jobs (0 unless a
    /// counting [`la_core::probe`] policy is active).
    pub flops: u64,
    /// Probe-counted wall nanoseconds attributed to this tenant's jobs.
    pub nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_walks_the_kernel_ladder_one_level_per_streak() {
        let mut t = TenantState::new();
        // Ambient kernel is Auto (test processes don't set LA_GEMM_KERNEL),
        // so the first demotion lands on Unrolled.
        for _ in 0..3 {
            t.record_rejected(true, 3);
        }
        assert_eq!(t.kernel(), Some(GemmKernel::Unrolled));
        assert_eq!(t.report("x").demotions, 1);
        // Second streak: Unrolled → Scalar.
        for _ in 0..3 {
            t.record_completed(true, false, 3);
        }
        assert_eq!(t.kernel(), Some(GemmKernel::Scalar));
        // Floor: further faults don't count as demotions.
        for _ in 0..6 {
            t.record_rejected(true, 3);
        }
        assert_eq!(t.kernel(), Some(GemmKernel::Scalar));
        assert_eq!(t.report("x").demotions, 2);
    }

    #[test]
    fn clean_jobs_and_load_shedding_do_not_trip_the_breaker() {
        let mut t = TenantState::new();
        t.record_rejected(true, 3);
        t.record_rejected(true, 3);
        t.record_completed(false, false, 3); // clean answer resets the streak
        t.record_rejected(true, 3);
        t.record_rejected(true, 3);
        assert_eq!(t.kernel(), None, "streak was reset; no demotion");
        // Overload/deadline rejections are not faults.
        for _ in 0..10 {
            t.record_rejected(false, 3);
        }
        assert_eq!(t.kernel(), None);
        let r = t.report("acme");
        assert_eq!(r.completed, 1);
        assert_eq!(r.rejected, 14);
        assert_eq!(r.fault_streak, 2);
    }

    #[test]
    fn stuck_and_brownout_are_visible_but_never_trip_the_breaker() {
        let mut t = TenantState::new();
        // A wedged job is a liveness event, not a numerics fault: it
        // counts as rejected + stuck but must not walk the kernel ladder.
        for _ in 0..9 {
            t.record_stuck();
        }
        assert_eq!(t.kernel(), None, "wedges must not demote the kernel");
        // Browned-out answers are completions, flagged for the report.
        t.record_completed(false, true, 3);
        t.record_completed(false, false, 3);
        let r = t.report("acme");
        assert_eq!(r.rejected, 9);
        assert_eq!(r.stuck, 9);
        assert_eq!(r.completed, 2);
        assert_eq!(r.brownout_served, 1);
        assert_eq!(r.fault_streak, 0);
    }
}
