//! The retry-with-degradation ladder: one job's attempts, driven by the
//! substrate's typed failure taxonomy.
//!
//! Each arm of the ladder pairs a failure class with the cheapest
//! countermeasure that can actually help, so a retry is never a blind
//! re-roll:
//!
//! * `SoftFault` (`−102`, detected corruption) → retry under
//!   [`AbftPolicy::Recover`], which repairs the stripe from its snapshot;
//!   a fault that survives even `Recover` is reported, not retried again.
//! * `NonFinite` with an unpinpointed origin (`argument == 0`) → one
//!   retry under [`FpCheckPolicy::Full`] so the rejection names the
//!   offending argument; a pinpointed `NonFinite` is definitive.
//! * A worker panic → plain retry (the panic was isolated at the job
//!   boundary); exhausting the budget yields [`Rejection::Panicked`].
//! * A residual-check failure on an `INFO = 0` answer → retry under
//!   `Recover` (the answer is wrong the way silent corruption is wrong);
//!   exhausting the budget yields [`Rejection::ResidualRejected`] — the
//!   service refuses to serve the answer.
//! * `Cancelled` (`−103`) → [`Rejection::DeadlineExceeded`], never
//!   retried: the deadline that cancelled attempt k has also expired for
//!   attempt k+1.
//! * Everything else (singular, not-positive-definite, illegal argument,
//!   allocation failure, pinpointed non-finite) → definitive
//!   [`Rejection::Failed`]; no retry can change the data.
//!
//! Mixed-precision non-convergence never reaches the ladder: the drivers
//! fall back to the bitwise full-precision sequence internally.

use std::panic::{catch_unwind, AssertUnwindSafe};

use la_core::abft::AbftPolicy;
use la_core::except::FpCheckPolicy;
use la_core::tune::{self, GemmKernel, TuneConfig};
use la_core::{abft, cancel, except};
use la_core::{LaError, Mat, RealScalar, Scalar, Side, Trans};
use la_lapack::Lattice;

use crate::{Rejection, ServeConfig, SolveOp, SolveOutput};

/// A finished ladder run: the outcome plus whether any fault-class event
/// (panic, soft fault, residual failure, NaN re-screen) occurred on the
/// way — the input to the per-tenant circuit breaker.
pub(crate) struct Attempted<T: Lattice> {
    pub outcome: Result<SolveOutput<T>, Rejection>,
    pub fault_seen: bool,
}

fn with_opt_abft<R>(p: Option<AbftPolicy>, f: impl FnOnce() -> R) -> R {
    match p {
        Some(p) => abft::with_policy(p, f),
        None => f(),
    }
}

fn with_opt_fp<R>(p: Option<FpCheckPolicy>, f: impl FnOnce() -> R) -> R {
    match p {
        Some(p) => except::with_policy(p, f),
        None => f(),
    }
}

fn with_opt_kernel<R>(k: Option<GemmKernel>, f: impl FnOnce() -> R) -> R {
    match k {
        Some(gemm_kernel) => tune::with(
            TuneConfig {
                gemm_kernel,
                ..tune::current()
            },
            f,
        ),
        None => f(),
    }
}

/// One solve attempt. The job's `a`/`b` stay pristine (attempts must be
/// independent); the working copies are cloned here.
fn solve_once<T: Lattice>(op: SolveOp, a: &Mat<T>, b: &Mat<T>) -> Result<(Mat<T>, i32), LaError> {
    match op {
        SolveOp::Gesv => {
            let mut af = a.clone();
            let mut x = b.clone();
            la90::gesv(&mut af, &mut x)?;
            Ok((x, 0))
        }
        SolveOp::Posv(uplo) => {
            let mut af = a.clone();
            let mut x = b.clone();
            la90::posv_uplo(&mut af, &mut x, uplo)?;
            Ok((x, 0))
        }
        SolveOp::GesvMixed => {
            let mut af = a.clone();
            let mut x = Mat::zeros(b.nrows(), b.ncols());
            let iter = la90::gesv_mixed(&mut af, b, &mut x)?;
            Ok((x, iter))
        }
        SolveOp::PosvMixed(uplo) => {
            let mut af = a.clone();
            let mut x = Mat::zeros(b.nrows(), b.ncols());
            let iter = la90::posv_mixed_uplo(&mut af, b, &mut x, uplo)?;
            Ok((x, iter))
        }
    }
}

/// Normwise residual acceptance: for every column,
/// `‖b_j − A·x_j‖∞ ≤ tol · (n·max|A|·‖x_j‖∞ + ‖b_j‖∞)` with
/// `tol = 64·n·ε` — loose enough for legitimate pivot growth, tight
/// enough that a corrupted stripe (an O(1)-relative error) cannot pass.
/// The `Posv` ops multiply through `symm` on the stored triangle, so a
/// caller who filled only one triangle is judged fairly.
fn residual_ok<T: Lattice>(op: SolveOp, a: &Mat<T>, b: &Mat<T>, x: &Mat<T>) -> bool {
    let n = a.nrows();
    let nrhs = b.ncols();
    if n == 0 || nrhs == 0 {
        return true;
    }
    let mut r = b.clone();
    let rld = r.lda();
    match op {
        SolveOp::Gesv | SolveOp::GesvMixed => la_blas::gemm(
            Trans::No,
            Trans::No,
            n,
            nrhs,
            n,
            -T::one(),
            a.as_slice(),
            a.lda(),
            x.as_slice(),
            x.lda(),
            T::one(),
            r.as_mut_slice(),
            rld,
        ),
        SolveOp::Posv(uplo) | SolveOp::PosvMixed(uplo) => la_blas::symm(
            T::IS_COMPLEX,
            Side::Left,
            uplo,
            n,
            nrhs,
            -T::one(),
            a.as_slice(),
            a.lda(),
            x.as_slice(),
            x.lda(),
            T::one(),
            r.as_mut_slice(),
            rld,
        ),
    }
    let mut amax = T::Real::zero();
    for j in 0..n {
        for i in 0..n {
            amax = amax.maxr(a[(i, j)].abs1());
        }
    }
    let nr = T::Real::from_usize(n);
    let tol = T::Real::EPS * nr * T::Real::from_usize(64);
    for j in 0..nrhs {
        let (mut rnrm, mut xnrm, mut bnrm) = (T::Real::zero(), T::Real::zero(), T::Real::zero());
        for i in 0..n {
            rnrm = rnrm.maxr(r[(i, j)].abs1());
            xnrm = xnrm.maxr(x[(i, j)].abs1());
            bnrm = bnrm.maxr(b[(i, j)].abs1());
        }
        // NaN compares false against everything, so a poisoned answer
        // would sail through the ratio test — screen finiteness first.
        if !rnrm.is_finite_r() || !xnrm.is_finite_r() {
            return false;
        }
        let den = nr * amax * xnrm + bnrm;
        if den > T::Real::zero() {
            if rnrm / den > tol {
                return false;
            }
        } else if rnrm > T::Real::zero() {
            return false;
        }
    }
    true
}

/// Runs the ladder for one job. Assumes the caller has already installed
/// the job's cancel token, probe scope and ABFT scope on this thread.
pub(crate) fn run<T: Lattice>(
    op: SolveOp,
    a: &Mat<T>,
    b: &Mat<T>,
    cfg: &ServeConfig,
    kernel: Option<GemmKernel>,
) -> Attempted<T> {
    let max = cfg.max_attempts.max(1);
    let mut attempts = 0u32;
    let mut fault_seen = false;
    let mut abft_boost: Option<AbftPolicy> = None;
    let mut fp_boost: Option<FpCheckPolicy> = None;
    let finish = |outcome, fault_seen| Attempted {
        outcome,
        fault_seen,
    };
    loop {
        if cancel::cancelled() {
            return finish(Err(Rejection::DeadlineExceeded), fault_seen);
        }
        attempts += 1;
        let solved = catch_unwind(AssertUnwindSafe(|| {
            with_opt_kernel(kernel, || {
                with_opt_abft(abft_boost, || {
                    with_opt_fp(fp_boost, || solve_once(op, a, b))
                })
            })
        }));
        match solved {
            Err(_) => {
                fault_seen = true;
                if attempts >= max {
                    return finish(Err(Rejection::Panicked { attempts }), fault_seen);
                }
            }
            Ok(Err(e)) => match e {
                LaError::SoftFault { .. } => {
                    fault_seen = true;
                    if abft_boost == Some(AbftPolicy::Recover) || attempts >= max {
                        // Recover itself failed verification — definitive.
                        return finish(Err(Rejection::Failed(e)), fault_seen);
                    }
                    abft_boost = Some(AbftPolicy::Recover);
                }
                LaError::NonFinite { argument: 0, .. } => {
                    fault_seen = true;
                    if fp_boost.is_some() || attempts >= max {
                        return finish(Err(Rejection::Failed(e)), fault_seen);
                    }
                    // Re-run under the full screen purely to *name* the
                    // offending argument in the rejection.
                    fp_boost = Some(FpCheckPolicy::Full);
                }
                LaError::Cancelled { .. } => {
                    return finish(Err(Rejection::DeadlineExceeded), fault_seen);
                }
                other => return finish(Err(Rejection::Failed(other)), fault_seen),
            },
            Ok(Ok((x, iter))) => {
                if cfg.verify_residual && !residual_ok(op, a, b, &x) {
                    fault_seen = true;
                    if attempts >= max {
                        return finish(Err(Rejection::ResidualRejected { attempts }), fault_seen);
                    }
                    // A poisoned (non-finite) answer is a NaN problem, not
                    // a corruption problem: retry under the full screen so
                    // the rejection pinpoints the offending argument.
                    // A finite-but-wrong answer retries under Recover.
                    if x.as_slice().iter().any(|v| !v.abs1().is_finite_r()) {
                        fp_boost = Some(FpCheckPolicy::Full);
                    } else {
                        abft_boost = Some(AbftPolicy::Recover);
                    }
                } else {
                    return finish(
                        Ok(SolveOutput {
                            x,
                            iter,
                            attempts,
                            degraded: attempts > 1,
                            // The service stamps the job's effective
                            // brownout level after the ladder returns.
                            brownout: 0,
                        }),
                        fault_seen,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use la_core::mat;
    use std::time::{Duration, Instant};

    fn cfg() -> ServeConfig {
        ServeConfig::default()
    }

    #[test]
    fn clean_solve_serves_first_try() {
        let a: Mat<f64> = mat![[4.0, 1.0], [1.0, 3.0]];
        let b = Mat::from_col_major(2, 1, vec![9.0, 5.0]);
        let out = run(SolveOp::Gesv, &a, &b, &cfg(), None).outcome.unwrap();
        assert_eq!(out.attempts, 1);
        assert!(!out.degraded);
        assert!((out.x[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((out.x[(1, 0)] - 1.0).abs() < 1e-12);
        let att = run(SolveOp::GesvMixed, &a, &b, &cfg(), None);
        let out = att.outcome.unwrap();
        assert!(!att.fault_seen);
        assert!((out.x[(0, 0)] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn definitive_errors_reject_without_retry() {
        let a: Mat<f64> = mat![[1.0, 2.0], [2.0, 4.0]]; // singular
        let b = Mat::from_col_major(2, 1, vec![1.0, 2.0]);
        let att = run(SolveOp::Gesv, &a, &b, &cfg(), None);
        match att.outcome {
            Err(Rejection::Failed(LaError::Singular { .. })) => {}
            other => panic!("expected Failed(Singular), got {other:?}"),
        }
        assert!(!att.fault_seen, "singularity is data, not a fault");
        // Indefinite matrix through the Cholesky path.
        let a: Mat<f64> = mat![[1.0, 0.0], [0.0, -1.0]];
        let att = run(SolveOp::Posv(la_core::Uplo::Upper), &a, &b, &cfg(), None);
        assert!(matches!(
            att.outcome,
            Err(Rejection::Failed(LaError::NotPosDef { .. }))
        ));
    }

    #[test]
    fn nonfinite_input_is_pinpointed_then_rejected() {
        let a: Mat<f64> = mat![[1.0, 0.0], [0.0, f64::NAN]];
        let b = Mat::from_col_major(2, 1, vec![1.0, 1.0]);
        // Under the default Off policy the NaN surfaces as an output scan
        // miss or propagates; force the unpinpointed entry arm by running
        // with ScanOutputs, which reports argument 0 on poisoned outputs?
        // Simpler: the ladder's contract is observable regardless of
        // which arm fired — the rejection must be Failed(NonFinite) or
        // Failed(Singular), never a panic or a served answer.
        let att = la_core::except::with_policy(FpCheckPolicy::ScanInputs, || {
            run(SolveOp::Gesv, &a, &b, &cfg(), None)
        });
        match att.outcome {
            Err(Rejection::Failed(LaError::NonFinite { argument, .. })) => {
                assert!(argument > 0, "input screen names the argument");
            }
            other => panic!("expected Failed(NonFinite), got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_rejects_between_attempts() {
        let a: Mat<f64> = mat![[4.0, 1.0], [1.0, 3.0]];
        let b = Mat::from_col_major(2, 1, vec![9.0, 5.0]);
        let token = la_core::CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let att = cancel::with_token(token, || run(SolveOp::Gesv, &a, &b, &cfg(), None));
        assert_eq!(att.outcome.unwrap_err(), Rejection::DeadlineExceeded);
    }

    #[test]
    fn residual_check_accepts_legitimate_answers() {
        // A moderately conditioned 24×24 system through all four ops.
        let n = 24;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = Mat::<f64>::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                a[(i, j)] = next();
            }
        }
        // SPD version: S = A·Aᵀ + n·I.
        let mut s = Mat::<f64>::zeros(n, n);
        let sld = s.lda();
        la_blas::gemm(
            Trans::No,
            Trans::ConjTrans,
            n,
            n,
            n,
            1.0,
            a.as_slice(),
            a.lda(),
            a.as_slice(),
            a.lda(),
            0.0,
            s.as_mut_slice(),
            sld,
        );
        for i in 0..n {
            a[(i, i)] += n as f64; // diagonally dominant general matrix
            s[(i, i)] += n as f64;
        }
        let mut b = Mat::<f64>::zeros(n, 2);
        for j in 0..2 {
            for i in 0..n {
                b[(i, j)] = next();
            }
        }
        for op in [
            SolveOp::Gesv,
            SolveOp::GesvMixed,
            SolveOp::Posv(la_core::Uplo::Upper),
            SolveOp::PosvMixed(la_core::Uplo::Lower),
        ] {
            let m = match op {
                SolveOp::Gesv | SolveOp::GesvMixed => &a,
                _ => &s,
            };
            let att = run(op, m, &b, &cfg(), None);
            let out = att
                .outcome
                .unwrap_or_else(|e| panic!("{} rejected a clean solve: {e}", op.as_str()));
            assert_eq!(out.attempts, 1, "{}", op.as_str());
        }
    }

    #[test]
    fn residual_check_rejects_a_corrupted_answer() {
        let a: Mat<f64> = mat![[4.0, 1.0], [1.0, 3.0]];
        let b = Mat::from_col_major(2, 1, vec![9.0, 5.0]);
        let x = Mat::from_col_major(2, 1, vec![7.0, -3.0]); // wrong
        assert!(!residual_ok(SolveOp::Gesv, &a, &b, &x));
        let good = Mat::from_col_major(2, 1, vec![2.0, 1.0]);
        assert!(residual_ok(SolveOp::Gesv, &a, &b, &good));
    }
}
