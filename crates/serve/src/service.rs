//! The service: bounded queue, worker pool, per-job robustness pipeline.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use la_core::cancel::CancelToken;
use la_core::{abft, cancel, except, probe, tune};
use la_lapack::Lattice;

use crate::handle::Shared;
use crate::tenant::TenantState;
use crate::{ladder, JobHandle, JobSpec, Rejection, ServeConfig, TenantReport};

/// One admitted, not-yet-processed job.
struct Queued<T: Lattice> {
    spec: JobSpec<T>,
    shared: Arc<Shared<T>>,
    token: CancelToken,
}

#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    deadline_missed: AtomicU64,
    degraded: AtomicU64,
    panics_isolated: AtomicU64,
    pool_poisonings: AtomicU64,
}

/// Counter snapshot from [`Service::stats`]. All counts are cumulative
/// since [`Service::start`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs admitted into the queue.
    pub submitted: u64,
    /// Jobs answered (subset [`ServeStats::degraded`] needed the ladder).
    pub completed: u64,
    /// Jobs rejected after admission (deadline, failure, panic budget,
    /// residual, shutdown drain). Excludes shed submissions.
    pub rejected: u64,
    /// Submissions shed at the door by backpressure
    /// ([`Rejection::Overloaded`]); never admitted, not in `submitted`.
    pub shed: u64,
    /// Jobs rejected because their deadline passed (queued or in flight).
    pub deadline_missed: u64,
    /// Answered jobs that consumed more than one ladder attempt.
    pub degraded: u64,
    /// Worker panics caught at the job boundary — each one poisoned only
    /// its job.
    pub panics_isolated: u64,
    /// Panics that escaped a job boundary and killed a worker thread.
    /// The design invariant is that this stays `0`; the chaos soak
    /// asserts it.
    pub pool_poisonings: u64,
    /// Jobs sitting in the queue right now.
    pub queued: usize,
}

struct Inner<T: Lattice> {
    cfg: ServeConfig,
    workers: usize,
    queue: Mutex<VecDeque<Queued<T>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    stats: Stats,
    tenants: Mutex<BTreeMap<String, TenantState>>,
}

/// The solve service. See the crate docs for the robustness contract;
/// see [`ServeConfig`] for the knobs. Start one with [`Service::start`],
/// feed it with [`Service::submit`], stop it with [`Service::shutdown`]
/// (also run by `Drop`).
pub struct Service<T: Lattice> {
    inner: Arc<Inner<T>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// Counts a panic escaping the worker loop itself — by construction that
/// should be impossible (every job runs under `catch_unwind`), and the
/// chaos soak asserts the count stays zero.
struct PoisonSentinel<T: Lattice> {
    inner: Arc<Inner<T>>,
}

impl<T: Lattice> Drop for PoisonSentinel<T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.inner
                .stats
                .pool_poisonings
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<T: Lattice> Service<T> {
    /// Starts the worker pool and returns the running service.
    ///
    /// The scoped thread-local policies in effect on the *calling* thread
    /// — [`la_core::tune`], [`la_core::abft`], [`la_core::except`],
    /// [`la_core::probe`] — are captured here and installed in every
    /// worker, so `abft::with_policy(Recover, || Service::start(cfg))`
    /// serves every job under `Recover`.
    pub fn start(cfg: ServeConfig) -> Self {
        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            tune::current().threads()
        }
        .max(1);
        let inner = Arc::new(Inner {
            cfg: ServeConfig {
                queue_depth: cfg.queue_depth.max(1),
                max_attempts: cfg.max_attempts.max(1),
                ..cfg
            },
            workers,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
            tenants: Mutex::new(BTreeMap::new()),
        });
        let tune_cfg = tune::current();
        let fp = except::policy();
        let ap = abft::policy();
        let pp = probe::policy();
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("la-serve-{i}"))
                    .spawn(move || {
                        tune::with(tune_cfg, || {
                            except::with_policy(fp, || {
                                abft::with_policy(ap, || {
                                    probe::with_policy(pp, || worker_loop(inner))
                                })
                            })
                        })
                    })
                    .expect("la-serve: failed to spawn worker thread")
            })
            .collect();
        Service {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// Admits a job, or sheds it immediately — this never blocks on a
    /// full queue. On admission the returned [`JobHandle`] resolves
    /// exactly once, whatever happens to the job.
    pub fn submit(&self, spec: JobSpec<T>) -> Result<JobHandle<T>, Rejection> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(Rejection::ShuttingDown);
        }
        let deadline = spec
            .deadline
            .or_else(|| self.inner.cfg.default_deadline.map(|d| Instant::now() + d));
        let token = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let shared = Shared::new();
        {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= self.inner.cfg.queue_depth {
                drop(q);
                self.inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                self.tenant_mut(&spec.tenant, |t, threshold| {
                    t.record_rejected(false, threshold)
                });
                return Err(Rejection::Overloaded {
                    depth: self.inner.cfg.queue_depth,
                });
            }
            q.push_back(Queued {
                spec,
                shared: Arc::clone(&shared),
                token: token.clone(),
            });
        }
        self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.cv.notify_one();
        Ok(JobHandle { shared, token })
    }

    /// Stops accepting work, drains still-queued jobs with
    /// [`Rejection::ShuttingDown`], lets in-flight jobs finish, and joins
    /// the workers. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.cv.notify_all();
        let drained: Vec<Queued<T>> = {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.drain(..).collect()
        };
        for job in drained {
            self.inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            self.tenant_mut(&job.spec.tenant, |t, threshold| {
                t.record_rejected(false, threshold)
            });
            job.shared.fulfill(Err(Rejection::ShuttingDown));
        }
        let handles: Vec<_> = {
            let mut h = self.handles.lock().unwrap_or_else(|e| e.into_inner());
            h.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        let s = &self.inner.stats;
        ServeStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            deadline_missed: s.deadline_missed.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
            panics_isolated: s.panics_isolated.load(Ordering::Relaxed),
            pool_poisonings: s.pool_poisonings.load(Ordering::Relaxed),
            queued: self
                .inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
        }
    }

    /// Number of worker threads the pool resolved to.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Snapshot of one tenant's history, if the service has seen it.
    pub fn tenant_report(&self, tenant: &str) -> Option<TenantReport> {
        self.inner
            .tenants
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(tenant)
            .map(|t| t.report(tenant))
    }

    /// Snapshots for every tenant the service has seen, sorted by name.
    pub fn tenant_reports(&self) -> Vec<TenantReport> {
        self.inner
            .tenants
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, t)| t.report(name))
            .collect()
    }

    fn tenant_mut<R>(&self, tenant: &str, f: impl FnOnce(&mut TenantState, u32) -> R) -> R {
        tenant_mut(&self.inner, tenant, f)
    }
}

fn tenant_mut<T: Lattice, R>(
    inner: &Inner<T>,
    tenant: &str,
    f: impl FnOnce(&mut TenantState, u32) -> R,
) -> R {
    let mut map = inner.tenants.lock().unwrap_or_else(|e| e.into_inner());
    let state = map
        .entry(tenant.to_string())
        .or_insert_with(TenantState::new);
    f(state, inner.cfg.breaker_threshold)
}

impl<T: Lattice> Drop for Service<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<T: Lattice>(inner: Arc<Inner<T>>) {
    let _sentinel = PoisonSentinel {
        inner: Arc::clone(&inner),
    };
    loop {
        let job = {
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = inner.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            Some(job) => process(&inner, job),
            None => return,
        }
    }
}

/// Runs one job through the full robustness pipeline and fulfills its
/// handle. Never lets a panic escape: the outer `catch_unwind` is the
/// job boundary the crate docs promise.
fn process<T: Lattice>(inner: &Inner<T>, job: Queued<T>) {
    let Queued {
        spec,
        shared,
        token,
    } = job;
    // A deadline that expired while the job sat in the queue (or an
    // explicit JobHandle::cancel) rejects before any work starts.
    if token.is_cancelled() {
        inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
        inner.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
        tenant_mut(inner, &spec.tenant, |t, th| t.record_rejected(false, th));
        shared.fulfill(Err(Rejection::DeadlineExceeded));
        return;
    }
    let kernel = tenant_mut(inner, &spec.tenant, |t, _| t.kernel());
    let workers = inner.workers;
    let cfg = &inner.cfg;
    let ran = catch_unwind(AssertUnwindSafe(|| {
        cancel::with_token(token.clone(), || {
            // Register with the nested-pool clamp so striped BLAS-3
            // inside the job divides the host by the worker count, then
            // scope ABFT faults and probe counters to this job alone.
            tune::in_pool_worker(workers, || {
                probe::job_scope(|| {
                    abft::job_scope(|| {
                        #[cfg(feature = "fault-inject")]
                        if spec.chaos_panic {
                            panic!("chaos: injected worker panic");
                        }
                        ladder::run(spec.op, &spec.a, &spec.b, cfg, kernel)
                    })
                })
            })
        })
    }));
    match ran {
        Err(_) => {
            // Job-boundary catch: the ladder's own per-attempt catch did
            // not see this one (chaos hook or pipeline machinery), so it
            // costs the job its whole budget at once.
            inner.stats.panics_isolated.fetch_add(1, Ordering::Relaxed);
            inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            tenant_mut(inner, &spec.tenant, |t, th| t.record_rejected(true, th));
            shared.fulfill(Err(Rejection::Panicked { attempts: 1 }));
        }
        Ok((att, rows)) => {
            tenant_mut(inner, &spec.tenant, |t, _| t.account(&rows));
            match att.outcome {
                Ok(out) => {
                    inner.stats.completed.fetch_add(1, Ordering::Relaxed);
                    if out.degraded {
                        inner.stats.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    tenant_mut(inner, &spec.tenant, |t, th| {
                        t.record_completed(att.fault_seen, th)
                    });
                    shared.fulfill(Ok(out));
                }
                Err(rej) => {
                    inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    let faulty = match &rej {
                        Rejection::Panicked { attempts } => {
                            // Each exhausted attempt was one isolated panic.
                            inner
                                .stats
                                .panics_isolated
                                .fetch_add(u64::from(*attempts), Ordering::Relaxed);
                            true
                        }
                        Rejection::ResidualRejected { .. } => true,
                        Rejection::Failed(la_core::LaError::SoftFault { .. }) => true,
                        Rejection::DeadlineExceeded => {
                            inner.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
                            false
                        }
                        _ => false,
                    };
                    tenant_mut(inner, &spec.tenant, |t, th| t.record_rejected(faulty, th));
                    shared.fulfill(Err(rej));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveOp;
    use la_core::{mat, Mat};
    use std::time::Duration;

    fn spd(n: usize) -> (Mat<f64>, Mat<f64>) {
        let mut a = Mat::<f64>::zeros(n, n);
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for j in 0..n {
            for i in 0..=j {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let mut b = Mat::<f64>::zeros(n, 1);
        for i in 0..n {
            b[(i, 0)] = next();
        }
        (a, b)
    }

    #[test]
    fn serves_all_four_ops_and_reports_stats() {
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let (a, b) = spd(16);
        let handles: Vec<_> = [
            SolveOp::Gesv,
            SolveOp::Posv(la_core::Uplo::Upper),
            SolveOp::GesvMixed,
            SolveOp::PosvMixed(la_core::Uplo::Upper),
        ]
        .into_iter()
        .map(|op| {
            svc.submit(JobSpec::new(op, a.clone(), b.clone()).tenant("t1"))
                .unwrap()
        })
        .collect();
        let mut xs = Vec::new();
        for h in handles {
            let out = h.wait().unwrap();
            assert_eq!(out.attempts, 1);
            xs.push(out.x);
        }
        // All four ops solve the same SPD system: answers must agree.
        for x in &xs[1..] {
            for i in 0..16 {
                assert!((x[(i, 0)] - xs[0][(i, 0)]).abs() < 1e-8);
            }
        }
        let s = svc.stats();
        assert_eq!(s.submitted, 4);
        assert_eq!(s.completed, 4);
        assert_eq!(s.pool_poisonings, 0);
        let rep = svc.tenant_report("t1").unwrap();
        assert_eq!(rep.completed, 4);
        assert_eq!(rep.kernel, None);
        svc.shutdown();
        // Post-shutdown submissions are typed, not panics.
        let r = svc.submit(JobSpec::new(SolveOp::Gesv, a, b));
        assert!(matches!(r, Err(Rejection::ShuttingDown)));
    }

    #[test]
    fn backpressure_sheds_typed_and_never_blocks() {
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            queue_depth: 2,
            ..ServeConfig::default()
        });
        let (a, b) = spd(96); // slow enough to pile the queue up
        let mut accepted = Vec::new();
        let mut shed = 0u32;
        for _ in 0..32 {
            match svc.submit(JobSpec::new(SolveOp::Gesv, a.clone(), b.clone())) {
                Ok(h) => accepted.push(h),
                Err(Rejection::Overloaded { depth }) => {
                    assert_eq!(depth, 2);
                    shed += 1;
                }
                Err(other) => panic!("unexpected rejection {other}"),
            }
        }
        assert!(shed > 0, "32 instant submits must overflow depth 2");
        for h in accepted {
            h.wait().unwrap(); // every admitted job still completes
        }
        let s = svc.stats();
        assert_eq!(u64::from(shed), s.shed);
        assert_eq!(s.submitted, s.completed);
    }

    #[test]
    fn deadlines_reject_queued_and_cancelled_jobs() {
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let (a, b) = spd(96);
        // Occupy the worker, then queue a job whose deadline is already
        // gone — it must be rejected when it reaches the front.
        let busy = svc
            .submit(JobSpec::new(SolveOp::Gesv, a.clone(), b.clone()))
            .unwrap();
        let doomed = svc
            .submit(
                JobSpec::new(SolveOp::Gesv, a.clone(), b.clone())
                    .deadline_at(Instant::now() - Duration::from_millis(1)),
            )
            .unwrap();
        assert_eq!(doomed.wait().unwrap_err(), Rejection::DeadlineExceeded);
        busy.wait().unwrap();
        // Explicit cancellation takes the same path.
        let blocker = svc
            .submit(JobSpec::new(SolveOp::Gesv, a.clone(), b.clone()))
            .unwrap();
        let h = svc.submit(JobSpec::new(SolveOp::Gesv, a, b)).unwrap();
        h.cancel();
        assert_eq!(h.wait().unwrap_err(), Rejection::DeadlineExceeded);
        blocker.wait().unwrap();
        assert!(svc.stats().deadline_missed >= 2);
        svc.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_with_typed_rejection() {
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            queue_depth: 16,
            ..ServeConfig::default()
        });
        let (a, b) = spd(96);
        let handles: Vec<_> = (0..6)
            .map(|_| {
                svc.submit(JobSpec::new(SolveOp::Gesv, a.clone(), b.clone()))
                    .unwrap()
            })
            .collect();
        // Wait until the worker has picked up the first job, so "the
        // in-flight job finishes" is deterministic below.
        let t0 = Instant::now();
        while svc.stats().queued >= 6 {
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "worker never started"
            );
            std::thread::yield_now();
        }
        svc.shutdown();
        let mut served = 0;
        let mut drained = 0;
        for h in handles {
            match h.wait() {
                Ok(_) => served += 1,
                Err(Rejection::ShuttingDown) => drained += 1,
                Err(other) => panic!("unexpected rejection {other}"),
            }
        }
        assert_eq!(served + drained, 6, "every handle resolves exactly once");
        assert!(served >= 1, "the in-flight job finishes");
    }

    #[test]
    fn definitive_failures_come_back_typed() {
        let svc: Service<f64> = Service::start(ServeConfig::default());
        let a: Mat<f64> = mat![[1.0, 2.0], [2.0, 4.0]]; // singular
        let b = Mat::from_col_major(2, 1, vec![1.0, 0.0]);
        let h = svc.submit(JobSpec::new(SolveOp::Gesv, a, b)).unwrap();
        match h.wait() {
            Err(Rejection::Failed(la_core::LaError::Singular { .. })) => {}
            other => panic!("expected Failed(Singular), got {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn handle_works_as_a_future() {
        use std::future::Future;
        use std::sync::mpsc;
        use std::task::{Context, Poll, Wake, Waker};

        struct Notify(mpsc::Sender<()>);
        impl Wake for Notify {
            fn wake(self: Arc<Self>) {
                let _ = self.0.send(());
            }
        }

        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let (a, b) = spd(48);
        let mut h = svc.submit(JobSpec::new(SolveOp::Gesv, a, b)).unwrap();
        let (tx, rx) = mpsc::channel();
        let waker = Waker::from(Arc::new(Notify(tx)));
        let mut cx = Context::from_waker(&waker);
        // Mini executor: poll, park on the channel until woken, repeat.
        let out = loop {
            match std::pin::Pin::new(&mut h).poll(&mut cx) {
                Poll::Ready(r) => break r,
                Poll::Pending => {
                    rx.recv_timeout(Duration::from_secs(30))
                        .expect("worker must wake the future");
                }
            }
        };
        out.expect("solve must succeed");
        svc.shutdown();
    }
}
