//! The service: bounded queue, worker pool, per-job robustness pipeline,
//! and the overload subsystem (adaptive admission, stuck-job watchdog,
//! brownout).

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use la_core::abft::AbftPolicy;
use la_core::cancel::{CancelToken, Heartbeat};
use la_core::probe::Layer;
use la_core::tune::{RefineMode, TuneConfig};
use la_core::{abft, cancel, except, probe, tune};
use la_lapack::Lattice;

use crate::admission::{Controller, Verdict};
use crate::handle::Shared;
use crate::tenant::TenantState;
use crate::watchdog::{self, patrol, WorkerSlot};
use crate::{ladder, JobHandle, JobSpec, Rejection, ServeConfig, SolveOp, TenantReport};

/// One admitted, not-yet-processed job.
struct Queued<T: Lattice> {
    spec: JobSpec<T>,
    shared: Arc<Shared<T>>,
    token: CancelToken,
    job_id: u64,
    enqueued_ns: u64,
}

#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    deadline_missed: AtomicU64,
    degraded: AtomicU64,
    panics_isolated: AtomicU64,
    pool_poisonings: AtomicU64,
    stuck: AtomicU64,
    respawned: AtomicU64,
    brownout_served: AtomicU64,
}

/// Counter snapshot from [`Service::stats`]. All counts are cumulative
/// since [`Service::start`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs admitted into the queue.
    pub submitted: u64,
    /// Jobs answered (subset [`ServeStats::degraded`] needed the ladder).
    pub completed: u64,
    /// Jobs rejected after admission (deadline, failure, panic budget,
    /// residual, stuck, shutdown drain). Excludes shed submissions.
    pub rejected: u64,
    /// Submissions shed at the door by backpressure
    /// ([`Rejection::Overloaded`]); never admitted, not in `submitted`.
    pub shed: u64,
    /// Jobs rejected because their deadline passed (queued or in flight).
    pub deadline_missed: u64,
    /// Answered jobs that consumed more than one ladder attempt.
    pub degraded: u64,
    /// Worker panics caught at the job boundary — each one poisoned only
    /// its job.
    pub panics_isolated: u64,
    /// Panics that escaped a job boundary and killed a worker thread.
    /// The design invariant is that this stays `0`; the chaos soak
    /// asserts it.
    pub pool_poisonings: u64,
    /// Jobs the watchdog resolved as [`Rejection::Stuck`] (wedged past
    /// the stall budget; cooperative cancel first, respawn if ignored).
    pub stuck: u64,
    /// Workers the watchdog wrote off and replaced (stage-2
    /// escalations). The pool size never shrinks below the configured
    /// worker count.
    pub respawned: u64,
    /// Answered jobs served at a brownout level above full quality.
    pub brownout_served: u64,
    /// Current global brownout level (`0` = full quality, up to `3`).
    pub brownout_level: u8,
    /// Jobs sitting in the queue right now.
    pub queued: usize,
}

/// The scoped policies captured at [`Service::start`], kept for watchdog
/// respawns so a replacement worker is indistinguishable from the
/// original.
#[derive(Clone, Copy)]
struct Policies {
    tune: TuneConfig,
    fp: la_core::FpCheckPolicy,
    abft: AbftPolicy,
    probe: la_core::ProbePolicy,
}

struct Inner<T: Lattice> {
    cfg: ServeConfig,
    workers: usize,
    queue: Mutex<VecDeque<Queued<T>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    stats: Stats,
    tenants: Mutex<BTreeMap<String, TenantState>>,
    /// Adaptive admission + brownout controller (clock-free; the service
    /// feeds it nanoseconds from `epoch`).
    admission: Mutex<Controller>,
    /// The `now_ns` epoch for the controller's timestamps.
    epoch: Instant,
    /// Mirror of the controller's brownout level, readable without the
    /// admission lock on the per-job hot path.
    level: AtomicU8,
    /// One watchdog mailbox per live worker, index-aligned with the pool.
    slots: Mutex<Vec<Arc<WorkerSlot<T>>>>,
    /// Worker + watchdog thread handles; the watchdog appends respawns.
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Monotone job numbers for the watchdog registrations.
    job_seq: AtomicU64,
    policies: Policies,
}

impl<T: Lattice> Inner<T> {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// The solve service. See the crate docs for the robustness contract;
/// see [`ServeConfig`] for the knobs. Start one with [`Service::start`],
/// feed it with [`Service::submit`], stop it with [`Service::shutdown`]
/// (also run by `Drop`).
pub struct Service<T: Lattice> {
    inner: Arc<Inner<T>>,
}

/// Counts a panic escaping the worker loop itself — by construction that
/// should be impossible (every job runs under `catch_unwind`), and the
/// chaos soak asserts the count stays zero.
struct PoisonSentinel<T: Lattice> {
    inner: Arc<Inner<T>>,
}

impl<T: Lattice> Drop for PoisonSentinel<T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.inner
                .stats
                .pool_poisonings
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<T: Lattice> Service<T> {
    /// Starts the worker pool (and, when configured, the watchdog
    /// monitor) and returns the running service.
    ///
    /// The scoped thread-local policies in effect on the *calling* thread
    /// — [`la_core::tune`], [`la_core::abft`], [`la_core::except`],
    /// [`la_core::probe`] — are captured here and installed in every
    /// worker, so `abft::with_policy(Recover, || Service::start(cfg))`
    /// serves every job under `Recover`.
    pub fn start(cfg: ServeConfig) -> Self {
        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            tune::current().threads()
        }
        .max(1);
        let cfg = ServeConfig {
            queue_depth: cfg.queue_depth.max(1),
            max_attempts: cfg.max_attempts.max(1),
            ..cfg
        };
        let target_ns = cfg.target_delay.map(|d| d.as_nanos() as u64).unwrap_or(0);
        let admission = Controller::new(workers, cfg.queue_depth, target_ns, cfg.brownout);
        let policies = Policies {
            tune: tune::current(),
            fp: except::policy(),
            abft: abft::policy(),
            probe: probe::policy(),
        };
        let watchdog = cfg.watchdog;
        let inner = Arc::new(Inner {
            cfg,
            workers,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
            tenants: Mutex::new(BTreeMap::new()),
            admission: Mutex::new(admission),
            epoch: Instant::now(),
            level: AtomicU8::new(0),
            slots: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
            job_seq: AtomicU64::new(1),
            policies,
        });
        {
            let mut slots = inner.slots.lock().unwrap_or_else(|e| e.into_inner());
            let mut threads = inner.threads.lock().unwrap_or_else(|e| e.into_inner());
            for i in 0..workers {
                let slot = WorkerSlot::new();
                slots.push(Arc::clone(&slot));
                threads.push(spawn_worker(&inner, i, slot));
            }
            if let Some(stall) = watchdog {
                threads.push(spawn_watchdog(&inner, stall));
            }
        }
        Service { inner }
    }

    /// Admits a job, or sheds it immediately — this never blocks on a
    /// full queue. On admission the returned [`JobHandle`] resolves
    /// exactly once, whatever happens to the job.
    ///
    /// The bound a submit is checked against is the configured
    /// [`ServeConfig::queue_depth`], or, with
    /// [`ServeConfig::target_delay`] set, the smaller effective bound
    /// adaptive admission derives from observed service times. A shed
    /// carries a `retry_after` estimate — see the
    /// [`Rejection::Overloaded`] retry contract (jitter is mandatory).
    pub fn submit(&self, spec: JobSpec<T>) -> Result<JobHandle<T>, Rejection> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(Rejection::ShuttingDown);
        }
        let deadline = spec
            .deadline
            .or_else(|| self.inner.cfg.default_deadline.map(|d| Instant::now() + d));
        let token = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let shared = Shared::new();
        {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the queue lock: shutdown() flips the flag
            // *before* taking this lock to drain, so a submit that
            // passed the unlocked check above cannot slip a job in
            // after the drain — it either lands in the drained queue or
            // sees the flag here. Without this, a job admitted in that
            // instant would sit in a dead queue forever, never resolved.
            if self.inner.shutdown.load(Ordering::Acquire) {
                return Err(Rejection::ShuttingDown);
            }
            let now_ns = self.inner.now_ns();
            let verdict = {
                let mut adm = self
                    .inner
                    .admission
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                let v = adm.admit(spec.op.class(), spec.priority, q.len(), now_ns);
                self.inner.level.store(adm.level(), Ordering::Relaxed);
                v
            };
            match verdict {
                Verdict::Admit => {}
                Verdict::Shed {
                    bound,
                    retry_after_ns,
                } => {
                    drop(q);
                    self.inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                    self.tenant_mut(&spec.tenant, |t, threshold| {
                        t.record_rejected(false, threshold)
                    });
                    return Err(Rejection::Overloaded {
                        depth: bound,
                        retry_after: Duration::from_nanos(retry_after_ns),
                    });
                }
            }
            q.push_back(Queued {
                spec,
                shared: Arc::clone(&shared),
                token: token.clone(),
                job_id: self.inner.job_seq.fetch_add(1, Ordering::Relaxed),
                enqueued_ns: now_ns,
            });
        }
        self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.cv.notify_one();
        Ok(JobHandle { shared, token })
    }

    /// Stops accepting work, drains still-queued jobs with
    /// [`Rejection::ShuttingDown`], lets in-flight jobs finish, and joins
    /// the workers (and watchdog). Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.cv.notify_all();
        let drained: Vec<Queued<T>> = {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.drain(..).collect()
        };
        for job in drained {
            // Only the drain can resolve a still-queued job (workers
            // never saw it), so stats-before-fulfill is safe here too.
            self.inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            self.tenant_mut(&job.spec.tenant, |t, threshold| {
                t.record_rejected(false, threshold)
            });
            job.shared.fulfill(Err(Rejection::ShuttingDown));
        }
        // Joining may race a watchdog respawn appending to the list;
        // keep draining until it is empty (the watchdog itself exits on
        // the shutdown flag and is in this list too).
        loop {
            let handles: Vec<_> = {
                let mut h = self.inner.threads.lock().unwrap_or_else(|e| e.into_inner());
                h.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        let s = &self.inner.stats;
        ServeStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            deadline_missed: s.deadline_missed.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
            panics_isolated: s.panics_isolated.load(Ordering::Relaxed),
            pool_poisonings: s.pool_poisonings.load(Ordering::Relaxed),
            stuck: s.stuck.load(Ordering::Relaxed),
            respawned: s.respawned.load(Ordering::Relaxed),
            brownout_served: s.brownout_served.load(Ordering::Relaxed),
            brownout_level: self.inner.level.load(Ordering::Relaxed),
            queued: self
                .inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
        }
    }

    /// Number of worker threads the pool resolved to.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Snapshot of one tenant's history, if the service has seen it.
    pub fn tenant_report(&self, tenant: &str) -> Option<TenantReport> {
        self.inner
            .tenants
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(tenant)
            .map(|t| t.report(tenant))
    }

    /// Snapshots for every tenant the service has seen, sorted by name.
    pub fn tenant_reports(&self) -> Vec<TenantReport> {
        self.inner
            .tenants
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, t)| t.report(name))
            .collect()
    }

    fn tenant_mut<R>(&self, tenant: &str, f: impl FnOnce(&mut TenantState, u32) -> R) -> R {
        tenant_mut(&self.inner, tenant, f)
    }
}

fn tenant_mut<T: Lattice, R>(
    inner: &Inner<T>,
    tenant: &str,
    f: impl FnOnce(&mut TenantState, u32) -> R,
) -> R {
    let mut map = inner.tenants.lock().unwrap_or_else(|e| e.into_inner());
    let state = map
        .entry(tenant.to_string())
        .or_insert_with(TenantState::new);
    f(state, inner.cfg.breaker_threshold)
}

impl<T: Lattice> Drop for Service<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns worker `i` with the service's captured policies installed —
/// used both at start and for watchdog respawns.
fn spawn_worker<T: Lattice>(
    inner: &Arc<Inner<T>>,
    i: usize,
    slot: Arc<WorkerSlot<T>>,
) -> JoinHandle<()> {
    let inner = Arc::clone(inner);
    let p = inner.policies;
    std::thread::Builder::new()
        .name(format!("la-serve-{i}"))
        .spawn(move || {
            tune::with(p.tune, || {
                except::with_policy(p.fp, || {
                    abft::with_policy(p.abft, || {
                        probe::with_policy(p.probe, || worker_loop(inner, slot))
                    })
                })
            })
        })
        .expect("la-serve: failed to spawn worker thread")
}

/// Spawns the watchdog monitor: samples the worker slots at a fraction
/// of the stall budget, escalating silent jobs (cancel → respawn).
fn spawn_watchdog<T: Lattice>(inner: &Arc<Inner<T>>, stall: Duration) -> JoinHandle<()> {
    let inner = Arc::clone(inner);
    let sample = (stall / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    std::thread::Builder::new()
        .name("la-serve-watchdog".into())
        .spawn(move || {
            while !inner.shutdown.load(Ordering::Acquire) {
                std::thread::sleep(sample);
                let slots: Vec<Arc<WorkerSlot<T>>> = inner
                    .slots
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone();
                let events = patrol(&slots, stall, Instant::now());
                for ev in events {
                    inner.stats.respawned.fetch_add(1, Ordering::Relaxed);
                    if ev.resolved {
                        inner.stats.stuck.fetch_add(1, Ordering::Relaxed);
                        inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        tenant_mut(&inner, &ev.tenant, |t, _| t.record_stuck());
                    }
                    // Replace the written-off worker so the pool never
                    // shrinks; the abandoned thread exits on its own if
                    // its wedge ever breaks.
                    let fresh = WorkerSlot::new();
                    {
                        let mut slots = inner.slots.lock().unwrap_or_else(|e| e.into_inner());
                        if ev.slot < slots.len() {
                            slots[ev.slot] = Arc::clone(&fresh);
                        }
                    }
                    let handle = spawn_worker(&inner, ev.slot, fresh);
                    inner
                        .threads
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(handle);
                }
            }
        })
        .expect("la-serve: failed to spawn watchdog thread")
}

fn worker_loop<T: Lattice>(inner: Arc<Inner<T>>, slot: Arc<WorkerSlot<T>>) {
    let _sentinel = PoisonSentinel {
        inner: Arc::clone(&inner),
    };
    loop {
        // A stage-2 escalation wrote this worker off (a replacement is
        // already running): exit without touching the queue.
        if slot.abandoned.load(Ordering::Acquire) {
            return;
        }
        let job = {
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = inner.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            Some(job) => {
                // Queue sojourn feeds the CoDel window; the rolled level
                // is mirrored for the brownout decision below.
                let now_ns = inner.now_ns();
                {
                    let mut adm = inner.admission.lock().unwrap_or_else(|e| e.into_inner());
                    adm.note_sojourn(now_ns.saturating_sub(job.enqueued_ns), now_ns);
                    inner.level.store(adm.level(), Ordering::Relaxed);
                }
                process(&inner, &slot, job);
            }
            None => return,
        }
    }
}

/// The probe span name a job runs under — the brownout state is visible
/// in the span stream and the per-tenant counter rows.
fn brownout_span(level: u8) -> &'static str {
    match level {
        0 => "serve",
        1 => "serve_brownout_l1",
        2 => "serve_brownout_l2",
        _ => "serve_brownout_l3",
    }
}

/// Runs the ladder under the job's effective brownout level:
/// `1` turns double-double refinement off, `2` additionally demotes the
/// op to its mixed-precision lattice variant, `3` additionally turns
/// ABFT verification off. The answer's residual check (the no-wrong-
/// answers gate) is never browned out, and the ladder's own `Recover`
/// retry re-enables ABFT innermost if a fault does surface.
fn run_browned_out<T: Lattice>(
    level: u8,
    op: SolveOp,
    a: &la_core::Mat<T>,
    b: &la_core::Mat<T>,
    cfg: &ServeConfig,
    kernel: Option<la_core::tune::GemmKernel>,
) -> ladder::Attempted<T> {
    let op = if level >= 2 {
        match op {
            SolveOp::Gesv => SolveOp::GesvMixed,
            SolveOp::Posv(u) => SolveOp::PosvMixed(u),
            demoted => demoted,
        }
    } else {
        op
    };
    let run = || ladder::run(op, a, b, cfg, kernel);
    let run_refine = || {
        if level >= 1 {
            tune::with(
                TuneConfig {
                    refine: RefineMode::Working,
                    ..tune::current()
                },
                run,
            )
        } else {
            run()
        }
    };
    if level >= 3 {
        abft::with_policy(AbftPolicy::Off, run_refine)
    } else {
        run_refine()
    }
}

/// Runs one job through the full robustness pipeline and fulfills its
/// handle. Never lets a panic escape: the outer `catch_unwind` is the
/// job boundary the crate docs promise.
fn process<T: Lattice>(inner: &Arc<Inner<T>>, slot: &Arc<WorkerSlot<T>>, job: Queued<T>) {
    let Queued {
        spec,
        shared,
        token,
        job_id,
        ..
    } = job;
    // A deadline that expired while the job sat in the queue (or an
    // explicit JobHandle::cancel) rejects before any work starts. Stats
    // land before the fulfillment so a waiter that sees the outcome also
    // sees them counted.
    if token.is_cancelled() {
        inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
        inner.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
        tenant_mut(inner, &spec.tenant, |t, th| t.record_rejected(false, th));
        shared.fulfill(Err(Rejection::DeadlineExceeded));
        return;
    }
    let kernel = tenant_mut(inner, &spec.tenant, |t, _| t.kernel());
    let workers = inner.workers;
    let cfg = &inner.cfg;
    // The job's effective brownout: the global level, shielded by the
    // job's priority so paying tenants degrade last.
    let level = if cfg.brownout {
        inner
            .level
            .load(Ordering::Relaxed)
            .saturating_sub(spec.priority.shield())
    } else {
        0
    };
    // Register with the watchdog: the heartbeat is stamped at every
    // cancellation checkpoint the solve was polling anyway.
    let heartbeat = Heartbeat::new();
    slot.begin(
        job_id,
        heartbeat.clone(),
        token.clone(),
        Arc::clone(&shared),
        spec.tenant.clone(),
    );
    let started = Instant::now();
    let ran = catch_unwind(AssertUnwindSafe(|| {
        cancel::with_token(token.clone(), || {
            cancel::with_heartbeat(heartbeat.clone(), || {
                // Register with the nested-pool clamp so striped BLAS-3
                // inside the job divides the host by the worker count,
                // then scope ABFT faults and probe counters to this job
                // alone.
                tune::in_pool_worker(workers, || {
                    probe::job_scope(|| {
                        abft::job_scope(|| {
                            let _span = probe::span(Layer::Driver, brownout_span(level), 0, 0);
                            #[cfg(feature = "fault-inject")]
                            if spec.chaos_panic {
                                panic!("chaos: injected worker panic");
                            }
                            #[cfg(feature = "fault-inject")]
                            if let Some(kind) = spec.chaos_wedge {
                                crate::chaos::wedge(kind, &token, &slot.abandoned, &inner.shutdown);
                            }
                            run_browned_out(level, spec.op, &spec.a, &spec.b, cfg, kernel)
                        })
                    })
                })
            })
        })
    }));
    // Withdraw the watchdog registration. `patrol` fulfills stage-2 jobs
    // under the slot lock, so this is also the fulfillment license: if
    // the registration is gone, the handle is already resolved `Stuck`
    // and the monitor owns the stats — this worker must touch neither
    // and just exit (it is abandoned). Otherwise this worker's
    // fulfillment is guaranteed to win, so stats may land first and a
    // waiter that sees the outcome also sees them counted.
    let escalated = match slot.finish(job_id) {
        watchdog::Finished::TakenByStage2 => return,
        watchdog::Finished::Escalated(stalled_for) => Some(stalled_for),
        watchdog::Finished::Normal => None,
    };
    match ran {
        Err(_) => {
            // Job-boundary catch: the ladder's own per-attempt catch did
            // not see this one (chaos hook or pipeline machinery), so it
            // costs the job its whole budget at once.
            inner.stats.panics_isolated.fetch_add(1, Ordering::Relaxed);
            inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            tenant_mut(inner, &spec.tenant, |t, th| t.record_rejected(true, th));
            shared.fulfill(Err(Rejection::Panicked { attempts: 1 }));
        }
        Ok((att, rows)) => {
            tenant_mut(inner, &spec.tenant, |t, _| t.account(&rows));
            match att.outcome {
                Ok(mut out) => {
                    out.brownout = level;
                    // Completed service times feed the per-class EWMA
                    // the admission bound is derived from.
                    {
                        let mut adm = inner.admission.lock().unwrap_or_else(|e| e.into_inner());
                        adm.note_service(spec.op.class(), started.elapsed().as_nanos() as u64);
                    }
                    inner.stats.completed.fetch_add(1, Ordering::Relaxed);
                    if out.degraded {
                        inner.stats.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    if level > 0 {
                        inner.stats.brownout_served.fetch_add(1, Ordering::Relaxed);
                    }
                    tenant_mut(inner, &spec.tenant, |t, th| {
                        t.record_completed(att.fault_seen, level > 0, th)
                    });
                    shared.fulfill(Ok(out));
                }
                Err(rej) => {
                    // An escalated job that honoured the stage-1 cancel
                    // comes back −103-shaped; type it as what it was.
                    let rej = match (rej, escalated) {
                        (Rejection::DeadlineExceeded, Some(stalled_for)) => {
                            Rejection::Stuck { stalled_for }
                        }
                        (r, _) => r,
                    };
                    inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    match &rej {
                        Rejection::Panicked { attempts } => {
                            // Each exhausted attempt was one isolated panic.
                            inner
                                .stats
                                .panics_isolated
                                .fetch_add(u64::from(*attempts), Ordering::Relaxed);
                            tenant_mut(inner, &spec.tenant, |t, th| t.record_rejected(true, th));
                        }
                        Rejection::DeadlineExceeded => {
                            inner.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
                            tenant_mut(inner, &spec.tenant, |t, th| t.record_rejected(false, th));
                        }
                        Rejection::Stuck { .. } => {
                            // Cooperative stage-1 outcome: the worker
                            // survived, so this is stuck-not-respawned.
                            inner.stats.stuck.fetch_add(1, Ordering::Relaxed);
                            tenant_mut(inner, &spec.tenant, |t, _| t.record_stuck());
                        }
                        r => {
                            let faulty = matches!(
                                r,
                                Rejection::ResidualRejected { .. }
                                    | Rejection::Failed(la_core::LaError::SoftFault { .. })
                            );
                            tenant_mut(inner, &spec.tenant, |t, th| t.record_rejected(faulty, th));
                        }
                    }
                    shared.fulfill(Err(rej));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Priority, SolveOp};
    use la_core::{mat, Mat};
    use std::time::Duration;

    fn spd(n: usize) -> (Mat<f64>, Mat<f64>) {
        let mut a = Mat::<f64>::zeros(n, n);
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for j in 0..n {
            for i in 0..=j {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let mut b = Mat::<f64>::zeros(n, 1);
        for i in 0..n {
            b[(i, 0)] = next();
        }
        (a, b)
    }

    #[test]
    fn serves_all_four_ops_and_reports_stats() {
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let (a, b) = spd(16);
        let handles: Vec<_> = [
            SolveOp::Gesv,
            SolveOp::Posv(la_core::Uplo::Upper),
            SolveOp::GesvMixed,
            SolveOp::PosvMixed(la_core::Uplo::Upper),
        ]
        .into_iter()
        .map(|op| {
            svc.submit(JobSpec::new(op, a.clone(), b.clone()).tenant("t1"))
                .unwrap()
        })
        .collect();
        let mut xs = Vec::new();
        for h in handles {
            let out = h.wait().unwrap();
            assert_eq!(out.attempts, 1);
            assert_eq!(out.brownout, 0, "no overload, full quality");
            xs.push(out.x);
        }
        // All four ops solve the same SPD system: answers must agree.
        for x in &xs[1..] {
            for i in 0..16 {
                assert!((x[(i, 0)] - xs[0][(i, 0)]).abs() < 1e-8);
            }
        }
        let s = svc.stats();
        assert_eq!(s.submitted, 4);
        assert_eq!(s.completed, 4);
        assert_eq!(s.pool_poisonings, 0);
        assert_eq!(s.stuck, 0);
        assert_eq!(s.respawned, 0);
        assert_eq!(s.brownout_level, 0);
        let rep = svc.tenant_report("t1").unwrap();
        assert_eq!(rep.completed, 4);
        assert_eq!(rep.kernel, None);
        svc.shutdown();
        // Post-shutdown submissions are typed, not panics.
        let r = svc.submit(JobSpec::new(SolveOp::Gesv, a, b));
        assert!(matches!(r, Err(Rejection::ShuttingDown)));
    }

    #[test]
    fn backpressure_sheds_typed_and_never_blocks() {
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            queue_depth: 2,
            ..ServeConfig::default()
        });
        let (a, b) = spd(96); // slow enough to pile the queue up
        let mut accepted = Vec::new();
        let mut shed = 0u32;
        for _ in 0..32 {
            match svc.submit(JobSpec::new(SolveOp::Gesv, a.clone(), b.clone())) {
                Ok(h) => accepted.push(h),
                Err(Rejection::Overloaded { depth, retry_after }) => {
                    assert_eq!(depth, 2, "no target delay: the fixed depth governs");
                    assert!(
                        retry_after > Duration::ZERO,
                        "every shed carries a drain-time hint"
                    );
                    shed += 1;
                }
                Err(other) => panic!("unexpected rejection {other}"),
            }
        }
        assert!(shed > 0, "32 instant submits must overflow depth 2");
        for h in accepted {
            h.wait().unwrap(); // every admitted job still completes
        }
        let s = svc.stats();
        assert_eq!(u64::from(shed), s.shed);
        assert_eq!(s.submitted, s.completed);
    }

    #[test]
    fn adaptive_admission_shrinks_the_bound_and_hints_retry() {
        // A tiny target delay with a known service history forces the
        // Little's-law bound down to the worker count, far below the
        // configured depth — the fixed-depth service would admit a queue
        // whose drain time dwarfs any deadline.
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            queue_depth: 64,
            target_delay: Some(Duration::from_nanos(1)),
            ..ServeConfig::default()
        });
        let (a, b) = spd(48);
        // Seed the service-time EWMA with one completion.
        svc.submit(JobSpec::new(SolveOp::Gesv, a.clone(), b.clone()))
            .unwrap()
            .wait()
            .unwrap();
        // Occupy the worker so the queue cannot drain under us.
        let (ba, bb) = spd(384);
        let blocker = svc.submit(JobSpec::new(SolveOp::Gesv, ba, bb)).unwrap();
        let mut shed = 0u32;
        let mut last_retry = Duration::ZERO;
        let mut admitted = Vec::new();
        for _ in 0..8 {
            match svc.submit(JobSpec::new(SolveOp::Gesv, a.clone(), b.clone())) {
                Ok(h) => admitted.push(h),
                Err(Rejection::Overloaded { depth, retry_after }) => {
                    assert!(
                        depth < 64,
                        "adaptive bound must undercut the configured depth, got {depth}"
                    );
                    assert!(retry_after > Duration::ZERO);
                    assert!(
                        retry_after >= last_retry || shed == 0,
                        "retry hint must not shrink while the queue holds"
                    );
                    last_retry = retry_after;
                    shed += 1;
                }
                Err(other) => panic!("unexpected rejection {other}"),
            }
        }
        assert!(shed > 0, "the shrunken bound must shed the burst");
        blocker.wait().unwrap();
        for h in admitted {
            h.wait().unwrap();
        }
        svc.shutdown();
    }

    #[test]
    fn sustained_overload_browns_out_low_priority_answers() {
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            queue_depth: 64,
            target_delay: Some(Duration::from_nanos(1)),
            brownout: true,
            ..ServeConfig::default()
        });
        let (a, b) = spd(64);
        // Keep one job queued behind the in-flight one: every dequeue
        // then observes a sojourn over the (1ns) target, so each closed
        // window is a bad window and the level climbs. Low priority has
        // no shield, so level 1 already browns its answers out.
        let t0 = Instant::now();
        let mut served_brownout = false;
        while t0.elapsed() < Duration::from_secs(30) {
            let spec = JobSpec::new(SolveOp::Gesv, a.clone(), b.clone()).priority(Priority::Low);
            match svc.submit(spec) {
                Ok(h) => {
                    if let Ok(out) = h.wait() {
                        if out.brownout > 0 {
                            served_brownout = true;
                            break;
                        }
                    }
                }
                Err(Rejection::Overloaded { .. }) => std::thread::yield_now(),
                Err(other) => panic!("unexpected rejection {other}"),
            }
        }
        assert!(
            served_brownout,
            "sustained overload must brown low-priority answers out"
        );
        let s = svc.stats();
        assert!(s.brownout_served >= 1);
        assert_eq!(s.pool_poisonings, 0);
        svc.shutdown();
    }

    #[test]
    fn deadlines_reject_queued_and_cancelled_jobs() {
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let (a, b) = spd(96);
        // Occupy the worker, then queue a job whose deadline is already
        // gone — it must be rejected when it reaches the front.
        let busy = svc
            .submit(JobSpec::new(SolveOp::Gesv, a.clone(), b.clone()))
            .unwrap();
        let doomed = svc
            .submit(
                JobSpec::new(SolveOp::Gesv, a.clone(), b.clone())
                    .deadline_at(Instant::now() - Duration::from_millis(1)),
            )
            .unwrap();
        assert_eq!(doomed.wait().unwrap_err(), Rejection::DeadlineExceeded);
        busy.wait().unwrap();
        // Explicit cancellation takes the same path.
        let blocker = svc
            .submit(JobSpec::new(SolveOp::Gesv, a.clone(), b.clone()))
            .unwrap();
        let h = svc.submit(JobSpec::new(SolveOp::Gesv, a, b)).unwrap();
        h.cancel();
        assert_eq!(h.wait().unwrap_err(), Rejection::DeadlineExceeded);
        blocker.wait().unwrap();
        assert!(svc.stats().deadline_missed >= 2);
        svc.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_with_typed_rejection() {
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            queue_depth: 16,
            ..ServeConfig::default()
        });
        let (a, b) = spd(96);
        let handles: Vec<_> = (0..6)
            .map(|_| {
                svc.submit(JobSpec::new(SolveOp::Gesv, a.clone(), b.clone()))
                    .unwrap()
            })
            .collect();
        // Wait until the worker has picked up the first job, so "the
        // in-flight job finishes" is deterministic below.
        let t0 = Instant::now();
        while svc.stats().queued >= 6 {
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "worker never started"
            );
            std::thread::yield_now();
        }
        svc.shutdown();
        let mut served = 0;
        let mut drained = 0;
        for h in handles {
            match h.wait() {
                Ok(_) => served += 1,
                Err(Rejection::ShuttingDown) => drained += 1,
                Err(other) => panic!("unexpected rejection {other}"),
            }
        }
        assert_eq!(served + drained, 6, "every handle resolves exactly once");
        assert!(served >= 1, "the in-flight job finishes");
    }

    #[test]
    fn shutdown_racing_submits_resolves_every_admitted_job() {
        // Regression for the admit/drain race: a submit that passed the
        // pre-lock shutdown check used to be able to push its job after
        // the drain, leaving a handle that never resolves. Hammer
        // submits from several threads while shutting down; every Ok
        // handle must resolve (ShuttingDown or served) within a bounded
        // wait.
        for round in 0..8 {
            let svc: Arc<Service<f64>> = Arc::new(Service::start(ServeConfig {
                workers: 2,
                queue_depth: 1024,
                ..ServeConfig::default()
            }));
            let (a, b) = spd(12);
            let barrier = Arc::new(std::sync::Barrier::new(4));
            let submitters: Vec<_> = (0..3)
                .map(|_| {
                    let svc = Arc::clone(&svc);
                    let (a, b) = (a.clone(), b.clone());
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        barrier.wait();
                        let mut handles = Vec::new();
                        for _ in 0..64 {
                            match svc.submit(JobSpec::new(SolveOp::Gesv, a.clone(), b.clone())) {
                                Ok(h) => handles.push(h),
                                Err(Rejection::ShuttingDown)
                                | Err(Rejection::Overloaded { .. }) => {}
                                Err(other) => panic!("unexpected rejection {other}"),
                            }
                        }
                        handles
                    })
                })
                .collect();
            barrier.wait();
            // Vary the race window a little per round.
            if round % 2 == 1 {
                std::thread::yield_now();
            }
            svc.shutdown();
            for t in submitters {
                for h in t.join().unwrap() {
                    match h.wait_for(Duration::from_secs(60)) {
                        Ok(Ok(_)) | Ok(Err(Rejection::ShuttingDown)) => {}
                        Ok(Err(other)) => panic!("unexpected rejection {other}"),
                        Err(_) => panic!(
                            "admitted job never resolved after shutdown \
                             (admit/drain race)"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn definitive_failures_come_back_typed() {
        let svc: Service<f64> = Service::start(ServeConfig::default());
        let a: Mat<f64> = mat![[1.0, 2.0], [2.0, 4.0]]; // singular
        let b = Mat::from_col_major(2, 1, vec![1.0, 0.0]);
        let h = svc.submit(JobSpec::new(SolveOp::Gesv, a, b)).unwrap();
        match h.wait() {
            Err(Rejection::Failed(la_core::LaError::Singular { .. })) => {}
            other => panic!("expected Failed(Singular), got {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn handle_works_as_a_future() {
        use std::future::Future;
        use std::sync::mpsc;
        use std::task::{Context, Poll, Wake, Waker};

        struct Notify(mpsc::Sender<()>);
        impl Wake for Notify {
            fn wake(self: Arc<Self>) {
                let _ = self.0.send(());
            }
        }

        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let (a, b) = spd(48);
        let mut h = svc.submit(JobSpec::new(SolveOp::Gesv, a, b)).unwrap();
        let (tx, rx) = mpsc::channel();
        let waker = Waker::from(Arc::new(Notify(tx)));
        let mut cx = Context::from_waker(&waker);
        // Mini executor: poll, park on the channel until woken, repeat.
        let out = loop {
            match std::pin::Pin::new(&mut h).poll(&mut cx) {
                Poll::Ready(r) => break r,
                Poll::Pending => {
                    rx.recv_timeout(Duration::from_secs(30))
                        .expect("worker must wake the future");
                }
            }
        };
        out.expect("solve must succeed");
        svc.shutdown();
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn hard_wedge_is_stage_two_respawned_and_typed_stuck() {
        let stall = Duration::from_millis(40);
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            watchdog: Some(stall),
            ..ServeConfig::default()
        });
        let (a, b) = spd(16);
        let h = svc
            .submit(
                JobSpec::new(SolveOp::Gesv, a.clone(), b.clone())
                    .chaos_wedge(crate::chaos::WedgeKind::Hard),
            )
            .unwrap();
        match h.wait() {
            Err(Rejection::Stuck { stalled_for }) => {
                assert!(stalled_for >= stall, "stage 2 needs ≥ 2 stall budgets");
            }
            other => panic!("expected Stuck, got {other:?}"),
        }
        // The written-off worker was replaced: the pool still serves.
        let h2 = svc.submit(JobSpec::new(SolveOp::Gesv, a, b)).unwrap();
        h2.wait().expect("respawned worker must serve");
        let s = svc.stats();
        assert!(s.stuck >= 1);
        assert!(s.respawned >= 1, "hard wedge costs the worker");
        assert_eq!(s.pool_poisonings, 0);
        let rep = svc.tenant_report("default").unwrap();
        assert!(rep.stuck >= 1);
        svc.shutdown();
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn cooperative_wedge_is_stage_one_cancelled_and_typed_stuck() {
        let stall = Duration::from_millis(40);
        let svc: Service<f64> = Service::start(ServeConfig {
            workers: 1,
            watchdog: Some(stall),
            ..ServeConfig::default()
        });
        let (a, b) = spd(16);
        let h = svc
            .submit(
                JobSpec::new(SolveOp::Gesv, a.clone(), b.clone())
                    .chaos_wedge(crate::chaos::WedgeKind::Cooperative),
            )
            .unwrap();
        match h.wait() {
            Err(Rejection::Stuck { .. }) => {}
            other => panic!("expected Stuck, got {other:?}"),
        }
        let s = svc.stats();
        assert!(s.stuck >= 1);
        assert_eq!(
            s.respawned, 0,
            "a wedge that honours stage-1 cancel keeps its worker"
        );
        assert_eq!(s.pool_poisonings, 0);
        svc.shutdown();
    }
}
