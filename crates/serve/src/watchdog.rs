//! Stuck-job watchdog: per-worker liveness tracking and the two-stage
//! escalation (cooperative cancel → worker respawn).
//!
//! Cooperative cancellation handles every job that still reaches its
//! checkpoints — but a job wedged in a non-cooperative loop (foreign
//! code, a livelock, a pathological input) holds its worker forever and
//! quietly shrinks the pool. The watchdog closes that hole without ever
//! killing a thread (unsound in Rust):
//!
//! 1. Each worker publishes an [`ActiveJob`] registration in its
//!    [`WorkerSlot`] while it holds a job, carrying the job's
//!    [`Heartbeat`] — stamped for free at every cancellation checkpoint
//!    the factorizations already poll (once per `NB`-column panel).
//! 2. A monitor thread calls [`patrol`] on an interval. A job whose beat
//!    count moved is alive, however slow. A job silent for the stall
//!    budget is escalated **stage 1**: its cancel token fires, so a job
//!    that is merely slow to checkpoint abandons at the next panel
//!    (`INFO −103`) and resolves as a typed [`Rejection::Stuck`].
//! 3. A job still silent one budget after stage 1 is truly wedged —
//!    **stage 2**: the watchdog resolves the job's handle
//!    ([`Rejection::Stuck`]) itself, marks the worker abandoned, and
//!    reports it for respawn. The abandoned thread is left to exit on
//!    its own if the wedge ever breaks (it re-checks the flag); its
//!    siblings, and the job's waiter, never notice.
//!
//! First-fulfillment-wins on the completion slot makes the stage-2 race
//! benign: if the wedge breaks between patrol and fulfill, whichever
//! side resolves first is the answer the caller sees, and the other is
//! a no-op.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use la_core::cancel::{CancelToken, Heartbeat};
use la_lapack::Lattice;

use crate::handle::Shared;
use crate::Rejection;

/// The registration a worker publishes while it holds one job, plus the
/// watchdog's private bookkeeping against it.
pub(crate) struct ActiveJob<T: Lattice> {
    /// Monotone per-service job number (never reused).
    pub(crate) job_id: u64,
    pub(crate) heartbeat: Heartbeat,
    pub(crate) token: CancelToken,
    pub(crate) shared: Arc<Shared<T>>,
    pub(crate) tenant: String,
    /// Beat count at the last patrol that saw movement.
    beats_seen: u64,
    /// Last time the beat count moved (or the job started).
    silent_since: Instant,
    /// When stage 1 (cooperative cancel) fired, if it has.
    escalated_at: Option<Instant>,
}

/// One worker's mailbox to the watchdog.
pub(crate) struct WorkerSlot<T: Lattice> {
    current: Mutex<Option<ActiveJob<T>>>,
    /// Stage 2 happened while this worker held its job: the thread is
    /// written off (a replacement is running) and must exit at the next
    /// point it regains control. Also the release latch the hard chaos
    /// wedge spins on.
    pub(crate) abandoned: AtomicBool,
}

impl<T: Lattice> WorkerSlot<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(WorkerSlot {
            current: Mutex::new(None),
            abandoned: AtomicBool::new(false),
        })
    }

    /// Publishes the job this worker is about to run.
    pub(crate) fn begin(
        &self,
        job_id: u64,
        heartbeat: Heartbeat,
        token: CancelToken,
        shared: Arc<Shared<T>>,
        tenant: String,
    ) {
        let mut cur = self.current.lock().unwrap_or_else(|e| e.into_inner());
        *cur = Some(ActiveJob {
            job_id,
            beats_seen: heartbeat.beats(),
            heartbeat,
            token,
            shared,
            tenant,
            silent_since: Instant::now(),
            escalated_at: None,
        });
    }

    /// Withdraws the registration after the job ran.
    ///
    /// The return value doubles as the worker's fulfillment license:
    /// [`patrol`] fulfills stage-2 jobs *while holding this slot's
    /// lock*, so by the time `finish` returns, either the registration
    /// is still here (stage 2 can no longer happen — the worker's own
    /// fulfillment is guaranteed to win, and it may record stats before
    /// fulfilling) or it is gone ([`Finished::TakenByStage2`]: the
    /// handle is already resolved `Stuck` and the monitor owns the
    /// stats — the worker must not touch either).
    pub(crate) fn finish(&self, job_id: u64) -> Finished {
        let mut cur = self.current.lock().unwrap_or_else(|e| e.into_inner());
        match cur.take() {
            Some(job) if job.job_id == job_id => match job.escalated_at {
                Some(_) => Finished::Escalated(job.silent_since.elapsed()),
                None => Finished::Normal,
            },
            Some(other) => {
                // Someone else's registration (can't happen today) stays.
                *cur = Some(other);
                Finished::TakenByStage2
            }
            None => Finished::TakenByStage2,
        }
    }
}

/// What [`WorkerSlot::finish`] found when the worker came back.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Finished {
    /// Never escalated: the ordinary case.
    Normal,
    /// Stage 1 (cooperative cancel) fired while the job ran; the payload
    /// is how long the heartbeat had been silent. The worker types a
    /// deadline-shaped outcome as [`Rejection::Stuck`].
    Escalated(Duration),
    /// Stage 2 already resolved the handle and took the registration;
    /// the worker is abandoned and must neither fulfill nor record.
    TakenByStage2,
}

/// The outcome of a stage-2 escalation, for the service's books.
pub(crate) struct StuckEvent {
    /// Index of the worker slot that must be respawned.
    pub(crate) slot: usize,
    /// Whether the watchdog's `Stuck` fulfillment won the completion
    /// race (if not, the wedge broke at the last instant and the worker
    /// resolved the job itself).
    pub(crate) resolved: bool,
    /// Tenant the wedged job belonged to.
    pub(crate) tenant: String,
    /// How long the heartbeat had been silent (the figure inside the
    /// job's [`Rejection::Stuck`]; asserted by the unit tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) stalled_for: Duration,
}

/// One watchdog pass over the worker slots at time `now`, escalating
/// anything silent longer than `stall`. Returns the stage-2 events; the
/// caller respawns those workers and records the stats.
pub(crate) fn patrol<T: Lattice>(
    slots: &[Arc<WorkerSlot<T>>],
    stall: Duration,
    now: Instant,
) -> Vec<StuckEvent> {
    let mut events = Vec::new();
    for (idx, slot) in slots.iter().enumerate() {
        if slot.abandoned.load(Ordering::Acquire) {
            continue;
        }
        let mut cur = slot.current.lock().unwrap_or_else(|e| e.into_inner());
        let Some(job) = cur.as_mut() else { continue };
        let beats = job.heartbeat.beats();
        if beats != job.beats_seen {
            job.beats_seen = beats;
            job.silent_since = now;
            continue;
        }
        if now.saturating_duration_since(job.silent_since) < stall {
            continue;
        }
        match job.escalated_at {
            None => {
                // Stage 1: ask nicely. A slow-but-cooperative job
                // abandons at its next checkpoint and the worker maps
                // the −103 to Stuck via `finish`.
                job.token.cancel();
                job.escalated_at = Some(now);
            }
            Some(t) if now.saturating_duration_since(t) >= stall => {
                // Stage 2: the job ignored cancellation for a full
                // budget — write the worker off and answer the caller.
                let job = cur.take().expect("checked above");
                let stalled_for = now.saturating_duration_since(job.silent_since);
                slot.abandoned.store(true, Ordering::Release);
                let resolved = job.shared.fulfill(Err(Rejection::Stuck { stalled_for }));
                events.push(StuckEvent {
                    slot: idx,
                    resolved,
                    tenant: job.tenant,
                    stalled_for,
                });
            }
            Some(_) => {}
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot() -> (
        Arc<WorkerSlot<f64>>,
        Heartbeat,
        CancelToken,
        Arc<Shared<f64>>,
    ) {
        let s = WorkerSlot::new();
        let hb = Heartbeat::new();
        let tok = CancelToken::new();
        let sh = Shared::new();
        s.begin(7, hb.clone(), tok.clone(), Arc::clone(&sh), "t".into());
        (s, hb, tok, sh)
    }

    #[test]
    fn beating_jobs_are_never_escalated() {
        let (s, hb, tok, _sh) = slot();
        let slots = [Arc::clone(&s)];
        let stall = Duration::from_millis(100);
        let t0 = Instant::now();
        for i in 1..10 {
            hb.stamp(); // progress every patrol
            let ev = patrol(&slots, stall, t0 + stall * i);
            assert!(ev.is_empty());
            assert!(!tok.is_cancelled(), "live job must not be cancelled");
        }
        assert_eq!(s.finish(7), Finished::Normal);
    }

    #[test]
    fn silent_job_walks_cancel_then_respawn() {
        let (s, _hb, tok, sh) = slot();
        let slots = [Arc::clone(&s)];
        let stall = Duration::from_millis(100);
        let t0 = Instant::now();
        // Within budget: nothing happens.
        assert!(patrol(&slots, stall, t0 + stall / 2).is_empty());
        assert!(!tok.is_cancelled());
        // Budget exceeded: stage 1 cancels, does not resolve.
        assert!(patrol(&slots, stall, t0 + stall * 2).is_empty());
        assert!(tok.is_cancelled(), "stage 1 is cooperative cancel");
        assert!(sh.try_take_test().is_none());
        // Still silent one budget later: stage 2 resolves and abandons.
        let ev = patrol(&slots, stall, t0 + stall * 3);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].resolved);
        assert_eq!(ev[0].slot, 0);
        assert_eq!(ev[0].tenant, "t");
        assert!(ev[0].stalled_for >= stall * 2);
        assert!(s.abandoned.load(Ordering::Acquire));
        match sh.try_take_test() {
            Some(Err(Rejection::Stuck { stalled_for })) => {
                assert!(stalled_for >= stall * 2);
            }
            other => panic!("expected Stuck, got {other:?}"),
        }
        // Abandoned slots are skipped thereafter, and the worker coming
        // back is told its job is no longer its to resolve.
        assert!(patrol(&slots, stall, t0 + stall * 10).is_empty());
        assert_eq!(s.finish(7), Finished::TakenByStage2);
    }

    #[test]
    fn cooperative_job_finishing_after_stage_one_maps_to_stuck() {
        let (s, _hb, tok, sh) = slot();
        let slots = [Arc::clone(&s)];
        let stall = Duration::from_millis(50);
        let t0 = Instant::now();
        assert!(patrol(&slots, stall, t0 + stall * 2).is_empty());
        assert!(tok.is_cancelled());
        // The job honours the cancel and the worker finishes it: finish
        // reports the silence so the worker types the outcome Stuck.
        assert!(
            matches!(s.finish(7), Finished::Escalated(_)),
            "escalated job reports its stall"
        );
        assert!(sh.try_take_test().is_none(), "worker resolves, not patrol");
    }

    #[test]
    fn stage_two_loses_the_race_gracefully() {
        let (s, _hb, _tok, sh) = slot();
        let slots = [Arc::clone(&s)];
        let stall = Duration::from_millis(50);
        let t0 = Instant::now();
        patrol(&slots, stall, t0 + stall * 2);
        // The wedge breaks at the last instant: the worker resolves first.
        sh.fulfill(Err(Rejection::DeadlineExceeded));
        let ev = patrol(&slots, stall, t0 + stall * 4);
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].resolved, "first fulfillment won; Stuck was a no-op");
        assert!(matches!(
            sh.try_take_test(),
            Some(Err(Rejection::DeadlineExceeded))
        ));
    }
}
