//! # la-serve — a fault-isolated solve service over the batched substrate
//!
//! The ROADMAP's north star is linear-algebra traffic served to many
//! concurrent callers; what turns the library underneath into a *service*
//! is robustness, not speed. This crate is the serving layer: a bounded
//! job queue (request → admit → solve → respond) over the `la90` drivers
//! and the work-stealing pool of [`la_core::batch`], converting the
//! substrate's typed failure taxonomy (Demmel et al., arXiv:2207.09281:
//! `INFO` −100…−104) into retries, fallbacks and graceful degradation.
//!
//! The robustness contract, per job:
//!
//! * **Admission control / backpressure** — the queue is bounded
//!   ([`ServeConfig::queue_depth`]); a submit against a full queue is shed
//!   immediately with a typed [`Rejection::Overloaded`], never blocked.
//!   With a [`ServeConfig::target_delay`] set the bound turns *adaptive*:
//!   per-class service-time EWMAs size the effective bound from Little's
//!   law, a CoDel-style minimum-sojourn window distinguishes sustained
//!   overload from absorbable bursts, sheds carry a computed
//!   `retry_after` hint, and [`Priority`]-weighted shedding degrades
//!   paying traffic last.
//! * **Stuck-job watchdog** — with [`ServeConfig::watchdog`] set, a
//!   monitor samples per-worker heartbeats (stamped for free at the
//!   cancellation checkpoints the factorizations already poll) and walks
//!   a wedged job through cooperative cancel (`−103`) and, if ignored,
//!   worker write-off + respawn, resolving the job as a typed
//!   [`Rejection::Stuck`] — siblings never notice.
//! * **Brownout** — under sustained overload the service sheds *quality*
//!   before it sheds more *traffic*: double-double refinement off, then
//!   mixed-precision demotion, then ABFT verify off, priority-shielded so
//!   high-priority jobs degrade last ([`SolveOutput::brownout`] and the
//!   probe span name record the level an answer was served at; the
//!   residual gate is never browned out).
//! * **Deadlines** — each job carries an optional absolute deadline; an
//!   expired job is rejected before it starts, and an in-flight
//!   factorization abandons at its next panel checkpoint via
//!   [`la_core::cancel`] (`INFO = -103` → [`Rejection::DeadlineExceeded`]).
//! * **Panic isolation** — a worker panic is caught at the job boundary:
//!   it fails (or retries) *that job* and never poisons the pool. A
//!   sentinel counts any panic that would escape a worker thread;
//!   the chaos soak asserts the count stays zero.
//! * **Retry with degradation** — the ladder in [`mod@self`] (see
//!   [`Service`] docs): a detected soft fault (`−102`) retries under
//!   [`la_core::abft::AbftPolicy::Recover`]; an un-pinpointed NaN/Inf
//!   (`−101`) retries under the full [`la_core::except`] screen to name
//!   the offending argument; mixed-precision non-convergence already
//!   falls back to the bitwise full-precision sequence inside the driver;
//!   repeated faults from one tenant demote that tenant's gemm kernel
//!   simd → unrolled → scalar through a per-tenant circuit breaker.
//! * **Answer verification** — completed solves are residual-checked
//!   (`‖b − A·x‖∞` against a norm-scaled bound) before they are returned;
//!   a failing answer is retried under `Recover` and, if still wrong,
//!   rejected rather than served.
//! * **Per-job state scoping** — every job runs inside
//!   [`la_core::abft::job_scope`] and [`la_core::probe::job_scope`], so a
//!   fault or counter from an abandoned job can never leak into a
//!   sibling, and per-tenant flop/time accounting is exact.
//! * **No oversubscription** — workers register with
//!   [`la_core::tune::in_pool_worker`], so striped BLAS-3 inside a job
//!   divides the host cores by the worker count.
//!
//! Completion is exposed as a [`JobHandle`] that is both a blocking
//! future ([`JobHandle::wait`]) and a [`std::future::Future`], so the
//! service drops into async executors without carrying one.
//!
//! ```
//! use la_core::{mat, Mat};
//! use la_serve::{JobSpec, ServeConfig, Service, SolveOp};
//!
//! let service: Service<f64> = Service::start(ServeConfig::default());
//! let a: Mat<f64> = mat![[4.0, 1.0], [1.0, 3.0]];
//! let b = Mat::from_col_major(2, 1, vec![9.0, 5.0]);
//! let handle = service.submit(JobSpec::new(SolveOp::Gesv, a, b)).unwrap();
//! let out = handle.wait().unwrap();
//! assert!((out.x[(0, 0)] - 2.0).abs() < 1e-10);
//! assert!((out.x[(1, 0)] - 1.0).abs() < 1e-10);
//! service.shutdown();
//! ```

#![warn(missing_docs)]

mod admission;
mod handle;
mod ladder;
mod service;
mod tenant;
mod watchdog;

#[cfg(feature = "fault-inject")]
pub mod chaos;

pub use handle::JobHandle;
pub use service::{ServeStats, Service};
pub use tenant::TenantReport;

use la_core::{LaError, Mat, Uplo};
use la_lapack::Lattice;
use std::time::{Duration, Instant};

/// Which driver a job runs. The mixed variants take the demoted-precision
/// refinement path with the bitwise full-precision fallback built into
/// the driver.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolveOp {
    /// General `A·X = B` by LU with partial pivoting (`LA_GESV`).
    Gesv,
    /// Symmetric/Hermitian positive-definite `A·X = B` by Cholesky
    /// (`LA_POSV`), reading the given triangle.
    Posv(Uplo),
    /// Mixed-precision general solve (`LA_GESV_MIXED`).
    GesvMixed,
    /// Mixed-precision positive-definite solve (`LA_POSV_MIXED`).
    PosvMixed(Uplo),
}

impl SolveOp {
    /// Lowercase name used in stats and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SolveOp::Gesv => "gesv",
            SolveOp::Posv(_) => "posv",
            SolveOp::GesvMixed => "gesv_mixed",
            SolveOp::PosvMixed(_) => "posv_mixed",
        }
    }

    /// The admission-control service class (per-class EWMA index).
    pub(crate) fn class(self) -> usize {
        match self {
            SolveOp::Gesv => 0,
            SolveOp::Posv(_) => 1,
            SolveOp::GesvMixed => 2,
            SolveOp::PosvMixed(_) => 3,
        }
    }
}

/// Scheduling priority of a job: who is shed first under load and who
/// degrades last under brownout.
///
/// Under adaptive admission, `Low` jobs see half the effective queue
/// bound and `Normal` three quarters of it (halved again during a
/// sustained-overload window), so `High` traffic is the last to be shed.
/// Under brownout, the degradation ladder is applied *least* to `High`
/// jobs: a global brownout level `L` reaches a job as
/// `L − shield` (High shields 2 levels, Normal 1, Low 0).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Best-effort traffic: shed first, degraded first.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Paying/interactive traffic: shed last, degraded last.
    High,
}

impl Priority {
    /// Lowercase name used in stats and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Brownout shielding: how many global brownout levels this priority
    /// absorbs before its jobs degrade.
    pub(crate) fn shield(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }
}

/// One solve request: the operation, the owned problem data, and the
/// serving metadata (tenant, deadline). Build with [`JobSpec::new`] and
/// the chained setters.
#[derive(Debug)]
pub struct JobSpec<T: Lattice> {
    pub(crate) op: SolveOp,
    pub(crate) a: Mat<T>,
    pub(crate) b: Mat<T>,
    pub(crate) tenant: String,
    pub(crate) deadline: Option<Instant>,
    pub(crate) priority: Priority,
    /// Chaos hook: the job panics inside the worker (after admission,
    /// before the solve) — exercising panic isolation end-to-end.
    #[cfg(feature = "fault-inject")]
    pub(crate) chaos_panic: bool,
    /// Chaos hook: the job wedges inside the worker instead of solving,
    /// exercising the watchdog escalation end-to-end.
    #[cfg(feature = "fault-inject")]
    pub(crate) chaos_wedge: Option<chaos::WedgeKind>,
}

impl<T: Lattice> JobSpec<T> {
    /// A request to solve `a·X = b` with `op`, for the default tenant,
    /// with no deadline of its own (the service default applies).
    pub fn new(op: SolveOp, a: Mat<T>, b: Mat<T>) -> Self {
        JobSpec {
            op,
            a,
            b,
            tenant: String::from("default"),
            deadline: None,
            priority: Priority::Normal,
            #[cfg(feature = "fault-inject")]
            chaos_panic: false,
            #[cfg(feature = "fault-inject")]
            chaos_wedge: None,
        }
    }

    /// Sets the scheduling priority (default [`Priority::Normal`]):
    /// who is shed first under load, who degrades last under brownout.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Attributes the job to `tenant` (circuit breaker + probe counters).
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Sets an absolute deadline; the job is cancelled at its next panel
    /// checkpoint once it passes.
    pub fn deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `budget` from now.
    pub fn deadline_in(self, budget: Duration) -> Self {
        self.deadline_at(Instant::now() + budget)
    }

    /// The coefficient matrix as it will be submitted — load generators
    /// use this to keep an independent copy for answer verification
    /// (chaos events may mutate the data after [`JobSpec::new`]).
    pub fn matrix(&self) -> &Mat<T> {
        &self.a
    }

    /// The right-hand side as it will be submitted.
    pub fn rhs(&self) -> &Mat<T> {
        &self.b
    }

    /// Arms the chaos panic: the worker processing this job panics before
    /// the solve, exercising panic isolation. `fault-inject` builds only.
    #[cfg(feature = "fault-inject")]
    pub fn chaos_panic(mut self) -> Self {
        self.chaos_panic = true;
        self
    }

    /// Arms the chaos wedge: the worker processing this job stalls
    /// instead of solving, exercising the stuck-job watchdog.
    /// `fault-inject` builds only.
    #[cfg(feature = "fault-inject")]
    pub fn chaos_wedge(mut self, kind: chaos::WedgeKind) -> Self {
        self.chaos_wedge = Some(kind);
        self
    }
}

/// A completed solve.
#[derive(Debug)]
pub struct SolveOutput<T: Lattice> {
    /// The solution `X` (`n × nrhs`).
    pub x: Mat<T>,
    /// Mixed-path refinement iterations (`DSGESV` convention: ≥ 0 on the
    /// low-precision path, negative when the driver fell back to full
    /// precision). `0` for the direct operations.
    pub iter: i32,
    /// Ladder attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// `true` when the answer needed the degradation ladder (retry under
    /// `Recover`, a re-pinpointing pass, or a kernel demotion) — the
    /// serving analog of a corrected error.
    pub degraded: bool,
    /// The brownout level this job was actually served at (`0` = full
    /// quality; `1` = Dd refinement off; `2` = also demoted to the
    /// mixed-precision lattice path; `3` = also ABFT verification off).
    /// The *global* level at solve time may have been higher — the job's
    /// [`Priority`] shields it (see [`Priority`]).
    pub brownout: u8,
}

/// Why the service did not return an answer — every rejection is typed so
/// callers can distinguish load shedding from data problems from faults.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// The queue bound in force was met at submit time; the job was shed
    /// without blocking.
    ///
    /// **Retry contract:** `retry_after` is the service's estimate of
    /// when the backlog ahead of a resubmit will have drained (from the
    /// per-class service-time EWMA and the queue length). Callers MUST
    /// add their own jitter before resubmitting — a fleet of clients
    /// sleeping exactly `retry_after` arrives back as one synchronized
    /// thundering herd and re-creates the overload it measured. Treat it
    /// as a lower bound: `sleep(retry_after + rand(0..retry_after))` is
    /// the intended shape.
    Overloaded {
        /// The queue bound that was hit — the configured depth, or the
        /// smaller effective bound adaptive admission computed from
        /// observed service times.
        depth: usize,
        /// Estimated backlog drain time; see the retry contract above.
        retry_after: Duration,
    },
    /// The job's deadline passed — before it started, or observed by an
    /// in-flight factorization at a cancellation checkpoint.
    DeadlineExceeded,
    /// The solve failed with a definitive typed error (singular matrix,
    /// non-finite input, illegal dimensions, allocation failure …);
    /// retrying cannot help, the ladder has already done what it could.
    Failed(LaError),
    /// The job panicked on every attempt the ladder was willing to make;
    /// the panics were isolated to this job.
    Panicked {
        /// Attempts consumed before giving up.
        attempts: u32,
    },
    /// The computed answer failed the residual check on every attempt —
    /// the service refuses to serve a wrong answer.
    ResidualRejected {
        /// Attempts consumed before giving up.
        attempts: u32,
    },
    /// The worker running the job stopped making progress (no heartbeat
    /// across the watchdog interval) and did not respond to cooperative
    /// cancellation; the watchdog resolved the job and respawned the
    /// worker. Sibling jobs were unaffected.
    Stuck {
        /// How long the job's heartbeat had been silent when the
        /// watchdog gave up on it.
        stalled_for: Duration,
    },
    /// The service is shutting down; queued jobs are drained with this
    /// rejection instead of silently dropped.
    ShuttingDown,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Overloaded { depth, retry_after } => {
                write!(
                    f,
                    "queue full (bound {depth}); job shed, retry after {:.1}ms plus jitter",
                    retry_after.as_secs_f64() * 1e3
                )
            }
            Rejection::DeadlineExceeded => write!(f, "deadline exceeded"),
            Rejection::Failed(e) => write!(f, "solve failed: {e}"),
            Rejection::Panicked { attempts } => {
                write!(f, "job panicked on all {attempts} attempt(s); isolated")
            }
            Rejection::ResidualRejected { attempts } => write!(
                f,
                "answer failed residual verification on all {attempts} attempt(s)"
            ),
            Rejection::Stuck { stalled_for } => write!(
                f,
                "worker wedged for {:.0}ms with no heartbeat; job abandoned, worker respawned",
                stalled_for.as_secs_f64() * 1e3
            ),
            Rejection::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for Rejection {}

/// Service configuration: pool size, queue bound, deadline and ladder
/// knobs. Plain data; start with [`ServeConfig::default`] and edit
/// fields.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads. `0` resolves to the [`la_core::tune`] thread
    /// budget at start time.
    pub workers: usize,
    /// Queue bound; a submit when this many jobs are already queued is
    /// rejected [`Rejection::Overloaded`]. Must be ≥ 1.
    pub queue_depth: usize,
    /// Deadline applied to jobs that don't carry their own. `None`: no
    /// default deadline.
    pub default_deadline: Option<Duration>,
    /// Maximum solve attempts per job across the degradation ladder
    /// (≥ 1; the first attempt counts).
    pub max_attempts: u32,
    /// Consecutive per-tenant faults (panics, soft faults, residual
    /// failures) before the tenant's gemm kernel is demoted one level
    /// (simd → unrolled → scalar).
    pub breaker_threshold: u32,
    /// Verify every completed solve's residual before returning it.
    pub verify_residual: bool,
    /// Target queueing delay for adaptive admission control. When set,
    /// the effective queue bound is sized from per-class service-time
    /// EWMAs so an admitted job expects to start within this budget
    /// ([`queue_depth`](ServeConfig::queue_depth) stays the hard cap),
    /// and a sliding sojourn window drives the brownout ladder. `None`:
    /// classic fixed-depth admission. Defaults from
    /// `LA_SERVE_TARGET_DELAY` (milliseconds; `0`/unset = off).
    pub target_delay: Option<Duration>,
    /// Stuck-job watchdog: a worker whose heartbeat stalls this long
    /// while holding one job is escalated — cooperative cancel first,
    /// then the job is resolved [`Rejection::Stuck`] and the worker
    /// respawned. `None`: watchdog off. Defaults from
    /// `LA_SERVE_WATCHDOG` (milliseconds; `0`/unset = off).
    pub watchdog: Option<Duration>,
    /// Permit the brownout ladder under sustained overload (requires
    /// [`target_delay`](ServeConfig::target_delay) for overload
    /// detection): Dd refinement off → mixed-precision lattice level
    /// down → ABFT verification off, applied least to
    /// [`Priority::High`] jobs.
    pub brownout: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let tune = la_core::tune::current();
        let ms = |v: usize| (v > 0).then(|| Duration::from_millis(v as u64));
        ServeConfig {
            workers: 0,
            queue_depth: 64,
            default_deadline: None,
            max_attempts: 3,
            breaker_threshold: 3,
            verify_residual: true,
            target_delay: ms(tune.serve_target_delay_ms),
            watchdog: ms(tune.serve_watchdog_ms),
            brownout: true,
        }
    }
}
