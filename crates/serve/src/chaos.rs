//! Chaos-mode helpers for the soak tests and the `serve_load` generator
//! (`fault-inject` builds only).
//!
//! A chaos run drives a deterministic stream of fault events — silent
//! stripe corruption through [`la_core::abft::inject`], injected worker
//! panics, NaN-poisoned inputs, already-expired deadlines — against a
//! live [`crate::Service`] and asserts the serving invariants: zero wrong
//! answers served, zero pool poisonings, every injected fault resolved by
//! the degradation ladder or surfaced as a typed [`crate::Rejection`].
//!
//! Determinism note: the event stream is a pure function of the seed, but
//! *which* concurrent job a one-shot armed corruption lands on is decided
//! by thread scheduling — chaos asserts global invariants, not per-job
//! trajectories.

use std::time::Instant;

use la_core::abft::inject::{arm, CorruptKind, Corruption};
use la_core::tune::TuneConfig;
use la_core::{RealScalar, Scalar};
use la_lapack::Lattice;

use crate::{JobSpec, SolveOp};

/// One chaos decision for one job.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// No interference.
    Clean,
    /// Arm a one-shot silent corruption against the job's factorization
    /// routine (`getrf` for the LU ops, `potrf` for the Cholesky ops).
    SoftFault,
    /// Set the job's [`JobSpec::chaos_panic`] flag: the worker panics at
    /// the job boundary, exercising panic isolation.
    WorkerPanic,
    /// Poison `A(0,0)` with a NaN — the answer must be screened out, never
    /// served.
    Poison,
    /// Give the job an already-expired deadline.
    PastDeadline,
    /// Wedge the worker that picks this job up — a tight loop that stops
    /// heartbeating, exercising the stuck-job watchdog (cooperative and
    /// hard flavors alternate via [`WedgeKind`]).
    WedgedWorker,
    /// A generator-level event: the load generator submits the next few
    /// jobs back-to-back with no pacing, exercising burst absorption
    /// (the admission controller's min-over-window must *not* shed a
    /// burst a bounded queue can drain). [`ChaosPlan::apply`] leaves the
    /// spec untouched.
    Burst,
}

impl ChaosEvent {
    /// Lowercase name for logs and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosEvent::Clean => "clean",
            ChaosEvent::SoftFault => "soft_fault",
            ChaosEvent::WorkerPanic => "worker_panic",
            ChaosEvent::Poison => "poison",
            ChaosEvent::PastDeadline => "past_deadline",
            ChaosEvent::WedgedWorker => "wedged_worker",
            ChaosEvent::Burst => "burst",
        }
    }
}

/// How a chaos-wedged job misbehaves.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WedgeKind {
    /// Spins without heartbeating but polls its cancel token: stage 1 of
    /// the watchdog (cooperative cancel) releases it and the job resolves
    /// [`crate::Rejection::Stuck`] through the worker, which survives.
    Cooperative,
    /// Ignores the cancel token entirely: only stage 2 (abandon +
    /// respawn) or service shutdown releases it. Models foreign-code
    /// livelock.
    Hard,
}

/// Deterministic chaos event stream (splitmix64 over a seed): ~58% clean
/// traffic, the rest split across the fault kinds.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    state: u64,
    flip: bool,
    wedge_flip: bool,
}

impl ChaosPlan {
    /// A plan; equal seeds give equal event streams.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
            flip: false,
            wedge_flip: false,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next event in the stream.
    pub fn next_event(&mut self) -> ChaosEvent {
        match self.next_u64() % 12 {
            0..=6 => ChaosEvent::Clean,
            7 | 8 => ChaosEvent::SoftFault,
            9 => ChaosEvent::WorkerPanic,
            10 => {
                self.flip = !self.flip;
                if self.flip {
                    ChaosEvent::Poison
                } else {
                    ChaosEvent::PastDeadline
                }
            }
            11 => {
                self.wedge_flip = !self.wedge_flip;
                if self.wedge_flip {
                    ChaosEvent::WedgedWorker
                } else {
                    ChaosEvent::Burst
                }
            }
            _ => unreachable!(),
        }
    }

    /// Applies `event` to `spec` (arming the global injector for
    /// [`ChaosEvent::SoftFault`]) and returns the spec to submit.
    pub fn apply<T: Lattice>(&mut self, event: ChaosEvent, mut spec: JobSpec<T>) -> JobSpec<T> {
        match event {
            ChaosEvent::Clean => spec,
            ChaosEvent::SoftFault => {
                let routine = match spec.op {
                    SolveOp::Gesv | SolveOp::GesvMixed => "getrf",
                    SolveOp::Posv(_) | SolveOp::PosvMixed(_) => "potrf",
                };
                let kind = if self.next_u64() % 2 == 0 {
                    CorruptKind::FlipMantissaBit
                } else {
                    CorruptKind::Scale
                };
                arm(Corruption {
                    routine,
                    stripe: (self.next_u64() % 2) as usize,
                    kind,
                });
                spec
            }
            ChaosEvent::WorkerPanic => spec.chaos_panic(),
            ChaosEvent::Poison => {
                spec.a[(0, 0)] = T::from_f64(f64::NAN);
                spec
            }
            ChaosEvent::PastDeadline => spec.deadline_at(Instant::now()),
            ChaosEvent::WedgedWorker => {
                let kind = if self.next_u64() % 2 == 0 {
                    WedgeKind::Cooperative
                } else {
                    WedgeKind::Hard
                };
                spec.chaos_wedge(kind)
            }
            // Burst is interpreted by the load generator (pacing), not
            // the job.
            ChaosEvent::Burst => spec,
        }
    }
}

/// The wedge loop a chaos-marked job runs instead of heartbeating: a
/// [`WedgeKind::Cooperative`] wedge releases on cancellation (the
/// watchdog's stage 1), a [`WedgeKind::Hard`] wedge only on worker
/// abandonment (stage 2) or service shutdown. Deliberately does NOT call
/// [`la_core::cancel::cancelled`] — that would stamp the heartbeat and
/// defeat the point.
pub(crate) fn wedge(
    kind: WedgeKind,
    token: &la_core::cancel::CancelToken,
    abandoned: &std::sync::atomic::AtomicBool,
    shutdown: &std::sync::atomic::AtomicBool,
) {
    use std::sync::atomic::Ordering;
    loop {
        let released = match kind {
            WedgeKind::Cooperative => token.is_cancelled(),
            WedgeKind::Hard => abandoned.load(Ordering::Acquire),
        } || shutdown.load(Ordering::Acquire);
        if released {
            return;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

/// Tuning that makes the ABFT-protected blocked paths engage at soak-size
/// problems (small `NB`, zero parallel threshold, a nested-pool budget of
/// its own) — without it, small matrices take the unprotected serial fast
/// path and armed corruption never fires.
pub fn chaos_tune() -> TuneConfig {
    TuneConfig {
        max_threads: 2,
        oversubscribe: true,
        par_flops: 0,
        nb_getrf: 8,
        nb_potrf: 8,
        crossover: 8,
        ..TuneConfig::defaults()
    }
}

/// `true` when `x` solves `a·x = b` to a chaos-grade tolerance — the
/// independent wrongness check the soak applies to every *served* answer
/// (`64·n·ε`, same bound the service's own verifier uses).
pub fn answer_is_plausible<T: Lattice>(
    a: &la_core::Mat<T>,
    b: &la_core::Mat<T>,
    x: &la_core::Mat<T>,
) -> bool {
    let n = a.nrows();
    let nrhs = b.ncols();
    let mut r = b.clone();
    let rld = r.lda();
    la_blas::gemm(
        la_core::Trans::No,
        la_core::Trans::No,
        n,
        nrhs,
        n,
        -T::one(),
        a.as_slice(),
        a.lda(),
        x.as_slice(),
        x.lda(),
        T::one(),
        r.as_mut_slice(),
        rld,
    );
    let mut amax = T::Real::zero();
    for j in 0..n {
        for i in 0..n {
            amax = amax.maxr(a[(i, j)].abs1());
        }
    }
    let nr = T::Real::from_usize(n);
    let tol = T::Real::EPS * nr * T::Real::from_usize(64);
    for j in 0..nrhs {
        let (mut rnrm, mut xnrm, mut bnrm) = (T::Real::zero(), T::Real::zero(), T::Real::zero());
        for i in 0..n {
            rnrm = rnrm.maxr(r[(i, j)].abs1());
            xnrm = xnrm.maxr(x[(i, j)].abs1());
            bnrm = bnrm.maxr(b[(i, j)].abs1());
        }
        if !rnrm.is_finite_r() || !xnrm.is_finite_r() {
            return false;
        }
        let den = nr * amax * xnrm + bnrm;
        if den > T::Real::zero() && rnrm / den > tol {
            return false;
        }
    }
    true
}

/// Silences the default panic report for the injected chaos panics only;
/// genuine panics (including test assertion failures) still print.
pub fn quiet_chaos_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("chaos: injected"))
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_mixed() {
        let evs: Vec<_> = {
            let mut p = ChaosPlan::new(42);
            (0..200).map(|_| p.next_event()).collect()
        };
        let again: Vec<_> = {
            let mut p = ChaosPlan::new(42);
            (0..200).map(|_| p.next_event()).collect()
        };
        assert_eq!(evs, again, "same seed, same stream");
        for kind in [
            ChaosEvent::Clean,
            ChaosEvent::SoftFault,
            ChaosEvent::WorkerPanic,
            ChaosEvent::Poison,
            ChaosEvent::PastDeadline,
            ChaosEvent::WedgedWorker,
            ChaosEvent::Burst,
        ] {
            assert!(
                evs.contains(&kind),
                "200 events must include {kind:?} at least once"
            );
        }
        let clean = evs.iter().filter(|e| **e == ChaosEvent::Clean).count();
        assert!(clean > 80, "the majority of traffic stays clean");
    }
}
