//! Adaptive admission control: size the effective queue bound from
//! *observed* service times instead of a constant.
//!
//! The fixed [`crate::ServeConfig::queue_depth`] bound has the classic
//! failure mode: at small problem sizes it sheds traffic the workers
//! could easily absorb, at large sizes it admits a queue whose drain time
//! dwarfs any deadline. This controller closes the loop:
//!
//! * **Per-class service-time EWMAs** — each [`crate::SolveOp`] class
//!   keeps an exponentially weighted moving average (α = 1/8) of its
//!   completed jobs' service times, so a stream of `n = 64` solves and a
//!   stream of `n = 512` solves see different effective bounds.
//! * **Little's-law bound** — with `W` workers and a target queueing
//!   delay `T`, a job admitted at the back of a queue of length `L`
//!   expects to wait `L·s/W` where `s` is the class EWMA; the admit bound
//!   is therefore `W·T/s`, clamped to `[workers, queue_depth]` — the
//!   configured depth stays the hard cap.
//! * **CoDel-flavored sojourn window** — the controller tracks the
//!   *minimum* queue sojourn over a sliding window (4·T): if even the
//!   luckiest job of a window queued longer than the target, the overload
//!   is persistent, not a burst, and the brownout level steps up; a good
//!   window steps it back down. (Min-over-window is CoDel's insight:
//!   max or mean sojourn flags transient bursts a bounded queue absorbs
//!   fine.)
//! * **Priority-weighted shedding** — under load, `Low` jobs see half
//!   the bound and `Normal` three quarters of it, so paying traffic
//!   ([`crate::Priority::High`]) is the last to be shed; during an
//!   overloaded window the sub-`High` bounds halve again.
//! * **`retry_after` hint** — a shed computes the expected time for the
//!   backlog ahead of the caller to drain (`(L+1)·s/W`), monotone in the
//!   queue length, so well-behaved clients back off harder the deeper
//!   the overload.
//!
//! Everything is driven by caller-supplied nanosecond timestamps — no
//! clock reads, no sleeps — so the unit tests steer time directly and the
//! service layer converts from one `Instant` epoch.

use crate::Priority;

/// Number of [`crate::SolveOp`] service classes tracked.
pub(crate) const CLASSES: usize = 4;

/// EWMA smoothing: new = old + (sample − old)/8.
const EWMA_SHIFT: u32 = 3;

/// Brownout ceiling: Dd off → lattice level down → ABFT off.
pub(crate) const MAX_LEVEL: u8 = 3;

/// Admission decision for one submit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Enqueue the job.
    Admit,
    /// Shed it: the effective bound in force and the backlog-drain
    /// estimate to surface as [`crate::Rejection::Overloaded`].
    Shed {
        /// The bound the queue length met or exceeded.
        bound: usize,
        /// Expected nanoseconds until the backlog ahead of a resubmit
        /// has drained.
        retry_after_ns: u64,
    },
}

/// The controller. One per service, behind the service's queue lock
/// discipline (the service wraps it in a `Mutex`); all methods take
/// `now_ns`, a monotone nanosecond timestamp from an arbitrary epoch.
#[derive(Debug)]
pub(crate) struct Controller {
    workers: u64,
    /// Hard cap: the configured queue depth.
    cap: usize,
    /// Target queueing delay in ns; `0` = adaptive sizing off (the cap
    /// is the bound, as in the fixed-depth service).
    target_ns: u64,
    /// Per-class service-time EWMAs; `0` = no completions seen yet.
    ewma_ns: [u64; CLASSES],
    /// Cross-class EWMA, the fallback for a class with no history.
    any_ewma_ns: u64,
    /// End of the current sojourn window.
    window_end_ns: u64,
    /// Minimum sojourn observed in the current window.
    window_min_ns: Option<u64>,
    /// Whether the brownout ladder may engage (service config).
    brownout: bool,
    /// Current brownout level, `0..=MAX_LEVEL`.
    level: u8,
    /// `true` while the last completed window was bad (min sojourn over
    /// target) — the "sustained overload" latch the priority weights
    /// sharpen on.
    overloaded: bool,
}

impl Controller {
    pub(crate) fn new(workers: usize, cap: usize, target_ns: u64, brownout: bool) -> Self {
        Controller {
            workers: workers.max(1) as u64,
            cap: cap.max(1),
            target_ns,
            ewma_ns: [0; CLASSES],
            any_ewma_ns: 0,
            window_end_ns: 0,
            window_min_ns: None,
            brownout,
            level: 0,
            overloaded: false,
        }
    }

    /// The sliding-window length: 4 target delays (CoDel uses ~several
    /// RTTs for the same reason — one service time of jitter must not
    /// flip the verdict).
    fn window_ns(&self) -> u64 {
        (self.target_ns * 4).max(1_000_000)
    }

    /// The service-time estimate for `class`: its own EWMA, the
    /// cross-class EWMA, or `None` before any completion.
    fn service_estimate(&self, class: usize) -> Option<u64> {
        let own = self.ewma_ns[class.min(CLASSES - 1)];
        if own > 0 {
            Some(own)
        } else if self.any_ewma_ns > 0 {
            Some(self.any_ewma_ns)
        } else {
            None
        }
    }

    /// The effective admit bound for `class` at `priority`.
    pub(crate) fn bound(&self, class: usize, priority: Priority) -> usize {
        if self.target_ns == 0 {
            return self.cap;
        }
        let Some(s) = self.service_estimate(class) else {
            // Cold start: no history to size from, keep the classic cap.
            return self.cap;
        };
        // Little's law: W workers drain W·T/s jobs within the target.
        let base = ((self.workers * self.target_ns) / s.max(1)) as usize;
        let base = base.clamp(self.workers as usize, self.cap);
        // Priority weights: High keeps the full bound; Normal and Low
        // shed earlier, and earlier still while the sojourn window says
        // the overload is sustained.
        let scaled = match priority {
            Priority::High => base,
            Priority::Normal => base * 3 / 4,
            Priority::Low => base / 2,
        };
        let scaled = if self.overloaded && priority != Priority::High {
            scaled / 2
        } else {
            scaled
        };
        scaled.max(1)
    }

    /// Admission check for a submit finding `queue_len` jobs already
    /// queued. Never blocks; a `Shed` carries the bound and the
    /// backlog-drain `retry_after` estimate.
    pub(crate) fn admit(
        &mut self,
        class: usize,
        priority: Priority,
        queue_len: usize,
        now_ns: u64,
    ) -> Verdict {
        self.roll_window(now_ns);
        let bound = self.bound(class, priority);
        if queue_len < bound {
            return Verdict::Admit;
        }
        Verdict::Shed {
            bound,
            retry_after_ns: self.retry_after_ns(class, queue_len),
        }
    }

    /// Expected ns for the backlog ahead of a resubmit to drain:
    /// `(L+1)` jobs at the class service estimate across the workers.
    /// Monotone in `queue_len` for a fixed estimate, so callers under a
    /// deepening overload are told to back off harder.
    fn retry_after_ns(&self, class: usize, queue_len: usize) -> u64 {
        let s = self
            .service_estimate(class)
            .unwrap_or_else(|| self.target_ns.max(1_000_000));
        (queue_len as u64 + 1) * s / self.workers
    }

    /// Records the queue sojourn of a job a worker just dequeued, and
    /// rolls the CoDel window.
    pub(crate) fn note_sojourn(&mut self, sojourn_ns: u64, now_ns: u64) {
        self.window_min_ns = Some(match self.window_min_ns {
            Some(m) => m.min(sojourn_ns),
            None => sojourn_ns,
        });
        self.roll_window(now_ns);
    }

    /// Closes the window if it has elapsed: a window whose *minimum*
    /// sojourn exceeded the target is sustained overload (level up); a
    /// window with an under-target minimum is recovery (level down).
    fn roll_window(&mut self, now_ns: u64) {
        if self.target_ns == 0 {
            return;
        }
        if self.window_end_ns == 0 {
            self.window_end_ns = now_ns + self.window_ns();
            return;
        }
        if now_ns < self.window_end_ns {
            return;
        }
        match self.window_min_ns.take() {
            Some(min) if min > self.target_ns => {
                self.overloaded = true;
                if self.brownout {
                    self.level = (self.level + 1).min(MAX_LEVEL);
                }
            }
            Some(_) => {
                self.overloaded = false;
                self.level = self.level.saturating_sub(1);
            }
            // An idle window (no dequeues) says nothing about overload;
            // decay toward full quality.
            None => {
                self.overloaded = false;
                self.level = self.level.saturating_sub(1);
            }
        }
        self.window_end_ns = now_ns + self.window_ns();
    }

    /// Folds a completed job's service time into its class EWMA.
    pub(crate) fn note_service(&mut self, class: usize, service_ns: u64) {
        let service_ns = service_ns.max(1);
        for slot in [
            &mut self.ewma_ns[class.min(CLASSES - 1)],
            &mut self.any_ewma_ns,
        ] {
            if *slot == 0 {
                *slot = service_ns;
            } else {
                let delta = service_ns as i64 - *slot as i64;
                *slot = (*slot as i64 + (delta >> EWMA_SHIFT)) as u64;
            }
        }
    }

    /// Current brownout level (`0` = full quality).
    pub(crate) fn level(&self) -> u8 {
        self.level
    }

    /// `true` while the last completed sojourn window was bad.
    #[cfg(test)]
    pub(crate) fn is_overloaded(&self) -> bool {
        self.overloaded
    }

    /// The class EWMA in ns (tests).
    #[cfg(test)]
    pub(crate) fn ewma(&self, class: usize) -> u64 {
        self.ewma_ns[class.min(CLASSES - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn ewma_converges_to_a_step_change_in_service_time() {
        let mut c = Controller::new(4, 64, 20 * MS, true);
        for _ in 0..64 {
            c.note_service(0, 2 * MS);
        }
        let settled = c.ewma(0);
        assert!(
            (settled as i64 - 2 * MS as i64).unsigned_abs() < MS / 4,
            "EWMA settles near the true service time, got {settled}"
        );
        // Service time steps 2ms → 8ms: the EWMA must cross 6ms within a
        // few time constants (α = 1/8 → ~63% of the gap per 8 samples).
        for _ in 0..32 {
            c.note_service(0, 8 * MS);
        }
        assert!(
            c.ewma(0) > 6 * MS,
            "EWMA tracks the step within 32 samples, got {}",
            c.ewma(0)
        );
        // The other classes were never touched...
        assert_eq!(c.ewma(1), 0);
        // ...but the cross-class fallback covers them.
        assert!(c.service_estimate(1).is_some());
    }

    #[test]
    fn bound_follows_littles_law_and_respects_the_cap() {
        let mut c = Controller::new(4, 64, 20 * MS, true);
        // Cold start: no history, the configured cap holds.
        assert_eq!(c.bound(0, Priority::High), 64);
        // 2ms service, 20ms target, 4 workers → 40 jobs clear in target.
        for _ in 0..64 {
            c.note_service(0, 2 * MS);
        }
        let b = c.bound(0, Priority::High);
        assert!((38..=42).contains(&b), "Little's-law bound, got {b}");
        // Slow class: 80ms service → W·T/s = 1, clamped up to workers.
        for _ in 0..64 {
            c.note_service(1, 80 * MS);
        }
        assert_eq!(c.bound(1, Priority::High), 4);
        // The cap is a ceiling: 0.1ms service would allow 800.
        for _ in 0..64 {
            c.note_service(2, MS / 10);
        }
        assert_eq!(c.bound(2, Priority::High), 64);
        // Priority weights shed Low first.
        assert!(c.bound(0, Priority::Low) < c.bound(0, Priority::Normal));
        assert!(c.bound(0, Priority::Normal) < c.bound(0, Priority::High));
    }

    #[test]
    fn sojourn_window_sheds_on_min_not_max() {
        let mut c = Controller::new(2, 64, 10 * MS, true);
        for _ in 0..16 {
            c.note_service(0, 2 * MS);
        }
        let mut now = 0;
        // Window 1: one terrible sojourn amid fine ones — a burst, the
        // *minimum* stays low, no brownout. (The inner loops advance by
        // less than a window, so only the explicit jump rolls it.)
        c.note_sojourn(0, now); // opens the window
        for i in 0..10 {
            now += 2 * MS;
            let sojourn = if i == 5 { 500 * MS } else { MS };
            c.note_sojourn(sojourn, now);
        }
        now += c.window_ns();
        c.note_sojourn(MS, now); // rolls the window
        assert_eq!(c.level(), 0, "a burst must not trip brownout");
        assert!(!c.is_overloaded());
        // Windows 2..: every sojourn over target — sustained overload,
        // the level walks up to the ceiling one window at a time.
        for expect_level in 1..=MAX_LEVEL {
            for _ in 0..10 {
                now += 2 * MS;
                c.note_sojourn(40 * MS, now);
            }
            now += c.window_ns();
            c.note_sojourn(40 * MS, now);
            assert_eq!(c.level(), expect_level);
        }
        assert!(c.is_overloaded());
        now += c.window_ns();
        c.note_sojourn(40 * MS, now);
        assert_eq!(c.level(), MAX_LEVEL, "level is capped");
        // Recovery: good windows walk it back down.
        for expect_level in (0..MAX_LEVEL).rev() {
            for _ in 0..10 {
                now += 2 * MS;
                c.note_sojourn(MS, now);
            }
            now += c.window_ns();
            c.note_sojourn(MS, now);
            assert_eq!(c.level(), expect_level);
        }
        assert!(!c.is_overloaded());
    }

    #[test]
    fn overloaded_windows_halve_sub_high_bounds() {
        let mut c = Controller::new(4, 64, 10 * MS, true);
        for _ in 0..32 {
            c.note_service(0, MS);
        }
        let calm_low = c.bound(0, Priority::Low);
        let calm_high = c.bound(0, Priority::High);
        // Drive one bad window.
        let mut now = 0;
        c.note_sojourn(50 * MS, now);
        now += c.window_ns();
        c.note_sojourn(50 * MS, now);
        assert!(c.is_overloaded());
        assert!(c.bound(0, Priority::Low) <= calm_low / 2);
        assert_eq!(
            c.bound(0, Priority::High),
            calm_high,
            "High priority keeps the full bound under sustained overload"
        );
    }

    #[test]
    fn retry_after_is_monotone_under_step_function_load() {
        let mut c = Controller::new(2, 8, 5 * MS, true);
        for _ in 0..32 {
            c.note_service(0, 4 * MS);
        }
        // Step the offered queue length up; every shed's retry_after
        // must be ≥ the previous one.
        let mut last = 0;
        let mut now = 0;
        for queue_len in [8, 9, 12, 20, 33, 64] {
            now += MS;
            match c.admit(0, Priority::Normal, queue_len, now) {
                Verdict::Shed { retry_after_ns, .. } => {
                    assert!(
                        retry_after_ns >= last,
                        "retry_after must grow with the backlog \
                         ({retry_after_ns} < {last} at len {queue_len})"
                    );
                    last = retry_after_ns;
                }
                Verdict::Admit => panic!("queue_len {queue_len} must shed"),
            }
        }
        // And the hint is the Little's-law drain estimate: (L+1)·s/W.
        let expect = (64 + 1) * c.ewma(0) / 2;
        assert_eq!(last, expect);
    }

    #[test]
    fn fixed_depth_mode_keeps_the_classic_contract() {
        let mut c = Controller::new(2, 3, 0, true);
        for _ in 0..32 {
            c.note_service(0, 100 * MS); // would shrink an adaptive bound
        }
        assert_eq!(c.bound(0, Priority::Low), 3, "no target: cap governs");
        assert_eq!(c.admit(0, Priority::Low, 2, 0), Verdict::Admit);
        match c.admit(0, Priority::High, 3, 0) {
            Verdict::Shed {
                bound,
                retry_after_ns,
            } => {
                assert_eq!(bound, 3);
                assert!(retry_after_ns > 0, "hint still computed from EWMA");
            }
            Verdict::Admit => panic!("at the cap, must shed"),
        }
        // Sojourn windows never brown out without a target.
        c.note_sojourn(1_000 * MS, 0);
        c.note_sojourn(1_000 * MS, u64::MAX / 2);
        assert_eq!(c.level(), 0);
    }
}
