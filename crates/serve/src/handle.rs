//! Job completion handle — a blocking future that is also a
//! [`std::future::Future`].

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use la_core::cancel::CancelToken;
use la_lapack::Lattice;

use crate::{Rejection, SolveOutput};

/// The slot a worker fulfills and a caller drains.
struct Slot<T: Lattice> {
    result: Option<Result<SolveOutput<T>, Rejection>>,
    waker: Option<Waker>,
}

/// Shared completion state between the service and the handle.
pub(crate) struct Shared<T: Lattice> {
    slot: Mutex<Slot<T>>,
    cv: Condvar,
}

impl<T: Lattice> Shared<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Shared {
            slot: Mutex::new(Slot {
                result: None,
                waker: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Delivers the job's outcome: wakes blocking waiters and any parked
    /// async waker. Second fulfillment is ignored (first wins — e.g. a
    /// drain racing the worker that already responded).
    pub(crate) fn fulfill(&self, r: Result<SolveOutput<T>, Rejection>) {
        let waker = {
            let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
            if slot.result.is_some() {
                return;
            }
            slot.result = Some(r);
            slot.waker.take()
        };
        self.cv.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Completion handle for one submitted job.
///
/// Consume it with blocking [`JobHandle::wait`] / [`JobHandle::wait_for`],
/// or `.await` it — the handle implements [`Future`] directly (the worker
/// wakes the stored waker on fulfillment), so it drops into any executor
/// without the service carrying one. [`JobHandle::cancel`] requests
/// cooperative cancellation of the job wherever it is (queued or at the
/// next panel checkpoint).
pub struct JobHandle<T: Lattice> {
    pub(crate) shared: Arc<Shared<T>>,
    pub(crate) token: CancelToken,
}

impl<T: Lattice> JobHandle<T> {
    /// Requests cancellation: a queued job is rejected when it reaches a
    /// worker; an in-flight factorization abandons at its next panel
    /// checkpoint. The outcome becomes [`Rejection::DeadlineExceeded`].
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// The job's cancel token (cloneable; share it to gang-cancel).
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Blocks until the job completes and returns its outcome.
    pub fn wait(self) -> Result<SolveOutput<T>, Rejection> {
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.result.take() {
                return r;
            }
            slot = self.shared.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks up to `timeout` for completion; `Err(self)` gives the
    /// handle back on timeout so the caller can keep waiting or cancel.
    pub fn wait_for(self, timeout: Duration) -> Result<Result<SolveOutput<T>, Rejection>, Self> {
        let deadline = std::time::Instant::now() + timeout;
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(r) = slot.result.take() {
                    return Ok(r);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    break;
                }
                let (s, _) = self
                    .shared
                    .cv
                    .wait_timeout(slot, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                slot = s;
            }
        }
        Err(self)
    }

    /// Non-blocking probe: the outcome if the job has completed.
    pub fn try_take(&self) -> Option<Result<SolveOutput<T>, Rejection>> {
        self.shared
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .result
            .take()
    }
}

impl<T: Lattice> Future for JobHandle<T> {
    type Output = Result<SolveOutput<T>, Rejection>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        match slot.result.take() {
            Some(r) => Poll::Ready(r),
            None => {
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

impl<T: Lattice> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let done = self
            .shared
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .result
            .is_some();
        f.debug_struct("JobHandle")
            .field("completed", &done)
            .field("cancelled", &self.token.is_cancelled())
            .finish()
    }
}
