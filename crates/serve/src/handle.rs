//! Job completion handle — a blocking future that is also a
//! [`std::future::Future`].

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use la_core::cancel::CancelToken;
use la_lapack::Lattice;

use crate::{Rejection, SolveOutput};

/// The slot a worker fulfills and a caller drains.
struct Slot<T: Lattice> {
    result: Option<Result<SolveOutput<T>, Rejection>>,
    waker: Option<Waker>,
}

/// Shared completion state between the service and the handle.
pub(crate) struct Shared<T: Lattice> {
    slot: Mutex<Slot<T>>,
    cv: Condvar,
}

impl<T: Lattice> Shared<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Shared {
            slot: Mutex::new(Slot {
                result: None,
                waker: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Delivers the job's outcome: wakes blocking waiters and any parked
    /// async waker. Second fulfillment is ignored (first wins — e.g. a
    /// drain, or the watchdog's stage-2 `Stuck`, racing the worker that
    /// already responded). Returns `true` when this call won — the
    /// caller's outcome is the one the waiter sees, so only the winner
    /// should record stats for the job.
    pub(crate) fn fulfill(&self, r: Result<SolveOutput<T>, Rejection>) -> bool {
        let waker = {
            let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
            if slot.result.is_some() {
                return false;
            }
            slot.result = Some(r);
            slot.waker.take()
        };
        self.cv.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
        true
    }

    /// Test probe: the stored outcome, if any (crate-internal tests).
    #[cfg(test)]
    pub(crate) fn try_take_test(&self) -> Option<Result<SolveOutput<T>, Rejection>> {
        self.slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .result
            .take()
    }
}

/// Completion handle for one submitted job.
///
/// Consume it with blocking [`JobHandle::wait`] / [`JobHandle::wait_for`],
/// or `.await` it — the handle implements [`Future`] directly (the worker
/// wakes the stored waker on fulfillment), so it drops into any executor
/// without the service carrying one. [`JobHandle::cancel`] requests
/// cooperative cancellation of the job wherever it is (queued or at the
/// next panel checkpoint).
pub struct JobHandle<T: Lattice> {
    pub(crate) shared: Arc<Shared<T>>,
    pub(crate) token: CancelToken,
}

impl<T: Lattice> JobHandle<T> {
    /// Requests cancellation: a queued job is rejected when it reaches a
    /// worker; an in-flight factorization abandons at its next panel
    /// checkpoint. The outcome becomes [`Rejection::DeadlineExceeded`].
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// The job's cancel token (cloneable; share it to gang-cancel).
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Blocks until the job completes and returns its outcome.
    pub fn wait(self) -> Result<SolveOutput<T>, Rejection> {
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.result.take() {
                return r;
            }
            slot = self.shared.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks up to `timeout` for completion; `Err(self)` gives the
    /// handle back on timeout so the caller can keep waiting or cancel.
    pub fn wait_for(self, timeout: Duration) -> Result<Result<SolveOutput<T>, Rejection>, Self> {
        let deadline = std::time::Instant::now() + timeout;
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(r) = slot.result.take() {
                    return Ok(r);
                }
                // Wait on the budget *remaining this iteration*: a
                // spurious wakeup, or an OS timed wait that rounds a
                // sub-millisecond request down and returns early, must
                // not restart the full timeout — and a zero remainder
                // must not wait at all.
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let (s, _) = self
                    .shared
                    .cv
                    .wait_timeout(slot, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                slot = s;
            }
            // Timed out — one last look under the still-held lock, so a
            // fulfillment racing the deadline is delivered, not dropped.
            if let Some(r) = slot.result.take() {
                return Ok(r);
            }
        }
        Err(self)
    }

    /// Non-blocking probe: the outcome if the job has completed.
    pub fn try_take(&self) -> Option<Result<SolveOutput<T>, Rejection>> {
        self.shared
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .result
            .take()
    }
}

impl<T: Lattice> Future for JobHandle<T> {
    type Output = Result<SolveOutput<T>, Rejection>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        match slot.result.take() {
            Some(r) => Poll::Ready(r),
            None => {
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

impl<T: Lattice> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let done = self
            .shared
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .result
            .is_some();
        f.debug_struct("JobHandle")
            .field("completed", &done)
            .field("cancelled", &self.token.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending() -> JobHandle<f64> {
        JobHandle {
            shared: Shared::new(),
            token: CancelToken::new(),
        }
    }

    #[test]
    fn zero_duration_wait_times_out_without_waiting() {
        // Regression: the remaining-budget computation must treat an
        // already-expired deadline as "don't wait", not underflow or
        // block on a 0-length OS wait.
        let h = pending();
        let t0 = std::time::Instant::now();
        let h = match h.wait_for(Duration::ZERO) {
            Err(h) => h,
            Ok(r) => panic!("nothing was fulfilled, got {r:?}"),
        };
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "zero-duration wait must return promptly"
        );
        // And a fulfilled handle returns its result even at 0 budget.
        h.shared.fulfill(Err(Rejection::ShuttingDown));
        match h.wait_for(Duration::ZERO) {
            Ok(Err(Rejection::ShuttingDown)) => {}
            other => panic!("expected the stored result, got {other:?}"),
        }
    }

    #[test]
    fn sub_millisecond_timeouts_accumulate_to_the_deadline() {
        // Regression: sub-ms budgets used to be at the mercy of the OS
        // rounding the timed wait; the loop must re-derive the remainder
        // each iteration and eventually time out (not spin forever, not
        // return before a fulfillment that lands mid-wait).
        let h = pending();
        let shared = Arc::clone(&h.shared);
        let worker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            shared.fulfill(Err(Rejection::DeadlineExceeded));
        });
        let mut h = h;
        let mut outcome = None;
        for _ in 0..100_000 {
            match h.wait_for(Duration::from_micros(700)) {
                Ok(r) => {
                    outcome = Some(r);
                    break;
                }
                Err(back) => h = back,
            }
        }
        worker.join().unwrap();
        match outcome {
            Some(Err(Rejection::DeadlineExceeded)) => {}
            other => panic!("fulfillment must be delivered, got {other:?}"),
        }
    }
}
