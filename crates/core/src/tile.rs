//! Tile store for the task-graph factorizations — `TileMat`, a
//! tile-major copy of a column-major [`crate::Mat`]-shaped buffer.
//!
//! The PLASMA lineage of tiled algorithms (and the BLASFEO argument,
//! arXiv:1902.08115) wants each `nb × nb` block of the matrix contiguous
//! in memory: the packed BLAS-3 microkernels then read operands with unit
//! stride and a task touches exactly the cache lines of its own tiles.
//! `TileMat` provides that layout with explicit copy-in from and copy-out
//! to the LAPACK column-major convention, so the tiled factorizations can
//! slot in behind the existing `getrf`/`potrf`/`geqrf` signatures.
//!
//! **Design for out-of-core:** every tile is its own allocation, reached
//! only through [`TileMat::tile`] / [`TileMat::tile_mut`]. Nothing in the
//! dag runtime or the tiled algorithms assumes tiles are adjacent in
//! memory, which is exactly the property a future memory-mapped backing
//! store (tiles paged in from a file for n-beyond-RAM problems) needs.
//!
//! **Aliasing contract:** tiles are handed to concurrent dag tasks, so
//! the accessors take `&self` and are `unsafe`: the caller must guarantee
//! that no tile is written by one task while any other task reads or
//! writes it. The dag runtime's read/write dependency resolution
//! ([`crate::dag`]) is that guarantee — a task may only touch tiles it
//! declared, and the scheduler never runs two tasks with conflicting
//! declarations concurrently. The safe [`TileMat::tile_ref`] /
//! [`TileMat::tile_slice_mut`] variants cover serial (exclusively
//! borrowed) use.

use std::cell::UnsafeCell;

/// One `rows × cols` tile, column-major with `ld == rows`, in its own
/// allocation (see the module docs for why).
struct Tile<T> {
    data: UnsafeCell<Vec<T>>,
    rows: usize,
    cols: usize,
}

/// A tile-major matrix: an `m × n` column-major matrix cut into an
/// `mt × nt` grid of `nb × nb` tiles (edge tiles exactly sized, never
/// padded), each tile contiguous column-major.
///
/// Tile `(i, j)` covers rows `i·nb ..` and columns `j·nb ..` of the
/// original matrix and is addressed by the flat id `i + j·mt` — the same
/// id the dag builder uses as the tile's dependency-resource key (see
/// [`TileMat::tile_id`]).
pub struct TileMat<T> {
    tiles: Vec<Tile<T>>,
    m: usize,
    n: usize,
    nb: usize,
    mt: usize,
    nt: usize,
}

// SAFETY: `TileMat` is handed by reference to scoped dag workers, which
// access tiles through the raw accessors below. The dependency contract
// (module docs) makes every access to a given tile's `UnsafeCell`
// data-race-free; `T: Send` scalars carry no thread affinity.
unsafe impl<T: Send> Sync for TileMat<T> {}

impl<T: Copy + Default> TileMat<T> {
    /// Copies the `m × n` column-major matrix `a` (leading dimension
    /// `lda`) into a fresh tile-major store with tile order `nb`.
    pub fn from_col_major(m: usize, n: usize, a: &[T], lda: usize, nb: usize) -> Self {
        let nb = nb.max(1);
        let mt = m.div_ceil(nb).max(1);
        let nt = n.div_ceil(nb).max(1);
        let mut tiles = Vec::with_capacity(mt * nt);
        for j in 0..nt {
            for i in 0..mt {
                let rows = nb.min(m - (i * nb).min(m));
                let cols = nb.min(n - (j * nb).min(n));
                let mut data = vec![T::default(); rows * cols];
                for c in 0..cols {
                    let src = i * nb + (j * nb + c) * lda;
                    data[c * rows..(c + 1) * rows].copy_from_slice(&a[src..src + rows]);
                }
                tiles.push(Tile {
                    data: UnsafeCell::new(data),
                    rows,
                    cols,
                });
            }
        }
        // Column-major over tiles: tile (i, j) at index j*mt + i — but the
        // loop above pushed in exactly that order (j outer, i inner).
        TileMat {
            tiles,
            m,
            n,
            nb,
            mt,
            nt,
        }
    }

    /// Copies every tile back into the `m × n` column-major buffer `a`
    /// (leading dimension `lda`). Exact inverse of
    /// [`TileMat::from_col_major`]: a round trip is bitwise lossless.
    pub fn copy_out(&self, a: &mut [T], lda: usize) {
        for j in 0..self.nt {
            for i in 0..self.mt {
                let t = &self.tiles[i + j * self.mt];
                // SAFETY: `&self` with no concurrent dag running — the
                // copy-out happens after the graph has fully quiesced.
                let data = unsafe { &*t.data.get() };
                for c in 0..t.cols {
                    let dst = i * self.nb + (j * self.nb + c) * lda;
                    a[dst..dst + t.rows].copy_from_slice(&data[c * t.rows..(c + 1) * t.rows]);
                }
            }
        }
    }
}

impl<T> TileMat<T> {
    /// Matrix rows.
    pub fn m(&self) -> usize {
        self.m
    }
    /// Matrix columns.
    pub fn n(&self) -> usize {
        self.n
    }
    /// Tile order (edge tiles are smaller).
    pub fn nb(&self) -> usize {
        self.nb
    }
    /// Tile-grid rows.
    pub fn mt(&self) -> usize {
        self.mt
    }
    /// Tile-grid columns.
    pub fn nt(&self) -> usize {
        self.nt
    }
    /// Row count of the tiles in tile-row `i` (the last row may be short).
    pub fn tile_rows(&self, i: usize) -> usize {
        self.tiles[i].rows
    }
    /// Column count of the tiles in tile-column `j`.
    pub fn tile_cols(&self, j: usize) -> usize {
        self.tiles[j * self.mt].cols
    }

    /// The dependency-resource id of tile `(i, j)`: `i + j·mt`. Ids
    /// `mt·nt ..` are free for auxiliary resources (pivot vectors, panel
    /// workspaces) — see [`TileMat::resource_count`].
    pub fn tile_id(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.mt && j < self.nt);
        i + j * self.mt
    }

    /// Number of tile resource ids (`mt·nt`); auxiliary dag resources
    /// should be numbered from here up.
    pub fn resource_count(&self) -> usize {
        self.mt * self.nt
    }

    /// Immutable view of tile `(i, j)` for a concurrent dag task.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent writer of this tile for
    /// the lifetime of the returned slice (the dag dependency contract).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn tile(&self, i: usize, j: usize) -> &[T] {
        let t = &self.tiles[i + j * self.mt];
        &*t.data.get()
    }

    /// Mutable view of tile `(i, j)` for a concurrent dag task.
    ///
    /// # Safety
    /// The caller must guarantee exclusive access to this tile for the
    /// lifetime of the returned slice (the dag dependency contract).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn tile_mut(&self, i: usize, j: usize) -> &mut [T] {
        let t = &self.tiles[i + j * self.mt];
        &mut *t.data.get()
    }

    /// Safe immutable tile view (requires the whole store borrowed).
    pub fn tile_ref(&mut self, i: usize, j: usize) -> &[T] {
        let t = &self.tiles[i + j * self.mt];
        // SAFETY: `&mut self` guarantees exclusivity.
        unsafe { &*t.data.get() }
    }

    /// Safe mutable tile view (requires the whole store borrowed).
    pub fn tile_slice_mut(&mut self, i: usize, j: usize) -> &mut [T] {
        let t = &self.tiles[i + j * self.mt];
        // SAFETY: `&mut self` guarantees exclusivity.
        unsafe { &mut *t.data.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(m: usize, n: usize) -> Vec<f64> {
        (0..m * n).map(|k| k as f64 * 0.5 - 3.0).collect()
    }

    #[test]
    fn round_trip_is_bitwise_lossless() {
        for &(m, n, nb) in &[
            (7usize, 5usize, 3usize),
            (8, 8, 4),
            (1, 9, 4),
            (9, 1, 2),
            (6, 6, 8), // single tile larger than the matrix
            (13, 17, 5),
        ] {
            let a = fill(m, n);
            let t = TileMat::from_col_major(m, n, &a, m, nb);
            let mut back = vec![0.0f64; m * n];
            t.copy_out(&mut back, m);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "m={m} n={n} nb={nb}"
            );
        }
    }

    #[test]
    fn grid_shape_and_edge_tiles_are_exact() {
        let a = fill(10, 7);
        let t = TileMat::from_col_major(10, 7, &a, 10, 4);
        assert_eq!((t.mt(), t.nt()), (3, 2));
        assert_eq!(t.tile_rows(0), 4);
        assert_eq!(t.tile_rows(2), 2, "last tile row is exactly sized");
        assert_eq!(t.tile_cols(1), 3, "last tile column is exactly sized");
        assert_eq!(t.resource_count(), 6);
        assert_eq!(t.tile_id(2, 1), 2 + 3);
    }

    #[test]
    fn tile_contents_are_column_major_blocks() {
        let (m, n, nb) = (5usize, 5usize, 2usize);
        let a = fill(m, n);
        let mut t = TileMat::from_col_major(m, n, &a, m, nb);
        // Tile (1, 1) covers rows 2..4, cols 2..4.
        let tile = t.tile_ref(1, 1);
        assert_eq!(tile.len(), 4);
        assert_eq!(tile[0], a[2 + 2 * m]);
        assert_eq!(tile[1], a[3 + 2 * m]);
        assert_eq!(tile[2], a[2 + 3 * m]);
        assert_eq!(tile[3], a[3 + 3 * m]);
        // Mutation through the safe accessor lands in copy-out.
        t.tile_slice_mut(1, 1)[0] = 99.0;
        let mut back = vec![0.0; m * n];
        t.copy_out(&mut back, m);
        assert_eq!(back[2 + 2 * m], 99.0);
    }

    #[test]
    fn respects_leading_dimension_on_both_sides() {
        let (m, n, lda, nb) = (4usize, 3usize, 6usize, 2usize);
        let mut a = vec![f64::NAN; lda * n];
        for j in 0..n {
            for i in 0..m {
                a[i + j * lda] = (i * 10 + j) as f64;
            }
        }
        let t = TileMat::from_col_major(m, n, &a, lda, nb);
        let mut out = vec![0.0f64; lda * n];
        t.copy_out(&mut out, lda);
        for j in 0..n {
            for i in 0..m {
                assert_eq!(out[i + j * lda], (i * 10 + j) as f64);
            }
            for i in m..lda {
                assert_eq!(out[i + j * lda], 0.0, "beyond-m rows untouched by copy");
            }
        }
    }
}
