//! Complex number type used by the generic scalar layer.
//!
//! LAPACK90's generic interfaces cover `REAL`/`COMPLEX` in both precisions;
//! the offline crate set has no complex-number crate, so `Complex<T>` is
//! implemented here from scratch, including the numerically robust division
//! (Smith's algorithm, the analog of LAPACK's `xLADIV`) and a principal
//! square root, both of which the eigenvalue routines depend on.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::scalar::RealScalar;

/// A complex number over a real scalar `T` (`f32` or `f64`).
///
/// Layout matches the Fortran convention (`re` then `im`), so a column of
/// `Complex<T>` has the same memory layout as a Fortran `COMPLEX` array.
#[derive(Copy, Clone, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Single-precision complex, the analog of Fortran `COMPLEX(SP)`.
pub type C32 = Complex<f32>;
/// Double-precision complex, the analog of Fortran `COMPLEX(DP)`.
pub type C64 = Complex<f64>;

impl<T> Complex<T> {
    /// Creates a complex number from its real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }
}

impl<T: RealScalar> Complex<T> {
    /// The additive identity.
    #[inline(always)]
    pub fn zero() -> Self {
        Complex::new(T::zero(), T::zero())
    }

    /// The multiplicative identity.
    #[inline(always)]
    pub fn one() -> Self {
        Complex::new(T::one(), T::zero())
    }

    /// The imaginary unit `i`.
    #[inline(always)]
    pub fn i() -> Self {
        Complex::new(T::zero(), T::one())
    }

    /// Embeds a real number.
    #[inline(always)]
    pub fn from_real(re: T) -> Self {
        Complex::new(re, T::zero())
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Modulus `|z|`, computed without intermediate overflow (like `xLAPY2`).
    #[inline]
    pub fn abs(self) -> T {
        self.re.hypot(self.im)
    }

    /// The cheap 1-norm modulus `|re| + |im|` (LAPACK's `CABS1`).
    #[inline(always)]
    pub fn abs1(self) -> T {
        self.re.rabs() + self.im.rabs()
    }

    /// Squared modulus `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> T {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, r: T) -> Self {
        Complex::new(self.re * r, self.im * r)
    }

    /// Divides by a real factor.
    #[inline(always)]
    pub fn unscale(self, r: T) -> Self {
        Complex::new(self.re / r, self.im / r)
    }

    /// Robust complex division via Smith's algorithm (the `xLADIV` analog).
    ///
    /// Avoids overflow/underflow in the intermediate products when the naive
    /// formula `(ac+bd, bc-ad)/(c²+d²)` would lose all accuracy.
    #[inline]
    pub fn ladiv(self, other: Self) -> Self {
        let (a, b, c, d) = (self.re, self.im, other.re, other.im);
        if d.rabs() <= c.rabs() {
            // |d| <= |c|: divide through by c.
            let r = d / c;
            let den = c + d * r;
            Complex::new((a + b * r) / den, (b - a * r) / den)
        } else {
            // |c| < |d|: divide through by d.
            let r = c / d;
            let den = c * r + d;
            Complex::new((a * r + b) / den, (b * r - a) / den)
        }
    }

    /// Reciprocal `1/z`, computed robustly.
    #[inline]
    pub fn recip(self) -> Self {
        Complex::one().ladiv(self)
    }

    /// Principal square root.
    ///
    /// Uses the half-angle identities with `hypot` so it is robust for
    /// arguments near the negative real axis and for large magnitudes.
    pub fn sqrt(self) -> Self {
        if self.im == T::zero() {
            if self.re >= T::zero() {
                Complex::new(self.re.sqrt_r(), T::zero())
            } else {
                Complex::new(T::zero(), (-self.re).sqrt_r())
            }
        } else {
            let m = self.abs();
            let two = T::one() + T::one();
            let u = ((m + self.re) / two).sqrt_r();
            let v = ((m - self.re) / two).sqrt_r();
            if self.im >= T::zero() {
                Complex::new(u, v)
            } else {
                Complex::new(u, -v)
            }
        }
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite_r() && self.im.is_finite_r()
    }

    /// True when either part is NaN.
    #[inline]
    #[allow(clippy::eq_op)] // x != x is the generic NaN test
    pub fn is_nan(self) -> bool {
        self.re != self.re || self.im != self.im
    }
}

impl<T: RealScalar> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: RealScalar> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: RealScalar> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: RealScalar> Div for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        self.ladiv(rhs)
    }
}

impl<T: RealScalar> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Complex::new(-self.re, -self.im)
    }
}

impl<T: RealScalar> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<T: RealScalar> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<T: RealScalar> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: RealScalar> DivAssign for Complex<T> {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<T: RealScalar> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex::zero(), |a, b| a + b)
    }
}

impl<T: RealScalar> Product for Complex<T> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex::one(), |a, b| a * b)
    }
}

impl<T: RealScalar> From<T> for Complex<T> {
    #[inline(always)]
    fn from(re: T) -> Self {
        Complex::from_real(re)
    }
}

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.re, self.im)
    }
}

impl<T: RealScalar + fmt::Display> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im < T::zero() {
            write!(f, "{}-{}i", self.re, -self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn arithmetic_basics() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -4.0);
        assert_eq!(a + b, C64::new(4.0, -2.0));
        assert_eq!(a - b, C64::new(-2.0, 6.0));
        assert_eq!(a * b, C64::new(11.0, 2.0));
        assert!(close(a / b, C64::new(-0.2, 0.4), 1e-15));
        assert_eq!(-a, C64::new(-1.0, -2.0));
    }

    #[test]
    fn conj_and_abs() {
        let a = C64::new(3.0, -4.0);
        assert_eq!(a.conj(), C64::new(3.0, 4.0));
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.abs1(), 7.0);
        assert_eq!(a.norm_sqr(), 25.0);
    }

    #[test]
    fn division_is_robust_near_extremes() {
        // Naive division of these overflows the denominator c^2 + d^2.
        let big = 1.0e300;
        let a = C64::new(big, big);
        let b = C64::new(big, big * 0.5);
        let q = a / b;
        assert!(q.is_finite());
        assert!(close(q * b, a, 1e285));
    }

    #[test]
    fn recip_roundtrip() {
        let a = C64::new(-2.5, 7.0);
        assert!(close(a.recip() * a, C64::one(), 1e-14));
    }

    #[test]
    fn sqrt_principal_branch() {
        let cases = [
            C64::new(4.0, 0.0),
            C64::new(-4.0, 0.0),
            C64::new(0.0, 2.0),
            C64::new(3.0, -4.0),
            C64::new(-5.0, 12.0),
        ];
        for &z in &cases {
            let s = z.sqrt();
            assert!(close(s * s, z, 1e-12), "sqrt({z:?}) = {s:?}");
            // Principal branch: nonnegative real part.
            assert!(s.re >= 0.0);
        }
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", C64::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", C64::new(1.0, 2.0)), "1+2i");
    }
}
