//! Compact matrix storage schemes used by the band/packed drivers
//! (`LA_GBSV`, `LA_PBSV`, `LA_PPSV`, `LA_SPSV`, `LA_SBEV`, …).
//!
//! Layouts follow LAPACK's documented conventions exactly, so the buffers
//! can be handed to the Fortran-convention routines in `la-lapack`
//! unchanged.

use crate::mat::Mat;
use crate::scalar::Scalar;
use crate::Uplo;

/// General band matrix in LAPACK band storage.
///
/// Element `a(i, j)` (0-based) with `j - ku <= i <= j + kl` is stored at
/// `data[ioff + i - j + j*ldab]` where `ioff = ku + extra`. When the matrix
/// will be LU-factorized (`gbtrf`), `extra = kl` additional superdiagonal
/// rows of fill-in space are required; [`BandMat::zeros_for_factor`]
/// allocates them.
#[derive(Clone, Debug, PartialEq)]
pub struct BandMat<T> {
    data: Vec<T>,
    m: usize,
    n: usize,
    kl: usize,
    ku: usize,
    /// Rows of the storage array (`LDAB`).
    ldab: usize,
    /// Row offset of the main diagonal within a storage column.
    ioff: usize,
}

impl<T: Scalar> BandMat<T> {
    /// An `m × n` band matrix with `kl` subdiagonals and `ku`
    /// superdiagonals, zero-initialized, without factorization fill space.
    pub fn zeros(m: usize, n: usize, kl: usize, ku: usize) -> Self {
        let ldab = kl + ku + 1;
        BandMat {
            data: vec![T::zero(); ldab * n],
            m,
            n,
            kl,
            ku,
            ldab,
            ioff: ku,
        }
    }

    /// Like [`BandMat::zeros`] but with the extra `kl` rows `gbtrf` needs
    /// for pivoting fill-in (`LDAB = 2*KL + KU + 1`).
    pub fn zeros_for_factor(m: usize, n: usize, kl: usize, ku: usize) -> Self {
        let ldab = 2 * kl + ku + 1;
        BandMat {
            data: vec![T::zero(); ldab * n],
            m,
            n,
            kl,
            ku,
            ldab,
            ioff: kl + ku,
        }
    }

    /// Builds band storage from a dense matrix, keeping only the band.
    pub fn from_dense(a: &Mat<T>, kl: usize, ku: usize, for_factor: bool) -> Self {
        let (m, n) = a.shape();
        let mut b = if for_factor {
            Self::zeros_for_factor(m, n, kl, ku)
        } else {
            Self::zeros(m, n, kl, ku)
        };
        for j in 0..n {
            let lo = j.saturating_sub(ku);
            let hi = (j + kl + 1).min(m);
            for i in lo..hi {
                b.set(i, j, a[(i, j)]);
            }
        }
        b
    }

    /// Row count of the logical matrix.
    pub fn nrows(&self) -> usize {
        self.m
    }
    /// Column count of the logical matrix.
    pub fn ncols(&self) -> usize {
        self.n
    }
    /// Subdiagonal count.
    pub fn kl(&self) -> usize {
        self.kl
    }
    /// Superdiagonal count.
    pub fn ku(&self) -> usize {
        self.ku
    }
    /// Storage leading dimension (`LDAB`).
    pub fn ldab(&self) -> usize {
        self.ldab
    }
    /// True if allocated with factorization fill space.
    pub fn has_factor_space(&self) -> bool {
        self.ioff == self.kl + self.ku
    }

    /// Raw band-storage buffer (column-major, `ldab × n`).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
    /// Raw band-storage buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Logical element `(i, j)`; zero outside the band.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.m && j < self.n);
        if i + self.ku >= j && j + self.kl >= i {
            self.data[self.ioff + i - j + j * self.ldab]
        } else {
            T::zero()
        }
    }

    /// Sets logical element `(i, j)`.
    ///
    /// # Panics
    /// Panics if `(i, j)` lies outside the band.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.m && j < self.n, "index out of bounds");
        assert!(
            i + self.ku >= j && j + self.kl >= i,
            "({i},{j}) outside band kl={} ku={}",
            self.kl,
            self.ku
        );
        self.data[self.ioff + i - j + j * self.ldab] = v;
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> Mat<T> {
        Mat::from_fn(self.m, self.n, |i, j| self.get(i, j))
    }
}

/// Symmetric/Hermitian band matrix (`xSB`/`xHB`/`xPB` storage): only `kd`
/// diagonals of one triangle are kept, `LDAB = kd + 1`.
///
/// For `Uplo::Upper`, `a(i, j)` with `j-kd <= i <= j` lives at
/// `data[kd + i - j + j*(kd+1)]`; for `Uplo::Lower`, `a(i, j)` with
/// `j <= i <= j+kd` lives at `data[i - j + j*(kd+1)]`.
#[derive(Clone, Debug, PartialEq)]
pub struct SymBandMat<T> {
    data: Vec<T>,
    n: usize,
    kd: usize,
    uplo: Uplo,
}

impl<T: Scalar> SymBandMat<T> {
    /// An `n × n` symmetric band matrix with bandwidth `kd`, zeroed.
    pub fn zeros(n: usize, kd: usize, uplo: Uplo) -> Self {
        SymBandMat {
            data: vec![T::zero(); (kd + 1) * n],
            n,
            kd,
            uplo,
        }
    }

    /// Builds from a dense symmetric matrix, reading the `uplo` triangle.
    pub fn from_dense(a: &Mat<T>, kd: usize, uplo: Uplo) -> Self {
        assert!(a.is_square());
        let n = a.nrows();
        let mut b = Self::zeros(n, kd, uplo);
        for j in 0..n {
            match uplo {
                Uplo::Upper => {
                    for i in j.saturating_sub(kd)..=j {
                        b.set(i, j, a[(i, j)]);
                    }
                }
                Uplo::Lower => {
                    for i in j..(j + kd + 1).min(n) {
                        b.set(i, j, a[(i, j)]);
                    }
                }
            }
        }
        b
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }
    /// Bandwidth (number of off-diagonals stored).
    pub fn kd(&self) -> usize {
        self.kd
    }
    /// Which triangle is stored.
    pub fn uplo(&self) -> Uplo {
        self.uplo
    }
    /// Storage leading dimension (`kd + 1`).
    pub fn ldab(&self) -> usize {
        self.kd + 1
    }
    /// Raw buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
    /// Raw buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Stored element `(i, j)` of the chosen triangle; zero outside band.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.n && j < self.n);
        let ld = self.kd + 1;
        match self.uplo {
            Uplo::Upper => {
                if i <= j && i + self.kd >= j {
                    self.data[self.kd + i - j + j * ld]
                } else {
                    T::zero()
                }
            }
            Uplo::Lower => {
                if i >= j && i <= j + self.kd {
                    self.data[i - j + j * ld]
                } else {
                    T::zero()
                }
            }
        }
    }

    /// Sets element `(i, j)` (must lie in the stored triangle's band).
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.n && j < self.n);
        let ld = self.kd + 1;
        match self.uplo {
            Uplo::Upper => {
                assert!(i <= j && i + self.kd >= j, "outside stored band");
                self.data[self.kd + i - j + j * ld] = v;
            }
            Uplo::Lower => {
                assert!(i >= j && i <= j + self.kd, "outside stored band");
                self.data[i - j + j * ld] = v;
            }
        }
    }

    /// Expands to a dense symmetric (Hermitian for complex) matrix.
    pub fn to_dense_sym(&self) -> Mat<T> {
        Mat::from_fn(self.n, self.n, |i, j| {
            let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
            let v = match self.uplo {
                Uplo::Upper => self.get(lo, hi),
                Uplo::Lower => self.get(hi, lo),
            };
            if i <= j {
                match self.uplo {
                    Uplo::Upper => v,
                    Uplo::Lower => v.conj(),
                }
            } else {
                match self.uplo {
                    Uplo::Upper => v.conj(),
                    Uplo::Lower => v,
                }
            }
        })
    }
}

/// Packed triangular storage (`xSP`/`xHP`/`xPP`, `xTP`): one triangle of an
/// `n × n` matrix stored column by column in `n(n+1)/2` elements.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedMat<T> {
    data: Vec<T>,
    n: usize,
    uplo: Uplo,
}

impl<T: Scalar> PackedMat<T> {
    /// Zero-initialized packed matrix of order `n`.
    pub fn zeros(n: usize, uplo: Uplo) -> Self {
        PackedMat {
            data: vec![T::zero(); n * (n + 1) / 2],
            n,
            uplo,
        }
    }

    /// Packs the `uplo` triangle of a dense matrix.
    pub fn from_dense(a: &Mat<T>, uplo: Uplo) -> Self {
        assert!(a.is_square());
        let n = a.nrows();
        let mut p = Self::zeros(n, uplo);
        for j in 0..n {
            match uplo {
                Uplo::Upper => {
                    for i in 0..=j {
                        p.set(i, j, a[(i, j)]);
                    }
                }
                Uplo::Lower => {
                    for i in j..n {
                        p.set(i, j, a[(i, j)]);
                    }
                }
            }
        }
        p
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }
    /// Which triangle is stored.
    pub fn uplo(&self) -> Uplo {
        self.uplo
    }
    /// Raw packed buffer of length `n(n+1)/2`.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
    /// Raw packed buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        match self.uplo {
            Uplo::Upper => {
                debug_assert!(i <= j);
                i + j * (j + 1) / 2
            }
            Uplo::Lower => {
                debug_assert!(i >= j);
                i - j + j * (2 * self.n - j - 1) / 2 + j
            }
        }
    }

    /// Element `(i, j)` of the stored triangle.
    ///
    /// # Panics
    /// Panics if `(i, j)` lies in the other triangle.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.n && j < self.n);
        match self.uplo {
            Uplo::Upper => assert!(i <= j, "lower element of an upper-packed matrix"),
            Uplo::Lower => assert!(i >= j, "upper element of a lower-packed matrix"),
        }
        self.data[self.idx(i, j)]
    }

    /// Sets element `(i, j)` of the stored triangle.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.n && j < self.n);
        match self.uplo {
            Uplo::Upper => assert!(i <= j, "lower element of an upper-packed matrix"),
            Uplo::Lower => assert!(i >= j, "upper element of a lower-packed matrix"),
        }
        let k = self.idx(i, j);
        self.data[k] = v;
    }

    /// Expands to a dense symmetric (Hermitian for complex) matrix.
    pub fn to_dense_sym(&self) -> Mat<T> {
        Mat::from_fn(self.n, self.n, |i, j| match (self.uplo, i <= j) {
            (Uplo::Upper, true) => self.get(i, j),
            (Uplo::Upper, false) => self.get(j, i).conj(),
            (Uplo::Lower, false) => self.get(i, j),
            (Uplo::Lower, true) => self.get(j, i).conj(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    #[test]
    fn band_roundtrip() {
        let a: Mat<f64> = Mat::from_fn(5, 5, |i, j| {
            if i + 1 >= j && j + 2 >= i {
                (1 + i + 10 * j) as f64
            } else {
                0.0
            }
        });
        let b = BandMat::from_dense(&a, 2, 1, false);
        assert_eq!(b.to_dense(), a);
        let bf = BandMat::from_dense(&a, 2, 1, true);
        assert_eq!(bf.to_dense(), a);
        assert_eq!(bf.ldab(), 2 * 2 + 1 + 1);
    }

    #[test]
    fn band_get_outside_is_zero() {
        let b: BandMat<f64> = BandMat::zeros(4, 4, 1, 0);
        assert_eq!(b.get(0, 3), 0.0);
    }

    #[test]
    #[should_panic]
    fn band_set_outside_panics() {
        let mut b: BandMat<f64> = BandMat::zeros(4, 4, 1, 0);
        b.set(0, 3, 1.0);
    }

    #[test]
    fn sym_band_roundtrip_both_uplos() {
        let dense: Mat<f64> = Mat::from_fn(4, 4, |i, j| {
            if i.abs_diff(j) <= 1 {
                (1 + i + j) as f64
            } else {
                0.0
            }
        });
        for uplo in [Uplo::Upper, Uplo::Lower] {
            let sb = SymBandMat::from_dense(&dense, 1, uplo);
            assert_eq!(sb.to_dense_sym(), dense, "uplo={uplo:?}");
        }
    }

    #[test]
    fn packed_roundtrip_both_uplos() {
        let dense: Mat<f64> = Mat::from_fn(5, 5, |i, j| (1 + i + j) as f64);
        for uplo in [Uplo::Upper, Uplo::Lower] {
            let p = PackedMat::from_dense(&dense, uplo);
            assert_eq!(p.as_slice().len(), 15);
            assert_eq!(p.to_dense_sym(), dense, "uplo={uplo:?}");
        }
    }

    #[test]
    fn packed_complex_hermitian_expansion() {
        use crate::complex::C64;
        let mut p = PackedMat::zeros(2, Uplo::Upper);
        p.set(0, 0, C64::new(1.0, 0.0));
        p.set(0, 1, C64::new(2.0, 3.0));
        p.set(1, 1, C64::new(4.0, 0.0));
        let d = p.to_dense_sym();
        assert_eq!(d[(1, 0)], C64::new(2.0, -3.0));
    }
}
