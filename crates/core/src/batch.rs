//! Batched-job dispatch — the work-stealing engine under the batched
//! BLAS/LAPACK entry points (`gemm_batch`, `gesv_batch`, `posv_batch`)
//! and the `la-serve` queue workers.
//!
//! The batch workload (BLASFEO, arXiv:1902.08115: many independent
//! small-to-medium problems) wants one pool of workers pulling jobs off a
//! shared queue, not one thread per job. This module provides exactly
//! that, with the robustness contract a serving layer needs:
//!
//! * **Work stealing** — items are handed out one at a time from a shared
//!   queue, so a worker that drew a large system does not stall siblings
//!   holding small ones.
//! * **Policy inheritance** — the scoped thread-local overrides of
//!   [`crate::tune`], [`crate::except`], [`crate::abft`], [`crate::probe`]
//!   and the [`crate::cancel`] token are captured on the *calling* thread
//!   and re-installed inside every worker, so a batch behaves exactly like
//!   a loop of sequential calls under the same scopes.
//! * **Panic isolation** — a job that panics is caught at the job
//!   boundary and recorded as [`crate::cancel::INFO_PANICKED`] (`-104`);
//!   the worker moves on to the next job and sibling jobs never notice.
//! * **Per-job fault scoping** — every job runs inside
//!   [`crate::abft::job_scope`], so a soft fault detected in one job
//!   surfaces as that job's `INFO = -102` and can never leak into a
//!   sibling that happens to run next on the same worker.
//! * **Cooperative cancellation** — a cancelled token (or passed
//!   deadline) makes not-yet-started jobs return
//!   [`crate::cancel::INFO_CANCELLED`] (`-103`) immediately, and
//!   in-flight factorizations abandon at their next panel checkpoint.
//! * **No oversubscription** — each worker registers with
//!   [`crate::tune::in_pool_worker`], so striped BLAS-3 opened *inside* a
//!   job divides the host cores by the worker count instead of
//!   multiplying with it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::{abft, cancel, except, probe, tune};

/// `INFO` code recorded for a job whose computation returned clean but
/// left a parked ABFT soft fault behind (the batched analog of the
/// `erinfo` drain): the job's answer failed checksum verification and was
/// not repaired.
pub const INFO_SOFT_FAULT: i32 = -102;

/// Runs `job` once per item of `items` across a pool of work-stealing
/// workers and returns one raw `INFO` code per item, position-matched.
///
/// `job(index, item)` computes item `index` in place and returns its raw
/// `INFO` (the usual LAPACK convention plus the extension codes). The
/// dispatcher additionally yields, per item:
///
/// * [`cancel::INFO_CANCELLED`] (`-103`) — the inherited cancel token was
///   already tripped when the item came up (the job never ran), or the
///   job observed it at a checkpoint and returned the code itself;
/// * [`cancel::INFO_PANICKED`] (`-104`) — the job panicked; the panic was
///   swallowed at the job boundary and the item's output is unspecified;
/// * [`INFO_SOFT_FAULT`] (`-102`) — the job returned `0` but parked an
///   unrepaired ABFT soft fault.
///
/// The worker count is the [`tune`] thread budget clamped to the item
/// count; with a budget of 1 (or a single item) everything runs inline on
/// the calling thread — same contract, no spawning. Workers inherit the
/// calling thread's scoped tune/except/abft/probe overrides and cancel
/// token, and register as pool siblings so nested striped BLAS-3 does not
/// oversubscribe the host.
pub fn run_batch<T, F>(items: &mut [T], job: F) -> Vec<i32>
where
    T: Send,
    F: Fn(usize, &mut T) -> i32 + Sync,
{
    let n = items.len();
    let mut infos = vec![0i32; n];
    if n == 0 {
        return infos;
    }
    let workers = tune::current().threads().min(n).max(1);

    // One item, fully isolated: cancel gate, panic boundary, fault scope.
    let run_one = |idx: usize, item: &mut T, slot: &mut i32| {
        *slot = abft::job_scope(|| {
            if cancel::cancelled() {
                return cancel::INFO_CANCELLED;
            }
            match catch_unwind(AssertUnwindSafe(|| job(idx, item))) {
                Ok(0) => match abft::take_pending() {
                    Some(_) => INFO_SOFT_FAULT,
                    None => 0,
                },
                Ok(info) => info,
                Err(_) => cancel::INFO_PANICKED,
            }
        });
    };

    if workers == 1 {
        // Inline path: the caller's scoped policies are already in effect.
        for (idx, (item, slot)) in items.iter_mut().zip(infos.iter_mut()).enumerate() {
            run_one(idx, item, slot);
        }
        return infos;
    }

    // Capture the calling thread's scoped state; thread-local overrides do
    // not cross into spawned workers on their own.
    let cfg = tune::current();
    let fp = except::policy();
    let ap = abft::policy();
    let pp = probe::policy();
    let token = cancel::current();
    let beat = cancel::heartbeat();

    let queue = Mutex::new(items.iter_mut().zip(infos.iter_mut()).enumerate());
    std::thread::scope(|s| {
        for _ in 0..workers {
            let queue = &queue;
            let run_one = &run_one;
            let token = token.clone();
            let beat = beat.clone();
            s.spawn(move || {
                let drain = || {
                    tune::in_pool_worker(workers, || loop {
                        let next = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                        let Some((idx, (item, slot))) = next else {
                            return;
                        };
                        run_one(idx, item, slot);
                    })
                };
                let with_cancel = || match token.clone() {
                    Some(t) => cancel::with_token(t, drain),
                    None => drain(),
                };
                // Re-install the caller's heartbeat too, so a watchdog
                // sampling it keeps seeing beats while the batch fans out.
                let with_cancel = || match beat.clone() {
                    Some(h) => cancel::with_heartbeat(h, with_cancel),
                    None => with_cancel(),
                };
                tune::with(cfg, || {
                    except::with_policy(fp, || {
                        abft::with_policy(ap, || probe::with_policy(pp, with_cancel))
                    })
                });
            });
        }
    });
    infos
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Keeps expected job panics from spraying the test output: the
    /// default hook prints every panic, and these tests panic on purpose.
    fn quiet_expected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info.payload().downcast_ref::<&str>().copied();
                if msg != Some("job 5 dies") {
                    prev(info);
                }
            }));
        });
    }

    fn wide() -> tune::TuneConfig {
        tune::TuneConfig {
            max_threads: 4,
            oversubscribe: true,
            ..tune::TuneConfig::defaults()
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let mut items: Vec<usize> = (0..37).collect();
        let infos = tune::with(wide(), || {
            run_batch(&mut items, |idx, item| {
                *item += idx; // item i becomes 2i
                0
            })
        });
        assert_eq!(infos, vec![0; 37]);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, 2 * i);
        }
    }

    #[test]
    fn panic_poisons_only_its_job() {
        quiet_expected_panics();
        let mut items: Vec<usize> = (0..16).collect();
        let infos = tune::with(wide(), || {
            run_batch(&mut items, |idx, item| {
                if idx == 5 {
                    panic!("job 5 dies");
                }
                *item = 100 + idx;
                0
            })
        });
        for (idx, info) in infos.iter().enumerate() {
            if idx == 5 {
                assert_eq!(*info, cancel::INFO_PANICKED);
            } else {
                assert_eq!(*info, 0, "sibling job {idx} must be unaffected");
                assert_eq!(items[idx], 100 + idx);
            }
        }
    }

    #[test]
    fn cancelled_token_short_circuits_remaining_jobs() {
        let token = cancel::CancelToken::new();
        token.cancel();
        let mut items = vec![0usize; 8];
        let infos = cancel::with_token(token, || {
            tune::with(wide(), || {
                run_batch(&mut items, |_, item| {
                    *item = 1;
                    0
                })
            })
        });
        assert_eq!(infos, vec![cancel::INFO_CANCELLED; 8]);
        assert_eq!(items, vec![0usize; 8], "cancelled jobs never ran");
    }

    #[test]
    fn workers_stamp_the_callers_heartbeat() {
        let hb = cancel::Heartbeat::new();
        let mut items = vec![(); 12];
        cancel::with_heartbeat(hb.clone(), || {
            tune::with(wide(), || run_batch(&mut items, |_, _| 0))
        });
        assert!(
            hb.beats() >= 12,
            "every item's cancel checkpoint stamps the inherited heartbeat \
             (saw {} beats for 12 items)",
            hb.beats()
        );
    }

    #[test]
    fn job_info_codes_come_back_position_matched() {
        let mut items: Vec<i32> = (0..10).collect();
        let infos = tune::with(wide(), || {
            run_batch(
                &mut items,
                |idx, _| if idx % 3 == 0 { idx as i32 + 1 } else { 0 },
            )
        });
        for (idx, info) in infos.iter().enumerate() {
            let want = if idx % 3 == 0 { idx as i32 + 1 } else { 0 };
            assert_eq!(*info, want);
        }
    }

    #[test]
    fn parked_soft_fault_becomes_minus_102_for_that_job_only() {
        let mut items = vec![(); 6];
        let infos = tune::with(wide(), || {
            run_batch(&mut items, |idx, _| {
                if idx == 2 {
                    abft::raise("gemm", 7); // detected, never repaired
                }
                0
            })
        });
        for (idx, info) in infos.iter().enumerate() {
            let want = if idx == 2 { INFO_SOFT_FAULT } else { 0 };
            assert_eq!(*info, want, "job {idx}");
        }
        assert_eq!(abft::take_pending(), None, "nothing leaks to the caller");
    }

    #[test]
    fn workers_inherit_scoped_overrides() {
        let seen = AtomicUsize::new(0);
        let mut items = vec![(); 8];
        let cfg = tune::TuneConfig {
            max_threads: 2,
            oversubscribe: true,
            nb_getrf: 17,
            ..tune::TuneConfig::defaults()
        };
        tune::with(cfg, || {
            abft::with_policy(abft::AbftPolicy::Verify, || {
                run_batch(&mut items, |_, _| {
                    if tune::current().nb_getrf == 17 && abft::policy() == abft::AbftPolicy::Verify
                    {
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                    0
                });
            })
        });
        assert_eq!(seen.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_blas_threads_are_clamped_inside_workers() {
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let cfg = tune::TuneConfig {
            max_threads: host.max(2),
            oversubscribe: false,
            ..tune::TuneConfig::defaults()
        };
        let workers = cfg.threads().clamp(1, 4);
        let max_seen = AtomicUsize::new(0);
        let mut items = vec![(); 4];
        tune::with(cfg, || {
            run_batch(&mut items, |_, _| {
                max_seen.fetch_max(tune::current().threads(), Ordering::Relaxed);
                0
            })
        });
        if workers > 1 {
            assert!(
                max_seen.load(Ordering::Relaxed) * workers <= host.max(workers),
                "worker-count × stripe-budget must not exceed host cores \
                 (saw {} per worker × {workers} workers on {host} cores)",
                max_seen.load(Ordering::Relaxed)
            );
        }
    }
}
