//! Double-double extended precision — the accuracy end of the lattice.
//!
//! [`Dd`] represents a value as an unevaluated sum `hi + lo` of two `f64`
//! with `|lo| ≤ ulp(hi)/2` (the *normalized* form), giving ≈106 bits of
//! significand (~31 decimal digits) from ordinary hardware doubles. The
//! arithmetic uses the classic error-free transforms (Dekker `two_prod`
//! via FMA, Knuth `two_sum`) as in QD / Bailey's ddfun and the
//! XBLAS-style extended-precision accumulators that back LAPACK's
//! `xGERFSX` extra-precise refinement.
//!
//! `Dd` implements [`Scalar`] and [`RealScalar`], so every generic
//! routine in the workspace — `gemm`, `getrf`, norms — monomorphises
//! over it, and `Complex<Dd>` comes for free from the blanket complex
//! impl. The mixed-precision drivers use it for residual accumulation
//! (`LA_REFINE=dd`): the residual `b − A·x` is computed with ~2× the
//! working significand, which is what lets iterative refinement reach
//! backward errors at the f64 roundoff floor on ill-conditioned systems.
//!
//! Machine parameters: `EPS = 2⁻¹⁰⁴` (the conventional worst-case unit
//! roundoff of double-double; the format's precision is actually
//! variable — `1 + 2⁻³⁰⁰` is representable — but 2⁻¹⁰⁴ bounds the
//! relative error of one arithmetic operation). Range equals `f64`
//! range: `rmin`/`sfmin` = `f64::MIN_POSITIVE`, `rmax` = `f64::MAX`.
//!
//! Transcendentals (`sin_r`, `cos_r`, `atan2`, `ln`, `log10`) are
//! evaluated in `f64` on the rounded value and are therefore only
//! f64-accurate; they exist to satisfy [`RealScalar`] (the refinement
//! paths never call them). `sqrt`, `hypot`, `powi`, and the field
//! operations carry full double-double accuracy.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::scalar::{RealScalar, Scalar};

/// A double-double value: the unevaluated, normalized sum `hi + lo`.
///
/// Construct with [`Dd::from_f64`] (exact), [`Dd::new`] (renormalizing),
/// or the arithmetic operators. Convert back with [`Dd::to_f64`]
/// (correctly rounded, since `hi` is the rounded value in normalized
/// form).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Dd {
    /// Leading component: the `f64` nearest the represented value.
    pub hi: f64,
    /// Trailing component: the rounding error of `hi`, `|lo| ≤ ulp(hi)/2`.
    pub lo: f64,
}

/// Knuth two-sum: `a + b = s + e` exactly, for any `a`, `b`.
#[inline(always)]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Fast two-sum: `a + b = s + e` exactly, requires `|a| ≥ |b|` (or a == 0).
#[inline(always)]
fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Dekker product via FMA: `a · b = p + e` exactly.
#[inline(always)]
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

impl Dd {
    /// Additive identity.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };

    /// Builds from components, renormalizing so `|lo| ≤ ulp(hi)/2`.
    #[inline]
    pub fn new(hi: f64, lo: f64) -> Dd {
        let (s, e) = two_sum(hi, lo);
        Dd { hi: s, lo: e }
    }

    /// Exact embedding of an `f64` (no rounding).
    #[inline(always)]
    pub fn from_f64(x: f64) -> Dd {
        Dd { hi: x, lo: 0.0 }
    }

    /// Rounds to the nearest `f64`. In normalized form this is `hi`, but
    /// the sum is taken so denormalized inputs still round correctly.
    #[inline(always)]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// Exact product of two `f64`, kept in double-double (no rounding:
    /// both the product and its FMA-recovered error are stored).
    #[inline]
    pub fn prod(a: f64, b: f64) -> Dd {
        let (p, e) = two_prod(a, b);
        Dd { hi: p, lo: e }
    }

    /// Fused accumulate of an exact `f64` product: `self + a·b` with the
    /// product's low part captured before the double-double add. This is
    /// the inner-loop primitive of the `Dd` residual accumulation in the
    /// mixed-precision refinement drivers.
    #[inline]
    pub fn fma_acc(self, a: f64, b: f64) -> Dd {
        self + Dd::prod(a, b)
    }

    #[inline]
    fn abs_dd(self) -> Dd {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            -self
        } else {
            self
        }
    }
}

impl Neg for Dd {
    type Output = Dd;
    #[inline(always)]
    fn neg(self) -> Dd {
        Dd {
            hi: -self.hi,
            lo: -self.lo,
        }
    }
}

impl Add for Dd {
    type Output = Dd;
    #[inline]
    fn add(self, rhs: Dd) -> Dd {
        // Knuth add: exact sums of both component pairs, then renormalize.
        let (s, e) = two_sum(self.hi, rhs.hi);
        let (t, f) = two_sum(self.lo, rhs.lo);
        let (s2, e2) = quick_two_sum(s, e + t);
        let (hi, lo) = quick_two_sum(s2, e2 + f);
        Dd { hi, lo }
    }
}

impl Sub for Dd {
    type Output = Dd;
    #[inline]
    fn sub(self, rhs: Dd) -> Dd {
        self + (-rhs)
    }
}

impl Mul for Dd {
    type Output = Dd;
    #[inline]
    fn mul(self, rhs: Dd) -> Dd {
        let (p, e) = two_prod(self.hi, rhs.hi);
        let e = e + (self.hi * rhs.lo + self.lo * rhs.hi);
        let (hi, lo) = quick_two_sum(p, e);
        Dd { hi, lo }
    }
}

impl Div for Dd {
    type Output = Dd;
    #[inline]
    fn div(self, rhs: Dd) -> Dd {
        // Long division: three f64 quotient digits, each peeled off by an
        // exact double-double residual update.
        let q1 = self.hi / rhs.hi;
        if !q1.is_finite() {
            // 0/0, x/0, inf operands: let f64 semantics decide the sign/NaN.
            return Dd::from_f64(q1);
        }
        let r = self - rhs * Dd::from_f64(q1);
        let q2 = r.hi / rhs.hi;
        let r = r - rhs * Dd::from_f64(q2);
        let q3 = r.hi / rhs.hi;
        let (s, e) = quick_two_sum(q1, q2);
        Dd { hi: s, lo: e } + Dd::from_f64(q3)
    }
}

impl AddAssign for Dd {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Dd) {
        *self = *self + rhs;
    }
}
impl SubAssign for Dd {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Dd) {
        *self = *self - rhs;
    }
}
impl MulAssign for Dd {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Dd) {
        *self = *self * rhs;
    }
}
impl DivAssign for Dd {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Dd) {
        *self = *self / rhs;
    }
}

impl Sum for Dd {
    fn sum<I: Iterator<Item = Dd>>(iter: I) -> Dd {
        iter.fold(Dd::ZERO, |acc, x| acc + x)
    }
}

impl PartialOrd for Dd {
    #[inline]
    fn partial_cmp(&self, other: &Dd) -> Option<Ordering> {
        // Normalized form makes the order lexicographic: when the leading
        // components tie, the trailing components decide.
        match self.hi.partial_cmp(&other.hi) {
            Some(Ordering::Equal) => self.lo.partial_cmp(&other.lo),
            ord => ord,
        }
    }
}

impl fmt::Display for Dd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Shown at f64 precision; the full value needs ~32 digits and the
        // Display surface is diagnostics, not serialization.
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl Scalar for Dd {
    type Real = Dd;
    const IS_COMPLEX: bool = false;
    const PREFIX: char = 'X';

    #[inline(always)]
    fn zero() -> Self {
        Dd::ZERO
    }
    #[inline(always)]
    fn one() -> Self {
        Dd::ONE
    }
    #[inline(always)]
    fn from_real(re: Dd) -> Self {
        re
    }
    #[inline(always)]
    fn from_re_im(re: Dd, _im: Dd) -> Self {
        re
    }
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        Dd::from_f64(x)
    }
    #[inline(always)]
    fn re(self) -> Dd {
        self
    }
    #[inline(always)]
    fn im(self) -> Dd {
        Dd::ZERO
    }
    #[inline(always)]
    fn conj(self) -> Self {
        self
    }
    #[inline(always)]
    fn abs(self) -> Dd {
        self.abs_dd()
    }
    #[inline(always)]
    fn abs1(self) -> Dd {
        self.abs_dd()
    }
    #[inline(always)]
    fn abs_sqr(self) -> Dd {
        self * self
    }
    #[inline(always)]
    fn mul_real(self, r: Dd) -> Self {
        self * r
    }
    #[inline(always)]
    fn div_real(self, r: Dd) -> Self {
        self / r
    }
    #[inline(always)]
    fn recip(self) -> Self {
        Dd::ONE / self
    }
    #[inline]
    fn sqrt(self) -> Self {
        RealScalar::sqrt_r(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        self.hi.is_finite() && self.lo.is_finite()
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        self.hi.is_nan() || self.lo.is_nan()
    }
}

impl RealScalar for Dd {
    // 2⁻¹⁰⁴, the conventional double-double unit roundoff. The decimal
    // literal identifies the power of two exactly (locked by a test).
    const EPS: Self = Dd {
        hi: 4.930380657631324e-32,
        lo: 0.0,
    };
    const CPREFIX: char = 'x';

    #[inline(always)]
    fn sfmin() -> Self {
        Dd::from_f64(f64::MIN_POSITIVE)
    }
    #[inline(always)]
    fn rmin() -> Self {
        Dd::from_f64(f64::MIN_POSITIVE)
    }
    #[inline(always)]
    fn rmax() -> Self {
        Dd::from_f64(f64::MAX)
    }
    #[inline(always)]
    fn rabs(self) -> Self {
        self.abs_dd()
    }
    #[inline]
    fn sqrt_r(self) -> Self {
        if self.hi == 0.0 && self.lo == 0.0 {
            return Dd::ZERO;
        }
        if self.hi < 0.0 {
            return RealScalar::nan();
        }
        // Karp–Markstein: f64 seed x ≈ 1/√a, y = a·x ≈ √a, then one
        // correction y + (a − y²)·x/2 — quadratic convergence lands at
        // full double-double accuracy from the 53-bit seed.
        let x = 1.0 / self.hi.sqrt();
        let y = self.hi * x;
        let yd = Dd::from_f64(y);
        let diff = self - yd * yd;
        yd + Dd::from_f64(diff.hi * (x * 0.5))
    }
    #[inline]
    fn hypot(self, other: Self) -> Self {
        // xLAPY2 shape: factor out the larger magnitude so the squares
        // cannot overflow for representable results.
        let a = self.abs_dd();
        let b = other.abs_dd();
        let (big, small) = if a >= b { (a, b) } else { (b, a) };
        if big.hi == 0.0 {
            return Dd::ZERO;
        }
        let r = small / big;
        big * RealScalar::sqrt_r(Dd::ONE + r * r)
    }
    #[inline]
    fn atan2(self, other: Self) -> Self {
        Dd::from_f64(self.to_f64().atan2(other.to_f64()))
    }
    #[inline]
    fn sin_r(self) -> Self {
        Dd::from_f64(self.to_f64().sin())
    }
    #[inline]
    fn cos_r(self) -> Self {
        Dd::from_f64(self.to_f64().cos())
    }
    #[inline(always)]
    fn maxr(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
    #[inline(always)]
    fn minr(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        if n == 0 {
            return Dd::ONE;
        }
        let mut base = if n < 0 { Dd::ONE / self } else { self };
        let mut e = n.unsigned_abs();
        let mut acc = Dd::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }
    #[inline]
    fn ln(self) -> Self {
        Dd::from_f64(self.to_f64().ln())
    }
    #[inline]
    fn log10(self) -> Self {
        Dd::from_f64(self.to_f64().log10())
    }
    #[inline]
    fn round_r(self) -> Self {
        Dd::from_f64(self.to_f64().round())
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        Dd::to_f64(self)
    }
    #[inline]
    fn from_usize(n: usize) -> Self {
        // Exact even past 2⁵³: capture the conversion error of the lead.
        let hi = n as f64;
        let err = (n as i128).wrapping_sub(hi as i128) as f64;
        Dd::new(hi, err)
    }
    #[inline(always)]
    fn is_finite_r(self) -> bool {
        Scalar::is_finite(self)
    }
    #[inline(always)]
    fn nan() -> Self {
        Dd {
            hi: f64::NAN,
            lo: f64::NAN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dd(x: f64) -> Dd {
        Dd::from_f64(x)
    }

    #[test]
    fn eps_is_two_pow_minus_104() {
        assert_eq!(Dd::EPS.hi, 2f64.powi(-104));
        assert_eq!(Dd::EPS.lo, 0.0);
    }

    #[test]
    fn add_recovers_bits_below_f64_precision() {
        // 1 + 2⁻⁶⁰ is not representable in f64 (it rounds back to 1), but
        // double-double keeps it and the later subtraction recovers it.
        let tiny = 2f64.powi(-60);
        let x = Dd::ONE + dd(tiny);
        assert_ne!(x, Dd::ONE, "1 + 2^-60 must be distinguishable from 1");
        assert_eq!((x - Dd::ONE).to_f64(), tiny);
        // f64 control: the same computation collapses.
        assert_eq!((1.0 + tiny) - 1.0, 0.0);
    }

    #[test]
    fn prod_is_error_free() {
        // two_prod captures the exact rounding error of an f64 multiply.
        let a = 1.0 + 2f64.powi(-30);
        let b = 1.0 + 2f64.powi(-29);
        let p = Dd::prod(a, b);
        // Exact product: 1 + 2^-29 + 2^-30 + 2^-59; f64 loses the 2^-59.
        assert_eq!(p.hi, a * b);
        assert_eq!(p.lo, 2f64.powi(-59));
    }

    #[test]
    fn mul_and_div_roundtrip_near_dd_eps() {
        let third = Dd::ONE / dd(3.0);
        let back = third * dd(3.0);
        let err = (back - Dd::ONE).abs_dd();
        assert!(
            err <= Dd::EPS * dd(8.0),
            "1/3*3 error {:e} exceeds dd eps bound",
            err.to_f64()
        );
    }

    #[test]
    fn sqrt_is_dd_accurate() {
        let s = RealScalar::sqrt_r(dd(2.0));
        let err = (s * s - dd(2.0)).abs_dd();
        assert!(
            err <= Dd::EPS * dd(8.0),
            "sqrt(2)^2 error {:e}",
            err.to_f64()
        );
        assert_eq!(RealScalar::sqrt_r(Dd::ZERO), Dd::ZERO);
        assert!(Scalar::is_nan(RealScalar::sqrt_r(dd(-1.0))));
    }

    #[test]
    fn sum_accumulates_in_extended_precision() {
        // Σ 0.1 (the f64 nearest 1/10), 10 times. In f64 the partial-sum
        // roundings make it ≠ 10·0.1; in Dd each add is error-free down
        // to 2⁻¹⁰⁴ so the result matches the exact 10× product.
        let ten_tenths: Dd = (0..10).map(|_| dd(0.1)).sum();
        let exact = Dd::prod(10.0, 0.1);
        assert_eq!(ten_tenths, exact);
        let f64_sum = (0..10).map(|_| 0.1f64).sum::<f64>();
        assert_ne!(f64_sum, 10.0 * 0.1, "f64 control should show drift");
    }

    #[test]
    fn ordering_is_lexicographic_on_normalized_parts() {
        let base = Dd::ONE;
        let up = Dd::ONE + dd(2f64.powi(-80));
        let down = Dd::ONE - dd(2f64.powi(-80));
        assert!(down < base && base < up);
        assert_eq!(base.maxr(up), up);
        assert_eq!(base.minr(down), down);
    }

    #[test]
    fn machine_params_and_prefix() {
        assert_eq!(Dd::PREFIX, 'X');
        assert_eq!(Dd::CPREFIX, 'x');
        const _: () = assert!(!Dd::IS_COMPLEX && !Dd::IS_HALF);
        assert!(Dd::rmin() > Dd::ZERO);
        assert!(Scalar::is_finite(Dd::rmax()));
        assert!((Dd::ONE / Dd::rmin()).hi.is_finite());
        assert!(Scalar::is_nan(<Dd as RealScalar>::nan()));
    }

    #[test]
    fn powi_hypot_and_misc() {
        assert_eq!(dd(2.0).powi(10), dd(1024.0));
        let inv = dd(2.0).powi(-2);
        assert_eq!(inv, dd(0.25));
        let h = dd(3.0).hypot(dd(4.0));
        assert!((h - dd(5.0)).abs_dd() <= Dd::EPS * dd(16.0));
        // hypot must not overflow for large-but-representable inputs.
        let big = dd(1e300);
        assert!(Scalar::is_finite(big.hypot(big)));
        assert_eq!(Dd::from_usize(7), dd(7.0));
        assert_eq!(dd(2.5).round_r(), dd(3.0));
        assert_eq!(dd(-1.5).sign(dd(2.0)), dd(1.5));
    }

    #[test]
    fn fma_acc_matches_exact_accumulation() {
        // Residual-style accumulation: acc += a*b with the product error
        // captured. Use values whose product has a nonzero low part.
        let a = 1.0 + 2f64.powi(-30);
        let acc = Dd::ZERO.fma_acc(a, a).fma_acc(-1.0, a * a);
        // a*a (exact) minus fl(a*a) = the two_prod error term.
        let expected = Dd::prod(a, a) - dd(a * a);
        assert_eq!(acc.to_f64(), expected.to_f64());
    }

    #[test]
    fn div_edge_cases_follow_f64_semantics() {
        assert!(Scalar::is_nan(Dd::ZERO / Dd::ZERO));
        assert!(!Scalar::is_finite(Dd::ONE / Dd::ZERO));
        assert_eq!((Dd::ONE / Dd::ZERO).hi, f64::INFINITY);
    }
}
