//! # la-core — foundation of the LAPACK90 reproduction
//!
//! This crate provides what the paper obtains from the Fortran 90 language
//! and from LAPACK's auxiliary layer:
//!
//! * [`Scalar`] / [`RealScalar`] — the `LA_PRECISION` module plus generic
//!   resolution: one generic routine covers `S`/`D`/`C`/`Z`.
//! * [`Complex`] — `COMPLEX(SP)` / `COMPLEX(DP)` with robust division
//!   (`xLADIV`) and principal square root.
//! * [`Mat`] — the assumed-shape 2-D array: column-major dense storage from
//!   which the drivers derive `N`, `NRHS`, `LDA`, … by shape inspection.
//! * [`MatRef`] / [`MatMut`] — borrowed column-major views
//!   (`ptr/rows/cols/lda` with subview/split helpers): the typed currency
//!   of the BLAS-3 packing, microkernel, and stripe-dispatch internals.
//! * [`BandMat`], [`SymBandMat`], [`PackedMat`] — LAPACK band and packed
//!   storage schemes for the `GB`/`SB`/`PB`/`SP`/`PP` drivers.
//! * [`LaError`] / [`erinfo`] — the `ERINFO` error protocol: `INFO` codes
//!   with the exact LAPACK sign conventions.
//! * [`Uplo`], [`Trans`], [`Diag`], [`Side`], [`Norm`] — the character
//!   flag arguments as enums.
//! * [`tune`] — the runtime tuning subsystem (`ILAENV` as a settable
//!   object): thread budget, parallel thresholds, per-routine block
//!   sizes, all adjustable programmatically or via `LA_*` environment
//!   variables.
//! * [`except`] — the exception-handling subsystem (Demmel et al.,
//!   arXiv:2207.09281): runtime NaN/Inf screening policy (`LA_FP_CHECK`),
//!   `all_finite` sweeps, and the `INFO = -101` non-finite extension code.
//! * [`abft`] — algorithm-based fault tolerance (Huang–Abraham checksums):
//!   runtime soft-fault policy (`LA_ABFT`), the `INFO = -102` soft-fault
//!   extension code, detection/recovery counters, and (behind the
//!   `fault-inject` feature) silent-corruption injection for tests.
//! * [`batch`] — the work-stealing batched-job dispatcher: panic
//!   isolation, per-job fault scoping, policy inheritance and the
//!   no-oversubscription clamp under every `*_batch` entry point.
//! * [`dag`] — the dependency-tracked task-graph runtime (PLASMA-style
//!   sequential-task-flow scheduling) under the tiled factorizations,
//!   with the same per-task robustness contract as [`batch`].
//! * [`tile`] — [`TileMat`], the tile-major store the dag algorithms
//!   operate on: copy-in/copy-out from column-major [`Mat`] layout,
//!   one allocation per tile so a memory-mapped backing can follow.
//! * [`cancel`] — cooperative cancellation: [`CancelToken`] deadlines and
//!   the `INFO = -103` (cancelled) / `-104` (worker panicked) extension
//!   codes consumed by the batch dispatchers and the `la-serve` queue.
//! * [`probe`] — the observability subsystem (`LA_PROFILE`): per-routine
//!   counters with closed-form flop accounting, hierarchical span tracing
//!   across the driver → factorization → BLAS-3 stack, and structured
//!   reports.
//! * [`mixed`] — the precision lattice ([`Demote`]/[`Promote`] plus the
//!   multi-target [`mixed::DemoteTo`]): `f64 ↔ {f32, f16, bf16}`,
//!   `Complex<f64> ↔ Complex<f32>` and `f32 ↔ {f16, bf16}` bridges with
//!   per-edge eps/overflow/underflow constants, for the mixed-precision
//!   refinement drivers.
//! * [`half`] — software [`F16`]/[`Bf16`] storage types (full [`Scalar`]
//!   implementations; BLAS-3 on them accumulates in f32), the demotion
//!   targets at the speed end of the lattice.
//! * [`dd`] — [`Dd`], double-double extended precision (~31 decimal
//!   digits) implementing [`Scalar`]/[`RealScalar`], the residual
//!   precision at the accuracy end of the lattice.
//! * [`json`] — the dependency-free JSON writer/parser used by [`probe`]
//!   reports and the bench harness.

#![warn(missing_docs)]

pub mod abft;
pub mod batch;
pub mod cancel;
pub mod complex;
pub mod dag;
pub mod dd;
pub mod enums;
pub mod error;
pub mod except;
pub mod half;
pub mod json;
pub mod mat;
pub mod mixed;
pub mod probe;
pub mod scalar;
pub mod storage;
pub mod tile;
pub mod tune;

pub use abft::AbftPolicy;
pub use cancel::CancelToken;
pub use complex::{Complex, C32, C64};
pub use dag::{Builder as DagBuilder, GraphStats};
pub use dd::Dd;
pub use enums::{Diag, Norm, Side, Trans, Uplo};
pub use error::{erinfo, LaError, PositiveInfo};
pub use except::FpCheckPolicy;
pub use half::{Bf16, F16};
pub use mat::{Mat, MatMut, MatRef};
pub use mixed::{Demote, Promote};
pub use probe::ProbePolicy;
pub use scalar::{RealScalar, Scalar};
pub use storage::{BandMat, PackedMat, SymBandMat};
pub use tile::TileMat;
pub use tune::TuneConfig;
