//! Runtime tuning subsystem — the `ILAENV` of this substrate, made a
//! first-class, *runtime-settable* object instead of a compiled-in table.
//!
//! Every performance knob the BLAS-3 layer and the blocked factorizations
//! consult lives in one [`TuneConfig`]: the thread budget, the flop
//! threshold above which Level-3 operations go parallel, the per-routine
//! block sizes (`NB`) and the blocked/unblocked crossover order. The
//! paper's premise is that `LA_GESV(A, B)` should deliver the performance
//! of the tuned substrate underneath with zero caller changes; this module
//! is where that tuning happens.
//!
//! Three ways to set it, in increasing precedence:
//!
//! 1. **Environment variables** at process start: `LA_NUM_THREADS`,
//!    `LA_PAR_FLOPS`, `LA_NB_GETRF`, `LA_NB_POTRF`, `LA_NB_GEQRF`,
//!    `LA_NB_SYTRF`, `LA_NB_DEFAULT`, `LA_CROSSOVER`, for the packed
//!    BLAS-3 path `LA_GEMM_KERNEL={auto,scalar,unrolled,simd}` plus the
//!    cache-blocking sizes `LA_GEMM_MC`, `LA_GEMM_KC`, `LA_GEMM_NC`, and
//!    for the mixed-precision drivers the lattice knobs
//!    `LA_GESV_MIXED={f32,f16,bf16}` and `LA_REFINE={working,dd}`.
//!
//!    A malformed value is **rejected, not silently dropped**: the
//!    default is used and a one-time warning naming the variable, the
//!    offending value and the fallback goes to stderr. Zero is rejected
//!    for the block-size variables (`LA_NB_*`, `LA_TILE_NB`) where it
//!    would be meaningless; it stays a valid "auto"/"default" spelling
//!    for `LA_NUM_THREADS`, `LA_PAR_FLOPS`, `LA_GEMM_{MC,KC,NC}` and
//!    `LA_CROSSOVER`.
//! 2. **Programmatically** for the whole process: [`set`] / [`update`].
//! 3. **Scoped** per call tree: [`with`] installs a thread-local override
//!    for the duration of a closure (used by benchmarks sweeping NB and by
//!    the serial-vs-parallel equivalence tests; it never races with other
//!    threads).
//!
//! ```
//! use la_core::tune::{self, TuneConfig};
//! // Force the serial path inside a closure, leaving the process config
//! // untouched:
//! let cfg = TuneConfig { max_threads: 1, ..tune::current() };
//! let r = tune::with(cfg, || tune::current().max_threads);
//! assert_eq!(r, 1);
//! ```

use std::cell::RefCell;
use std::sync::{OnceLock, RwLock};

/// Which microkernel the packed BLAS-3 path drives. Selected through the
/// `gemm_kernel` field of [`TuneConfig`] (env var `LA_GEMM_KERNEL`); the
/// BLAS crate resolves `Auto` to the fastest kernel compiled in and
/// supported by the host.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GemmKernel {
    /// Heuristic: the SIMD kernel when the `simd` cargo feature is
    /// compiled in and the host supports it, the unrolled kernel
    /// otherwise. Small products may skip the packed path entirely.
    #[default]
    Auto,
    /// Reference triple-loop microkernel — slow, used as the bitwise
    /// ground truth by the kernel-equivalence tests. Forces the packed
    /// path at every size.
    Scalar,
    /// Explicitly unrolled register-tiled microkernel (portable). Forces
    /// the packed path at every size.
    Unrolled,
    /// Vectorized microkernel (x86-64 AVX2+FMA, `simd` cargo feature).
    /// Falls back to [`GemmKernel::Unrolled`] when the feature is not
    /// compiled in, the host lacks AVX2/FMA, or the scalar type is
    /// complex. Forces the packed path at every size.
    Simd,
}

impl GemmKernel {
    /// Parses the `LA_GEMM_KERNEL` spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(GemmKernel::Auto),
            "scalar" => Some(GemmKernel::Scalar),
            "unrolled" => Some(GemmKernel::Unrolled),
            "simd" => Some(GemmKernel::Simd),
            _ => None,
        }
    }

    /// The canonical spelling, as accepted by [`GemmKernel::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            GemmKernel::Auto => "auto",
            GemmKernel::Scalar => "scalar",
            GemmKernel::Unrolled => "unrolled",
            GemmKernel::Simd => "simd",
        }
    }
}

/// Which algorithm family the dense factorizations (`getrf`, `potrf`,
/// `geqrf`) run. Selected through the `factor` field of [`TuneConfig`]
/// (env var `LA_FACTOR`); the blocked path stays the default until the
/// bench gate proves the DAG wins on the host at hand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FactorAlgo {
    /// Fork-join blocked factorization (panel + striped BLAS-3 trailing
    /// update), the classic LAPACK shape. Default.
    #[default]
    Blocked,
    /// Tile task-graph factorization (`la_core::dag` + `TileMat`):
    /// dependency-tracked tasks over `LA_TILE_NB`-order tiles, so panel
    /// factor, triangular solves and trailing updates of different steps
    /// overlap. Falls back to the blocked path below the crossover order.
    Dag,
}

impl FactorAlgo {
    /// Parses the `LA_FACTOR` spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "blocked" => Some(FactorAlgo::Blocked),
            "dag" => Some(FactorAlgo::Dag),
            _ => None,
        }
    }

    /// The canonical spelling, as accepted by [`FactorAlgo::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            FactorAlgo::Blocked => "blocked",
            FactorAlgo::Dag => "dag",
        }
    }
}

/// Demotion level of the mixed-precision iterative-refinement drivers —
/// which precision the O(n³) factorization runs in. Selected through the
/// `mixed_lo` field of [`TuneConfig`] (env var `LA_GESV_MIXED`). Complex
/// working types resolve every level to `Complex<f32>`: half-precision
/// complex demotion is not in the lattice (see `la_core::mixed`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MixedLo {
    /// Classic DSGESV pairing: factor in f32. Default.
    #[default]
    F32,
    /// Factor in software IEEE binary16 (eps 2⁻¹⁰, range ±65504 — the
    /// narrow range makes the `iter = -2` demotion fallback routine on
    /// unscaled data).
    F16,
    /// Factor in software bfloat16 (eps 2⁻⁷, full f32 range — coarse but
    /// demotion-safe).
    Bf16,
}

impl MixedLo {
    /// Parses the `LA_GESV_MIXED` spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f32" | "single" => Some(MixedLo::F32),
            "f16" | "half" => Some(MixedLo::F16),
            "bf16" | "bfloat16" => Some(MixedLo::Bf16),
            _ => None,
        }
    }

    /// The canonical spelling, as accepted by [`MixedLo::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            MixedLo::F32 => "f32",
            MixedLo::F16 => "f16",
            MixedLo::Bf16 => "bf16",
        }
    }
}

/// Residual precision of the refinement loops. Selected through the
/// `refine` field of [`TuneConfig`] (env var `LA_REFINE`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RefineMode {
    /// Residuals in the working precision — the classic DSGESV regime.
    /// Default.
    #[default]
    Working,
    /// Residuals accumulated in double-double (`la_core::dd`) — the
    /// three-precision GMRES-IR regime and the engine of the `*_x`
    /// extra-precise refinement drivers (xGERFSX semantics).
    Dd,
}

impl RefineMode {
    /// Parses the `LA_REFINE` spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "working" | "off" => Some(RefineMode::Working),
            "dd" | "double-double" => Some(RefineMode::Dd),
            _ => None,
        }
    }

    /// The canonical spelling, as accepted by [`RefineMode::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            RefineMode::Working => "working",
            RefineMode::Dd => "dd",
        }
    }
}

/// Process-wide tuning knobs for the BLAS-3 layer and the blocked
/// factorizations. Plain data — copy it, edit fields, hand it to [`set`]
/// or [`with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuneConfig {
    /// Thread budget for parallel BLAS-3. `0` means auto-detect
    /// (`available_parallelism`, capped at 8). `1` forces every operation
    /// serial.
    pub max_threads: usize,
    /// Effective-flop product (`m·n·k` for `gemm`, the analogous triple
    /// product for the other Level-3 operations) at or above which an
    /// operation may go parallel. `0` parallelises everything the shape
    /// allows — useful for tests, ruinous for performance.
    pub par_flops: usize,
    /// Panel width for LU-family routines (`getrf`, `getri`).
    pub nb_getrf: usize,
    /// Panel width for the Cholesky family (`potrf`).
    pub nb_potrf: usize,
    /// Panel width for the orthogonal-factorization family
    /// (`geqrf`, `gelqf`, `ormqr`).
    pub nb_geqrf: usize,
    /// Panel width for the symmetric-indefinite / tridiagonalization
    /// family (`sytrf`, `sytrd`).
    pub nb_sytrf: usize,
    /// Panel width for any routine without a dedicated knob.
    pub nb_default: usize,
    /// Problem order at or below which blocked algorithms fall back to
    /// their unblocked forms.
    pub crossover: usize,
    /// Test-only fault-injection hook: when `true`, the parallel BLAS-3
    /// panics in one of its worker stripes, exercising the graceful
    /// serial-fallback path. Never read from the environment; exists so
    /// the degradation machinery can be tested without unsafe tricks.
    /// Only honoured in builds with the `fault-inject` cargo feature —
    /// default builds compile the read out of the BLAS-3 hot path
    /// entirely, so setting it there is a no-op.
    #[doc(hidden)]
    pub fault_inject_par: bool,
    /// Microkernel the packed BLAS-3 path runs (`LA_GEMM_KERNEL`).
    pub gemm_kernel: GemmKernel,
    /// Packed-gemm row block: rows of A packed per cache block
    /// (`LA_GEMM_MC`). `0` falls back to the compiled-in default.
    pub gemm_mc: usize,
    /// Packed-gemm depth block: the k-extent packed per panel
    /// (`LA_GEMM_KC`). `0` falls back to the compiled-in default.
    pub gemm_kc: usize,
    /// Packed-gemm column block: columns of B packed per cache block
    /// (`LA_GEMM_NC`). `0` falls back to the compiled-in default.
    pub gemm_nc: usize,
    /// Algorithm family for the dense factorizations (`LA_FACTOR`):
    /// fork-join blocked (default) or the tile task-graph runtime.
    pub factor: FactorAlgo,
    /// Tile order for the task-graph factorizations (`LA_TILE_NB`).
    /// `0` falls back to the compiled-in default (see
    /// [`TuneConfig::tile_size`]).
    pub tile_nb: usize,
    /// Demotion level for the mixed-precision drivers (`LA_GESV_MIXED`):
    /// which precision `gesv_mixed`/`posv_mixed` factor in.
    pub mixed_lo: MixedLo,
    /// Residual precision for the refinement loops (`LA_REFINE`):
    /// working precision (classic) or double-double (three-precision
    /// GMRES-IR regime).
    pub refine: RefineMode,
    /// Target queueing delay for the `la-serve` adaptive admission
    /// controller, in milliseconds (`LA_SERVE_TARGET_DELAY`). When set,
    /// the serve queue bound is sized from observed service times so a
    /// job admitted at the back of the queue still expects to start
    /// within this budget; `0` (the default) keeps the fixed
    /// `queue_depth` behaviour. Lives here rather than in the serve
    /// crate so operators tune it the same way as every other `LA_*`
    /// knob.
    pub serve_target_delay_ms: usize,
    /// Stall tolerance for the `la-serve` stuck-job watchdog, in
    /// milliseconds (`LA_SERVE_WATCHDOG`): a worker whose heartbeat
    /// stands still this long while holding one job is escalated
    /// (cooperative cancel, then respawn). `0` (the default) disables
    /// the watchdog.
    pub serve_watchdog_ms: usize,
    /// Permit a thread budget above the detected core count. Off by
    /// default: oversubscribing a host measurably *slows* BLAS-3 (the
    /// committed thread sweep shows threads=2 slower than threads=1 on a
    /// 1-core host), so [`TuneConfig::threads`] clamps to the core count
    /// unless this is set. Equivalence tests and the bench sweeps set it
    /// to exercise the striped dispatch machinery regardless of host
    /// size.
    pub oversubscribe: bool,
}

impl TuneConfig {
    /// The compiled-in defaults (the values the seed hardcoded).
    pub const fn defaults() -> Self {
        TuneConfig {
            max_threads: 0,
            par_flops: 200 * 200 * 200,
            nb_getrf: 32,
            nb_potrf: 96,
            nb_geqrf: 32,
            nb_sytrf: 32,
            nb_default: 32,
            crossover: 128,
            fault_inject_par: false,
            gemm_kernel: GemmKernel::Auto,
            gemm_mc: 0,
            gemm_kc: 0,
            gemm_nc: 0,
            factor: FactorAlgo::Blocked,
            tile_nb: 0,
            mixed_lo: MixedLo::F32,
            refine: RefineMode::Working,
            serve_target_delay_ms: 0,
            serve_watchdog_ms: 0,
            oversubscribe: false,
        }
    }

    /// Defaults overlaid with any `LA_*` environment variables. A
    /// malformed value (non-numeric where a number is expected, zero for
    /// a block-size knob, an unknown enum spelling) keeps the default and
    /// emits a one-time stderr warning naming the variable, the rejected
    /// value and the fallback — misconfiguration is surfaced, never
    /// silently absorbed.
    pub fn from_env() -> Self {
        let (cfg, warnings) = Self::from_env_with(|name| std::env::var(name).ok());
        for w in &warnings {
            warn_once(w);
        }
        cfg
    }

    /// [`TuneConfig::from_env`] with an injectable variable source and
    /// the rejection diagnostics returned instead of printed — the
    /// testable core of the env parsing (process-env mutation races with
    /// parallel tests; a closure does not).
    pub fn from_env_with(get: impl Fn(&str) -> Option<String>) -> (Self, Vec<String>) {
        let mut warnings = Vec::new();
        // `zero_ok`: whether 0 is a meaningful spelling ("auto"/"default")
        // rather than a degenerate block size.
        let read = |name: &str, into: &mut usize, zero_ok: bool, warnings: &mut Vec<String>| {
            let Some(raw) = get(name) else { return };
            match raw.trim().parse::<usize>() {
                Ok(0) if !zero_ok => warnings.push(format!(
                    "{name}: zero is not a valid block size; using default {into}"
                )),
                Ok(v) => *into = v,
                Err(_) => warnings.push(format!(
                    "{name}: invalid value {raw:?} (expected a non-negative integer); \
                     using default {into}"
                )),
            }
        };
        let mut cfg = Self::defaults();
        read("LA_NUM_THREADS", &mut cfg.max_threads, true, &mut warnings);
        read("LA_PAR_FLOPS", &mut cfg.par_flops, true, &mut warnings);
        read("LA_NB_GETRF", &mut cfg.nb_getrf, false, &mut warnings);
        read("LA_NB_POTRF", &mut cfg.nb_potrf, false, &mut warnings);
        read("LA_NB_GEQRF", &mut cfg.nb_geqrf, false, &mut warnings);
        read("LA_NB_SYTRF", &mut cfg.nb_sytrf, false, &mut warnings);
        read("LA_NB_DEFAULT", &mut cfg.nb_default, false, &mut warnings);
        read("LA_CROSSOVER", &mut cfg.crossover, true, &mut warnings);
        read("LA_GEMM_MC", &mut cfg.gemm_mc, true, &mut warnings);
        read("LA_GEMM_KC", &mut cfg.gemm_kc, true, &mut warnings);
        read("LA_GEMM_NC", &mut cfg.gemm_nc, true, &mut warnings);
        read("LA_TILE_NB", &mut cfg.tile_nb, false, &mut warnings);
        // Serve-layer knobs (milliseconds; 0 = feature off).
        read(
            "LA_SERVE_TARGET_DELAY",
            &mut cfg.serve_target_delay_ms,
            true,
            &mut warnings,
        );
        read(
            "LA_SERVE_WATCHDOG",
            &mut cfg.serve_watchdog_ms,
            true,
            &mut warnings,
        );

        fn read_enum<E: Copy>(
            get: impl Fn(&str) -> Option<String>,
            name: &str,
            into: &mut E,
            parse: impl Fn(&str) -> Option<E>,
            allowed: &str,
            fallback: &str,
            warnings: &mut Vec<String>,
        ) {
            let Some(raw) = get(name) else { return };
            match parse(&raw) {
                Some(v) => *into = v,
                None => warnings.push(format!(
                    "{name}: unknown value {raw:?} (expected one of {allowed}); \
                     using default {fallback}"
                )),
            }
        }
        read_enum(
            &get,
            "LA_GEMM_KERNEL",
            &mut cfg.gemm_kernel,
            GemmKernel::parse,
            "auto|scalar|unrolled|simd",
            GemmKernel::Auto.as_str(),
            &mut warnings,
        );
        read_enum(
            &get,
            "LA_FACTOR",
            &mut cfg.factor,
            FactorAlgo::parse,
            "blocked|dag",
            FactorAlgo::Blocked.as_str(),
            &mut warnings,
        );
        read_enum(
            &get,
            "LA_GESV_MIXED",
            &mut cfg.mixed_lo,
            MixedLo::parse,
            "f32|f16|bf16",
            MixedLo::F32.as_str(),
            &mut warnings,
        );
        read_enum(
            &get,
            "LA_REFINE",
            &mut cfg.refine,
            RefineMode::parse,
            "working|dd",
            RefineMode::Working.as_str(),
            &mut warnings,
        );
        // `LA_OVERSUBSCRIBE=1` lifts the host-core clamp on the thread
        // budget — the TSan stress job uses it to run many more workers
        // than cores and shake out ordering bugs in dependency release.
        if let Some(v) = get("LA_OVERSUBSCRIBE") {
            let t = v.trim().to_ascii_lowercase();
            match t.as_str() {
                "1" | "true" | "yes" | "on" => cfg.oversubscribe = true,
                "0" | "false" | "no" | "off" | "" => cfg.oversubscribe = false,
                _ => warnings.push(format!(
                    "LA_OVERSUBSCRIBE: unknown value {v:?} (expected a boolean like 1/0); \
                     using default off"
                )),
            }
        }
        (cfg, warnings)
    }

    /// Resolved thread budget: `max_threads`, or the detected core count
    /// (capped at 8) when `max_threads == 0`. Never exceeds the detected
    /// core count unless [`TuneConfig::oversubscribe`] is set — running
    /// more BLAS-3 stripes than cores only adds scheduling overhead (the
    /// committed BENCH_blas3.json thread sweep shows threads=2 *slower*
    /// than threads=1 on a 1-core host).
    ///
    /// On a thread that is itself one of `W` siblings of an enclosing
    /// worker pool (see [`in_pool_worker`]), the clamp tightens to
    /// `host / W`: a batch dispatcher fanning `W` jobs out, each of which
    /// opens striped BLAS-3, would otherwise put `W × stripes` runnable
    /// threads on `host` cores. `oversubscribe` bypasses this clamp too —
    /// the equivalence tests and bench sweeps that force wide striping on
    /// small hosts keep working unchanged.
    pub fn threads(&self) -> usize {
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if self.max_threads > 0 && self.oversubscribe {
            return self.max_threads;
        }
        // Each of the `share` pool siblings running on this host gets an
        // equal slice of the cores (at least one).
        let share = POOL_SIBLINGS.with(|s| s.get()).max(1);
        let host_share = if self.oversubscribe {
            host
        } else {
            (host / share).max(1)
        };
        if self.max_threads > 0 {
            return self.max_threads.min(host_share);
        }
        host_share.min(8)
    }

    /// Block size for `routine` (an `ILAENV(1, ...)` analog; lowercase
    /// LAPACK routine names).
    pub fn nb(&self, routine: &str) -> usize {
        match routine {
            "getrf" | "getri" => self.nb_getrf,
            "potrf" => self.nb_potrf,
            "geqrf" | "gelqf" | "ormqr" => self.nb_geqrf,
            "sytrf" | "sytrd" => self.nb_sytrf,
            _ => self.nb_default,
        }
        .max(1)
    }

    /// Crossover order for `routine` (an `ILAENV(2, ...)` analog). One
    /// knob covers every family for now; the argument keeps the call sites
    /// ready for per-routine splits.
    pub fn crossover(&self, _routine: &str) -> usize {
        self.crossover
    }

    /// Resolved tile order for the task-graph factorizations:
    /// `tile_nb`, or the compiled-in default when `tile_nb == 0`. The
    /// default (192) gives each tile task a few million flops — large
    /// enough to amortize scheduling, small enough for lookahead overlap
    /// at n ≥ 2048.
    pub fn tile_size(&self) -> usize {
        if self.tile_nb > 0 {
            self.tile_nb
        } else {
            192
        }
    }
}

impl Default for TuneConfig {
    fn default() -> Self {
        Self::defaults()
    }
}

/// Prints `msg` to stderr once per distinct message for the process
/// lifetime — the delivery channel for env-var rejection diagnostics.
/// Repeated [`TuneConfig::from_env`] calls (the global config plus any
/// bench binary re-reading the environment) don't spam.
fn warn_once(msg: &str) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let warned = WARNED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = warned.lock().unwrap_or_else(|e| e.into_inner());
    if guard.insert(msg.to_string()) {
        eprintln!("la-core tune: {msg}");
    }
}

fn global() -> &'static RwLock<TuneConfig> {
    static GLOBAL: OnceLock<RwLock<TuneConfig>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(TuneConfig::from_env()))
}

thread_local! {
    static OVERRIDE: RefCell<Vec<TuneConfig>> = const { RefCell::new(Vec::new()) };
    /// How many sibling pool workers share this host with the current
    /// thread (1 = not a pool worker). Multiplicative across nested pools.
    static POOL_SIBLINGS: std::cell::Cell<usize> = const { std::cell::Cell::new(1) };
}

/// Declares the current thread to be one of `siblings` concurrently
/// running workers of an enclosing pool for the duration of `f`, so that
/// [`TuneConfig::threads`] hands each worker `host / siblings` cores
/// instead of all of them. Nested pools multiply: a 2-worker pool inside
/// a 4-worker pool leaves each leaf `host / 8`.
///
/// The batch dispatchers (`la-blas`/`la-lapack` `*_batch`) and the
/// `la-serve` workers call this around each job; without it, `W` jobs
/// each opening `host`-way striped BLAS-3 puts `W × host` runnable
/// threads on `host` cores. Restores the previous share on exit, panic
/// included. [`TuneConfig::oversubscribe`] bypasses the clamp.
pub fn in_pool_worker<R>(siblings: usize, f: impl FnOnce() -> R) -> R {
    struct Guard(usize);
    impl Drop for Guard {
        fn drop(&mut self) {
            POOL_SIBLINGS.with(|s| s.set(self.0));
        }
    }
    let prev = POOL_SIBLINGS.with(|s| s.get());
    let _guard = Guard(prev);
    POOL_SIBLINGS.with(|s| s.set(prev.saturating_mul(siblings.max(1))));
    f()
}

/// The configuration in effect on this thread: the innermost [`with`]
/// override if one is active, the process-global configuration otherwise.
pub fn current() -> TuneConfig {
    if let Some(cfg) = OVERRIDE.with(|o| o.borrow().last().copied()) {
        return cfg;
    }
    *global().read().unwrap_or_else(|e| e.into_inner())
}

/// Replaces the process-global configuration.
pub fn set(cfg: TuneConfig) {
    *global().write().unwrap_or_else(|e| e.into_inner()) = cfg;
}

/// Edits the process-global configuration in place:
/// `tune::update(|c| c.max_threads = 4)`.
pub fn update(f: impl FnOnce(&mut TuneConfig)) {
    let mut guard = global().write().unwrap_or_else(|e| e.into_inner());
    f(&mut guard);
}

/// Runs `f` with `cfg` in effect on the current thread only, restoring
/// the previous state afterwards (also on panic). Nested calls stack.
///
/// The override is consulted at the *decision points* of the BLAS-3 layer
/// and the factorizations, which all run on the calling thread before any
/// worker threads are spawned — so a scoped override fully controls a
/// call tree even when that tree goes parallel underneath.
pub fn with<R>(cfg: TuneConfig, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.borrow_mut().pop());
        }
    }
    OVERRIDE.with(|o| o.borrow_mut().push(cfg));
    let _guard = Guard;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_seed_constants() {
        let d = TuneConfig::defaults();
        assert_eq!(d.par_flops, 200 * 200 * 200);
        assert_eq!(d.nb("getrf"), 32);
        assert_eq!(d.nb("potrf"), 96);
        assert_eq!(d.nb("ormqr"), 32);
        assert_eq!(d.nb("unknown-routine"), 32);
        assert_eq!(d.crossover("getrf"), 128);
    }

    #[test]
    fn scoped_override_stacks_and_restores() {
        let outer = current();
        let a = TuneConfig {
            max_threads: 3,
            ..outer
        };
        let b = TuneConfig {
            max_threads: 7,
            ..outer
        };
        with(a, || {
            assert_eq!(current().max_threads, 3);
            with(b, || assert_eq!(current().max_threads, 7));
            assert_eq!(current().max_threads, 3);
        });
        assert_eq!(current(), outer);
    }

    #[test]
    fn threads_resolution() {
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let mut cfg = TuneConfig::defaults();
        cfg.max_threads = 5;
        assert_eq!(cfg.threads(), 5.min(host));
        cfg.oversubscribe = true;
        assert_eq!(cfg.threads(), 5);
        cfg.max_threads = 0;
        cfg.oversubscribe = false;
        assert!(cfg.threads() >= 1 && cfg.threads() <= 8);
    }

    #[test]
    fn thread_budget_refuses_to_oversubscribe() {
        // Regression: the committed thread sweep showed threads=2 slower
        // than threads=1 on a 1-core host. A budget above the core count
        // must clamp to the core count unless explicitly overridden.
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let mut cfg = TuneConfig::defaults();
        cfg.max_threads = host * 4;
        assert_eq!(cfg.threads(), host);
        cfg.oversubscribe = true;
        assert_eq!(cfg.threads(), host * 4);
    }

    #[test]
    fn pool_workers_split_the_host_budget() {
        // Regression: a batch worker invoking striped BLAS-3 must not
        // oversubscribe — worker-count × stripe-count ≤ host cores unless
        // `oversubscribe` is set.
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let cfg = TuneConfig {
            max_threads: host * 2, // ask for plenty; the clamp decides
            ..TuneConfig::defaults()
        };
        assert_eq!(cfg.threads(), host);
        in_pool_worker(4, || {
            assert_eq!(cfg.threads(), (host / 4).max(1));
            // Nested pools multiply the share.
            in_pool_worker(2, || {
                assert_eq!(cfg.threads(), (host / 8).max(1));
            });
            assert_eq!(cfg.threads(), (host / 4).max(1));
            // Auto-detect (max_threads = 0) honours the share too.
            let auto = TuneConfig::defaults();
            assert_eq!(auto.threads(), (host / 4).clamp(1, 8));
            // Explicit oversubscribe bypasses the clamp entirely.
            let over = TuneConfig {
                oversubscribe: true,
                ..cfg
            };
            assert_eq!(over.threads(), host * 2);
        });
        assert_eq!(cfg.threads(), host, "share restored on scope exit");
        // Restored on panic as well.
        let _ = std::panic::catch_unwind(|| in_pool_worker(16, || panic!("boom")));
        assert_eq!(cfg.threads(), host);
    }

    #[test]
    fn gemm_kernel_parses_and_round_trips() {
        for k in [
            GemmKernel::Auto,
            GemmKernel::Scalar,
            GemmKernel::Unrolled,
            GemmKernel::Simd,
        ] {
            assert_eq!(GemmKernel::parse(k.as_str()), Some(k));
            assert_eq!(GemmKernel::parse(&k.as_str().to_uppercase()), Some(k));
        }
        assert_eq!(GemmKernel::parse("fancy"), None);
        assert_eq!(TuneConfig::defaults().gemm_kernel, GemmKernel::Auto);
    }

    #[test]
    fn nb_never_zero() {
        let mut cfg = TuneConfig::defaults();
        cfg.nb_getrf = 0;
        assert_eq!(cfg.nb("getrf"), 1);
    }

    #[test]
    fn factor_algo_parses_and_round_trips() {
        for f in [FactorAlgo::Blocked, FactorAlgo::Dag] {
            assert_eq!(FactorAlgo::parse(f.as_str()), Some(f));
            assert_eq!(FactorAlgo::parse(&f.as_str().to_uppercase()), Some(f));
        }
        assert_eq!(FactorAlgo::parse("magic"), None);
        assert_eq!(
            TuneConfig::defaults().factor,
            FactorAlgo::Blocked,
            "blocked stays the default until the gate proves the DAG wins"
        );
    }

    #[test]
    fn tile_size_resolves_default_and_override() {
        let mut cfg = TuneConfig::defaults();
        assert_eq!(cfg.tile_size(), 192);
        cfg.tile_nb = 96;
        assert_eq!(cfg.tile_size(), 96);
    }

    #[test]
    fn mixed_lattice_knobs_parse_and_round_trip() {
        for m in [MixedLo::F32, MixedLo::F16, MixedLo::Bf16] {
            assert_eq!(MixedLo::parse(m.as_str()), Some(m));
            assert_eq!(MixedLo::parse(&m.as_str().to_uppercase()), Some(m));
        }
        assert_eq!(MixedLo::parse("fp8"), None);
        for r in [RefineMode::Working, RefineMode::Dd] {
            assert_eq!(RefineMode::parse(r.as_str()), Some(r));
        }
        assert_eq!(RefineMode::parse("quad"), None);
        let d = TuneConfig::defaults();
        assert_eq!(d.mixed_lo, MixedLo::F32);
        assert_eq!(d.refine, RefineMode::Working);
    }

    fn env_of<'a>(vars: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            vars.iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn malformed_env_values_are_rejected_with_diagnostics() {
        // The silent-drop regression: each of these used to vanish in an
        // `.ok()` chain, leaving the user tuning a knob that wasn't
        // connected. Now every rejection names the variable and fallback.
        let (cfg, warnings) = TuneConfig::from_env_with(env_of(&[
            ("LA_GEMM_KERNEL", "fancy"),
            ("LA_TILE_NB", "0"),
            ("LA_NUM_THREADS", "three"),
            ("LA_GESV_MIXED", "fp8"),
            ("LA_REFINE", "quad"),
            ("LA_OVERSUBSCRIBE", "maybe"),
        ]));
        // All six fall back to defaults...
        assert_eq!(cfg, TuneConfig::defaults());
        // ...and all six are reported, naming variable and fallback.
        assert_eq!(warnings.len(), 6);
        for (var, fallback) in [
            ("LA_GEMM_KERNEL", "auto"),
            ("LA_TILE_NB", "0"),
            ("LA_NUM_THREADS", "0"),
            ("LA_GESV_MIXED", "f32"),
            ("LA_REFINE", "working"),
            ("LA_OVERSUBSCRIBE", "off"),
        ] {
            let w = warnings
                .iter()
                .find(|w| w.starts_with(var))
                .unwrap_or_else(|| panic!("no warning for {var}: {warnings:?}"));
            assert!(
                w.contains(fallback),
                "{w:?} should name fallback {fallback}"
            );
        }
    }

    #[test]
    fn valid_env_values_apply_without_diagnostics() {
        let (cfg, warnings) = TuneConfig::from_env_with(env_of(&[
            ("LA_NUM_THREADS", "0"), // zero is a valid "auto" here
            ("LA_NB_GETRF", "64"),
            ("LA_TILE_NB", "128"),
            ("LA_GEMM_KERNEL", "scalar"),
            ("LA_GESV_MIXED", "bf16"),
            ("LA_REFINE", "dd"),
        ]));
        assert!(warnings.is_empty(), "unexpected warnings: {warnings:?}");
        assert_eq!(cfg.max_threads, 0);
        assert_eq!(cfg.nb_getrf, 64);
        assert_eq!(cfg.tile_nb, 128);
        assert_eq!(cfg.gemm_kernel, GemmKernel::Scalar);
        assert_eq!(cfg.mixed_lo, MixedLo::Bf16);
        assert_eq!(cfg.refine, RefineMode::Dd);
    }

    #[test]
    fn serve_knobs_parse_with_zero_meaning_off() {
        let d = TuneConfig::defaults();
        assert_eq!(d.serve_target_delay_ms, 0, "adaptive admission off");
        assert_eq!(d.serve_watchdog_ms, 0, "watchdog off");
        let (cfg, warnings) = TuneConfig::from_env_with(env_of(&[
            ("LA_SERVE_TARGET_DELAY", "25"),
            ("LA_SERVE_WATCHDOG", "500"),
        ]));
        assert!(warnings.is_empty(), "unexpected warnings: {warnings:?}");
        assert_eq!(cfg.serve_target_delay_ms, 25);
        assert_eq!(cfg.serve_watchdog_ms, 500);
        // 0 is the documented "off" spelling, not a rejected value.
        let (cfg, warnings) = TuneConfig::from_env_with(env_of(&[
            ("LA_SERVE_TARGET_DELAY", "0"),
            ("LA_SERVE_WATCHDOG", "garbage"),
        ]));
        assert_eq!(cfg.serve_target_delay_ms, 0);
        assert_eq!(cfg.serve_watchdog_ms, 0);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].starts_with("LA_SERVE_WATCHDOG"));
    }

    #[test]
    fn zero_block_sizes_rejected_zero_autos_kept() {
        let (cfg, warnings) = TuneConfig::from_env_with(env_of(&[
            ("LA_NB_POTRF", "0"),
            ("LA_GEMM_MC", "0"),
            ("LA_PAR_FLOPS", "0"),
        ]));
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].starts_with("LA_NB_POTRF"));
        assert_eq!(cfg.nb_potrf, TuneConfig::defaults().nb_potrf);
        assert_eq!(cfg.gemm_mc, 0);
        assert_eq!(cfg.par_flops, 0);
    }
}
