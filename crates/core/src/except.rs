//! Exception-handling subsystem — consistent NaN/Inf screening for the
//! driver layer, modeled on Demmel et al., "Proposed Consistent Exception
//! Handling for the BLAS and LAPACK" (arXiv:2207.09281).
//!
//! LAPACK 77 — and the LAPACK90 paper with it — is silent about non-finite
//! inputs: a NaN fed to `LA_GESV` propagates through the factorization and
//! comes back as a garbage "solution" with `INFO = 0`. This module supplies
//! the missing contract as a *runtime policy*, off by default so the fast
//! path pays nothing:
//!
//! * [`FpCheckPolicy`] — what to screen: nothing, inputs, outputs, or both.
//!   Initialized from the `LA_FP_CHECK` environment variable (alongside the
//!   `LA_*` tuning variables of [`crate::tune`]), settable process-wide via
//!   [`set_policy`] or per call tree via [`with_policy`].
//! * [`all_finite`] — the O(n) screening sweep over a slice of any of the
//!   four scalar types (a complex element is finite iff both parts are).
//! * A screening failure surfaces as [`crate::LaError::NonFinite`] with the
//!   dedicated `INFO` extension code `-101` (mirroring the paper's `-100`
//!   allocation-failure convention) and the 1-based index of the offending
//!   argument.
//!
//! The module also hosts the observability counter for the parallel BLAS-3
//! graceful-degradation path: when a scoped-thread stripe panics, the
//! operation is re-run serially and [`note_parallel_fallback`] is bumped so
//! tests and monitoring can see that the degradation fired.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

use crate::scalar::Scalar;

/// What the `la90` drivers screen for non-finite values (NaN or ±Inf).
///
/// Screening is O(input) per driver call and short-circuits on the first
/// non-finite element; the default [`Off`](FpCheckPolicy::Off) reduces the
/// whole subsystem to a single relaxed policy load per call.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum FpCheckPolicy {
    /// No screening (the LAPACK 77 behaviour). Default.
    #[default]
    Off,
    /// Screen array inputs on entry; a NaN/Inf input is rejected with
    /// `LaError::NonFinite` (`INFO = -101`) before any computation.
    ScanInputs,
    /// Screen computed outputs on exit; a driver that would return poison
    /// with `INFO = 0` reports `NonFinite` instead.
    ScanOutputs,
    /// Both input and output screening.
    Full,
}

impl FpCheckPolicy {
    /// `true` when inputs are to be screened on driver entry.
    #[inline(always)]
    pub fn scan_inputs(self) -> bool {
        matches!(self, FpCheckPolicy::ScanInputs | FpCheckPolicy::Full)
    }

    /// `true` when outputs are to be screened on driver exit.
    #[inline(always)]
    pub fn scan_outputs(self) -> bool {
        matches!(self, FpCheckPolicy::ScanOutputs | FpCheckPolicy::Full)
    }

    /// Parses an `LA_FP_CHECK` value. Accepted (case-insensitive):
    /// `off`/`none`/`0` → `Off`; `inputs`/`in` → `ScanInputs`;
    /// `outputs`/`out` → `ScanOutputs`; `full`/`all`/`on`/`1` → `Full`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(FpCheckPolicy::Off),
            "inputs" | "in" => Some(FpCheckPolicy::ScanInputs),
            "outputs" | "out" => Some(FpCheckPolicy::ScanOutputs),
            "full" | "all" | "on" | "1" => Some(FpCheckPolicy::Full),
            _ => None,
        }
    }

    /// The default overlaid with the `LA_FP_CHECK` environment variable;
    /// an absent or unrecognized value leaves the policy `Off`.
    pub fn from_env() -> Self {
        std::env::var("LA_FP_CHECK")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }
}

fn global() -> &'static RwLock<FpCheckPolicy> {
    static GLOBAL: OnceLock<RwLock<FpCheckPolicy>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(FpCheckPolicy::from_env()))
}

thread_local! {
    static OVERRIDE: RefCell<Vec<FpCheckPolicy>> = const { RefCell::new(Vec::new()) };
}

/// The policy in effect on this thread: the innermost [`with_policy`]
/// override if one is active, the process-global policy otherwise.
pub fn policy() -> FpCheckPolicy {
    if let Some(p) = OVERRIDE.with(|o| o.borrow().last().copied()) {
        return p;
    }
    *global().read().unwrap_or_else(|e| e.into_inner())
}

/// Replaces the process-global policy.
pub fn set_policy(p: FpCheckPolicy) {
    *global().write().unwrap_or_else(|e| e.into_inner()) = p;
}

/// Runs `f` with `p` in effect on the current thread only, restoring the
/// previous state afterwards (also on panic). Nested calls stack.
///
/// Like [`crate::tune::with`], the override is consulted at driver entry
/// and exit, which always run on the calling thread — so a scoped policy
/// fully governs a call tree even when the BLAS underneath goes parallel.
pub fn with_policy<R>(p: FpCheckPolicy, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.borrow_mut().pop());
        }
    }
    OVERRIDE.with(|o| o.borrow_mut().push(p));
    let _guard = Guard;
    f()
}

/// `true` iff every element of `xs` is finite (for complex types: both
/// parts finite — no NaN, no ±Inf anywhere).
///
/// One linear pass; checks are batched eight at a time so the compiler can
/// vectorize the finiteness tests while still bailing out early on poisoned
/// data.
pub fn all_finite<T: Scalar>(xs: &[T]) -> bool {
    let mut chunks = xs.chunks_exact(8);
    for c in &mut chunks {
        let mut ok = true;
        for &x in c {
            ok &= x.is_finite();
        }
        if !ok {
            return false;
        }
    }
    chunks.remainder().iter().all(|x| x.is_finite())
}

static PARALLEL_FALLBACKS: AtomicUsize = AtomicUsize::new(0);

/// Records that a parallel BLAS-3 operation lost a worker to a panic and
/// was transparently re-run on the serial path.
pub fn note_parallel_fallback() {
    PARALLEL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Process-lifetime count of parallel-to-serial degradations (see
/// [`note_parallel_fallback`]). Monotone; useful for tests and monitoring.
pub fn parallel_fallbacks() -> usize {
    PARALLEL_FALLBACKS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{C32, C64};
    use crate::scalar::RealScalar;

    #[test]
    fn parse_accepts_documented_spellings() {
        assert_eq!(FpCheckPolicy::parse("off"), Some(FpCheckPolicy::Off));
        assert_eq!(FpCheckPolicy::parse("0"), Some(FpCheckPolicy::Off));
        assert_eq!(
            FpCheckPolicy::parse("inputs"),
            Some(FpCheckPolicy::ScanInputs)
        );
        assert_eq!(FpCheckPolicy::parse("IN"), Some(FpCheckPolicy::ScanInputs));
        assert_eq!(
            FpCheckPolicy::parse("outputs"),
            Some(FpCheckPolicy::ScanOutputs)
        );
        assert_eq!(FpCheckPolicy::parse("Full"), Some(FpCheckPolicy::Full));
        assert_eq!(FpCheckPolicy::parse("1"), Some(FpCheckPolicy::Full));
        assert_eq!(FpCheckPolicy::parse("bogus"), None);
    }

    #[test]
    fn scan_flags_follow_levels() {
        assert!(!FpCheckPolicy::Off.scan_inputs());
        assert!(!FpCheckPolicy::Off.scan_outputs());
        assert!(FpCheckPolicy::ScanInputs.scan_inputs());
        assert!(!FpCheckPolicy::ScanInputs.scan_outputs());
        assert!(!FpCheckPolicy::ScanOutputs.scan_inputs());
        assert!(FpCheckPolicy::ScanOutputs.scan_outputs());
        assert!(FpCheckPolicy::Full.scan_inputs());
        assert!(FpCheckPolicy::Full.scan_outputs());
    }

    #[test]
    fn scoped_policy_stacks_and_restores() {
        let base = policy();
        with_policy(FpCheckPolicy::ScanInputs, || {
            assert_eq!(policy(), FpCheckPolicy::ScanInputs);
            with_policy(FpCheckPolicy::Full, || {
                assert_eq!(policy(), FpCheckPolicy::Full);
            });
            assert_eq!(policy(), FpCheckPolicy::ScanInputs);
        });
        assert_eq!(policy(), base);
    }

    #[test]
    fn all_finite_all_four_types() {
        fn check<T: Scalar>() {
            let nan = T::Real::nan();
            let inf = T::Real::one() / T::Real::zero();
            // Long enough to exercise both the batched body and the tail.
            let mut v: Vec<T> = (0..19).map(|i| T::from_f64(i as f64)).collect();
            assert!(all_finite(&v));
            v[17] = T::from_real(nan);
            assert!(!all_finite(&v));
            v[17] = T::from_real(inf);
            assert!(!all_finite(&v));
            v[17] = T::zero();
            // Imaginary-part poison: dropped by the real types, caught for
            // the complex ones.
            v[3] = T::from_re_im(T::Real::zero(), nan);
            assert_eq!(all_finite(&v), !T::IS_COMPLEX);
        }
        check::<f32>();
        check::<f64>();
        check::<C32>();
        check::<C64>();
        assert!(all_finite::<f64>(&[]));
    }
}
