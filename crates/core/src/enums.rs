//! The character-flag arguments of BLAS/LAPACK (`UPLO`, `TRANS`, `DIAG`,
//! `SIDE`, `NORM`) as Rust enums.
//!
//! The Fortran routines take `CHARACTER(LEN=1)` flags compared with `LSAME`;
//! enums make the same options type-checked. `as_char` preserves the exact
//! Fortran spelling for messages and tests.

/// Which triangle of a symmetric/Hermitian/triangular matrix is stored.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Uplo {
    /// Upper triangle (`'U'`).
    #[default]
    Upper,
    /// Lower triangle (`'L'`).
    Lower,
}

impl Uplo {
    /// Fortran character for this option.
    pub fn as_char(self) -> char {
        match self {
            Uplo::Upper => 'U',
            Uplo::Lower => 'L',
        }
    }
    /// The opposite triangle.
    pub fn flip(self) -> Uplo {
        match self {
            Uplo::Upper => Uplo::Lower,
            Uplo::Lower => Uplo::Upper,
        }
    }
}

/// Operation applied to a matrix operand.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Trans {
    /// No transpose (`'N'`).
    #[default]
    No,
    /// Transpose (`'T'`).
    Trans,
    /// Conjugate transpose (`'C'`); same as [`Trans::Trans`] for real data.
    ConjTrans,
}

impl Trans {
    /// Fortran character for this option.
    pub fn as_char(self) -> char {
        match self {
            Trans::No => 'N',
            Trans::Trans => 'T',
            Trans::ConjTrans => 'C',
        }
    }
    /// True unless this is [`Trans::No`].
    pub fn is_transposed(self) -> bool {
        !matches!(self, Trans::No)
    }
    /// True for the conjugate-transpose option.
    pub fn is_conj(self) -> bool {
        matches!(self, Trans::ConjTrans)
    }
}

/// Whether a triangular matrix has an implicit unit diagonal.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Diag {
    /// Diagonal elements are stored (`'N'`).
    #[default]
    NonUnit,
    /// Diagonal is assumed to be all ones (`'U'`).
    Unit,
}

impl Diag {
    /// Fortran character for this option.
    pub fn as_char(self) -> char {
        match self {
            Diag::NonUnit => 'N',
            Diag::Unit => 'U',
        }
    }
}

/// Side from which a matrix factor is applied.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Side {
    /// Apply from the left (`'L'`).
    #[default]
    Left,
    /// Apply from the right (`'R'`).
    Right,
}

impl Side {
    /// Fortran character for this option.
    pub fn as_char(self) -> char {
        match self {
            Side::Left => 'L',
            Side::Right => 'R',
        }
    }
}

/// Matrix norm selector (`xLANGE`-family `NORM` argument).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Norm {
    /// One norm: maximum column sum (`'1'`/`'O'`).
    #[default]
    One,
    /// Infinity norm: maximum row sum (`'I'`).
    Inf,
    /// Frobenius norm (`'F'`/`'E'`).
    Fro,
    /// `max |a_ij|` — not a consistent matrix norm (`'M'`).
    Max,
}

impl Norm {
    /// Fortran character for this option.
    pub fn as_char(self) -> char {
        match self {
            Norm::One => '1',
            Norm::Inf => 'I',
            Norm::Fro => 'F',
            Norm::Max => 'M',
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chars_match_fortran() {
        assert_eq!(Uplo::Upper.as_char(), 'U');
        assert_eq!(Uplo::Lower.flip(), Uplo::Upper);
        assert_eq!(Trans::ConjTrans.as_char(), 'C');
        assert!(Trans::Trans.is_transposed() && !Trans::No.is_transposed());
        assert_eq!(Diag::Unit.as_char(), 'U');
        assert_eq!(Side::Right.as_char(), 'R');
        assert_eq!(Norm::Fro.as_char(), 'F');
    }

    #[test]
    fn defaults_are_the_common_options() {
        assert_eq!(Uplo::default(), Uplo::Upper);
        assert_eq!(Trans::default(), Trans::No);
        assert_eq!(Norm::default(), Norm::One);
    }
}
