//! Dense column-major matrix type.
//!
//! `Mat<T>` plays the role of the Fortran 90 assumed-shape 2-D array in the
//! LAPACK90 interface: the high-level drivers take `&mut Mat<T>` and derive
//! every dimension argument (`N`, `NRHS`, `LDA`, `LDB`) from its shape, just
//! as `SGESV_F90` derives them with `SIZE(A,1)` etc. The storage is
//! column-major with leading dimension equal to the row count, so the buffer
//! can be passed unchanged to the Fortran-convention routines in `la-lapack`.

use core::fmt;
use core::ops::{Index, IndexMut};

use crate::scalar::Scalar;

/// A dense column-major matrix (Fortran storage order).
#[derive(Clone, PartialEq)]
pub struct Mat<T> {
    data: Vec<T>,
    nrows: usize,
    ncols: usize,
}

impl<T: Scalar> Mat<T> {
    /// Creates an `m × n` matrix of zeros.
    pub fn zeros(m: usize, n: usize) -> Self {
        Mat {
            data: vec![T::zero(); m * n],
            nrows: m,
            ncols: n,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut a = Self::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = T::one();
        }
        a
    }

    /// Builds an `m × n` matrix from a function of `(row, col)`.
    pub fn from_fn(m: usize, n: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(m * n);
        for j in 0..n {
            for i in 0..m {
                data.push(f(i, j));
            }
        }
        Mat {
            data,
            nrows: m,
            ncols: n,
        }
    }

    /// Wraps an existing column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != m * n`.
    pub fn from_col_major(m: usize, n: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), m * n, "buffer length must be m*n");
        Mat {
            data,
            nrows: m,
            ncols: n,
        }
    }

    /// Builds a matrix from rows given in row-major order (convenient for
    /// literals in tests and examples).
    ///
    /// # Panics
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let m = rows.len();
        let n = if m == 0 { 0 } else { rows[0].len() };
        for r in rows {
            assert_eq!(r.len(), n, "all rows must have the same length");
        }
        Self::from_fn(m, n, |i, j| rows[i][j])
    }

    /// Builds a column vector as an `m × 1` matrix.
    pub fn col_vec(v: &[T]) -> Self {
        Self::from_col_major(v.len(), 1, v.to_vec())
    }

    /// Number of rows (`SIZE(A,1)`).
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (`SIZE(A,2)`).
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Leading dimension when the buffer is handed to a Fortran-convention
    /// routine. Always `max(1, nrows)` so zero-sized matrices stay legal.
    #[inline(always)]
    pub fn lda(&self) -> usize {
        self.nrows.max(1)
    }

    /// True if the matrix is square.
    #[inline(always)]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// The underlying column-major buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying column-major buffer, mutably.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Row `i` copied into a `Vec`.
    pub fn row(&self, i: usize) -> Vec<T> {
        (0..self.ncols).map(|j| self[(i, j)]).collect()
    }

    /// Checked element access.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        if i < self.nrows && j < self.ncols {
            Some(&self.data[i + j * self.nrows])
        } else {
            None
        }
    }

    /// Copies the `mb × nb` block with top-left corner `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, mb: usize, nb: usize) -> Mat<T> {
        assert!(r0 + mb <= self.nrows && c0 + nb <= self.ncols);
        Mat::from_fn(mb, nb, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Mat<U> {
        Mat {
            data: self.data.iter().map(|&x| f(x)).collect(),
            nrows: self.nrows,
            ncols: self.ncols,
        }
    }

    /// Plain transpose `Aᵀ`.
    pub fn transpose(&self) -> Mat<T> {
        Mat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose `Aᴴ` (equals `Aᵀ` for real scalars).
    pub fn conj_transpose(&self) -> Mat<T> {
        Mat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)].conj())
    }

    /// Frobenius norm, accumulated in the associated real type.
    pub fn norm_fro(&self) -> T::Real {
        let mut s = T::Real::zero();
        for &x in &self.data {
            s += x.abs_sqr();
        }
        s.rsqrt()
    }

    /// Maximum `abs1` over all elements (a cheap `max |a_ij|`-style norm).
    pub fn norm_max(&self) -> T::Real {
        use crate::scalar::RealScalar;
        let mut m = T::Real::zero();
        for &x in &self.data {
            m = m.maxr(x.abs1());
        }
        m
    }

    /// True iff every element is finite — the [`crate::except`] screening
    /// sweep over the whole stored array (storage is dense, so the buffer
    /// is exactly the matrix).
    pub fn all_finite(&self) -> bool {
        crate::except::all_finite(&self.data)
    }
}

use crate::scalar::RealScalar;

impl<T: Scalar> Index<(usize, usize)> for Mat<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Mat<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

impl<T: Scalar> fmt::Debug for Mat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows {
            write!(f, "  ")?;
            for j in 0..self.ncols {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl<T: Scalar> fmt::Display for Mat<T> {
    /// Prints rows in the style of the paper's `'(7(1X,F9.3))'` format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                write!(f, " {:9.3}", self[(i, j)])?;
            }
            if i + 1 < self.nrows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Builds a [`Mat`] from row-major literals:
/// `mat![[1.0, 2.0], [3.0, 4.0]]`.
#[macro_export]
macro_rules! mat {
    ($([$($x:expr),* $(,)?]),* $(,)?) => {
        $crate::Mat::from_rows(&[$(vec![$($x),*]),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_is_column_major() {
        let a: Mat<f64> = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn identity_and_transpose() {
        let i: Mat<f64> = Mat::identity(3);
        assert_eq!(i.transpose(), i);
        let a: Mat<f64> = Mat::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        let at = a.transpose();
        assert_eq!(at.shape(), (3, 2));
        assert_eq!(at[(2, 1)], a[(1, 2)]);
    }

    #[test]
    fn conj_transpose_conjugates() {
        use crate::complex::C64;
        let a = Mat::from_rows(&[vec![C64::new(1.0, 2.0)], vec![C64::new(3.0, -4.0)]]);
        let ah = a.conj_transpose();
        assert_eq!(ah[(0, 0)], C64::new(1.0, -2.0));
        assert_eq!(ah[(0, 1)], C64::new(3.0, 4.0));
    }

    #[test]
    fn norms() {
        let a: Mat<f64> = mat![[3.0, 0.0], [0.0, 4.0]];
        assert!((a.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(a.norm_max(), 4.0);
    }

    #[test]
    fn block_copy() {
        let a: Mat<f64> = Mat::from_fn(4, 4, |i, j| (i + 10 * j) as f64);
        let b = a.block(1, 2, 2, 2);
        assert_eq!(b[(0, 0)], a[(1, 2)]);
        assert_eq!(b[(1, 1)], a[(2, 3)]);
    }

    #[test]
    fn all_finite_screens_whole_buffer() {
        let mut a: Mat<f64> = Mat::identity(5);
        assert!(a.all_finite());
        a[(3, 2)] = f64::NAN;
        assert!(!a.all_finite());
        a[(3, 2)] = f64::INFINITY;
        assert!(!a.all_finite());
    }

    #[test]
    fn zero_sized_matrices_are_legal() {
        let a: Mat<f64> = Mat::zeros(0, 5);
        assert_eq!(a.lda(), 1);
        assert_eq!(a.as_slice().len(), 0);
    }

    #[test]
    #[should_panic]
    fn from_rows_rejects_ragged() {
        let _: Mat<f64> = Mat::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
