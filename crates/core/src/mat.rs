//! Dense column-major matrix type.
//!
//! `Mat<T>` plays the role of the Fortran 90 assumed-shape 2-D array in the
//! LAPACK90 interface: the high-level drivers take `&mut Mat<T>` and derive
//! every dimension argument (`N`, `NRHS`, `LDA`, `LDB`) from its shape, just
//! as `SGESV_F90` derives them with `SIZE(A,1)` etc. The storage is
//! column-major with leading dimension equal to the row count, so the buffer
//! can be passed unchanged to the Fortran-convention routines in `la-lapack`.

use core::fmt;
use core::ops::{Index, IndexMut};

use crate::scalar::Scalar;

/// A dense column-major matrix (Fortran storage order).
#[derive(Clone, PartialEq)]
pub struct Mat<T> {
    data: Vec<T>,
    nrows: usize,
    ncols: usize,
}

impl<T: Scalar> Mat<T> {
    /// Creates an `m × n` matrix of zeros.
    pub fn zeros(m: usize, n: usize) -> Self {
        Mat {
            data: vec![T::zero(); m * n],
            nrows: m,
            ncols: n,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut a = Self::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = T::one();
        }
        a
    }

    /// Builds an `m × n` matrix from a function of `(row, col)`.
    pub fn from_fn(m: usize, n: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(m * n);
        for j in 0..n {
            for i in 0..m {
                data.push(f(i, j));
            }
        }
        Mat {
            data,
            nrows: m,
            ncols: n,
        }
    }

    /// Wraps an existing column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != m * n`.
    pub fn from_col_major(m: usize, n: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), m * n, "buffer length must be m*n");
        Mat {
            data,
            nrows: m,
            ncols: n,
        }
    }

    /// Builds a matrix from rows given in row-major order (convenient for
    /// literals in tests and examples).
    ///
    /// # Panics
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let m = rows.len();
        let n = if m == 0 { 0 } else { rows[0].len() };
        for r in rows {
            assert_eq!(r.len(), n, "all rows must have the same length");
        }
        Self::from_fn(m, n, |i, j| rows[i][j])
    }

    /// Builds a column vector as an `m × 1` matrix.
    pub fn col_vec(v: &[T]) -> Self {
        Self::from_col_major(v.len(), 1, v.to_vec())
    }

    /// Number of rows (`SIZE(A,1)`).
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (`SIZE(A,2)`).
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Leading dimension when the buffer is handed to a Fortran-convention
    /// routine. Always `max(1, nrows)` so zero-sized matrices stay legal.
    #[inline(always)]
    pub fn lda(&self) -> usize {
        self.nrows.max(1)
    }

    /// True if the matrix is square.
    #[inline(always)]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// The underlying column-major buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying column-major buffer, mutably.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Row `i` copied into a `Vec`.
    pub fn row(&self, i: usize) -> Vec<T> {
        (0..self.ncols).map(|j| self[(i, j)]).collect()
    }

    /// Checked element access.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        if i < self.nrows && j < self.ncols {
            Some(&self.data[i + j * self.nrows])
        } else {
            None
        }
    }

    /// Copies the `mb × nb` block with top-left corner `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, mb: usize, nb: usize) -> Mat<T> {
        assert!(r0 + mb <= self.nrows && c0 + nb <= self.ncols);
        Mat::from_fn(mb, nb, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Mat<U> {
        Mat {
            data: self.data.iter().map(|&x| f(x)).collect(),
            nrows: self.nrows,
            ncols: self.ncols,
        }
    }

    /// Plain transpose `Aᵀ`.
    pub fn transpose(&self) -> Mat<T> {
        Mat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose `Aᴴ` (equals `Aᵀ` for real scalars).
    pub fn conj_transpose(&self) -> Mat<T> {
        Mat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)].conj())
    }

    /// Frobenius norm, accumulated in the associated real type.
    pub fn norm_fro(&self) -> T::Real {
        let mut s = T::Real::zero();
        for &x in &self.data {
            s += x.abs_sqr();
        }
        s.sqrt_r()
    }

    /// Maximum `abs1` over all elements (a cheap `max |a_ij|`-style norm).
    pub fn norm_max(&self) -> T::Real {
        use crate::scalar::RealScalar;
        let mut m = T::Real::zero();
        for &x in &self.data {
            m = m.maxr(x.abs1());
        }
        m
    }

    /// True iff every element is finite — the [`crate::except`] screening
    /// sweep over the whole stored array (storage is dense, so the buffer
    /// is exactly the matrix).
    pub fn all_finite(&self) -> bool {
        crate::except::all_finite(&self.data)
    }
}

impl<T: Scalar> Mat<T> {
    /// An immutable view of the whole matrix (`lda == nrows`).
    #[inline]
    pub fn view(&self) -> MatRef<'_, T> {
        MatRef::new(&self.data, self.nrows, self.ncols, self.lda())
    }

    /// A mutable view of the whole matrix (`lda == nrows`).
    #[inline]
    pub fn view_mut(&mut self) -> MatMut<'_, T> {
        let (m, n) = (self.nrows, self.ncols);
        let lda = self.lda();
        MatMut::new(&mut self.data, m, n, lda)
    }
}

/// An immutable view of a column-major matrix region: a borrowed slice
/// plus `(nrows, ncols, lda)`. This is the typed replacement for the raw
/// `(&[T], lda, offset)` triples the BLAS internals used to pass around —
/// the dimensions travel with the pointer, and subviews/splits are
/// checked once at construction instead of re-derived at every indexing
/// site.
///
/// The backing slice must hold at least `lda·(ncols−1) + nrows` elements
/// (the Fortran convention: the final column need not be padded out to
/// `lda`), with `lda ≥ max(1, nrows)`.
#[derive(Clone, Copy)]
pub struct MatRef<'a, T> {
    data: &'a [T],
    nrows: usize,
    ncols: usize,
    lda: usize,
}

impl<'a, T: Scalar> MatRef<'a, T> {
    /// Wraps a column-major buffer region.
    ///
    /// # Panics
    /// Panics if `lda < max(1, nrows)` or the buffer is too short for the
    /// stated shape.
    #[inline]
    pub fn new(data: &'a [T], nrows: usize, ncols: usize, lda: usize) -> Self {
        assert!(lda >= nrows.max(1), "lda {lda} < max(1, nrows {nrows})");
        if ncols > 0 {
            assert!(
                data.len() >= lda * (ncols - 1) + nrows,
                "buffer of {} too short for {nrows}x{ncols} lda {lda}",
                data.len()
            );
        }
        MatRef {
            data,
            nrows,
            ncols,
            lda,
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Leading dimension of the backing buffer.
    #[inline(always)]
    pub fn lda(&self) -> usize {
        self.lda
    }

    /// The backing slice (length `≥ lda·(ncols−1) + nrows`).
    #[inline(always)]
    pub fn as_slice(&self) -> &'a [T] {
        self.data
    }

    /// Element `(i, j)`, by value.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i + j * self.lda]
    }

    /// Column `j` as a contiguous slice of length `nrows`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [T] {
        let start = j * self.lda;
        &self.data[start..start + self.nrows]
    }

    /// The `m × n` sub-view with top-left corner `(r0, c0)`, sharing the
    /// parent's leading dimension.
    #[inline]
    pub fn subview(&self, r0: usize, c0: usize, m: usize, n: usize) -> MatRef<'a, T> {
        assert!(
            r0 + m <= self.nrows && c0 + n <= self.ncols,
            "subview ({r0},{c0})+{m}x{n} out of {}x{}",
            self.nrows,
            self.ncols
        );
        if m == 0 || n == 0 {
            return MatRef {
                data: &[],
                nrows: m,
                ncols: n,
                lda: self.lda,
            };
        }
        let start = r0 + c0 * self.lda;
        let end = start + self.lda * (n - 1) + m;
        MatRef {
            data: &self.data[start..end],
            nrows: m,
            ncols: n,
            lda: self.lda,
        }
    }

    /// Splits into columns `[0, j)` and `[j, ncols)`.
    #[inline]
    pub fn split_at_col(self, j: usize) -> (MatRef<'a, T>, MatRef<'a, T>) {
        assert!(j <= self.ncols);
        let left_end = if j == 0 {
            0
        } else {
            self.lda * (j - 1) + self.nrows
        };
        let right_start = (j * self.lda).min(self.data.len());
        (
            MatRef {
                data: &self.data[..left_end],
                nrows: self.nrows,
                ncols: j,
                lda: self.lda,
            },
            MatRef {
                data: &self.data[right_start..],
                nrows: self.nrows,
                ncols: self.ncols - j,
                lda: self.lda,
            },
        )
    }
}

/// The mutable counterpart of [`MatRef`]: a uniquely borrowed column-major
/// region. Splitting ([`MatMut::split_at_col`]) hands disjoint column
/// bands to worker threads without raw-pointer arithmetic, which is what
/// the striped BLAS-3 dispatch is built on.
pub struct MatMut<'a, T> {
    data: &'a mut [T],
    nrows: usize,
    ncols: usize,
    lda: usize,
}

impl<'a, T: Scalar> MatMut<'a, T> {
    /// Wraps a column-major buffer region mutably.
    ///
    /// # Panics
    /// Panics if `lda < max(1, nrows)` or the buffer is too short for the
    /// stated shape.
    #[inline]
    pub fn new(data: &'a mut [T], nrows: usize, ncols: usize, lda: usize) -> Self {
        assert!(lda >= nrows.max(1), "lda {lda} < max(1, nrows {nrows})");
        if ncols > 0 {
            assert!(
                data.len() >= lda * (ncols - 1) + nrows,
                "buffer of {} too short for {nrows}x{ncols} lda {lda}",
                data.len()
            );
        }
        MatMut {
            data,
            nrows,
            ncols,
            lda,
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Leading dimension of the backing buffer.
    #[inline(always)]
    pub fn lda(&self) -> usize {
        self.lda
    }

    /// The backing slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        self.data
    }

    /// The backing slice, mutably.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data
    }

    /// Element `(i, j)`, by value.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i + j * self.lda]
    }

    /// Element `(i, j)`, mutably.
    #[inline(always)]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.lda]
    }

    /// Column `j` as a contiguous slice of length `nrows`.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        let start = j * self.lda;
        &self.data[start..start + self.nrows]
    }

    /// Column `j` as a mutable contiguous slice of length `nrows`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        let start = j * self.lda;
        &mut self.data[start..start + self.nrows]
    }

    /// A shared view of the same region.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            data: self.data,
            nrows: self.nrows,
            ncols: self.ncols,
            lda: self.lda,
        }
    }

    /// Reborrows: a mutable view with a shorter lifetime, leaving `self`
    /// usable afterwards.
    #[inline]
    pub fn rb(&mut self) -> MatMut<'_, T> {
        MatMut {
            data: self.data,
            nrows: self.nrows,
            ncols: self.ncols,
            lda: self.lda,
        }
    }

    /// Consumes the view, returning the `m × n` sub-view with top-left
    /// corner `(r0, c0)` and the parent's leading dimension. Use
    /// `v.rb().subview(..)` to keep `v` usable.
    #[inline]
    pub fn subview(self, r0: usize, c0: usize, m: usize, n: usize) -> MatMut<'a, T> {
        assert!(
            r0 + m <= self.nrows && c0 + n <= self.ncols,
            "subview ({r0},{c0})+{m}x{n} out of {}x{}",
            self.nrows,
            self.ncols
        );
        if m == 0 || n == 0 {
            return MatMut {
                data: &mut [],
                nrows: m,
                ncols: n,
                lda: self.lda,
            };
        }
        let start = r0 + c0 * self.lda;
        let end = start + self.lda * (n - 1) + m;
        MatMut {
            data: &mut self.data[start..end],
            nrows: m,
            ncols: n,
            lda: self.lda,
        }
    }

    /// Splits into disjoint mutable column bands `[0, j)` and
    /// `[j, ncols)` — the primitive under the striped parallel dispatch.
    #[inline]
    pub fn split_at_col(self, j: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(j <= self.ncols);
        let left_end = if j == 0 {
            0
        } else {
            self.lda * (j - 1) + self.nrows
        };
        let right_start = (j * self.lda).min(self.data.len());
        let (left_raw, right) = self.data.split_at_mut(right_start);
        (
            MatMut {
                data: &mut left_raw[..left_end],
                nrows: self.nrows,
                ncols: j,
                lda: self.lda,
            },
            MatMut {
                data: right,
                nrows: self.nrows,
                ncols: self.ncols - j,
                lda: self.lda,
            },
        )
    }
}

use crate::scalar::RealScalar;

impl<T: Scalar> Index<(usize, usize)> for Mat<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Mat<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

impl<T: Scalar> fmt::Debug for Mat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows {
            write!(f, "  ")?;
            for j in 0..self.ncols {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl<T: Scalar> fmt::Display for Mat<T> {
    /// Prints rows in the style of the paper's `'(7(1X,F9.3))'` format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                write!(f, " {:9.3}", self[(i, j)])?;
            }
            if i + 1 < self.nrows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Builds a [`Mat`] from row-major literals:
/// `mat![[1.0, 2.0], [3.0, 4.0]]`.
#[macro_export]
macro_rules! mat {
    ($([$($x:expr),* $(,)?]),* $(,)?) => {
        $crate::Mat::from_rows(&[$(vec![$($x),*]),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_is_column_major() {
        let a: Mat<f64> = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn identity_and_transpose() {
        let i: Mat<f64> = Mat::identity(3);
        assert_eq!(i.transpose(), i);
        let a: Mat<f64> = Mat::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        let at = a.transpose();
        assert_eq!(at.shape(), (3, 2));
        assert_eq!(at[(2, 1)], a[(1, 2)]);
    }

    #[test]
    fn conj_transpose_conjugates() {
        use crate::complex::C64;
        let a = Mat::from_rows(&[vec![C64::new(1.0, 2.0)], vec![C64::new(3.0, -4.0)]]);
        let ah = a.conj_transpose();
        assert_eq!(ah[(0, 0)], C64::new(1.0, -2.0));
        assert_eq!(ah[(0, 1)], C64::new(3.0, 4.0));
    }

    #[test]
    fn norms() {
        let a: Mat<f64> = mat![[3.0, 0.0], [0.0, 4.0]];
        assert!((a.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(a.norm_max(), 4.0);
    }

    #[test]
    fn block_copy() {
        let a: Mat<f64> = Mat::from_fn(4, 4, |i, j| (i + 10 * j) as f64);
        let b = a.block(1, 2, 2, 2);
        assert_eq!(b[(0, 0)], a[(1, 2)]);
        assert_eq!(b[(1, 1)], a[(2, 3)]);
    }

    #[test]
    fn all_finite_screens_whole_buffer() {
        let mut a: Mat<f64> = Mat::identity(5);
        assert!(a.all_finite());
        a[(3, 2)] = f64::NAN;
        assert!(!a.all_finite());
        a[(3, 2)] = f64::INFINITY;
        assert!(!a.all_finite());
    }

    #[test]
    fn zero_sized_matrices_are_legal() {
        let a: Mat<f64> = Mat::zeros(0, 5);
        assert_eq!(a.lda(), 1);
        assert_eq!(a.as_slice().len(), 0);
    }

    #[test]
    #[should_panic]
    fn from_rows_rejects_ragged() {
        let _: Mat<f64> = Mat::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn views_index_like_the_matrix() {
        let mut a: Mat<f64> = Mat::from_fn(4, 3, |i, j| (i + 10 * j) as f64);
        let v = a.view();
        assert_eq!((v.nrows(), v.ncols(), v.lda()), (4, 3, 4));
        assert_eq!(v.at(2, 1), a[(2, 1)]);
        assert_eq!(v.col(2), a.col(2));
        let expect = a[(3, 0)];
        let mut m = a.view_mut();
        *m.at_mut(1, 2) = 99.0;
        assert_eq!(m.at(1, 2), 99.0);
        assert_eq!(m.as_ref().at(3, 0), expect);
        assert_eq!(a[(1, 2)], 99.0);
    }

    #[test]
    fn subviews_share_the_parent_lda() {
        let a: Mat<f64> = Mat::from_fn(5, 5, |i, j| (i + 10 * j) as f64);
        let s = a.view().subview(1, 2, 3, 2);
        assert_eq!((s.nrows(), s.ncols(), s.lda()), (3, 2, 5));
        assert_eq!(s.at(0, 0), a[(1, 2)]);
        assert_eq!(s.at(2, 1), a[(3, 3)]);
        let e = s.subview(1, 1, 0, 1);
        assert_eq!((e.nrows(), e.ncols()), (0, 1));
    }

    #[test]
    fn split_at_col_yields_disjoint_bands() {
        let mut a: Mat<f64> = Mat::from_fn(3, 4, |i, j| (i + 10 * j) as f64);
        let want_left = a.block(0, 0, 3, 1);
        let (mut l, mut r) = a.view_mut().split_at_col(1);
        assert_eq!((l.ncols(), r.ncols()), (1, 3));
        assert_eq!(l.at(2, 0), want_left[(2, 0)]);
        l.col_mut(0)[0] = -1.0;
        r.col_mut(2)[2] = -2.0;
        assert_eq!(a[(0, 0)], -1.0);
        assert_eq!(a[(2, 3)], -2.0);
        // Degenerate splits stay legal.
        let (l, r) = a.view().split_at_col(0);
        assert_eq!((l.ncols(), r.ncols()), (0, 4));
        let (l, r) = a.view().split_at_col(4);
        assert_eq!((l.ncols(), r.ncols()), (4, 0));
    }

    #[test]
    fn views_accept_unpadded_final_column() {
        // Fortran convention: the buffer may stop at lda*(n-1)+m.
        let data = vec![0.0f64; 5 * 2 + 3];
        let v: MatRef<'_, f64> = MatRef::new(&data, 3, 3, 5);
        assert_eq!(v.col(2).len(), 3);
        let (_, tail) = v.split_at_col(2);
        assert_eq!(tail.ncols(), 1);
        assert_eq!(tail.col(0).len(), 3);
    }

    #[test]
    #[should_panic]
    fn matref_rejects_short_buffers() {
        let data = vec![0.0f64; 5];
        let _ = MatRef::new(&data, 3, 2, 3);
    }
}
