//! Generic scalar abstraction — the Rust analog of the paper's
//! `LA_PRECISION` module plus Fortran generic resolution.
//!
//! LAPACK90's central point is that one generic name (`LA_GESV`) covers the
//! four Fortran instantiations `S`, `D`, `C`, `Z`. Here a single generic
//! function `gesv<T: Scalar>` covers the same four instantiations
//! `f32`, `f64`, `Complex<f32>`, `Complex<f64>`; monomorphisation performs
//! the resolution the Fortran compiler performed from interface blocks.
//!
//! [`RealScalar`] corresponds to `REAL(WP)` (with `WP => SP | DP`) and also
//! provides the machine parameters LAPACK obtains from `xLAMCH`.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::complex::Complex;

/// An element type usable in every generic BLAS/LAPACK routine:
/// `f32`, `f64`, `Complex<f32>` or `Complex<f64>`.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// The associated real type (`Self` for real scalars).
    type Real: RealScalar;

    /// `true` for the complex instantiations (`C`/`Z`), `false` for `S`/`D`.
    const IS_COMPLEX: bool;

    /// `true` for the software half-precision storage types
    /// ([`crate::half::F16`] / [`crate::half::Bf16`]). The BLAS-3 layer
    /// consults this (it const-folds per instantiation) to route
    /// half-precision `gemm`/`trsm`/`syrk` through f32-accumulating
    /// conversion paths instead of rounding every partial sum to the
    /// 8–11-bit significand.
    const IS_HALF: bool = false;

    /// Single-letter LAPACK type prefix: `S`, `D`, `C` or `Z`.
    const PREFIX: char;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embeds a real value.
    fn from_real(re: Self::Real) -> Self;
    /// Builds from real and imaginary parts; the imaginary part is dropped
    /// for real types (mirrors Fortran `CMPLX`/`REAL` conversions).
    fn from_re_im(re: Self::Real, im: Self::Real) -> Self;
    /// Converts from `f64` (rounding for `f32`-based types).
    fn from_f64(x: f64) -> Self;
    /// Real part.
    fn re(self) -> Self::Real;
    /// Imaginary part (zero for real types).
    fn im(self) -> Self::Real;
    /// Complex conjugate (identity for real types).
    fn conj(self) -> Self;
    /// Modulus `|x|`.
    fn abs(self) -> Self::Real;
    /// The cheap modulus `|re| + |im|` (LAPACK `CABS1`); `|x|` for reals.
    fn abs1(self) -> Self::Real;
    /// Squared modulus.
    fn abs_sqr(self) -> Self::Real;
    /// Multiplies by a real scalar.
    fn mul_real(self, r: Self::Real) -> Self;
    /// Divides by a real scalar.
    fn div_real(self, r: Self::Real) -> Self;
    /// Robust reciprocal (`xLADIV` for complex).
    fn recip(self) -> Self;
    /// Square root (principal branch for complex).
    fn sqrt(self) -> Self;
    /// Exact test against zero.
    #[inline(always)]
    fn is_zero(self) -> bool {
        self == Self::zero()
    }
    /// True when all parts are finite.
    fn is_finite(self) -> bool;
    /// True when any part is NaN.
    fn is_nan(self) -> bool;

    /// Machine epsilon of the associated real type (`xLAMCH('E')`).
    #[inline(always)]
    fn eps() -> Self::Real {
        Self::Real::EPS
    }
}

/// A real scalar (`f32` or `f64`), also providing the machine parameters
/// LAPACK reads through `xLAMCH`.
pub trait RealScalar: Scalar<Real = Self> + PartialOrd {
    /// Relative machine epsilon, `xLAMCH('E')` (ulp of 1.0).
    const EPS: Self;

    /// Safe minimum: smallest positive number whose reciprocal does not
    /// overflow (`xLAMCH('S')`). For IEEE types this is the smallest
    /// positive normal.
    fn sfmin() -> Self;
    /// Underflow threshold (`xLAMCH('U')`), smallest positive normal.
    fn rmin() -> Self;
    /// Overflow threshold (`xLAMCH('O')`), largest finite value.
    fn rmax() -> Self;
    /// `sfmin / eps`: the scaled small number used by the LAPACK drivers
    /// when guarding against over/underflow (`SMLNUM` in e.g. `xGEEV`).
    #[inline]
    fn smlnum() -> Self {
        Self::sfmin() / Self::EPS
    }
    /// `1 / smlnum` (`BIGNUM`).
    #[inline]
    fn bignum() -> Self {
        Self::one() / Self::smlnum()
    }

    /// Absolute value. Named `rabs` to avoid shadowing the inherent method.
    fn rabs(self) -> Self;
    /// Square root. Named `sqrt_r` to avoid shadowing the inherent method
    /// (and, since the rename, to avoid any confusion with [`rsqrt`]).
    ///
    /// History note: this method used to be called `rsqrt` while computing
    /// a plain square root — a naming trap where a caller wanting
    /// reciprocal-sqrt silently got sqrt. The plain square root is now
    /// `sqrt_r` (matching the `sin_r`/`cos_r`/`round_r` convention) and
    /// [`rsqrt`] really is `1/√x`.
    ///
    /// [`rsqrt`]: RealScalar::rsqrt
    fn sqrt_r(self) -> Self;
    /// Reciprocal square root, `1/√x`. Unlike the historic mis-named
    /// method (see [`sqrt_r`]), this genuinely computes the reciprocal:
    /// `rsqrt(4) == 0.5`, `rsqrt(0) == +∞`, `rsqrt(+∞) == 0`.
    ///
    /// [`sqrt_r`]: RealScalar::sqrt_r
    #[inline]
    fn rsqrt(self) -> Self {
        Self::one() / self.sqrt_r()
    }
    /// `sqrt(self² + other²)` without spurious overflow (`xLAPY2`).
    fn hypot(self, other: Self) -> Self;
    /// Four-quadrant arctangent.
    fn atan2(self, other: Self) -> Self;
    /// Sine.
    fn sin_r(self) -> Self;
    /// Cosine.
    fn cos_r(self) -> Self;
    /// Elementwise maximum (NaN-ignoring like Fortran `MAX` on orderable data).
    fn maxr(self, other: Self) -> Self;
    /// Elementwise minimum.
    fn minr(self, other: Self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Base-10 logarithm.
    fn log10(self) -> Self;
    /// Sign transfer: `|self| * sign(other)` (Fortran `SIGN`, with
    /// `sign(0) = +1` as LAPACK assumes).
    #[inline]
    fn sign(self, other: Self) -> Self {
        if other >= Self::zero() {
            self.rabs()
        } else {
            -self.rabs()
        }
    }
    /// Rounds to nearest integer value.
    fn round_r(self) -> Self;
    /// Conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from a count (exact for the sizes used here).
    fn from_usize(n: usize) -> Self;
    /// Finite test, named to avoid shadowing the inherent method.
    fn is_finite_r(self) -> bool;
    /// A quiet NaN, for the NaN-propagating reductions of the exception
    /// contract (`lange`, `lassq`; see `la_core::except`).
    fn nan() -> Self;
    /// LAPACK type prefix of the *complex* type built over this real type
    /// (`C` for `f32`, `Z` for `f64`).
    const CPREFIX: char;
}

macro_rules! impl_real_scalar {
    ($t:ty, $prefix:expr, $cprefix:expr) => {
        impl Scalar for $t {
            type Real = $t;
            const IS_COMPLEX: bool = false;
            const PREFIX: char = $prefix;

            #[inline(always)]
            fn zero() -> Self {
                0.0
            }
            #[inline(always)]
            fn one() -> Self {
                1.0
            }
            #[inline(always)]
            fn from_real(re: $t) -> Self {
                re
            }
            #[inline(always)]
            fn from_re_im(re: $t, _im: $t) -> Self {
                re
            }
            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn re(self) -> $t {
                self
            }
            #[inline(always)]
            fn im(self) -> $t {
                0.0
            }
            #[inline(always)]
            fn conj(self) -> Self {
                self
            }
            #[inline(always)]
            fn abs(self) -> $t {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn abs1(self) -> $t {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn abs_sqr(self) -> $t {
                self * self
            }
            #[inline(always)]
            fn mul_real(self, r: $t) -> Self {
                self * r
            }
            #[inline(always)]
            fn div_real(self, r: $t) -> Self {
                self / r
            }
            #[inline(always)]
            fn recip(self) -> Self {
                1.0 / self
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
        }

        impl RealScalar for $t {
            const EPS: Self = <$t>::EPSILON;
            const CPREFIX: char = $cprefix;

            #[inline(always)]
            fn sfmin() -> Self {
                <$t>::MIN_POSITIVE
            }
            #[inline(always)]
            fn rmin() -> Self {
                <$t>::MIN_POSITIVE
            }
            #[inline(always)]
            fn rmax() -> Self {
                <$t>::MAX
            }
            #[inline(always)]
            fn rabs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt_r(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }
            #[inline(always)]
            fn atan2(self, other: Self) -> Self {
                <$t>::atan2(self, other)
            }
            #[inline(always)]
            fn sin_r(self) -> Self {
                <$t>::sin(self)
            }
            #[inline(always)]
            fn cos_r(self) -> Self {
                <$t>::cos(self)
            }
            #[inline(always)]
            fn maxr(self, other: Self) -> Self {
                if self >= other {
                    self
                } else {
                    other
                }
            }
            #[inline(always)]
            fn minr(self, other: Self) -> Self {
                if self <= other {
                    self
                } else {
                    other
                }
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn log10(self) -> Self {
                <$t>::log10(self)
            }
            #[inline(always)]
            fn round_r(self) -> Self {
                <$t>::round(self)
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_usize(n: usize) -> Self {
                n as $t
            }
            #[inline(always)]
            fn is_finite_r(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn nan() -> Self {
                <$t>::NAN
            }
        }
    };
}

impl_real_scalar!(f32, 'S', 'C');
impl_real_scalar!(f64, 'D', 'Z');

impl<R: RealScalar> Scalar for Complex<R> {
    type Real = R;
    const IS_COMPLEX: bool = true;
    const PREFIX: char = R::CPREFIX;

    #[inline(always)]
    fn zero() -> Self {
        Complex::zero()
    }
    #[inline(always)]
    fn one() -> Self {
        Complex::one()
    }
    #[inline(always)]
    fn from_real(re: R) -> Self {
        Complex::from_real(re)
    }
    #[inline(always)]
    fn from_re_im(re: R, im: R) -> Self {
        Complex::new(re, im)
    }
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        Complex::from_real(R::from_f64(x).re())
    }
    #[inline(always)]
    fn re(self) -> R {
        self.re
    }
    #[inline(always)]
    fn im(self) -> R {
        self.im
    }
    #[inline(always)]
    fn conj(self) -> Self {
        Complex::conj(self)
    }
    #[inline(always)]
    fn abs(self) -> R {
        Complex::abs(self)
    }
    #[inline(always)]
    fn abs1(self) -> R {
        Complex::abs1(self)
    }
    #[inline(always)]
    fn abs_sqr(self) -> R {
        Complex::norm_sqr(self)
    }
    #[inline(always)]
    fn mul_real(self, r: R) -> Self {
        self.scale(r)
    }
    #[inline(always)]
    fn div_real(self, r: R) -> Self {
        self.unscale(r)
    }
    #[inline(always)]
    fn recip(self) -> Self {
        Complex::recip(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        Complex::sqrt(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        Complex::is_finite(self)
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        Complex::is_nan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{C32, C64};

    #[allow(clippy::eq_op)] // `one - one == zero` etc. are the axioms under test
    fn generic_axioms<T: Scalar>() {
        let one = T::one();
        let zero = T::zero();
        assert!(zero.is_zero());
        assert!(!one.is_zero());
        assert_eq!(one + zero, one);
        assert_eq!(one * one, one);
        assert_eq!(one - one, zero);
        assert_eq!(one.conj().conj(), one);
        assert_eq!(T::from_f64(2.0) * T::from_f64(3.0), T::from_f64(6.0));
        let x = T::from_re_im(T::Real::from_usize(3), T::Real::from_usize(4));
        assert!(
            (x.abs_sqr() - x.abs() * x.abs()).rabs()
                <= T::Real::EPS * x.abs_sqr() * T::Real::from_usize(4)
        );
        assert!((x * x.recip() - one).abs() <= T::Real::EPS * T::Real::from_usize(8));
    }

    #[test]
    fn axioms_all_four_instantiations() {
        generic_axioms::<f32>();
        generic_axioms::<f64>();
        generic_axioms::<C32>();
        generic_axioms::<C64>();
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants are the contract
    fn prefixes_match_lapack() {
        assert_eq!(f32::PREFIX, 'S');
        assert_eq!(f64::PREFIX, 'D');
        assert_eq!(C32::PREFIX, 'C');
        assert_eq!(C64::PREFIX, 'Z');
        assert!(!f64::IS_COMPLEX && C64::IS_COMPLEX);
    }

    #[test]
    fn machine_params_match_paper() {
        // The paper's Appendix E/F report eps = 1.1921e-07 in single precision.
        assert!((f32::EPS as f64 - 1.1920929e-7).abs() < 1e-13);
        assert!(f64::sfmin() > 0.0 && (1.0 / f64::sfmin()).is_finite());
        assert!(f64::smlnum() < f64::EPS && f64::bignum() > 1.0 / f64::EPS);
    }

    #[test]
    fn sign_transfer_matches_fortran() {
        assert_eq!(3.0f64.sign(-2.0), -3.0);
        assert_eq!((-3.0f64).sign(2.0), 3.0);
        assert_eq!(3.0f64.sign(0.0), 3.0);
    }

    #[test]
    fn real_abs1_equals_abs() {
        assert_eq!(Scalar::abs1(-2.5f64), 2.5);
        assert_eq!(Scalar::abs(-2.5f64), 2.5);
    }

    #[test]
    fn sqrt_r_and_rsqrt_semantics_locked() {
        // The naming trap this test guards against: `rsqrt` was once a
        // plain square root. `sqrt_r` is √x, `rsqrt` is 1/√x — forever.
        fn check<R: RealScalar>() {
            assert_eq!(R::from_usize(4).sqrt_r(), R::from_usize(2));
            assert_eq!(
                R::from_usize(4).rsqrt(),
                R::from_usize(1) / R::from_usize(2)
            );
            assert_eq!(R::from_usize(1).rsqrt(), R::one());
            // rsqrt(0) diverges instead of returning 0 — the reciprocal
            // really is taken.
            assert!(!R::zero().rsqrt().is_finite_r());
            let x = R::from_f64(2.0);
            assert!(
                (x.rsqrt() * x.sqrt_r() - R::one()).rabs() <= R::EPS * R::from_usize(4),
                "rsqrt·sqrt_r must be ~1"
            );
        }
        check::<f32>();
        check::<f64>();
    }
}
