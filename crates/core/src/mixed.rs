//! Precision lattice — the type-level bridge for mixed-precision
//! algorithms (Dongarra-lineage `DSGESV`/`ZCGESV` iterative refinement
//! and its GMRES-IR three-precision descendants).
//!
//! LAPACK90's generic resolution picks *one* instantiation of the
//! S/D/C/Z quadruple per call. Mixed-precision refinement needs *two* at
//! once: the working precision the caller's data lives in, and the low
//! precision the O(n³) factorization runs in. [`Demote`] and [`Promote`]
//! connect the canonical pairs — `f64 ↔ f32` and
//! `Complex<f64> ↔ Complex<f32>` — so a single generic driver can round
//! its matrix down, factor cheaply, and widen the solution back for
//! full-precision refinement.
//!
//! [`DemoteTo`] generalizes the pairing into a lattice with multiple
//! demotion targets per working type (MPLAPACK-style, arXiv:2109.13406):
//!
//! ```text
//!           Dd  (extended residuals, la_core::dd)
//!            ↑
//!   f64 ──→ f32 ──→ F16 / Bf16        C64 ──→ C32
//!     └────────────→ F16 / Bf16   (complex stops at C32: half-precision
//!                                  complex demotion buys <2× on top of
//!                                  the 4× real-flop ratio and is not in
//!                                  the lattice)
//! ```
//!
//! The per-edge constants mirror what `DSGESV` reads from `SLAMCH`:
//! [`Demote::lo_eps`] (the low precision's unit roundoff, expressed in
//! the working real type — the per-iteration error floor of the low
//! factorization), [`Demote::lo_overflow`] (the low precision's overflow
//! threshold — a working-precision entry beyond it cannot be demoted,
//! the `DLAG2S` failure mode) and [`Demote::lo_rmin`] (the smallest
//! positive normal — with f16's 2⁻¹⁴ floor, whole well-conditioned rows
//! can demote to zero, the underflow failure mode [`demote_slice`] now
//! flags; see Demmel et al., arXiv:2207.09281 on surfacing narrow-range
//! hazards instead of silently diverging).
//!
//! ```
//! use la_core::mixed::{Demote, DemoteTo, Promote};
//! use la_core::half::Bf16;
//! let x: f64 = 1.0 + f64::EPSILON; // below f32 resolution
//! let lo: f32 = x.demote();
//! assert_eq!(lo, 1.0f32);
//! assert_eq!(lo.promote(), 1.0f64); // widening is exact
//! assert_eq!(f64::lo_eps(), f32::EPSILON as f64);
//! // The same value through the lattice to bfloat16:
//! let h: Bf16 = DemoteTo::<Bf16>::demote_to(3.0f64);
//! assert_eq!(f64::promote_back(h), 3.0);
//! ```

use crate::complex::Complex;
use crate::half::{Bf16, F16};
use crate::scalar::{RealScalar, Scalar};

/// A working-precision scalar that has a lower-precision counterpart:
/// `f64 → f32`, `Complex<f64> → Complex<f32>`.
///
/// The demotion rounds (to nearest); entries larger in magnitude than
/// [`Demote::lo_overflow`] leave the low precision's finite range, which
/// mixed-precision drivers must detect (see [`demote_slice`]) and answer
/// with their full-precision fallback path.
pub trait Demote: Scalar {
    /// The low-precision counterpart (same real/complex structure).
    type Lo: Promote<Hi = Self> + Scalar;

    /// Rounds to the low precision.
    fn demote(self) -> Self::Lo;

    /// The low precision's unit roundoff in working-precision terms
    /// (`SLAMCH('E')` seen from the `D` side): the accuracy floor of one
    /// low-precision solve, hence the per-iteration contraction factor of
    /// mixed refinement.
    #[inline]
    fn lo_eps() -> Self::Real {
        Self::Real::from_f64(<<Self::Lo as Scalar>::Real as RealScalar>::EPS.to_f64())
    }

    /// The low precision's overflow threshold in working-precision terms
    /// (`SLAMCH('O')` seen from the `D` side): any entry with `|re|` or
    /// `|im|` above it demotes to infinity.
    #[inline]
    fn lo_overflow() -> Self::Real {
        Self::Real::from_f64(<<Self::Lo as Scalar>::Real as RealScalar>::rmax().to_f64())
    }

    /// The low precision's underflow threshold in working-precision terms
    /// (`SLAMCH('U')` seen from the `D` side): entries far below it
    /// demote to zero, erasing structure the factorization needs.
    #[inline]
    fn lo_rmin() -> Self::Real {
        Self::Real::from_f64(<<Self::Lo as Scalar>::Real as RealScalar>::rmin().to_f64())
    }
}

/// A working-precision scalar with a *specific* demotion target `L` —
/// one edge of the precision lattice. Unlike [`Demote`] (whose one
/// `Lo` per type keeps the classic two-precision drivers simple), a
/// type implements `DemoteTo<L>` once per reachable level: `f64`
/// reaches `f32`, [`F16`] and [`Bf16`]; `f32` reaches the half types;
/// `Complex<f64>` reaches `Complex<f32>`.
///
/// The `f64 → F16/Bf16` edges round through `f32` first. The composed
/// rounding can differ from a single direct rounding by one ulp on
/// exact-tie values (classic double rounding); for demotion targets —
/// where the value is an approximation seed, not the answer — this is
/// immaterial and keeps the conversion kernels in one place
/// (`la_core::half`).
pub trait DemoteTo<L: Scalar>: Scalar {
    /// Rounds to the target precision.
    fn demote_to(self) -> L;

    /// Widens a target-precision value back (exact: every lattice
    /// target's value set embeds in every working type above it).
    fn promote_back(lo: L) -> Self;

    /// The target's unit roundoff in working-precision terms.
    #[inline]
    fn lo_eps_of() -> Self::Real {
        Self::Real::from_f64(<L::Real as RealScalar>::EPS.to_f64())
    }

    /// The target's overflow threshold in working-precision terms.
    #[inline]
    fn lo_overflow_of() -> Self::Real {
        Self::Real::from_f64(<L::Real as RealScalar>::rmax().to_f64())
    }

    /// The target's smallest positive normal in working-precision terms.
    #[inline]
    fn lo_rmin_of() -> Self::Real {
        Self::Real::from_f64(<L::Real as RealScalar>::rmin().to_f64())
    }
}

/// Every classic [`Demote`] pair is an edge of the lattice.
impl<T: Demote> DemoteTo<T::Lo> for T {
    #[inline(always)]
    fn demote_to(self) -> T::Lo {
        self.demote()
    }
    #[inline(always)]
    fn promote_back(lo: T::Lo) -> T {
        lo.promote()
    }
}

macro_rules! impl_half_edge {
    ($working:ty, $half:ty) => {
        impl DemoteTo<$half> for $working {
            #[inline(always)]
            #[allow(clippy::unnecessary_cast)] // identity when $working = f32
            fn demote_to(self) -> $half {
                <$half>::from_f32(self as f32)
            }
            #[inline(always)]
            #[allow(clippy::unnecessary_cast)]
            fn promote_back(lo: $half) -> $working {
                lo.to_f32() as $working
            }
        }
    };
}

impl_half_edge!(f64, F16);
impl_half_edge!(f64, Bf16);
impl_half_edge!(f32, F16);
impl_half_edge!(f32, Bf16);

/// A low-precision scalar that widens exactly into its working-precision
/// counterpart: `f32 → f64`, `Complex<f32> → Complex<f64>`.
pub trait Promote: Scalar {
    /// The working-precision counterpart.
    type Hi: Demote<Lo = Self> + Scalar;

    /// Widens to the working precision (exact — every `f32` value is an
    /// `f64` value).
    fn promote(self) -> Self::Hi;
}

impl Demote for f64 {
    type Lo = f32;
    #[inline(always)]
    fn demote(self) -> f32 {
        self as f32
    }
}

impl Promote for f32 {
    type Hi = f64;
    #[inline(always)]
    fn promote(self) -> f64 {
        self as f64
    }
}

impl Demote for Complex<f64> {
    type Lo = Complex<f32>;
    #[inline(always)]
    fn demote(self) -> Complex<f32> {
        Complex::new(self.re as f32, self.im as f32)
    }
}

impl Promote for Complex<f32> {
    type Hi = Complex<f64>;
    #[inline(always)]
    fn promote(self) -> Complex<f64> {
        Complex::new(self.re as f64, self.im as f64)
    }
}

/// Outcome of a checked slice demotion: which of the two range hazards
/// occurred. Both mean the low-precision image misrepresents the data
/// and the driver must take its full-precision fallback (`iter = -2` in
/// the mixed drivers' convention).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DemoteFlags {
    /// A finite source entry demoted to ±∞ (the `DLAG2S` `INFO > 0`
    /// condition).
    pub overflow: bool,
    /// A non-zero finite source component demoted to zero. With f16's
    /// 2⁻¹⁴ normal floor this silently zeroes well-scaled rows; left
    /// unflagged, the refinement loop diverges instead of falling back.
    pub underflow: bool,
}

impl DemoteFlags {
    /// `true` when the demotion preserved every entry's finiteness and
    /// non-zero structure.
    #[inline]
    pub fn ok(self) -> bool {
        !self.overflow && !self.underflow
    }

    #[inline]
    fn record<T: DemoteTo<L>, L: Scalar>(&mut self, s: T, lo: L) {
        // Non-finite *sources* are not flagged here: NaN/Inf inputs are
        // the domain of the `except` screening policy.
        self.overflow |= !lo.is_finite() && s.is_finite();
        self.underflow |= (lo.re().is_zero() && !s.re().is_zero() && s.re().is_finite_r())
            || (lo.im().is_zero() && !s.im().is_zero() && s.im().is_finite_r());
    }
}

/// Demotes `src` elementwise into `dst` along any lattice edge,
/// reporting overflow-to-∞ and underflow-to-zero separately in
/// [`DemoteFlags`]. Callers demoting *residuals* (which legitimately
/// shrink toward zero) should pre-scale by an exact power of two and
/// consult only the `overflow` flag; callers demoting the *matrix*
/// should require [`DemoteFlags::ok`].
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn demote_to_slice<T: DemoteTo<L>, L: Scalar>(src: &[T], dst: &mut [L]) -> DemoteFlags {
    assert_eq!(src.len(), dst.len(), "demote_to_slice: length mismatch");
    let mut flags = DemoteFlags::default();
    for (d, &s) in dst.iter_mut().zip(src) {
        let lo = s.demote_to();
        flags.record(s, lo);
        *d = lo;
    }
    flags
}

/// Widens `src` elementwise into `dst` along any lattice edge (exact).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn promote_back_slice<T: DemoteTo<L>, L: Scalar>(src: &[L], dst: &mut [T]) {
    assert_eq!(src.len(), dst.len(), "promote_back_slice: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = T::promote_back(s);
    }
}

/// Demotes `src` elementwise into `dst`. Returns `false` when any finite
/// source entry leaves the low precision's *representable* range — either
/// overflowing to infinity (the `DLAG2S` `INFO > 0` condition) or
/// underflowing to zero while the source component was non-zero — and the
/// caller must then take its full-precision path. A non-finite *source*
/// entry is not flagged here: NaN/Inf inputs are the domain of the
/// [`crate::except`] screening policy.
///
/// (Until the lattice generalization this checked overflow only; the
/// underflow leg went unflagged, which f16's narrow range turns from a
/// latent hazard into a routine divergence. Use [`demote_to_slice`] when
/// the two hazards need different handling.)
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn demote_slice<T: Demote>(src: &[T], dst: &mut [T::Lo]) -> bool {
    demote_to_slice(src, dst).ok()
}

/// Widens `src` elementwise into `dst` (exact).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn promote_slice<L: Promote>(src: &[L], dst: &mut [L::Hi]) {
    assert_eq!(src.len(), dst.len(), "promote_slice: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.promote();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{C32, C64};

    #[test]
    fn demotion_rounds_promotion_is_exact() {
        let x = 1.0f64 + f64::EPSILON;
        assert_eq!(x.demote(), 1.0f32);
        // Round trip through the pair is the identity on f32 values.
        for v in [0.0f32, -1.5, f32::MIN_POSITIVE, f32::MAX] {
            assert_eq!(v.promote().demote(), v);
        }
        let z = C64::new(3.25, -0.5);
        assert_eq!(z.demote(), C32::new(3.25, -0.5));
        assert_eq!(z.demote().promote(), z); // representable both ways
    }

    #[test]
    fn pair_constants_match_slamch() {
        assert_eq!(f64::lo_eps(), f32::EPSILON as f64);
        assert_eq!(f64::lo_overflow(), f32::MAX as f64);
        assert_eq!(C64::lo_eps(), f32::EPSILON as f64);
        assert_eq!(C64::lo_overflow(), f32::MAX as f64);
        // The pair is genuinely mixed: the low eps is far coarser than
        // the working eps.
        assert!(f64::lo_eps() > 1e7 * f64::EPSILON);
    }

    #[test]
    fn demote_slice_flags_overflow() {
        let src = [1.0f64, 2.0, 3.0];
        let mut dst = [0.0f32; 3];
        assert!(demote_slice(&src, &mut dst));
        assert_eq!(dst, [1.0f32, 2.0, 3.0]);

        let src = [1.0f64, 1e300, 3.0]; // 1e300 overflows f32
        assert!(!demote_slice(&src, &mut dst));

        // Non-finite sources pass through unflagged (screening territory).
        let src = [f64::INFINITY, 1.0, 2.0];
        assert!(demote_slice(&src, &mut dst));
        assert!(dst[0].is_infinite());

        let zsrc = [C64::new(0.0, 1e300)];
        let mut zdst = [C32::new(0.0, 0.0)];
        assert!(!demote_slice(&zsrc, &mut zdst));
    }

    #[test]
    fn demote_slice_flags_underflow_to_zero() {
        // 1e-300 is a perfectly healthy f64 but demotes to 0.0f32 — the
        // hazard that used to slip through and send refinement diverging.
        let src = [1.0f64, 1e-300, 3.0];
        let mut dst = [0.0f32; 3];
        assert!(!demote_slice(&src, &mut dst));

        let flags = demote_to_slice(&src, &mut dst);
        assert!(flags.underflow && !flags.overflow && !flags.ok());

        // Exact zeros are structure, not underflow.
        let src = [0.0f64, -0.0, 2.0];
        assert!(demote_slice(&src, &mut dst));

        // A subnormal-but-nonzero image is not flagged: magnitude
        // survived, only precision was lost.
        let src = [2.0f64.powi(-140)];
        let mut one = [0.0f32];
        let flags = demote_to_slice(&src, &mut one);
        assert!(one[0] > 0.0 && flags.ok());

        // Complex: a zeroed imaginary part alone trips the flag.
        let zsrc = [C64::new(1.0, 1e-300)];
        let mut zdst = [C32::new(0.0, 0.0)];
        assert!(!demote_to_slice(&zsrc, &mut zdst).ok());
    }

    #[test]
    fn lattice_edges_to_half_types() {
        use crate::half::{Bf16, F16};
        // f64 → F16 → f64 round trip on f16-representable values.
        for v in [0.0f64, 1.0, -2.5, 1024.0, 0.000_061_035_156_25] {
            let h: F16 = v.demote_to();
            assert_eq!(f64::promote_back(h), v, "f16 round trip of {v}");
            let b: Bf16 = v.demote_to();
            assert_eq!(f64::promote_back(b), v, "bf16 round trip of {v}");
        }
        // Per-edge machine constants seen from the working side.
        assert_eq!(<f64 as DemoteTo<F16>>::lo_eps_of(), 2f64.powi(-10));
        assert_eq!(<f64 as DemoteTo<F16>>::lo_overflow_of(), 65504.0);
        assert_eq!(<f64 as DemoteTo<F16>>::lo_rmin_of(), 2f64.powi(-14));
        assert_eq!(<f64 as DemoteTo<Bf16>>::lo_eps_of(), 2f64.powi(-7));
        assert_eq!(
            <f64 as DemoteTo<Bf16>>::lo_rmin_of(),
            f32::MIN_POSITIVE as f64
        );
        // The blanket edge agrees with the classic pair.
        assert_eq!(<f64 as DemoteTo<f32>>::lo_eps_of(), f64::lo_eps());

        // f16's narrow range: both hazards on one matrix-row-like slice.
        let src = [70000.0f64, 1e-8, 1.0];
        let mut dst = [F16::from_f32(0.0); 3];
        let flags = demote_to_slice(&src, &mut dst);
        assert!(flags.overflow && flags.underflow);
        // bf16 keeps f32 range: the same slice only loses precision.
        let mut bdst = [Bf16::from_f32(0.0); 3];
        assert!(demote_to_slice(&src, &mut bdst).ok());

        // promote_back_slice is exact.
        let hsrc = [F16::from_f32(1.5), F16::from_f32(-0.25)];
        let mut wide = [0.0f64; 2];
        promote_back_slice(&hsrc, &mut wide);
        assert_eq!(wide, [1.5, -0.25]);
    }

    #[test]
    fn promote_slice_widens() {
        let src = [1.5f32, -2.25];
        let mut dst = [0.0f64; 2];
        promote_slice(&src, &mut dst);
        assert_eq!(dst, [1.5f64, -2.25]);
    }
}
