//! Precision pairing — the type-level bridge for mixed-precision
//! algorithms (Dongarra-lineage `DSGESV`/`ZCGESV` iterative refinement).
//!
//! LAPACK90's generic resolution picks *one* instantiation of the
//! S/D/C/Z quadruple per call. Mixed-precision refinement needs *two* at
//! once: the working precision the caller's data lives in, and the low
//! precision the O(n³) factorization runs in. [`Demote`] and [`Promote`]
//! connect the two pairs — `f64 ↔ f32` and `Complex<f64> ↔ Complex<f32>`
//! — so a single generic driver can round its matrix down, factor
//! cheaply, and widen the solution back for full-precision refinement.
//!
//! The per-pair constants mirror what `DSGESV` reads from `SLAMCH`:
//! [`Demote::lo_eps`] (the low precision's unit roundoff, expressed in
//! the working real type — the per-iteration error floor of the low
//! factorization) and [`Demote::lo_overflow`] (the low precision's
//! overflow threshold — a working-precision entry beyond it cannot be
//! demoted, the `DLAG2S` failure mode).
//!
//! ```
//! use la_core::mixed::{Demote, Promote};
//! let x: f64 = 1.0 + f64::EPSILON; // below f32 resolution
//! let lo: f32 = x.demote();
//! assert_eq!(lo, 1.0f32);
//! assert_eq!(lo.promote(), 1.0f64); // widening is exact
//! assert_eq!(f64::lo_eps(), f32::EPSILON as f64);
//! ```

use crate::complex::Complex;
use crate::scalar::{RealScalar, Scalar};

/// A working-precision scalar that has a lower-precision counterpart:
/// `f64 → f32`, `Complex<f64> → Complex<f32>`.
///
/// The demotion rounds (to nearest); entries larger in magnitude than
/// [`Demote::lo_overflow`] leave the low precision's finite range, which
/// mixed-precision drivers must detect (see [`demote_slice`]) and answer
/// with their full-precision fallback path.
pub trait Demote: Scalar {
    /// The low-precision counterpart (same real/complex structure).
    type Lo: Promote<Hi = Self> + Scalar;

    /// Rounds to the low precision.
    fn demote(self) -> Self::Lo;

    /// The low precision's unit roundoff in working-precision terms
    /// (`SLAMCH('E')` seen from the `D` side): the accuracy floor of one
    /// low-precision solve, hence the per-iteration contraction factor of
    /// mixed refinement.
    #[inline]
    fn lo_eps() -> Self::Real {
        Self::Real::from_f64(<<Self::Lo as Scalar>::Real as RealScalar>::EPS.to_f64())
    }

    /// The low precision's overflow threshold in working-precision terms
    /// (`SLAMCH('O')` seen from the `D` side): any entry with `|re|` or
    /// `|im|` above it demotes to infinity.
    #[inline]
    fn lo_overflow() -> Self::Real {
        Self::Real::from_f64(<<Self::Lo as Scalar>::Real as RealScalar>::rmax().to_f64())
    }
}

/// A low-precision scalar that widens exactly into its working-precision
/// counterpart: `f32 → f64`, `Complex<f32> → Complex<f64>`.
pub trait Promote: Scalar {
    /// The working-precision counterpart.
    type Hi: Demote<Lo = Self> + Scalar;

    /// Widens to the working precision (exact — every `f32` value is an
    /// `f64` value).
    fn promote(self) -> Self::Hi;
}

impl Demote for f64 {
    type Lo = f32;
    #[inline(always)]
    fn demote(self) -> f32 {
        self as f32
    }
}

impl Promote for f32 {
    type Hi = f64;
    #[inline(always)]
    fn promote(self) -> f64 {
        self as f64
    }
}

impl Demote for Complex<f64> {
    type Lo = Complex<f32>;
    #[inline(always)]
    fn demote(self) -> Complex<f32> {
        Complex::new(self.re as f32, self.im as f32)
    }
}

impl Promote for Complex<f32> {
    type Hi = Complex<f64>;
    #[inline(always)]
    fn promote(self) -> Complex<f64> {
        Complex::new(self.re as f64, self.im as f64)
    }
}

/// Demotes `src` elementwise into `dst`. Returns `false` when any finite
/// source entry leaves the low precision's finite range (the `DLAG2S`
/// `INFO > 0` condition) — the caller must then take its full-precision
/// path. A non-finite *source* entry is not flagged here: NaN/Inf inputs
/// are the domain of the [`crate::except`] screening policy.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn demote_slice<T: Demote>(src: &[T], dst: &mut [T::Lo]) -> bool {
    assert_eq!(src.len(), dst.len(), "demote_slice: length mismatch");
    let mut ok = true;
    for (d, &s) in dst.iter_mut().zip(src) {
        let lo = s.demote();
        ok &= lo.is_finite() || !s.is_finite();
        *d = lo;
    }
    ok
}

/// Widens `src` elementwise into `dst` (exact).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn promote_slice<L: Promote>(src: &[L], dst: &mut [L::Hi]) {
    assert_eq!(src.len(), dst.len(), "promote_slice: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.promote();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{C32, C64};

    #[test]
    fn demotion_rounds_promotion_is_exact() {
        let x = 1.0f64 + f64::EPSILON;
        assert_eq!(x.demote(), 1.0f32);
        // Round trip through the pair is the identity on f32 values.
        for v in [0.0f32, -1.5, f32::MIN_POSITIVE, f32::MAX] {
            assert_eq!(v.promote().demote(), v);
        }
        let z = C64::new(3.25, -0.5);
        assert_eq!(z.demote(), C32::new(3.25, -0.5));
        assert_eq!(z.demote().promote(), z); // representable both ways
    }

    #[test]
    fn pair_constants_match_slamch() {
        assert_eq!(f64::lo_eps(), f32::EPSILON as f64);
        assert_eq!(f64::lo_overflow(), f32::MAX as f64);
        assert_eq!(C64::lo_eps(), f32::EPSILON as f64);
        assert_eq!(C64::lo_overflow(), f32::MAX as f64);
        // The pair is genuinely mixed: the low eps is far coarser than
        // the working eps.
        assert!(f64::lo_eps() > 1e7 * f64::EPSILON);
    }

    #[test]
    fn demote_slice_flags_overflow() {
        let src = [1.0f64, 2.0, 3.0];
        let mut dst = [0.0f32; 3];
        assert!(demote_slice(&src, &mut dst));
        assert_eq!(dst, [1.0f32, 2.0, 3.0]);

        let src = [1.0f64, 1e300, 3.0]; // 1e300 overflows f32
        assert!(!demote_slice(&src, &mut dst));

        // Non-finite sources pass through unflagged (screening territory).
        let src = [f64::INFINITY, 1.0, 2.0];
        assert!(demote_slice(&src, &mut dst));
        assert!(dst[0].is_infinite());

        let zsrc = [C64::new(0.0, 1e300)];
        let mut zdst = [C32::new(0.0, 0.0)];
        assert!(!demote_slice(&zsrc, &mut zdst));
    }

    #[test]
    fn promote_slice_widens() {
        let src = [1.5f32, -2.25];
        let mut dst = [0.0f64; 2];
        promote_slice(&src, &mut dst);
        assert_eq!(dst, [1.5f64, -2.25]);
    }
}
