//! Dependency-tracked task-graph runtime — the tile-DAG engine under the
//! tiled factorizations (PLASMA-style superscalar scheduling).
//!
//! The blocked factorizations fork-join inside every BLAS-3 call, so the
//! trailing update of step `k` cannot overlap the panel factor of step
//! `k+1`. This module removes that barrier: an algorithm *declares* its
//! tasks with the resources (tile ids, workspace ids) each one reads and
//! writes, the [`Builder`] infers the RAW/WAR/WAW edges sequential-task-
//! flow style, and [`Builder::run`] executes the graph on a scoped worker
//! pool that starts any task the moment its predecessors finish.
//!
//! The robustness contract matches [`crate::batch`], per *task* instead
//! of per job:
//!
//! * **Panic isolation** — a task body that panics is caught at the task
//!   boundary and recorded as [`crate::cancel::INFO_PANICKED`] (`-104`);
//!   the graph aborts (dependents of a poisoned tile must not run) but
//!   already-running siblings finish normally.
//! * **Cancellation checkpoints** — the inherited [`crate::cancel`] token
//!   is checked before every task body, so a deadline lands within one
//!   task's work; the cancelled task records
//!   [`crate::cancel::INFO_CANCELLED`] (`-103`) and the rest of the graph
//!   is skipped.
//! * **Per-task ABFT scoping** — every body runs inside
//!   [`crate::abft::job_scope`]; a soft fault detected by a checksummed
//!   BLAS-3 call inside one task surfaces as *that task's*
//!   `INFO = -102`, never a sibling's.
//! * **Policy inheritance & no oversubscription** — workers re-install
//!   the submitting thread's scoped tune/except/abft/probe policies and
//!   cancel token, and register with [`crate::tune::in_pool_worker`] so
//!   BLAS-3 opened inside a task divides the host instead of multiplying
//!   with the worker count.
//!
//! [`Builder::run`] also records the graph's shape — task count, edge
//!   count, critical-path length, worker occupancy — on the innermost
//! active probe span ([`crate::probe::note_dag`]), so `LA_PROFILE=spans`
//! shows what the scheduler actually did.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::{abft, cancel, except, probe, tune};

/// `INFO` recorded for a task whose body returned clean but left a parked
/// ABFT soft fault behind (same code as [`crate::batch::INFO_SOFT_FAULT`]).
pub const INFO_SOFT_FAULT: i32 = -102;

/// Handle to a task inside one [`Builder`] (its submission index).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TaskId(pub usize);

type Body<'a> = Box<dyn FnOnce() -> i32 + Send + 'a>;

struct Node<'a> {
    label: &'static str,
    body: Mutex<Option<Body<'a>>>,
    succs: Vec<usize>,
    npred: usize,
    /// Longest predecessor chain ending here (0 for a root).
    depth: usize,
}

#[derive(Default)]
struct ResState {
    last_writer: Option<usize>,
    /// Readers since the last write (cleared on every write).
    readers: Vec<usize>,
}

/// Shape and utilization of one executed graph.
#[derive(Copy, Clone, Debug, Default)]
pub struct GraphStats {
    /// Number of tasks executed (or skipped by an abort).
    pub tasks: usize,
    /// Number of dependency edges the builder inferred.
    pub edges: usize,
    /// Length of the longest dependency chain, in tasks (`1` for a graph
    /// of independent tasks, `0` for an empty graph).
    pub critical_path: usize,
    /// Workers the scheduler ran.
    pub workers: usize,
    /// Sum of task-body wall time across workers, nanoseconds.
    pub busy_nanos: u64,
    /// Wall time of the whole graph execution, nanoseconds.
    pub wall_nanos: u64,
}

impl GraphStats {
    /// Fraction of the pool's wall-clock capacity spent inside task
    /// bodies: `busy / (workers · wall)`, in `[0, 1]`-ish (timer noise
    /// can nudge it past 1 on trivial graphs).
    pub fn occupancy(&self) -> f64 {
        if self.workers == 0 || self.wall_nanos == 0 {
            return 0.0;
        }
        self.busy_nanos as f64 / (self.workers as f64 * self.wall_nanos as f64)
    }
}

/// Outcome of [`Builder::run`]: one raw `INFO` per task (submission
/// order) plus the graph shape.
#[derive(Debug)]
pub struct RunResult {
    /// Per-task `INFO` codes, indexed by [`TaskId`]. Tasks skipped by an
    /// abort keep `0`.
    pub infos: Vec<i32>,
    /// Shape and utilization of the executed graph.
    pub stats: GraphStats,
}

impl RunResult {
    /// The combined `INFO` under the factorization convention: the first
    /// (lowest submission index) negative code if any task failed,
    /// cancelled, or panicked; otherwise the first positive code
    /// (numerical singularity); otherwise `0`.
    pub fn info(&self) -> i32 {
        if let Some(&neg) = self.infos.iter().find(|&&i| i < 0) {
            return neg;
        }
        self.infos.iter().copied().find(|&i| i > 0).unwrap_or(0)
    }
}

/// Builds a task graph by sequential-task-flow declaration: submit tasks
/// in program order with the resource ids each reads and writes, and the
/// builder infers every RAW, WAR, and WAW dependency.
///
/// Resource ids are plain `usize` — tile ids from
/// [`crate::tile::TileMat::tile_id`] plus any auxiliary ids the algorithm
/// invents (pivot vectors, panel workspaces) above
/// [`crate::tile::TileMat::resource_count`].
#[derive(Default)]
pub struct Builder<'a> {
    tasks: Vec<Node<'a>>,
    resources: HashMap<usize, ResState>,
    edges: usize,
}

impl<'a> Builder<'a> {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks submitted so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Submits a task. `reads` and `writes` are the resource ids the body
    /// touches (a resource both read and written belongs in `writes`
    /// alone); `body` returns a raw `INFO` code. Dependencies on earlier
    /// tasks are inferred; submission order is a valid serial order.
    pub fn task(
        &mut self,
        label: &'static str,
        reads: &[usize],
        writes: &[usize],
        body: impl FnOnce() -> i32 + Send + 'a,
    ) -> TaskId {
        let id = self.tasks.len();
        let mut preds: Vec<usize> = Vec::new();
        for &r in reads {
            let st = self.resources.entry(r).or_default();
            if let Some(w) = st.last_writer {
                preds.push(w); // RAW
            }
        }
        for &w in writes {
            let st = self.resources.entry(w).or_default();
            if let Some(lw) = st.last_writer {
                preds.push(lw); // WAW
            }
            preds.extend(st.readers.iter().copied()); // WAR
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);
        let depth = preds
            .iter()
            .map(|&p| self.tasks[p].depth + 1)
            .max()
            .unwrap_or(0);
        let npred = preds.len();
        self.edges += npred;
        for &p in &preds {
            self.tasks[p].succs.push(id);
        }
        self.tasks.push(Node {
            label,
            body: Mutex::new(Some(Box::new(body))),
            succs: Vec::new(),
            npred,
            depth,
        });
        // Update resource state *after* computing dependencies.
        for &r in reads {
            self.resources.entry(r).or_default().readers.push(id);
        }
        for &w in writes {
            let st = self.resources.entry(w).or_default();
            st.last_writer = Some(id);
            st.readers.clear();
        }
        TaskId(id)
    }

    /// Executes the graph and returns the per-task `INFO` codes plus the
    /// graph shape. The worker count is the [`tune`] thread budget
    /// clamped to the task count; a budget of 1 runs every task inline on
    /// the calling thread **in submission order** (the deterministic
    /// serial schedule). Also records the shape on the innermost active
    /// probe span via [`probe::note_dag`].
    pub fn run(self) -> RunResult {
        let total = self.tasks.len();
        let critical_path = self.tasks.iter().map(|t| t.depth + 1).max().unwrap_or(0);
        let edges = self.edges;
        let workers = tune::current().threads().min(total).max(1);
        let started = Instant::now();
        let busy = AtomicU64::new(0);

        let mut infos = vec![0i32; total];
        let tasks = self.tasks;

        // One task, fully isolated: cancel gate, panic boundary, ABFT
        // fault scope — the per-task robustness contract (module docs).
        let run_one = |node: &Node<'a>| -> i32 {
            let t0 = Instant::now();
            let info = abft::job_scope(|| {
                if cancel::cancelled() {
                    return cancel::INFO_CANCELLED;
                }
                let body = node
                    .body
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("task body taken twice");
                match catch_unwind(AssertUnwindSafe(body)) {
                    Ok(0) => match abft::take_pending() {
                        Some(_) => INFO_SOFT_FAULT,
                        None => 0,
                    },
                    Ok(info) => info,
                    Err(_) => cancel::INFO_PANICKED,
                }
            });
            busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let _ = node.label; // labels exist for debugging/inspection
            info
        };

        if workers <= 1 {
            // Inline path: submission order is a valid topological order
            // (dependencies only ever point backwards), and it is the
            // *deterministic* schedule the equivalence tests pin against.
            let mut abort = false;
            for (node, slot) in tasks.iter().zip(infos.iter_mut()) {
                if abort {
                    break;
                }
                *slot = run_one(node);
                if *slot < 0 {
                    abort = true;
                }
            }
        } else {
            struct Sched {
                ready: std::collections::VecDeque<usize>,
                npred: Vec<usize>,
                infos: Vec<i32>,
                done: usize,
                abort: bool,
            }
            let state = Mutex::new(Sched {
                ready: tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.npred == 0)
                    .map(|(i, _)| i)
                    .collect(),
                npred: tasks.iter().map(|t| t.npred).collect(),
                infos: std::mem::take(&mut infos),
                done: 0,
                abort: false,
            });
            let ready_cv = Condvar::new();

            // Capture the submitting thread's scoped state; thread-local
            // overrides do not cross into spawned workers on their own.
            let cfg = tune::current();
            let fp = except::policy();
            let ap = abft::policy();
            let pp = probe::policy();
            let token = cancel::current();

            std::thread::scope(|s| {
                for _ in 0..workers {
                    let state = &state;
                    let ready_cv = &ready_cv;
                    let tasks = &tasks;
                    let run_one = &run_one;
                    let token = token.clone();
                    s.spawn(move || {
                        let drain = || {
                            tune::in_pool_worker(workers, || loop {
                                let (task, skip) = {
                                    let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                                    loop {
                                        if let Some(t) = st.ready.pop_front() {
                                            break (t, st.abort);
                                        }
                                        if st.done == tasks.len() {
                                            return;
                                        }
                                        st = ready_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                                    }
                                };
                                // An aborted graph drains without running
                                // bodies: dependents of a poisoned or
                                // cancelled tile must not execute.
                                let info = if skip { 0 } else { run_one(&tasks[task]) };
                                let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                                st.infos[task] = info;
                                if info < 0 {
                                    st.abort = true;
                                }
                                for &succ in &tasks[task].succs {
                                    st.npred[succ] -= 1;
                                    if st.npred[succ] == 0 {
                                        st.ready.push_back(succ);
                                    }
                                }
                                st.done += 1;
                                // Wake siblings: new work, or completion.
                                ready_cv.notify_all();
                            })
                        };
                        let with_cancel = || match token.clone() {
                            Some(t) => cancel::with_token(t, drain),
                            None => drain(),
                        };
                        tune::with(cfg, || {
                            except::with_policy(fp, || {
                                abft::with_policy(ap, || probe::with_policy(pp, with_cancel))
                            })
                        });
                    });
                }
            });
            infos = state.into_inner().unwrap_or_else(|e| e.into_inner()).infos;
        }

        let stats = GraphStats {
            tasks: total,
            edges,
            critical_path,
            workers,
            busy_nanos: busy.into_inner(),
            wall_nanos: started.elapsed().as_nanos() as u64,
        };
        probe::note_dag(probe::DagShape {
            tasks: stats.tasks as u64,
            edges: stats.edges as u64,
            critical_path: stats.critical_path as u64,
            workers: stats.workers as u64,
            occupancy: stats.occupancy(),
        });
        RunResult { infos, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn wide(threads: usize) -> tune::TuneConfig {
        tune::TuneConfig {
            max_threads: threads,
            oversubscribe: true,
            ..tune::TuneConfig::defaults()
        }
    }

    /// Keeps the deliberate panics of these tests out of the output.
    fn quiet_expected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info.payload().downcast_ref::<&str>().copied();
                if msg != Some("dag task dies") {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn raw_war_waw_edges_order_execution() {
        // write(0) → read(0)+write(1) → read(1), plus a WAR back onto 0.
        let log = Mutex::new(Vec::new());
        let mut g = Builder::new();
        g.task("w0", &[], &[0], || {
            log.lock().unwrap().push(0);
            0
        });
        g.task("r0w1", &[0], &[1], || {
            log.lock().unwrap().push(1);
            0
        });
        g.task("r1", &[1], &[], || {
            log.lock().unwrap().push(2);
            0
        });
        g.task("w0-again", &[], &[0], || {
            log.lock().unwrap().push(3);
            0
        });
        let res = tune::with(wide(4), || g.run());
        assert_eq!(res.info(), 0);
        let order = log.into_inner().unwrap();
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(1), "RAW: writer before reader");
        assert!(pos(1) < pos(2), "RAW chain");
        assert!(pos(1) < pos(3), "WAR: reader of 0 before its re-writer");
        assert_eq!(res.stats.tasks, 4);
        assert!(res.stats.critical_path >= 3);
    }

    #[test]
    fn independent_tasks_all_run_and_depth_is_one() {
        let hits = AtomicUsize::new(0);
        let mut g = Builder::new();
        for i in 0..32 {
            g.task("ind", &[], &[100 + i], || {
                hits.fetch_add(1, Ordering::Relaxed);
                0
            });
        }
        let res = tune::with(wide(4), || g.run());
        assert_eq!(hits.load(Ordering::Relaxed), 32);
        assert_eq!(res.stats.critical_path, 1);
        assert_eq!(res.stats.edges, 0);
        assert!(res.stats.occupancy() >= 0.0);
    }

    #[test]
    fn serial_budget_runs_inline_in_submission_order() {
        let log = Mutex::new(Vec::new());
        let mut g = Builder::new();
        for i in 0..10usize {
            // All independent — a parallel scheduler could permute them;
            // the serial path must not.
            let log = &log;
            g.task("t", &[], &[i], move || {
                log.lock().unwrap().push(i);
                0
            });
        }
        tune::with(
            tune::TuneConfig {
                max_threads: 1,
                ..tune::TuneConfig::defaults()
            },
            || g.run(),
        );
        assert_eq!(log.into_inner().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panic_is_isolated_and_aborts_dependents() {
        quiet_expected_panics();
        let ran_dependent = AtomicUsize::new(0);
        let mut g = Builder::new();
        g.task("boom", &[], &[0], || panic!("dag task dies"));
        g.task("dep", &[0], &[1], || {
            ran_dependent.fetch_add(1, Ordering::Relaxed);
            0
        });
        let res = tune::with(wide(2), || g.run());
        assert_eq!(res.infos[0], cancel::INFO_PANICKED);
        assert_eq!(res.info(), cancel::INFO_PANICKED);
        assert_eq!(
            ran_dependent.load(Ordering::Relaxed),
            0,
            "dependent of a poisoned resource must not run"
        );
    }

    #[test]
    fn cancelled_token_short_circuits() {
        let token = cancel::CancelToken::new();
        token.cancel();
        let ran = AtomicUsize::new(0);
        let mut g = Builder::new();
        for i in 0..8 {
            g.task("t", &[], &[i], || {
                ran.fetch_add(1, Ordering::Relaxed);
                0
            });
        }
        let res = cancel::with_token(token, || tune::with(wide(4), || g.run()));
        assert_eq!(res.info(), cancel::INFO_CANCELLED);
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no body ran after cancel");
    }

    #[test]
    fn soft_fault_lands_on_the_owning_task() {
        let mut g = Builder::new();
        g.task("clean-a", &[], &[0], || 0);
        g.task("faulty", &[], &[1], || {
            abft::raise("gemm", 3); // detected, never repaired
            0
        });
        g.task("clean-b", &[1], &[2], || 0);
        let res = tune::with(wide(2), || g.run());
        assert_eq!(res.infos[1], INFO_SOFT_FAULT);
        assert_eq!(res.info(), INFO_SOFT_FAULT);
        assert_eq!(abft::take_pending(), None, "nothing leaks to the caller");
    }

    #[test]
    fn positive_info_continues_and_reports_first() {
        let mut g = Builder::new();
        let after = AtomicUsize::new(0);
        g.task("sing-7", &[], &[0], || 7);
        g.task("after", &[0], &[1], || {
            after.fetch_add(1, Ordering::Relaxed);
            3
        });
        let res = tune::with(wide(2), || g.run());
        assert_eq!(
            after.load(Ordering::Relaxed),
            1,
            "positive info (numerical singularity) does not abort the graph"
        );
        assert_eq!(res.info(), 7, "first positive in submission order wins");
    }

    #[test]
    fn probe_records_graph_shape() {
        probe::with_policy(probe::ProbePolicy::Spans, || {
            let _span = probe::span(probe::Layer::Lapack, "unit-test-dagshape", 0, 0);
            let mut g = Builder::new();
            g.task("a", &[], &[0], || 0);
            g.task("b", &[0], &[1], || 0);
            g.task("c", &[0], &[2], || 0);
            tune::with(wide(2), || g.run());
        });
        let rep = probe::snapshot();
        let span = rep
            .spans
            .iter()
            .find(|s| s.routine == "unit-test-dagshape")
            .expect("span recorded");
        let dag = span.dag.expect("dag shape recorded on the span");
        assert_eq!(dag.tasks, 3);
        assert_eq!(dag.edges, 2);
        assert_eq!(dag.critical_path, 2);
    }

    #[test]
    fn workers_inherit_scoped_overrides() {
        let seen = AtomicUsize::new(0);
        let mut g = Builder::new();
        for i in 0..8 {
            g.task("t", &[], &[i], || {
                if tune::current().nb_getrf == 19 && abft::policy() == abft::AbftPolicy::Verify {
                    seen.fetch_add(1, Ordering::Relaxed);
                }
                0
            });
        }
        let cfg = tune::TuneConfig {
            max_threads: 4,
            oversubscribe: true,
            nb_getrf: 19,
            ..tune::TuneConfig::defaults()
        };
        tune::with(cfg, || {
            abft::with_policy(abft::AbftPolicy::Verify, || g.run())
        });
        assert_eq!(seen.load(Ordering::Relaxed), 8);
    }
}
