//! Observability subsystem — per-routine counters, flop accounting and
//! hierarchical span tracing for the whole substrate.
//!
//! The LAPACK90 interface hides everything below the driver call:
//! workspace, blocking, threading. That opacity is exactly what the
//! Linear Algebra Mapping Problem literature (arXiv:1911.09421) documents
//! as a usability hazard, and what tracing wrappers like LAW
//! (arXiv:0710.4896) bolt on from the outside. This module builds the
//! visibility in: every instrumented routine — the striped BLAS-3 leaves,
//! the blocked factorizations, the `la90` drivers — reports what it
//! actually executed, with the block size and thread count it read from
//! [`crate::tune`] at that moment.
//!
//! Three policy levels, mirroring the `LA_FP_CHECK` pattern of
//! [`crate::except`]:
//!
//! * [`ProbePolicy::Off`] (default) — a single relaxed atomic load per
//!   instrumented call; no clocks, no locks, no allocation.
//! * [`ProbePolicy::Counters`] — per-routine totals: calls, closed-form
//!   flops (see [`flops`]), bytes touched, wall nanoseconds (monotonic
//!   [`std::time::Instant`]), aggregated process-wide across threads.
//! * [`ProbePolicy::Spans`] — counters plus a hierarchical span tree:
//!   a `gesv` driver call records its `getrf` child and that child's
//!   `gemm`/`trsm` leaves, each leaf carrying the NB/thread-count it used.
//!
//! Set the policy with the `LA_PROFILE` environment variable
//! (`off|counters|spans`), process-wide with [`set_policy`], or per call
//! tree with [`with_policy`]. Read results with [`snapshot`], which
//! returns a [`Report`] convertible to a plain-text table
//! ([`Report::to_table`]) or JSON ([`Report::to_json`], emitted through
//! [`crate::json`] and shaped like the `BENCH_*.json` trajectory files).
//!
//! ```
//! use la_core::probe::{self, ProbePolicy};
//! probe::reset();
//! let r = probe::with_policy(ProbePolicy::Counters, || {
//!     let _g = probe::span(probe::Layer::Blas, "gemm", probe::flops::gemm(4, 4, 4), 0);
//!     42
//! });
//! assert_eq!(r, 42);
//! let report = probe::snapshot();
//! assert_eq!(report.counters[0].routine, "gemm");
//! assert_eq!(report.counters[0].flops, 128);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonBuf;
use crate::tune;

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

/// How much the probe layer records (see the module docs).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProbePolicy {
    /// No instrumentation (default): one relaxed atomic load per call.
    #[default]
    Off,
    /// Per-routine counters (calls, flops, bytes, wall time).
    Counters,
    /// Counters plus the hierarchical span tree.
    Spans,
}

impl ProbePolicy {
    /// Parses an `LA_PROFILE` value. Accepted (case-insensitive):
    /// `off`/`none`/`0` → `Off`; `counters`/`count`/`1` → `Counters`;
    /// `spans`/`span`/`trace`/`2` → `Spans`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(ProbePolicy::Off),
            "counters" | "count" | "1" => Some(ProbePolicy::Counters),
            "spans" | "span" | "trace" | "2" => Some(ProbePolicy::Spans),
            _ => None,
        }
    }

    /// The default overlaid with the `LA_PROFILE` environment variable;
    /// an absent or unrecognized value leaves the policy `Off`.
    pub fn from_env() -> Self {
        std::env::var("LA_PROFILE")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => ProbePolicy::Counters,
            2 => ProbePolicy::Spans,
            _ => ProbePolicy::Off,
        }
    }
}

/// Global policy as a `u8`; `UNSET` means "read `LA_PROFILE` on first
/// use". A plain atomic (not a lock) keeps the `Off` fast path to a
/// single relaxed load.
const UNSET: u8 = u8::MAX;
static GLOBAL: AtomicU8 = AtomicU8::new(UNSET);

thread_local! {
    static OVERRIDE: RefCell<Vec<ProbePolicy>> = const { RefCell::new(Vec::new()) };
}

/// The policy in effect on this thread: the innermost [`with_policy`]
/// override if one is active, the process-global policy otherwise.
pub fn policy() -> ProbePolicy {
    if let Some(p) = OVERRIDE.with(|o| o.borrow().last().copied()) {
        return p;
    }
    let v = GLOBAL.load(Ordering::Relaxed);
    if v != UNSET {
        return ProbePolicy::from_u8(v);
    }
    // First use: initialize from the environment. The race is benign —
    // every contender computes the same value.
    let p = ProbePolicy::from_env();
    GLOBAL.store(p as u8, Ordering::Relaxed);
    p
}

/// Replaces the process-global policy.
pub fn set_policy(p: ProbePolicy) {
    GLOBAL.store(p as u8, Ordering::Relaxed);
}

/// Runs `f` with `p` in effect on the current thread only, restoring the
/// previous state afterwards (also on panic). Nested calls stack.
///
/// Like [`crate::tune::with`], the override is consulted at the
/// instrumented entry points, which all run on the calling thread before
/// any worker threads spawn — so a scoped policy governs a whole call
/// tree even when the BLAS underneath goes parallel.
pub fn with_policy<R>(p: ProbePolicy, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.borrow_mut().pop());
        }
    }
    OVERRIDE.with(|o| o.borrow_mut().push(p));
    let _guard = Guard;
    f()
}

// ---------------------------------------------------------------------------
// Layers, counters, spans
// ---------------------------------------------------------------------------

/// Which layer of the stack an instrumented routine belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// Level-3 BLAS leaves (`gemm`, `trsm`, …).
    Blas,
    /// Blocked factorizations and solvers (`getrf`, `potrf`, …).
    Lapack,
    /// `la90` drivers (`LA_GESV`, `LA_SYEV`, …).
    Driver,
}

impl Layer {
    /// Lowercase name used in tables and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Blas => "blas",
            Layer::Lapack => "lapack",
            Layer::Driver => "driver",
        }
    }
}

/// Aggregated totals for one routine (one row of [`Report::counters`]).
/// Low-precision work (inside [`with_lo`]) aggregates into its own row,
/// so a mixed-precision driver's flop split is visible per routine.
#[derive(Copy, Clone, Debug)]
pub struct CounterRow {
    /// Stack layer of the routine.
    pub layer: Layer,
    /// Routine name (`"gemm"`, `"getrf"`, `"LA_GESV"`, …).
    pub routine: &'static str,
    /// Whether the calls ran in the demoted precision (see [`with_lo`]).
    pub lo: bool,
    /// Whether the calls ran inside ABFT bookkeeping (see [`with_abft`]):
    /// checksum verification or fault recovery, as opposed to the
    /// protected computation itself.
    pub abft: bool,
    /// Number of calls recorded.
    pub calls: u64,
    /// Closed-form flops (see [`flops`]), summed over calls.
    pub flops: u64,
    /// Estimated bytes touched (operands read + output read/written).
    pub bytes: u64,
    /// Wall time in nanoseconds, summed over calls (inclusive of
    /// instrumented children — this is a call tree, not exclusive time).
    pub nanos: u64,
}

/// One node of the span tree (policy [`ProbePolicy::Spans`]).
#[derive(Clone, Debug)]
pub struct Span {
    /// Stack layer of the routine.
    pub layer: Layer,
    /// Routine name.
    pub routine: &'static str,
    /// Whether the call ran in the demoted precision of a mixed-precision
    /// driver (opened inside [`with_lo`]). Lets span trees show the
    /// low-vs-working flop split of `gesv_mixed`/`posv_mixed`.
    pub lo: bool,
    /// Whether the call ran inside ABFT bookkeeping (opened inside
    /// [`with_abft`]): checksum verification sweeps and fault-recovery
    /// reruns carry the tag, so span trees separate the fault-tolerance
    /// overhead from the protected computation.
    pub abft: bool,
    /// Block size the routine would read from [`tune`] (`nb(routine)`),
    /// captured at entry.
    pub nb: usize,
    /// Thread count: the [`tune`] budget at entry, overwritten with the
    /// *actual* stripe count via [`note_parallelism`] by the parallel
    /// BLAS-3 decision points.
    pub threads: usize,
    /// Microkernel the packed BLAS-3 path actually ran for this call,
    /// recorded via [`note_kernel`] after the [`tune`] kernel choice is
    /// resolved (`"simd"`, `"unrolled"`, `"scalar"`, or `"small"` for the
    /// unpacked small-product path). Empty for routines with no
    /// microkernel decision.
    pub kernel: &'static str,
    /// Closed-form flops for this call.
    pub flops: u64,
    /// Estimated bytes touched by this call.
    pub bytes: u64,
    /// Wall nanoseconds, inclusive of children.
    pub nanos: u64,
    /// Task-graph shape, when the call executed a [`crate::dag`] graph
    /// (recorded via [`note_dag`]); `None` for every other routine.
    pub dag: Option<DagShape>,
    /// Instrumented calls made by this call, in execution order.
    pub children: Vec<Span>,
}

/// Shape of a task graph executed under a span, recorded by the
/// [`crate::dag`] runtime via [`note_dag`]: how the tiled factorization
/// decomposed into tasks and how well the worker pool was kept busy.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct DagShape {
    /// Tasks in the graph.
    pub tasks: u64,
    /// Dependency edges the builder inferred.
    pub edges: u64,
    /// Longest dependency chain, in tasks.
    pub critical_path: u64,
    /// Workers the scheduler ran.
    pub workers: u64,
    /// Busy fraction of the pool: `Σ task time / (workers · wall)`.
    pub occupancy: f64,
}

impl Span {
    /// Depth-first search for the first descendant (or self) named
    /// `routine`.
    pub fn find(&self, routine: &str) -> Option<&Span> {
        if self.routine == routine {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(routine))
    }
}

/// A frame of the thread-local active-span stack. Frames are pushed by
/// [`span`] and popped by the returned guard's `Drop`, so the stack
/// discipline follows scopes exactly, panics included.
struct Frame {
    layer: Layer,
    routine: &'static str,
    lo: bool,
    abft: bool,
    nb: usize,
    threads: usize,
    kernel: &'static str,
    flops: u64,
    bytes: u64,
    start: Instant,
    dag: Option<DagShape>,
    /// Whether the span tree is being built (policy was `Spans` at entry).
    tree: bool,
    children: Vec<Span>,
}

thread_local! {
    static ACTIVE: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    /// Nesting depth of [`with_lo`] scopes on this thread; spans opened
    /// while it is positive are tagged low-precision.
    static LO_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    /// Nesting depth of [`with_abft`] scopes on this thread; spans opened
    /// while it is positive are tagged as ABFT bookkeeping.
    static ABFT_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Runs `f` with every span opened on this thread tagged as
/// *low-precision* work ([`Span::lo`] / [`CounterRow::lo`]). The
/// mixed-precision drivers wrap their demoted factorization and solves
/// in this scope, so reports separate the cheap low-precision flops from
/// the working-precision refinement around them. Nests; restores on
/// panic.
pub fn with_lo<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            LO_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
    LO_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = Guard;
    f()
}

/// Runs `f` with every span opened on this thread tagged as *ABFT
/// bookkeeping* ([`Span::abft`] / [`CounterRow::abft`]). The checksum
/// verifiers and the fault-recovery reruns of [`crate::abft`] wrap
/// themselves in this scope, so reports separate the fault-tolerance
/// overhead (and any recovery recomputation) from the protected
/// computation itself. Nests; restores on panic.
pub fn with_abft<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            ABFT_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
    ABFT_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = Guard;
    f()
}

struct Totals {
    layer: Layer,
    calls: u64,
    flops: u64,
    bytes: u64,
    nanos: u64,
}

type CounterKey = (&'static str, bool, bool); // (routine, lo, abft)

fn counters() -> &'static Mutex<BTreeMap<CounterKey, Totals>> {
    static C: OnceLock<Mutex<BTreeMap<CounterKey, Totals>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// Stack of per-job counter maps (see [`job_scope`]); every finished
    /// span also accumulates into the innermost map of this thread.
    static JOB_STACK: RefCell<Vec<BTreeMap<CounterKey, Totals>>> =
        const { RefCell::new(Vec::new()) };
}

fn rows_from(map: &BTreeMap<CounterKey, Totals>) -> Vec<CounterRow> {
    let mut rows: Vec<CounterRow> = map
        .iter()
        .map(|(&(name, lo, abft), t)| CounterRow {
            layer: t.layer,
            routine: name,
            lo,
            abft,
            calls: t.calls,
            flops: t.flops,
            bytes: t.bytes,
            nanos: t.nanos,
        })
        .collect();
    rows.sort_by_key(|r| (r.layer, r.routine, r.lo, r.abft));
    rows
}

/// Runs `f` as a *job* and returns its result together with the counter
/// rows recorded by this thread **inside the scope only** — the per-job
/// slice of the process-global table that [`snapshot`] can never separate
/// once jobs from many tenants interleave on shared workers.
///
/// The global counters still accumulate exactly as before (a job's work
/// is real work); nested scopes stack, and an inner job's rows also fold
/// into the enclosing job's on exit, panic included. The `la-serve`
/// workers wrap each job in this scope to attribute flops and wall time
/// to the tenant that submitted it. Under [`ProbePolicy::Off`] the
/// returned rows are empty — the probe layer records nothing to slice.
pub fn job_scope<R>(f: impl FnOnce() -> R) -> (R, Vec<CounterRow>) {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            // Pop this job's map and fold it into the parent job, if any —
            // also on panic, so an enclosing job's accounting stays whole.
            JOB_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let Some(map) = stack.pop() else { return };
                if let Some(parent) = stack.last_mut() {
                    for (k, t) in map {
                        let e = parent.entry(k).or_insert(Totals {
                            layer: t.layer,
                            calls: 0,
                            flops: 0,
                            bytes: 0,
                            nanos: 0,
                        });
                        e.calls += t.calls;
                        e.flops += t.flops;
                        e.bytes += t.bytes;
                        e.nanos += t.nanos;
                    }
                }
            });
        }
    }
    JOB_STACK.with(|s| s.borrow_mut().push(BTreeMap::new()));
    let _guard = Guard;
    let r = f();
    let rows = JOB_STACK.with(|s| s.borrow().last().map(rows_from).unwrap_or_default());
    (r, rows)
}

fn roots() -> &'static Mutex<Vec<Span>> {
    static R: OnceLock<Mutex<Vec<Span>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

/// RAII guard returned by [`span`]; records the call when dropped.
#[must_use = "the probe span records on Drop; binding it to `_` drops immediately"]
pub struct ProbeGuard {
    active: bool,
}

impl Drop for ProbeGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let frame = ACTIVE.with(|a| a.borrow_mut().pop());
        let Some(frame) = frame else { return };
        let nanos = frame.start.elapsed().as_nanos() as u64;
        {
            let mut map = counters().lock().unwrap_or_else(|e| e.into_inner());
            let t = map
                .entry((frame.routine, frame.lo, frame.abft))
                .or_insert(Totals {
                    layer: frame.layer,
                    calls: 0,
                    flops: 0,
                    bytes: 0,
                    nanos: 0,
                });
            t.calls += 1;
            t.flops += frame.flops;
            t.bytes += frame.bytes;
            t.nanos += nanos;
        }
        JOB_STACK.with(|s| {
            if let Some(job) = s.borrow_mut().last_mut() {
                let t = job
                    .entry((frame.routine, frame.lo, frame.abft))
                    .or_insert(Totals {
                        layer: frame.layer,
                        calls: 0,
                        flops: 0,
                        bytes: 0,
                        nanos: 0,
                    });
                t.calls += 1;
                t.flops += frame.flops;
                t.bytes += frame.bytes;
                t.nanos += nanos;
            }
        });
        if frame.tree {
            let span = Span {
                layer: frame.layer,
                routine: frame.routine,
                lo: frame.lo,
                abft: frame.abft,
                nb: frame.nb,
                threads: frame.threads,
                kernel: frame.kernel,
                flops: frame.flops,
                bytes: frame.bytes,
                nanos,
                dag: frame.dag,
                children: frame.children,
            };
            let attached = ACTIVE.with(|a| {
                if let Some(parent) = a.borrow_mut().last_mut() {
                    if parent.tree {
                        parent.children.push(span.clone());
                        return true;
                    }
                }
                false
            });
            if !attached {
                roots().lock().unwrap_or_else(|e| e.into_inner()).push(span);
            }
        }
    }
}

/// Opens an instrumented span for `routine`. Call at the top of the
/// routine and keep the guard alive for its whole body:
///
/// ```ignore
/// let _probe = probe::span(Layer::Blas, "gemm", flops::gemm(m, n, k), bytes);
/// ```
///
/// Under [`ProbePolicy::Off`] this is a single atomic load and returns an
/// inert guard — no clock is read, nothing allocates. Otherwise the
/// guard's `Drop` adds the call to the per-routine counters and (under
/// [`ProbePolicy::Spans`]) to the span tree, nested under whatever
/// instrumented call is currently active on this thread.
pub fn span(layer: Layer, routine: &'static str, flops: u64, bytes: u64) -> ProbeGuard {
    let p = policy();
    if p == ProbePolicy::Off {
        return ProbeGuard { active: false };
    }
    let cfg = tune::current();
    let lo = LO_DEPTH.with(|d| d.get()) > 0;
    let abft = ABFT_DEPTH.with(|d| d.get()) > 0;
    ACTIVE.with(|a| {
        a.borrow_mut().push(Frame {
            layer,
            routine,
            lo,
            abft,
            nb: cfg.nb(routine),
            threads: cfg.threads(),
            kernel: "",
            flops,
            bytes,
            start: Instant::now(),
            dag: None,
            tree: p == ProbePolicy::Spans,
            children: Vec::new(),
        })
    });
    ProbeGuard { active: true }
}

/// Records the parallelism a routine *actually* chose (stripe/worker
/// count after the [`tune`] thresholds were applied) on the innermost
/// active span of this thread. No-op when no span is active.
pub fn note_parallelism(threads: usize) {
    ACTIVE.with(|a| {
        if let Some(f) = a.borrow_mut().last_mut() {
            f.threads = threads;
        }
    });
}

/// Records the microkernel a packed BLAS-3 routine *actually* ran (after
/// the [`tune::GemmKernel`] choice was resolved against compiled features
/// and host support) on the innermost active span of this thread. No-op
/// when no span is active.
pub fn note_kernel(kernel: &'static str) {
    ACTIVE.with(|a| {
        if let Some(f) = a.borrow_mut().last_mut() {
            f.kernel = kernel;
        }
    });
}

/// Records the shape of a task graph the routine executed (task count,
/// edges, critical-path length, worker occupancy) on the innermost
/// active span of this thread. Called by [`crate::dag::Builder::run`]
/// after every graph execution; no-op when no span is active.
pub fn note_dag(shape: DagShape) {
    ACTIVE.with(|a| {
        if let Some(f) = a.borrow_mut().last_mut() {
            f.dag = Some(shape);
        }
    });
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// A point-in-time view of everything the probe layer has recorded: the
/// per-routine counter table, the finished span trees, and the
/// process-lifetime parallel-fallback count from [`crate::except`].
#[derive(Clone, Debug)]
pub struct Report {
    /// Per-routine totals, sorted by layer then routine name.
    pub counters: Vec<CounterRow>,
    /// Completed root spans (only populated under [`ProbePolicy::Spans`]).
    pub spans: Vec<Span>,
    /// Process-lifetime count of parallel-to-serial BLAS-3 degradations
    /// ([`crate::except::parallel_fallbacks`]); monotone, not cleared by
    /// [`reset`].
    pub parallel_fallbacks: usize,
    /// Process-lifetime count of ABFT checksum verifications
    /// ([`crate::abft::checks`]); monotone, not cleared by [`reset`].
    pub abft_checks: u64,
    /// Process-lifetime count of detected soft faults
    /// ([`crate::abft::detections`]); monotone.
    pub abft_detections: u64,
    /// Process-lifetime count of successful ABFT recoveries
    /// ([`crate::abft::recoveries`]); monotone.
    pub abft_recoveries: u64,
}

/// Snapshots the counters and finished spans. Cheap; safe to call at any
/// time (active spans on other threads are simply not included yet).
pub fn snapshot() -> Report {
    let mut rows: Vec<CounterRow> = counters()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(&(name, lo, abft), t)| CounterRow {
            layer: t.layer,
            routine: name,
            lo,
            abft,
            calls: t.calls,
            flops: t.flops,
            bytes: t.bytes,
            nanos: t.nanos,
        })
        .collect();
    rows.sort_by_key(|r| (r.layer, r.routine, r.lo, r.abft));
    Report {
        counters: rows,
        spans: roots().lock().unwrap_or_else(|e| e.into_inner()).clone(),
        parallel_fallbacks: crate::except::parallel_fallbacks(),
        abft_checks: crate::abft::checks(),
        abft_detections: crate::abft::detections(),
        abft_recoveries: crate::abft::recoveries(),
    }
}

/// Clears the counter table and the finished span trees. Call between
/// measurement windows, while no instrumented call is in flight.
pub fn reset() {
    counters().lock().unwrap_or_else(|e| e.into_inner()).clear();
    roots().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

impl Report {
    /// Renders the counter table (and the span trees, if any) as aligned
    /// plain text.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:<10} {:>8} {:>14} {:>12} {:>10}  {:>8}\n",
            "layer", "routine", "calls", "flops", "bytes", "ms", "gflop/s"
        ));
        for r in &self.counters {
            let ms = r.nanos as f64 / 1e6;
            let gfs = if r.nanos > 0 {
                r.flops as f64 / r.nanos as f64
            } else {
                0.0
            };
            let mut name = r.routine.to_string();
            if r.lo {
                name.push_str("[lo]");
            }
            if r.abft {
                name.push_str("[abft]");
            }
            out.push_str(&format!(
                "{:<8} {:<10} {:>8} {:>14} {:>12} {:>10.3}  {:>8.2}\n",
                r.layer.as_str(),
                name,
                r.calls,
                r.flops,
                r.bytes,
                ms,
                gfs
            ));
        }
        if self.parallel_fallbacks > 0 {
            out.push_str(&format!(
                "parallel fallbacks: {}\n",
                self.parallel_fallbacks
            ));
        }
        if self.abft_checks > 0 {
            out.push_str(&format!(
                "abft: {} checks, {} detections, {} recoveries\n",
                self.abft_checks, self.abft_detections, self.abft_recoveries
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("span tree:\n");
            for s in &self.spans {
                render_span(&mut out, s, 1);
            }
        }
        out
    }

    /// Serializes the report as JSON (via [`crate::json::JsonBuf`]),
    /// shaped like the repo's `BENCH_*.json` trajectory files: a
    /// `counters` array of flat rows plus a recursive `spans` forest.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.field_uint("parallel_fallbacks", self.parallel_fallbacks as u64);
        j.field_uint("abft_checks", self.abft_checks);
        j.field_uint("abft_detections", self.abft_detections);
        j.field_uint("abft_recoveries", self.abft_recoveries);
        j.key("counters");
        j.begin_arr();
        for r in &self.counters {
            j.begin_obj();
            j.field_str("layer", r.layer.as_str());
            j.field_str("routine", r.routine);
            j.field_uint("lo", u64::from(r.lo));
            j.field_uint("abft", u64::from(r.abft));
            j.field_uint("calls", r.calls);
            j.field_uint("flops", r.flops);
            j.field_uint("bytes", r.bytes);
            j.field_num("ms", r.nanos as f64 / 1e6);
            j.end_obj();
        }
        j.end_arr();
        j.key("spans");
        j.begin_arr();
        for s in &self.spans {
            span_json(&mut j, s);
        }
        j.end_arr();
        j.end_obj();
        j.into_string()
    }
}

fn render_span(out: &mut String, s: &Span, depth: usize) {
    out.push_str(&format!(
        "{:indent$}{}{}{} [{}] nb={} threads={}{}{} flops={} ms={:.3}\n",
        "",
        s.routine,
        if s.lo { "[lo]" } else { "" },
        if s.abft { "[abft]" } else { "" },
        s.layer.as_str(),
        s.nb,
        s.threads,
        if s.kernel.is_empty() {
            String::new()
        } else {
            format!(" kernel={}", s.kernel)
        },
        match &s.dag {
            None => String::new(),
            Some(d) => format!(
                " dag[tasks={} edges={} cp={} occupancy={:.0}%]",
                d.tasks,
                d.edges,
                d.critical_path,
                d.occupancy * 100.0
            ),
        },
        s.flops,
        s.nanos as f64 / 1e6,
        indent = depth * 2
    ));
    for c in &s.children {
        render_span(out, c, depth + 1);
    }
}

fn span_json(j: &mut JsonBuf, s: &Span) {
    j.begin_obj();
    j.field_str("routine", s.routine);
    j.field_str("layer", s.layer.as_str());
    j.field_uint("lo", u64::from(s.lo));
    j.field_uint("abft", u64::from(s.abft));
    j.field_uint("nb", s.nb as u64);
    j.field_uint("threads", s.threads as u64);
    if !s.kernel.is_empty() {
        j.field_str("kernel", s.kernel);
    }
    if let Some(d) = &s.dag {
        j.key("dag");
        j.begin_obj();
        j.field_uint("tasks", d.tasks);
        j.field_uint("edges", d.edges);
        j.field_uint("critical_path", d.critical_path);
        j.field_uint("workers", d.workers);
        j.field_num("occupancy", d.occupancy);
        j.end_obj();
    }
    j.field_uint("flops", s.flops);
    j.field_uint("bytes", s.bytes);
    j.field_num("ms", s.nanos as f64 / 1e6);
    j.key("children");
    j.begin_arr();
    for c in &s.children {
        span_json(j, c);
    }
    j.end_arr();
    j.end_obj();
}

// ---------------------------------------------------------------------------
// Closed-form flop counts
// ---------------------------------------------------------------------------

/// Closed-form operation counts (LAWN-41 style, leading and first-order
/// terms) used by every instrumented call site *and* by the accounting
/// tests — both sides evaluate the same formula, so the tests verify the
/// wiring (no double counting, right dimensions), not float arithmetic.
///
/// Counts are type-agnostic "algorithmic" flops: a multiply-add pair is 2
/// flops regardless of whether the scalars are real or complex.
///
/// Products are evaluated in `u128` and saturated to `u64::MAX` — at
/// extreme dimensions a wrapping product could otherwise land *below* a
/// threshold it should exceed (the `par_stripes` serialization bug this
/// guards against).
pub mod flops {
    use crate::enums::Side;

    /// Saturates a wide product into the `u64` counter domain.
    fn sat(v: u128) -> u64 {
        u64::try_from(v).unwrap_or(u64::MAX)
    }

    /// `C := alpha·op(A)·op(B) + beta·C` with `op(A)` m×k: `2mnk`.
    pub fn gemm(m: usize, n: usize, k: usize) -> u64 {
        sat(2 * (m as u128) * (n as u128) * (k as u128))
    }

    /// Symmetric/Hermitian product: `2m²n` (left) or `2mn²` (right).
    pub fn symm(side: Side, m: usize, n: usize) -> u64 {
        let (m, n) = (m as u128, n as u128);
        sat(match side {
            Side::Left => 2 * m * m * n,
            Side::Right => 2 * m * n * n,
        })
    }

    /// Rank-k update of one triangle: `k·n·(n+1)`.
    pub fn syrk(n: usize, k: usize) -> u64 {
        sat((k as u128) * (n as u128) * (n as u128 + 1))
    }

    /// Rank-2k update of one triangle: `2k·n·(n+1)`.
    pub fn syr2k(n: usize, k: usize) -> u64 {
        sat(2 * (k as u128) * (n as u128) * (n as u128 + 1))
    }

    /// Triangular multiply: `m²n` (left) or `mn²` (right).
    pub fn trmm(side: Side, m: usize, n: usize) -> u64 {
        let (m, n) = (m as u128, n as u128);
        sat(match side {
            Side::Left => m * m * n,
            Side::Right => m * n * n,
        })
    }

    /// Triangular solve with `n` (left) / `m` (right) right-hand sides:
    /// same count as [`trmm`].
    pub fn trsm(side: Side, m: usize, n: usize) -> u64 {
        trmm(side, m, n)
    }

    /// LU with partial pivoting of an m×n matrix:
    /// `2mnk − (m+n)k² + 2k³/3` with `k = min(m, n)`
    /// (`2n³/3` when square).
    pub fn getrf(m: usize, n: usize) -> u64 {
        let (mf, nf) = (m as f64, n as f64);
        let k = mf.min(nf);
        (2.0 * mf * nf * k - (mf + nf) * k * k + 2.0 * k * k * k / 3.0).round() as u64
    }

    /// Forward+back substitution against an LU factorization: `2n²·nrhs`.
    pub fn getrs(n: usize, nrhs: usize) -> u64 {
        sat(2 * (n as u128) * (n as u128) * (nrhs as u128))
    }

    /// Inverse from an LU factorization: `4n³/3`.
    pub fn getri(n: usize) -> u64 {
        let nf = n as f64;
        (4.0 * nf * nf * nf / 3.0).round() as u64
    }

    /// Cholesky factorization: `n³/3`.
    pub fn potrf(n: usize) -> u64 {
        let nf = n as f64;
        (nf * nf * nf / 3.0).round() as u64
    }

    /// Solve against a Cholesky factorization: `2n²·nrhs`.
    pub fn potrs(n: usize, nrhs: usize) -> u64 {
        getrs(n, nrhs)
    }

    /// QR (or LQ) factorization of an m×n matrix: twice the LU count,
    /// `2·getrf(m, n)` (`4n³/3` when square).
    pub fn geqrf(m: usize, n: usize) -> u64 {
        2 * getrf(m, n)
    }

    /// Applying the k-reflector Q of a QR factorization to an m×n
    /// matrix: `4mnk − 2k²·(cols of op side)`.
    pub fn ormqr(side: Side, m: usize, n: usize, k: usize) -> u64 {
        let (mf, nf, kf) = (m as f64, n as f64, k as f64);
        let v = match side {
            Side::Left => 4.0 * mf * nf * kf - 2.0 * nf * kf * kf,
            Side::Right => 4.0 * mf * nf * kf - 2.0 * mf * kf * kf,
        };
        v.max(0.0).round() as u64
    }

    /// Forming the explicit m×n Q from k reflectors:
    /// `4mnk − 2(m+n)k² + 4k³/3`.
    pub fn orgqr(m: usize, n: usize, k: usize) -> u64 {
        let (mf, nf, kf) = (m as f64, n as f64, k as f64);
        (4.0 * mf * nf * kf - 2.0 * (mf + nf) * kf * kf + 4.0 * kf * kf * kf / 3.0)
            .max(0.0)
            .round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_spellings() {
        assert_eq!(ProbePolicy::parse("off"), Some(ProbePolicy::Off));
        assert_eq!(ProbePolicy::parse("0"), Some(ProbePolicy::Off));
        assert_eq!(ProbePolicy::parse("Counters"), Some(ProbePolicy::Counters));
        assert_eq!(ProbePolicy::parse("count"), Some(ProbePolicy::Counters));
        assert_eq!(ProbePolicy::parse("SPANS"), Some(ProbePolicy::Spans));
        assert_eq!(ProbePolicy::parse("trace"), Some(ProbePolicy::Spans));
        assert_eq!(ProbePolicy::parse("bogus"), None);
    }

    #[test]
    fn scoped_policy_stacks_and_restores() {
        let base = policy();
        with_policy(ProbePolicy::Counters, || {
            assert_eq!(policy(), ProbePolicy::Counters);
            with_policy(ProbePolicy::Spans, || {
                assert_eq!(policy(), ProbePolicy::Spans);
            });
            assert_eq!(policy(), ProbePolicy::Counters);
        });
        assert_eq!(policy(), base);
    }

    #[test]
    fn off_guard_is_inert() {
        with_policy(ProbePolicy::Off, || {
            let g = span(Layer::Blas, "unit-test-inert", 1000, 1000);
            assert!(!g.active);
            drop(g);
        });
        let rep = snapshot();
        assert!(rep.counters.iter().all(|r| r.routine != "unit-test-inert"));
    }

    #[test]
    fn spans_nest_on_one_thread() {
        // Serialized against other probe tests by using unique names and
        // checking only our own roots.
        with_policy(ProbePolicy::Spans, || {
            let _outer = span(Layer::Driver, "unit-test-outer", 0, 0);
            {
                let inner = span(Layer::Blas, "unit-test-inner", 10, 20);
                note_parallelism(7);
                drop(inner);
            }
        });
        let rep = snapshot();
        let root = rep
            .spans
            .iter()
            .find(|s| s.routine == "unit-test-outer")
            .expect("root span recorded");
        assert_eq!(root.children.len(), 1);
        let inner = &root.children[0];
        assert_eq!(inner.routine, "unit-test-inner");
        assert_eq!(inner.flops, 10);
        assert_eq!(inner.bytes, 20);
        assert_eq!(inner.threads, 7);
        assert!(root.find("unit-test-inner").is_some());
        // The table and JSON renderers cover these rows without panicking
        // and the JSON parses back.
        let table = rep.to_table();
        assert!(table.contains("unit-test-inner"));
        let parsed = crate::json::Json::parse(&rep.to_json()).unwrap();
        assert!(parsed.get("counters").is_some());
    }

    #[test]
    fn flop_formulas_saturate_at_extreme_dims() {
        // 2·(2²²)³ = 2⁶⁷ overflows u64; the closed forms must saturate,
        // not wrap (a wrapped value under-reports by orders of magnitude).
        let huge = 1usize << 22;
        assert_eq!(flops::gemm(huge, huge, huge), u64::MAX);
        assert_eq!(flops::symm(crate::Side::Left, huge, huge), u64::MAX);
        assert_eq!(flops::syrk(huge, huge << 23), u64::MAX);
        assert_eq!(flops::syr2k(huge, huge << 22), u64::MAX);
        assert_eq!(flops::trmm(crate::Side::Left, huge << 1, huge), u64::MAX);
        assert_eq!(flops::getrs(huge << 1, huge << 22), u64::MAX);
        // The f64-evaluated forms saturate through the float→int cast.
        assert_eq!(flops::getrf(usize::MAX, usize::MAX), u64::MAX);
        // And plausible-large sizes stay exact.
        assert_eq!(flops::gemm(1 << 20, 1 << 20, 4), 1u64 << 43);
    }

    #[test]
    fn lo_scope_tags_spans_and_counters() {
        with_policy(ProbePolicy::Spans, || {
            let _outer = span(Layer::Lapack, "unit-test-mixed", 0, 0);
            with_lo(|| {
                let _inner = span(Layer::Lapack, "unit-test-lofac", 64, 0);
            });
            let _refine = span(Layer::Blas, "unit-test-resid", 32, 0);
        });
        let rep = snapshot();
        let root = rep
            .spans
            .iter()
            .find(|s| s.routine == "unit-test-mixed")
            .expect("mixed root span");
        assert!(!root.lo, "outer span must not be tagged");
        let fac = root.find("unit-test-lofac").expect("lo child");
        assert!(fac.lo, "span inside with_lo must be tagged");
        let resid = root.find("unit-test-resid").expect("hi child");
        assert!(!resid.lo, "span after with_lo must not be tagged");
        // Counters keep the two precisions in separate rows.
        let lo_row = rep
            .counters
            .iter()
            .find(|r| r.routine == "unit-test-lofac")
            .expect("lo counter row");
        assert!(lo_row.lo && lo_row.flops == 64);
        // Rendering carries the tag.
        assert!(rep.to_table().contains("unit-test-lofac[lo]"));
        let json = crate::json::Json::parse(&rep.to_json()).unwrap();
        assert!(json.get("counters").is_some());
    }

    #[test]
    fn abft_scope_tags_spans_and_counters() {
        with_policy(ProbePolicy::Spans, || {
            let _outer = span(Layer::Blas, "unit-test-prot", 128, 0);
            with_abft(|| {
                let _inner = span(Layer::Blas, "unit-test-verify", 16, 0);
            });
        });
        let rep = snapshot();
        let root = rep
            .spans
            .iter()
            .find(|s| s.routine == "unit-test-prot")
            .expect("protected root span");
        assert!(!root.abft, "outer span must not be tagged");
        let v = root.find("unit-test-verify").expect("verify child");
        assert!(v.abft, "span inside with_abft must be tagged");
        let row = rep
            .counters
            .iter()
            .find(|r| r.routine == "unit-test-verify")
            .expect("verify counter row");
        assert!(row.abft && row.flops == 16);
        assert!(rep.to_table().contains("unit-test-verify[abft]"));
        let json = crate::json::Json::parse(&rep.to_json()).unwrap();
        assert!(json.get("abft_checks").is_some());
    }

    #[test]
    fn job_scope_slices_counters_per_job() {
        with_policy(ProbePolicy::Counters, || {
            // Work *outside* any job must not be attributed to one.
            drop(span(Layer::Blas, "unit-test-outside", 5, 0));
            let ((), rows_a) = job_scope(|| {
                drop(span(Layer::Blas, "unit-test-joba", 100, 7));
                drop(span(Layer::Blas, "unit-test-joba", 100, 7));
            });
            let ((), rows_b) = job_scope(|| {
                drop(span(Layer::Lapack, "unit-test-jobb", 40, 0));
            });
            assert_eq!(rows_a.len(), 1);
            assert_eq!(rows_a[0].routine, "unit-test-joba");
            assert_eq!(rows_a[0].calls, 2);
            assert_eq!(rows_a[0].flops, 200);
            assert_eq!(rows_a[0].bytes, 14);
            // Job B sees neither the outside span nor job A's rows.
            assert_eq!(rows_b.len(), 1);
            assert_eq!(rows_b[0].routine, "unit-test-jobb");
            // Nested jobs fold into the enclosing job on exit.
            let ((), outer) = job_scope(|| {
                drop(span(Layer::Driver, "unit-test-outerjob", 1, 0));
                let ((), inner) = job_scope(|| {
                    drop(span(Layer::Blas, "unit-test-innerjob", 8, 0));
                });
                assert_eq!(inner.len(), 1);
                assert_eq!(inner[0].routine, "unit-test-innerjob");
            });
            let names: Vec<_> = outer.iter().map(|r| r.routine).collect();
            assert!(names.contains(&"unit-test-outerjob"));
            assert!(names.contains(&"unit-test-innerjob"));
            // The global table still has everything, including the
            // outside-any-job span.
            let rep = snapshot();
            assert!(rep
                .counters
                .iter()
                .any(|r| r.routine == "unit-test-outside"));
            assert!(rep.counters.iter().any(|r| r.routine == "unit-test-joba"));
        });
    }

    #[test]
    fn flop_formulas_match_square_leading_terms() {
        let n = 100u64;
        assert_eq!(flops::gemm(100, 100, 100), 2 * n * n * n);
        assert_eq!(flops::getrf(100, 100), 2 * n * n * n / 3 + 1); // rounding
        assert_eq!(flops::potrf(100), n * n * n / 3); // 333333.3 rounds down
        assert_eq!(flops::geqrf(100, 100), 2 * flops::getrf(100, 100));
        assert_eq!(flops::trsm(crate::Side::Left, 100, 50), n * n * 50);
        // Rectangular LU: mn² − n³/3 for m ≥ n.
        assert_eq!(
            flops::getrf(200, 100),
            (200.0 * 100.0f64.powi(2) - 100.0f64.powi(3) / 3.0).round() as u64
        );
    }
}
