//! The error protocol — Rust analog of the paper's `ERINFO` subroutine
//! (Appendix D) and the `INFO` argument convention.
//!
//! In LAPACK90 every wrapper funnels its local `LINFO` through `ERINFO`:
//! if the caller passed `INFO` the code is stored there, otherwise the
//! program terminates with
//!
//! ```text
//! Terminated in LAPACK90 subroutine LA_GESV
//! Error indicator, INFO =  -1
//! ```
//!
//! In Rust the idiomatic split is: every driver returns
//! `Result<_, LaError>`; inspecting the error is "passing INFO", and
//! `.unwrap()`-style propagation reproduces the terminate-with-message
//! behaviour because [`LaError`]'s `Display` prints exactly that message.

use core::fmt;

/// An error from a LAPACK90 driver, carrying the routine name and the
/// LAPACK `INFO` convention code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaError {
    /// `INFO = -i`: the `i`-th argument (1-based, in the Fortran argument
    /// order documented on each driver) had an illegal value — typically a
    /// shape mismatch detected by the wrapper, as in Appendix C.
    IllegalArg {
        /// Driver name, e.g. `"LA_GESV"`.
        routine: &'static str,
        /// 1-based argument index.
        index: usize,
    },
    /// `INFO = i > 0` from an LU-style factorization: `U(i,i)` is exactly
    /// zero, the matrix is singular and no solution was computed.
    Singular {
        /// Driver name.
        routine: &'static str,
        /// 1-based index of the zero pivot.
        index: usize,
    },
    /// `INFO = i > 0` from a Cholesky-style factorization: the leading
    /// minor of order `i` is not positive definite.
    NotPosDef {
        /// Driver name.
        routine: &'static str,
        /// Order of the offending leading minor (1-based).
        minor: usize,
    },
    /// `INFO = i > 0` from an iterative eigenvalue/SVD algorithm: `i`
    /// off-diagonal elements (or intermediate quantities) failed to
    /// converge to zero within the iteration limit.
    NoConvergence {
        /// Driver name.
        routine: &'static str,
        /// Count of unconverged quantities, as LAPACK reports it.
        count: usize,
    },
    /// `INFO = -100`: workspace allocation failed (the wrapper's
    /// `ALLOCATE ... STAT=ISTAT` path in Appendix C).
    AllocFailed {
        /// Driver name.
        routine: &'static str,
    },
    /// `INFO = -101`: a NaN or ±Inf was detected by the exception-handling
    /// policy (see [`crate::except`]) — either in the array input named by
    /// `argument` before any computation, or in a computed output that
    /// would otherwise have been returned with `INFO = 0`. This extension
    /// code mirrors the `-100` allocation convention and follows Demmel
    /// et al. (arXiv:2207.09281).
    NonFinite {
        /// Driver name.
        routine: &'static str,
        /// 1-based index of the offending argument in the documented
        /// argument order; `0` when the origin is unknown (e.g. the code
        /// was reconstructed from a raw `INFO` by [`erinfo`]).
        argument: usize,
    },
    /// `INFO = -102`: a checksum verification in the ABFT layer (see
    /// [`crate::abft`]) detected a silently corrupted result — a *finite*
    /// wrong answer, the soft-error failure mode NaN screening cannot see.
    /// Raised under `AbftPolicy::Verify` (the corrupted result is left in
    /// place), or under `Recover` when even the recomputation failed
    /// verification. Extends the `-100`/`-101` code family.
    SoftFault {
        /// Driver name.
        routine: &'static str,
        /// 0-based stripe/block the verifier localized the fault to;
        /// `usize::MAX` when unknown (e.g. reconstructed from a raw
        /// `INFO` by [`erinfo`]).
        block: usize,
    },
    /// `INFO = -103`: the computation abandoned its work at a cooperative
    /// cancellation checkpoint (see [`crate::cancel`]) — the installed
    /// token was cancelled or its deadline passed. The output buffers are
    /// in a valid-but-unspecified partially-computed state. Extends the
    /// `-100`..`-102` code family.
    Cancelled {
        /// Driver name.
        routine: &'static str,
    },
    /// `INFO = -104`: a batch job's worker panicked; the panic was caught
    /// at the job boundary (poisoning only that job, never the pool) and
    /// the job's output is unspecified. Extends the `-100`..`-103` code
    /// family.
    Panicked {
        /// Driver name.
        routine: &'static str,
    },
}

impl LaError {
    /// The driver the error originated from.
    pub fn routine(&self) -> &'static str {
        match self {
            LaError::IllegalArg { routine, .. }
            | LaError::Singular { routine, .. }
            | LaError::NotPosDef { routine, .. }
            | LaError::NoConvergence { routine, .. }
            | LaError::AllocFailed { routine }
            | LaError::NonFinite { routine, .. }
            | LaError::SoftFault { routine, .. }
            | LaError::Cancelled { routine }
            | LaError::Panicked { routine } => routine,
        }
    }

    /// The `INFO` code following the LAPACK convention: negative for an
    /// illegal argument, positive for a computational failure, `-100` for
    /// allocation failure (LAPACK90's own extension, Appendix C), `-101`
    /// for a screened non-finite value, `-102` for an ABFT-detected soft
    /// fault (this package's extensions).
    pub fn info(&self) -> i32 {
        match self {
            LaError::IllegalArg { index, .. } => -(*index as i32),
            LaError::Singular { index, .. } => *index as i32,
            LaError::NotPosDef { minor, .. } => *minor as i32,
            LaError::NoConvergence { count, .. } => *count as i32,
            LaError::AllocFailed { .. } => -100,
            LaError::NonFinite { .. } => -101,
            LaError::SoftFault { .. } => -102,
            LaError::Cancelled { .. } => -103,
            LaError::Panicked { .. } => -104,
        }
    }
}

impl fmt::Display for LaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The exact two-line shape ERINFO prints before STOP.
        writeln!(f, "Terminated in LAPACK90 subroutine {}", self.routine())?;
        write!(f, "Error indicator, INFO = {}", self.info())?;
        match self {
            LaError::Singular { index, .. } => {
                write!(
                    f,
                    " (U({index},{index}) = 0: matrix is singular, no solution computed)"
                )
            }
            LaError::NotPosDef { minor, .. } => {
                write!(
                    f,
                    " (leading minor of order {minor} is not positive definite)"
                )
            }
            LaError::NoConvergence { count, .. } => {
                write!(f, " ({count} quantities failed to converge)")
            }
            LaError::IllegalArg { index, .. } => {
                write!(f, " (argument {index} had an illegal value)")
            }
            LaError::AllocFailed { .. } => write!(f, " (workspace allocation failed)"),
            LaError::NonFinite { argument: 0, .. } => {
                write!(f, " (a NaN or Inf was detected)")
            }
            LaError::NonFinite { argument, .. } => {
                write!(f, " (argument {argument} contains a NaN or Inf)")
            }
            LaError::SoftFault { block, .. } if *block == usize::MAX => {
                write!(f, " (checksum verification detected a soft fault)")
            }
            LaError::SoftFault { block, .. } => {
                write!(
                    f,
                    " (checksum verification detected a soft fault in block {block})"
                )
            }
            LaError::Cancelled { .. } => {
                write!(
                    f,
                    " (cancelled at a checkpoint: deadline passed or job cancelled)"
                )
            }
            LaError::Panicked { .. } => {
                write!(f, " (worker panicked; the panic was isolated to this job)")
            }
        }
    }
}

impl std::error::Error for LaError {}

/// Maps a raw `INFO` code from an `la-lapack` routine into `Ok(())` or the
/// corresponding [`LaError`], given how that routine reports positive codes.
///
/// This is the `CALL ERINFO(LINFO, SRNAME, INFO)` moment of each wrapper.
/// It is also where pending ABFT soft faults surface: a `linfo == 0`
/// outcome still returns [`LaError::SoftFault`] (`INFO = -102`) if the
/// checksum layer parked one on this thread during the computation
/// ([`crate::abft::take_pending`]); drivers clear stale faults at entry.
pub fn erinfo(
    linfo: i32,
    srname: &'static str,
    positive_means: PositiveInfo,
) -> Result<(), LaError> {
    use core::cmp::Ordering;
    match linfo.cmp(&0) {
        Ordering::Equal => {
            // A computation that came back clean may still have parked a
            // soft fault (ABFT checksum mismatch that Verify policy does
            // not repair); surface it here so every driver routes
            // `INFO = -102` through the one protocol point.
            if let Some(f) = crate::abft::take_pending() {
                return Err(LaError::SoftFault {
                    routine: srname,
                    block: f.block,
                });
            }
            Ok(())
        }
        Ordering::Less => {
            if linfo == -100 {
                Err(LaError::AllocFailed { routine: srname })
            } else if linfo == -101 {
                // The raw code cannot carry the argument index; `0` marks
                // it unknown.
                Err(LaError::NonFinite {
                    routine: srname,
                    argument: 0,
                })
            } else if linfo == -102 {
                // The raw code cannot carry the block index.
                Err(LaError::SoftFault {
                    routine: srname,
                    block: usize::MAX,
                })
            } else if linfo == crate::cancel::INFO_CANCELLED {
                Err(LaError::Cancelled { routine: srname })
            } else if linfo == crate::cancel::INFO_PANICKED {
                Err(LaError::Panicked { routine: srname })
            } else {
                Err(LaError::IllegalArg {
                    routine: srname,
                    index: (-linfo) as usize,
                })
            }
        }
        Ordering::Greater => {
            let k = linfo as usize;
            Err(match positive_means {
                PositiveInfo::Singular => LaError::Singular {
                    routine: srname,
                    index: k,
                },
                PositiveInfo::NotPosDef => LaError::NotPosDef {
                    routine: srname,
                    minor: k,
                },
                PositiveInfo::NoConvergence => LaError::NoConvergence {
                    routine: srname,
                    count: k,
                },
            })
        }
    }
}

/// How a routine's positive `INFO` codes are to be interpreted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PositiveInfo {
    /// Zero pivot in an LU-style factorization.
    Singular,
    /// Failed leading minor in a Cholesky-style factorization.
    NotPosDef,
    /// Unconverged iterative algorithm.
    NoConvergence,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_codes_follow_lapack_convention() {
        let e = LaError::IllegalArg {
            routine: "LA_GESV",
            index: 2,
        };
        assert_eq!(e.info(), -2);
        let e = LaError::Singular {
            routine: "LA_GESV",
            index: 3,
        };
        assert_eq!(e.info(), 3);
        let e = LaError::AllocFailed {
            routine: "LA_GETRI",
        };
        assert_eq!(e.info(), -100);
    }

    #[test]
    fn display_matches_erinfo_shape() {
        let e = LaError::IllegalArg {
            routine: "LA_GESV",
            index: 1,
        };
        let s = format!("{e}");
        assert!(s.starts_with("Terminated in LAPACK90 subroutine LA_GESV"));
        assert!(s.contains("INFO = -1"));
    }

    #[test]
    fn erinfo_maps_codes() {
        assert!(erinfo(0, "LA_GESV", PositiveInfo::Singular).is_ok());
        assert_eq!(
            erinfo(-3, "LA_GESV", PositiveInfo::Singular),
            Err(LaError::IllegalArg {
                routine: "LA_GESV",
                index: 3
            })
        );
        assert_eq!(
            erinfo(4, "LA_POSV", PositiveInfo::NotPosDef),
            Err(LaError::NotPosDef {
                routine: "LA_POSV",
                minor: 4
            })
        );
        assert_eq!(
            erinfo(-100, "LA_GETRI", PositiveInfo::Singular),
            Err(LaError::AllocFailed {
                routine: "LA_GETRI"
            })
        );
        assert_eq!(
            erinfo(-101, "LA_GESV", PositiveInfo::Singular),
            Err(LaError::NonFinite {
                routine: "LA_GESV",
                argument: 0
            })
        );
    }

    #[test]
    fn non_finite_extension_code() {
        let e = LaError::NonFinite {
            routine: "LA_GESV",
            argument: 2,
        };
        assert_eq!(e.info(), -101);
        assert_eq!(e.routine(), "LA_GESV");
        let s = format!("{e}");
        assert!(s.starts_with("Terminated in LAPACK90 subroutine LA_GESV"));
        assert!(s.contains("INFO = -101"));
        assert!(s.contains("argument 2 contains a NaN or Inf"));
        // Unknown-origin shape (argument 0, as erinfo reconstructs it).
        let e = LaError::NonFinite {
            routine: "LA_GESV",
            argument: 0,
        };
        assert!(format!("{e}").contains("a NaN or Inf was detected"));
    }

    #[test]
    fn cancelled_and_panicked_extension_codes() {
        let e = LaError::Cancelled { routine: "LA_GESV" };
        assert_eq!(e.info(), -103);
        assert_eq!(e.routine(), "LA_GESV");
        assert!(format!("{e}").contains("INFO = -103"));
        assert!(format!("{e}").contains("cancelled at a checkpoint"));
        assert_eq!(
            erinfo(-103, "LA_GESV", PositiveInfo::Singular),
            Err(LaError::Cancelled { routine: "LA_GESV" })
        );
        let e = LaError::Panicked { routine: "LA_POSV" };
        assert_eq!(e.info(), -104);
        assert!(format!("{e}").contains("isolated to this job"));
        assert_eq!(
            erinfo(-104, "LA_POSV", PositiveInfo::NotPosDef),
            Err(LaError::Panicked { routine: "LA_POSV" })
        );
    }

    #[test]
    fn soft_fault_extension_code() {
        let e = LaError::SoftFault {
            routine: "LA_GESV",
            block: 3,
        };
        assert_eq!(e.info(), -102);
        assert_eq!(e.routine(), "LA_GESV");
        let s = format!("{e}");
        assert!(s.starts_with("Terminated in LAPACK90 subroutine LA_GESV"));
        assert!(s.contains("INFO = -102"));
        assert!(s.contains("soft fault in block 3"));
        // Unknown-block shape, as erinfo reconstructs it.
        assert_eq!(
            erinfo(-102, "LA_POSV", PositiveInfo::NotPosDef),
            Err(LaError::SoftFault {
                routine: "LA_POSV",
                block: usize::MAX
            })
        );
        let e = LaError::SoftFault {
            routine: "LA_POSV",
            block: usize::MAX,
        };
        let s = format!("{e}");
        assert!(s.contains("detected a soft fault"));
        assert!(!s.contains("block"));
    }
}
