//! Algorithm-based fault tolerance (ABFT) — Huang–Abraham checksum
//! verification for the parallel BLAS-3 layer and the blocked
//! factorizations, with optional automatic recovery.
//!
//! A worker stripe that *panics* is already handled by the graceful
//! degradation of [`crate::except`]; a stripe that silently computes a
//! **wrong finite answer** — a soft error — passes every existing check.
//! The classical Huang–Abraham scheme closes that gap: encode checksum
//! vectors of the inputs (`e^T·A`, `B·e`), run the O(n³) operation, and
//! verify the O(n²) output against the checksum identity
//! (`e^T·C = (e^T·A)·B` for `gemm`) with a norm-scaled tolerance.
//! Detection costs O(n²) against O(n³) work.
//!
//! This module hosts the policy and the bookkeeping; the checksum algebra
//! itself lives next to the routines it protects (`la-blas`, `la-lapack`).
//!
//! * [`AbftPolicy`] — `Off` (default, zero cost) / `Verify` (detect and
//!   report `INFO = -102`) / `Recover` (detect, then recompute the
//!   offending stripe from the pre-call snapshot). Initialized from the
//!   `LA_ABFT` environment variable, settable process-wide via
//!   [`set_policy`] or per call tree via [`with_policy`] — the same
//!   pattern as [`crate::tune`], [`crate::except`] and [`crate::probe`].
//! * [`raise`] / [`take_pending`] — the thread-local "soft-fault errno":
//!   the BLAS-3 layer returns `()`, so a detected-but-unrecovered fault is
//!   parked here and collected by the `la90` driver on exit, surfacing as
//!   `LaError::SoftFault` (`INFO = -102`) through `ERINFO`.
//! * [`checks`] / [`detections`] / [`recoveries`] — process-lifetime
//!   counters, folded into [`crate::probe`] reports.
//! * `inject` (behind the `fault-inject` cargo feature) — silent
//!   corruption injection: flip a mantissa bit or scale one output element
//!   in a chosen stripe, so detection and recovery are testable
//!   end-to-end. Release builds without the feature compile the hooks out.
//!
//! Verification deliberately ignores non-finite discrepancies: a NaN/Inf
//! in the data is the domain of [`crate::except`] (`INFO = -101`), not a
//! soft fault — ABFT flags only *finite* wrong answers.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// What the checksum-protected routines do about soft faults.
///
/// `Off` reduces the whole subsystem to a single relaxed policy load per
/// protected call; `Verify` adds the O(n²) encode/verify sweeps; `Recover`
/// additionally snapshots the output so a detected fault can be repaired
/// in place.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum AbftPolicy {
    /// No checksums, no snapshots (the classical behaviour). Default.
    #[default]
    Off,
    /// Encode and verify checksums; on mismatch, park a soft fault for
    /// the driver layer to report as `LaError::SoftFault` (`INFO = -102`).
    /// The corrupted result is left in place for post-mortem inspection.
    Verify,
    /// Encode, verify, and on mismatch restore the offending stripe from
    /// the pre-call snapshot and recompute it on the serial path — the
    /// same snapshot-restore machinery the panic-degradation path uses.
    /// The repaired result is bitwise-identical to an uncorrupted run.
    Recover,
}

impl AbftPolicy {
    /// `true` when checksums are to be maintained at all.
    #[inline(always)]
    pub fn enabled(self) -> bool {
        !matches!(self, AbftPolicy::Off)
    }

    /// `true` when a detected fault is to be repaired in place.
    #[inline(always)]
    pub fn recover(self) -> bool {
        matches!(self, AbftPolicy::Recover)
    }

    /// Parses an `LA_ABFT` value. Accepted (case-insensitive):
    /// `off`/`none`/`0` → `Off`; `verify`/`check`/`detect` → `Verify`;
    /// `recover`/`on`/`1` → `Recover`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(AbftPolicy::Off),
            "verify" | "check" | "detect" => Some(AbftPolicy::Verify),
            "recover" | "on" | "1" => Some(AbftPolicy::Recover),
            _ => None,
        }
    }

    /// The default overlaid with the `LA_ABFT` environment variable; an
    /// absent or unrecognized value leaves the policy `Off`.
    pub fn from_env() -> Self {
        std::env::var("LA_ABFT")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }
}

fn global() -> &'static RwLock<AbftPolicy> {
    static GLOBAL: OnceLock<RwLock<AbftPolicy>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(AbftPolicy::from_env()))
}

thread_local! {
    static OVERRIDE: std::cell::RefCell<Vec<AbftPolicy>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// The parked fault is stamped with the job epoch it was raised in,
    /// so a fault from job A can never be collected by job B (see
    /// [`job_scope`]).
    static PENDING: Cell<Option<(SoftFault, u64)>> = const { Cell::new(None) };
    /// Monotone per-thread job epoch; bumped at [`job_scope`] entry *and*
    /// exit (exit included on panic), so work outside any scope can never
    /// share an epoch with work inside one.
    static EPOCH: Cell<u64> = const { Cell::new(0) };
}

/// The policy in effect on this thread: the innermost [`with_policy`]
/// override if one is active, the process-global policy otherwise.
pub fn policy() -> AbftPolicy {
    if let Some(p) = OVERRIDE.with(|o| o.borrow().last().copied()) {
        return p;
    }
    *global().read().unwrap_or_else(|e| e.into_inner())
}

/// Replaces the process-global policy.
pub fn set_policy(p: AbftPolicy) {
    *global().write().unwrap_or_else(|e| e.into_inner()) = p;
}

/// Runs `f` with `p` in effect on the current thread only, restoring the
/// previous state afterwards (also on panic). Nested calls stack.
///
/// Like [`crate::tune::with`], the override is consulted at the entry
/// points of the protected routines, which always run on the calling
/// thread — so a scoped policy fully governs a call tree even when the
/// BLAS underneath goes parallel.
pub fn with_policy<R>(p: AbftPolicy, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.borrow_mut().pop());
        }
    }
    OVERRIDE.with(|o| o.borrow_mut().push(p));
    let _guard = Guard;
    f()
}

/// A detected-but-unrepaired soft fault, parked thread-locally until the
/// driver layer collects it (see [`raise`] / [`take_pending`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SoftFault {
    /// The protected routine whose checksum identity failed (lowercase
    /// computational name, e.g. `"gemm"`, `"getrf"`).
    pub routine: &'static str,
    /// The offending stripe / block index (0-based) when the verifier
    /// could localize it, `usize::MAX` when it could not.
    pub block: usize,
}

/// Parks a soft fault on the current thread (keeping the first if several
/// accumulate — the earliest detection localizes best) and bumps the
/// detection counter. Called by the verifiers in `la-blas` / `la-lapack`
/// under [`AbftPolicy::Verify`], or under `Recover` when even the rerun
/// fails verification.
pub fn raise(routine: &'static str, block: usize) {
    note_detection();
    let epoch = EPOCH.with(|e| e.get());
    PENDING.with(|p| {
        if p.get().is_none() {
            p.set(Some((SoftFault { routine, block }, epoch)));
        }
    });
}

/// Takes and clears the pending soft fault, if any. The `la90` drivers
/// call this on exit to turn a parked fault into
/// `LaError::SoftFault` (`INFO = -102`).
///
/// A fault parked in an *earlier job epoch* (a [`job_scope`] that has
/// since exited — e.g. a cancelled or panicked job that never reached its
/// own `erinfo`) is silently discarded instead of returned: cross-job
/// fault leakage on a reused worker thread was a real bug, and the epoch
/// stamp is what closes it.
pub fn take_pending() -> Option<SoftFault> {
    let epoch = EPOCH.with(|e| e.get());
    PENDING.with(|p| match p.take() {
        Some((f, e)) if e == epoch => Some(f),
        _ => None,
    })
}

/// Clears any stale pending fault without reporting it. Called at driver
/// *entry* so a fault raised under a caller who never checked (e.g. a raw
/// BLAS call outside any driver) cannot leak into an unrelated call.
pub fn clear_pending() {
    PENDING.with(|p| p.set(None));
}

/// Runs `f` as an isolated *job*: the per-thread fault epoch is bumped at
/// entry and again at exit (panic included), and any stale pending fault
/// is dropped at entry. Inside the scope, [`raise`] / [`take_pending`]
/// behave as usual; a fault the job leaves behind — because it was
/// cancelled, panicked, or simply never consulted `erinfo` — is dead on
/// scope exit and can never surface as `INFO = -102` in a later job that
/// happens to run on the same worker thread.
///
/// The batch dispatchers (`la-blas`/`la-lapack` `*_batch`) and the
/// `la-serve` workers wrap every job in this scope.
pub fn job_scope<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            // Exit bump: whatever the job parked is now unreachable.
            EPOCH.with(|e| e.set(e.get().wrapping_add(1)));
        }
    }
    EPOCH.with(|e| e.set(e.get().wrapping_add(1)));
    clear_pending();
    let _guard = Guard;
    f()
}

static CHECKS: AtomicU64 = AtomicU64::new(0);
static DETECTIONS: AtomicU64 = AtomicU64::new(0);
static RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Records one completed checksum verification (regardless of outcome).
pub fn note_check() {
    CHECKS.fetch_add(1, Ordering::Relaxed);
}

/// Records one checksum mismatch (a detected soft fault). Bumped by
/// [`raise`] and by the recovery path before it repairs.
pub fn note_detection() {
    DETECTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Records one successful in-place repair under [`AbftPolicy::Recover`].
pub fn note_recovery() {
    RECOVERIES.fetch_add(1, Ordering::Relaxed);
}

/// Process-lifetime count of checksum verifications.
pub fn checks() -> u64 {
    CHECKS.load(Ordering::Relaxed)
}

/// Process-lifetime count of detected soft faults.
pub fn detections() -> u64 {
    DETECTIONS.load(Ordering::Relaxed)
}

/// Process-lifetime count of successful recoveries.
pub fn recoveries() -> u64 {
    RECOVERIES.load(Ordering::Relaxed)
}

/// Silent-corruption injection, compiled in only with the `fault-inject`
/// cargo feature — the soft-error analog of the panic-injection hook in
/// [`crate::tune::TuneConfig::fault_inject_par`].
///
/// A test [`arm`](inject::arm)s one [`Corruption`](inject::Corruption) naming a routine, a
/// stripe and a [`CorruptKind`](inject::CorruptKind); the first matching worker stripe calls
/// [`maybe_corrupt`](inject::maybe_corrupt) on one of its output elements,
/// fires exactly once (disarming itself, so ABFT recovery reruns recompute
/// clean), and everything else proceeds untouched. Without the feature the
/// protected routines contain no hook at all.
#[cfg(feature = "fault-inject")]
pub mod inject {
    use crate::scalar::{RealScalar, Scalar};
    use std::sync::Mutex;

    /// How the targeted element is corrupted.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum CorruptKind {
        /// XOR bit 51 into the f64 image of the real part — the classic
        /// "cosmic-ray" single-bit mantissa flip (a zero element is set to
        /// one instead, so the corruption is never below tolerance).
        FlipMantissaBit,
        /// Multiply the element by 2 (a zero element is set to one) — a
        /// magnitude error, the kind a broken FMA or a dropped iteration
        /// produces.
        Scale,
    }

    /// One armed corruption: fires in `routine`, worker stripe/block
    /// `stripe`, then disarms.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub struct Corruption {
        /// Protected routine to corrupt (lowercase computational name,
        /// e.g. `"gemm"`, `"getrf"`).
        pub routine: &'static str,
        /// 0-based stripe (BLAS-3) or block (factorization) index.
        pub stripe: usize,
        /// The corruption applied.
        pub kind: CorruptKind,
    }

    fn armed() -> &'static Mutex<Option<Corruption>> {
        static ARMED: std::sync::OnceLock<Mutex<Option<Corruption>>> = std::sync::OnceLock::new();
        ARMED.get_or_init(|| Mutex::new(None))
    }

    /// Arms `c`; the next matching stripe fires it. Replaces any
    /// previously armed corruption.
    pub fn arm(c: Corruption) {
        *armed().lock().unwrap_or_else(|e| e.into_inner()) = Some(c);
    }

    /// Disarms without firing. Tests call this in cleanup so a corruption
    /// that never matched cannot leak into a later case.
    pub fn disarm() -> Option<Corruption> {
        armed().lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    /// `true` iff a corruption is currently armed (fired ones are not).
    pub fn is_armed() -> bool {
        armed().lock().unwrap_or_else(|e| e.into_inner()).is_some()
    }

    /// Injection point: if the armed corruption matches `(routine,
    /// stripe)`, corrupt `*x`, disarm, and return `true`. One cheap lock
    /// per *stripe*, not per element — and only in `fault-inject` builds.
    pub fn maybe_corrupt<T: Scalar>(routine: &str, stripe: usize, x: &mut T) -> bool {
        let mut guard = armed().lock().unwrap_or_else(|e| e.into_inner());
        match *guard {
            Some(c) if c.routine == routine && c.stripe == stripe => {
                *guard = None;
                drop(guard);
                *x = corrupt(c.kind, *x);
                true
            }
            _ => false,
        }
    }

    fn corrupt<T: Scalar>(kind: CorruptKind, x: T) -> T {
        if x.is_zero() {
            return T::one();
        }
        match kind {
            CorruptKind::FlipMantissaBit => {
                let flipped = f64::from_bits(x.re().to_f64().to_bits() ^ (1u64 << 51));
                T::from_re_im(T::Real::from_f64(flipped), x.im())
            }
            CorruptKind::Scale => x.mul_real(T::Real::from_f64(2.0)),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn one_shot_fire_and_disarm() {
            disarm();
            arm(Corruption {
                routine: "gemm",
                stripe: 1,
                kind: CorruptKind::Scale,
            });
            let mut x = 3.0f64;
            // Wrong routine / wrong stripe: no fire.
            assert!(!maybe_corrupt("trsm", 1, &mut x));
            assert!(!maybe_corrupt("gemm", 0, &mut x));
            assert_eq!(x, 3.0);
            // Match: fires once, then disarms.
            assert!(maybe_corrupt("gemm", 1, &mut x));
            assert_eq!(x, 6.0);
            assert!(!is_armed());
            assert!(!maybe_corrupt("gemm", 1, &mut x));
            assert_eq!(x, 6.0);
        }

        #[test]
        fn corruption_never_below_tolerance() {
            // A zero target would yield a sub-tolerance (or no-op)
            // corruption; both kinds promote it to one instead.
            for kind in [CorruptKind::FlipMantissaBit, CorruptKind::Scale] {
                assert_eq!(corrupt(kind, 0.0f64), 1.0);
            }
            // Bit 51 of 1.5's mantissa is set: flipping clears it.
            assert_eq!(corrupt(CorruptKind::FlipMantissaBit, 1.5f64), 1.0);
            let c = corrupt(CorruptKind::FlipMantissaBit, crate::C64::new(1.5, 2.0));
            assert_eq!(c, crate::C64::new(1.0, 2.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_spellings() {
        assert_eq!(AbftPolicy::parse("off"), Some(AbftPolicy::Off));
        assert_eq!(AbftPolicy::parse("0"), Some(AbftPolicy::Off));
        assert_eq!(AbftPolicy::parse("verify"), Some(AbftPolicy::Verify));
        assert_eq!(AbftPolicy::parse("CHECK"), Some(AbftPolicy::Verify));
        assert_eq!(AbftPolicy::parse("recover"), Some(AbftPolicy::Recover));
        assert_eq!(AbftPolicy::parse("1"), Some(AbftPolicy::Recover));
        assert_eq!(AbftPolicy::parse("bogus"), None);
    }

    #[test]
    fn policy_levels() {
        assert!(!AbftPolicy::Off.enabled());
        assert!(AbftPolicy::Verify.enabled());
        assert!(!AbftPolicy::Verify.recover());
        assert!(AbftPolicy::Recover.enabled());
        assert!(AbftPolicy::Recover.recover());
    }

    #[test]
    fn scoped_policy_stacks_and_restores() {
        let base = policy();
        with_policy(AbftPolicy::Verify, || {
            assert_eq!(policy(), AbftPolicy::Verify);
            with_policy(AbftPolicy::Recover, || {
                assert_eq!(policy(), AbftPolicy::Recover);
            });
            assert_eq!(policy(), AbftPolicy::Verify);
        });
        assert_eq!(policy(), base);
    }

    #[test]
    fn pending_fault_first_wins_and_clears() {
        clear_pending();
        assert_eq!(take_pending(), None);
        raise("gemm", 2);
        raise("trsm", 0); // later faults don't displace the first
        assert_eq!(
            take_pending(),
            Some(SoftFault {
                routine: "gemm",
                block: 2
            })
        );
        assert_eq!(take_pending(), None);
        raise("syrk", 1);
        clear_pending();
        assert_eq!(take_pending(), None);
    }

    #[test]
    fn job_scope_kills_cross_job_fault_leakage() {
        clear_pending();
        // Job A detects a fault but is abandoned (cancelled/panicked)
        // before any driver drains it...
        job_scope(|| {
            raise("gemm", 3);
            // ...inside its own scope the fault is visible as usual:
            assert_eq!(
                take_pending(),
                Some(SoftFault {
                    routine: "gemm",
                    block: 3
                })
            );
            raise("getrf", 1); // park another one and *leave it behind*
        });
        // Job B on the same thread must not inherit A's fault — neither
        // bare...
        assert_eq!(take_pending(), None);
        // ...nor inside its own scope:
        job_scope(|| assert_eq!(take_pending(), None));

        // A panicking job still retires its epoch (Drop guard), so the
        // fault it left behind stays dead.
        let _ = std::panic::catch_unwind(|| {
            job_scope(|| {
                raise("potrf", 0);
                panic!("job died mid-flight");
            })
        });
        assert_eq!(take_pending(), None);
        job_scope(|| assert_eq!(take_pending(), None));
    }

    #[test]
    fn counters_are_monotone() {
        let (c0, d0, r0) = (checks(), detections(), recoveries());
        note_check();
        note_recovery();
        clear_pending();
        raise("gemm", 0); // bumps detections
        take_pending();
        assert!(checks() > c0);
        assert!(detections() > d0);
        assert!(recoveries() > r0);
    }
}
