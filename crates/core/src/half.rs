//! Software half-precision storage types — the narrow end of the
//! precision lattice.
//!
//! [`F16`] is IEEE 754 binary16 (1+5+10 bits, range ±65504, unit roundoff
//! 2⁻¹¹); [`Bf16`] is bfloat16 (1+8+7 bits, the f32 range with an 8-bit
//! significand). Neither is a compute format here: they exist as
//! **demotion targets** for the mixed-precision refinement drivers — the
//! MPLAPACK/GMRES-IR regime where the O(n³) factorization runs in a
//! narrow format and working-precision refinement recovers full accuracy
//! (PAPERS.md, arXiv:2109.13406).
//!
//! Both types implement [`Scalar`] and [`RealScalar`] completely, so
//! every generic BLAS/LAPACK routine monomorphises over them unchanged.
//! Elementwise arithmetic converts to `f32`, operates, and rounds back
//! (round-to-nearest-even, the IEEE default); the BLAS-3 layer recognises
//! `IS_HALF` and instead accumulates whole `gemm`/`trsm`/`syrk` calls in
//! f32, rounding only the stored results — the "f32 accumulation" scheme
//! every practical half-precision GEMM uses, and the accuracy model the
//! three-precision refinement loop assumes.
//!
//! The conversions are bit-exact software implementations (no hardware
//! `F16C` dependency): round-to-nearest-even on narrowing, exact on
//! widening, subnormals handled at both ends.
//!
//! ```
//! use la_core::half::{Bf16, F16};
//! use la_core::{RealScalar, Scalar};
//! assert_eq!(F16::from_f32(1.0 + f32::EPSILON).to_f32(), 1.0); // rounds
//! assert_eq!(F16::rmax().to_f32(), 65504.0);
//! assert!(Bf16::from_f32(1e30).to_f32().is_finite()); // bf16 keeps f32 range
//! assert_eq!(F16::from_f32(2.0).sqrt_r(), F16::from_f32(2.0f32.sqrt()));
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::scalar::{RealScalar, Scalar};

// --- binary16 <-> f32 bit conversions --------------------------------

/// Narrows an `f32` to binary16 bits, round-to-nearest-even, with
/// overflow to ±∞ and gradual underflow to subnormals/±0.
fn f32_to_f16_bits(v: f32) -> u16 {
    let x = v.to_bits();
    let sign = ((x >> 16) & 0x8000) as u16;
    let absx = x & 0x7fff_ffff;
    if absx >= 0x7f80_0000 {
        // Inf propagates; any NaN becomes a quiet NaN.
        return if absx > 0x7f80_0000 {
            sign | 0x7e00
        } else {
            sign | 0x7c00
        };
    }
    // Biased binary16 exponent: f32 bias 127 → f16 bias 15.
    let e = (absx >> 23) as i32 - 112;
    if e >= 0x1f {
        return sign | 0x7c00; // overflow → ±∞
    }
    if e <= 0 {
        // Subnormal range (or rounds to zero below it).
        if e < -10 {
            return sign;
        }
        let man = (absx & 0x7f_ffff) | 0x80_0000; // implicit bit restored
        let shift = (14 - e) as u32; // 14..=24
        let half = man >> shift;
        let rem = man & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let up = (rem > halfway) as u32 + ((rem == halfway) as u32 & (half & 1));
        return sign | (half + up) as u16;
    }
    let man = absx & 0x7f_ffff;
    let half = ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    // Round to nearest even; a carry may ripple into the exponent (and
    // from the largest normal into ∞), which is exactly right.
    let up = (rem > 0x1000) as u32 + ((rem == 0x1000) as u32 & (half & 1));
    sign | (half + up) as u16
}

/// Widens binary16 bits to `f32` (exact — every binary16 value is an f32
/// value).
fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = (h >> 10) & 0x1f;
    let man = (h & 0x3ff) as u32;
    match exp {
        0x1f => f32::from_bits(sign | 0x7f80_0000 | (man << 13) | ((man != 0) as u32) << 22),
        0 => {
            // Subnormal: man · 2⁻²⁴ exactly (2⁻²⁴ = f32 bits 0x3380_0000).
            let mag = man as f32 * f32::from_bits(0x3380_0000);
            if sign != 0 {
                -mag
            } else {
                mag
            }
        }
        _ => f32::from_bits(sign | ((exp as u32 + 112) << 23) | (man << 13)),
    }
}

// --- bfloat16 <-> f32 bit conversions --------------------------------

/// Narrows an `f32` to bfloat16 bits (truncate-with-round-to-nearest-even
/// on bit 16). bfloat16 has no subnormal surprises beyond f32's own.
fn f32_to_bf16_bits(v: f32) -> u16 {
    let x = v.to_bits();
    if v.is_nan() {
        // Keep the sign, force a quiet NaN that survives the truncation.
        return ((x >> 16) as u16) | 0x0040;
    }
    let round = ((x >> 16) & 1) + 0x7fff;
    ((x + round) >> 16) as u16
}

/// Widens bfloat16 bits to `f32` (exact: the low 16 mantissa bits are
/// zero-filled).
fn bf16_bits_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

macro_rules! impl_half_type {
    ($name:ident, $doc:literal, $prefix:expr, $cprefix:expr,
     $to_f32:ident, $from_f32:ident,
     eps_bits: $eps:expr, rmin_bits: $rmin:expr, rmax_bits: $rmax:expr,
     nan_bits: $nan:expr, inf_bits: $inf:expr) => {
        #[doc = $doc]
        #[derive(Clone, Copy, Default, PartialEq)]
        #[repr(transparent)]
        pub struct $name(u16);

        impl $name {
            /// The raw bit pattern.
            #[inline(always)]
            pub const fn to_bits(self) -> u16 {
                self.0
            }
            /// Builds from a raw bit pattern.
            #[inline(always)]
            pub const fn from_bits(bits: u16) -> Self {
                Self(bits)
            }
            /// Widens to `f32` (exact).
            #[inline(always)]
            pub fn to_f32(self) -> f32 {
                $to_f32(self.0)
            }
            /// Rounds an `f32` to nearest-even.
            #[inline(always)]
            pub fn from_f32(v: f32) -> Self {
                Self($from_f32(v))
            }
        }

        impl PartialOrd for $name {
            #[inline(always)]
            fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
                self.to_f32().partial_cmp(&other.to_f32())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), self.to_f32())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.to_f32(), f)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline(always)]
            fn add(self, o: Self) -> Self {
                Self::from_f32(self.to_f32() + o.to_f32())
            }
        }
        impl Sub for $name {
            type Output = Self;
            #[inline(always)]
            fn sub(self, o: Self) -> Self {
                Self::from_f32(self.to_f32() - o.to_f32())
            }
        }
        impl Mul for $name {
            type Output = Self;
            #[inline(always)]
            fn mul(self, o: Self) -> Self {
                Self::from_f32(self.to_f32() * o.to_f32())
            }
        }
        impl Div for $name {
            type Output = Self;
            #[inline(always)]
            fn div(self, o: Self) -> Self {
                Self::from_f32(self.to_f32() / o.to_f32())
            }
        }
        impl Neg for $name {
            type Output = Self;
            #[inline(always)]
            fn neg(self) -> Self {
                Self(self.0 ^ 0x8000)
            }
        }
        impl AddAssign for $name {
            #[inline(always)]
            fn add_assign(&mut self, o: Self) {
                *self = *self + o;
            }
        }
        impl SubAssign for $name {
            #[inline(always)]
            fn sub_assign(&mut self, o: Self) {
                *self = *self - o;
            }
        }
        impl MulAssign for $name {
            #[inline(always)]
            fn mul_assign(&mut self, o: Self) {
                *self = *self * o;
            }
        }
        impl DivAssign for $name {
            #[inline(always)]
            fn div_assign(&mut self, o: Self) {
                *self = *self / o;
            }
        }
        impl Sum for $name {
            /// Accumulates in `f32` and rounds once at the end — matching
            /// the f32-accumulation contract of the half BLAS paths.
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self::from_f32(iter.map(|v| v.to_f32()).sum())
            }
        }

        impl Scalar for $name {
            type Real = $name;
            const IS_COMPLEX: bool = false;
            const IS_HALF: bool = true;
            const PREFIX: char = $prefix;

            #[inline(always)]
            fn zero() -> Self {
                Self(0)
            }
            #[inline(always)]
            fn one() -> Self {
                Self::from_f32(1.0)
            }
            #[inline(always)]
            fn from_real(re: Self) -> Self {
                re
            }
            #[inline(always)]
            fn from_re_im(re: Self, _im: Self) -> Self {
                re
            }
            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                // Via f32: double rounding can differ from direct f64
                // rounding only on exact f32 ties, which a demotion
                // target tolerates (the refinement loop absorbs it).
                Self::from_f32(x as f32)
            }
            #[inline(always)]
            fn re(self) -> Self {
                self
            }
            #[inline(always)]
            fn im(self) -> Self {
                Self(0)
            }
            #[inline(always)]
            fn conj(self) -> Self {
                self
            }
            #[inline(always)]
            fn abs(self) -> Self {
                Self(self.0 & 0x7fff)
            }
            #[inline(always)]
            fn abs1(self) -> Self {
                Self(self.0 & 0x7fff)
            }
            #[inline(always)]
            fn abs_sqr(self) -> Self {
                let v = self.to_f32();
                Self::from_f32(v * v)
            }
            #[inline(always)]
            fn mul_real(self, r: Self) -> Self {
                self * r
            }
            #[inline(always)]
            fn div_real(self, r: Self) -> Self {
                self / r
            }
            #[inline(always)]
            fn recip(self) -> Self {
                Self::from_f32(1.0 / self.to_f32())
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                Self::from_f32(self.to_f32().sqrt())
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                (self.0 & 0x7fff) < $inf
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                (self.0 & 0x7fff) > $inf
            }
        }

        impl RealScalar for $name {
            const EPS: Self = Self($eps);
            const CPREFIX: char = $cprefix;

            #[inline(always)]
            fn sfmin() -> Self {
                // Smallest positive normal; its reciprocal is finite in
                // both formats.
                Self($rmin)
            }
            #[inline(always)]
            fn rmin() -> Self {
                Self($rmin)
            }
            #[inline(always)]
            fn rmax() -> Self {
                Self($rmax)
            }
            #[inline(always)]
            fn rabs(self) -> Self {
                Self(self.0 & 0x7fff)
            }
            #[inline(always)]
            fn sqrt_r(self) -> Self {
                Self::from_f32(self.to_f32().sqrt())
            }
            #[inline(always)]
            fn hypot(self, other: Self) -> Self {
                Self::from_f32(self.to_f32().hypot(other.to_f32()))
            }
            #[inline(always)]
            fn atan2(self, other: Self) -> Self {
                Self::from_f32(self.to_f32().atan2(other.to_f32()))
            }
            #[inline(always)]
            fn sin_r(self) -> Self {
                Self::from_f32(self.to_f32().sin())
            }
            #[inline(always)]
            fn cos_r(self) -> Self {
                Self::from_f32(self.to_f32().cos())
            }
            #[inline(always)]
            fn maxr(self, other: Self) -> Self {
                if self >= other {
                    self
                } else {
                    other
                }
            }
            #[inline(always)]
            fn minr(self, other: Self) -> Self {
                if self <= other {
                    self
                } else {
                    other
                }
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                Self::from_f32(self.to_f32().powi(n))
            }
            #[inline(always)]
            fn ln(self) -> Self {
                Self::from_f32(self.to_f32().ln())
            }
            #[inline(always)]
            fn log10(self) -> Self {
                Self::from_f32(self.to_f32().log10())
            }
            #[inline(always)]
            fn round_r(self) -> Self {
                Self::from_f32(self.to_f32().round())
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self.to_f32() as f64
            }
            #[inline(always)]
            fn from_usize(n: usize) -> Self {
                Self::from_f32(n as f32)
            }
            #[inline(always)]
            fn is_finite_r(self) -> bool {
                Scalar::is_finite(self)
            }
            #[inline(always)]
            fn nan() -> Self {
                Self($nan)
            }
        }
    };
}

impl_half_type!(
    F16,
    "IEEE 754 binary16: 1 sign + 5 exponent + 10 significand bits. \
     Range ±65504, smallest positive normal 2⁻¹⁴ ≈ 6.1e-5, machine \
     epsilon 2⁻¹⁰ ≈ 9.8e-4. The speed end of the precision lattice — \
     and the reason [`crate::mixed::demote_slice`] flags underflow as \
     well as overflow.",
    'H',
    'h',
    f16_bits_to_f32,
    f32_to_f16_bits,
    eps_bits: 0x1400,  // 2^-10
    rmin_bits: 0x0400, // 2^-14
    rmax_bits: 0x7bff, // 65504
    nan_bits: 0x7e00,
    inf_bits: 0x7c00
);

impl_half_type!(
    Bf16,
    "bfloat16: 1 sign + 8 exponent + 7 significand bits — the top half \
     of an `f32`. Keeps the f32 exponent range (±3.4e38, smallest \
     positive normal 2⁻¹²⁶), trading significand for range: machine \
     epsilon 2⁻⁷ ≈ 7.8e-3. Demotion rarely overflows or underflows, but \
     a factorization carries only ~2 decimal digits — exactly the regime \
     three-precision iterative refinement exists for.",
    'B',
    'b',
    bf16_bits_to_f32,
    f32_to_bf16_bits,
    eps_bits: 0x3c00,  // 2^-7
    rmin_bits: 0x0080, // 2^-126
    rmax_bits: 0x7f7f, // ~3.39e38
    nan_bits: 0x7fc0,
    inf_bits: 0x7f80
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_conversion_round_trips_every_bit_pattern() {
        // Exhaustive: widening then narrowing is the identity on every
        // finite binary16 value, NaNs stay NaN, infinities stay infinite.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let w = h.to_f32();
            let back = F16::from_f32(w);
            if h.is_nan() {
                assert!(w.is_nan() && back.is_nan(), "bits {bits:#06x}");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x} via {w}");
            }
        }
    }

    #[test]
    fn bf16_conversion_round_trips_every_bit_pattern() {
        for bits in 0..=u16::MAX {
            let h = Bf16::from_bits(bits);
            let w = h.to_f32();
            let back = Bf16::from_f32(w);
            if h.is_nan() {
                assert!(w.is_nan() && back.is_nan(), "bits {bits:#06x}");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x} via {w}");
            }
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1 and 1 + 2^-10: ties to
        // even → 1. One ulp above the tie rounds up.
        assert_eq!(F16::from_f32(1.0 + 0.000_488_281_25).to_f32(), 1.0);
        let next = 1.0 + 2.0f32.powi(-10);
        // One f32 ulp above the tie is no longer a tie: rounds up.
        let above_tie = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-23);
        assert_eq!(F16::from_f32(above_tie).to_f32(), next);
        // And the tie above an odd significand rounds *up* to even.
        assert_eq!(
            F16::from_f32(next + 0.000_488_281_25).to_f32(),
            1.0 + 2.0 * 2.0f32.powi(-10)
        );
    }

    #[test]
    fn f16_overflow_underflow_edges() {
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7bff);
        assert!(!F16::from_f32(65520.0).is_finite()); // rounds to ∞
        assert!(F16::from_f32(65519.9).is_finite()); // rounds to 65504
        assert_eq!(F16::from_f32(-65504.0).to_f32(), -65504.0);
        // Gradual underflow: smallest subnormal is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        assert_eq!(F16::from_f32(tiny * 0.49).to_f32(), 0.0);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn bf16_keeps_f32_range() {
        assert!(Bf16::from_f32(1e38).is_finite());
        // f32::MAX sits above bf16's rmax and rounds up to infinity.
        assert!(!Bf16::from_f32(f32::MAX).is_finite());
        // Subnormal f32s truncate to subnormal bf16s (coarsely: only the
        // top 7 significand bits survive), they don't flush to zero.
        let sub = Bf16::from_f32(1e-38).to_f32();
        assert!(sub > 0.0 && (sub - 1e-38).abs() < 1e-38 * 0.01, "{sub:e}");
        assert_eq!(Bf16::rmax().to_f32(), f32::from_bits(0x7f7f_0000));
    }

    #[test]
    fn machine_params_match_the_formats() {
        assert_eq!(F16::EPS.to_f32(), 2.0f32.powi(-10));
        assert_eq!(F16::rmin().to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::rmax().to_f32(), 65504.0);
        assert_eq!(Bf16::EPS.to_f32(), 2.0f32.powi(-7));
        assert_eq!(Bf16::rmin().to_f32(), 2.0f32.powi(-126));
        // sfmin's reciprocal must stay finite (the xLAMCH('S') contract).
        assert!(Scalar::is_finite(F16::sfmin().recip()));
        assert!(Scalar::is_finite(Bf16::sfmin().recip()));
    }

    #[test]
    fn scalar_ops_route_through_f32() {
        fn check<H: RealScalar>() {
            let two = H::from_f64(2.0);
            let three = H::from_f64(3.0);
            assert_eq!(two + three, H::from_f64(5.0));
            assert_eq!(two * three, H::from_f64(6.0));
            assert_eq!((-two).rabs(), two);
            assert_eq!(H::from_f64(4.0).sqrt_r(), two);
            assert_eq!(H::from_f64(4.0).rsqrt(), H::from_f64(0.5));
            assert!(H::nan().is_nan());
            assert!(!Scalar::is_finite(H::nan()));
            assert!(two < three && three >= two);
            // Sum accumulates in f32: adding 4096 copies of eps/2 to 1
            // would stall entirely in pure-f16 arithmetic; via f32 it
            // lands at ~3 (f16) — the accumulation really is wider.
            let n = 4096usize;
            let e = H::EPS.to_f64() * 0.5;
            let total: H = std::iter::once(H::one())
                .chain((0..n).map(|_| H::from_f64(e)))
                .sum();
            assert!(
                (total.to_f64() - (1.0 + n as f64 * e)).abs()
                    < 64.0 * e * n as f64 * H::EPS.to_f64() + H::EPS.to_f64() * 4.0,
                "sum {} vs {}",
                total.to_f64(),
                1.0 + n as f64 * e
            );
        }
        check::<F16>();
        check::<Bf16>();
    }

    #[test]
    fn prefixes_are_distinct_from_the_classic_four() {
        assert_eq!(F16::PREFIX, 'H');
        assert_eq!(Bf16::PREFIX, 'B');
        const _: () = assert!(F16::IS_HALF && Bf16::IS_HALF);
    }
}
