//! Cooperative cancellation — per-call-tree deadlines and cancel tokens
//! for long-running factorizations.
//!
//! A production solve service cannot afford a job that ignores its
//! deadline: an `n = 4096` factorization holds a worker for seconds, and
//! the only alternatives to cooperation are killing threads (unsound in
//! Rust) or letting the deadline pass silently. This module provides the
//! cooperative half of the contract:
//!
//! * [`CancelToken`] — a cheap, cloneable handle carrying an optional
//!   absolute deadline and a manual cancel flag.
//! * [`with_token`] — installs a token on the current thread for the
//!   duration of a closure, exactly like [`crate::tune::with`]. Nested
//!   calls stack; the innermost token governs.
//! * [`cancelled`] — the checkpoint the blocked factorizations poll at
//!   panel boundaries (`getrf`/`potrf` check once per `NB`-column step,
//!   so a cancel lands within one panel's worth of work, not after the
//!   whole O(n³)). With no token installed it is a single thread-local
//!   read returning `false` — the hot path of non-service callers is
//!   untouched.
//!
//! A routine that observes cancellation abandons its computation and
//! returns [`INFO_CANCELLED`] (`-103`); the output buffers are left in a
//! valid-but-unspecified partially-factored state. The `la90` drivers
//! route the code through `ERINFO` as [`crate::LaError::Cancelled`].
//!
//! ```
//! use la_core::cancel::{self, CancelToken};
//! let token = CancelToken::new();
//! token.cancel();
//! let seen = cancel::with_token(token, cancel::cancelled);
//! assert!(seen);
//! assert!(!cancel::cancelled()); // token uninstalled on exit
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// `INFO` code returned by a computational routine that abandoned its
/// work at a cancellation checkpoint (deadline passed or token
/// cancelled). Maps to [`crate::LaError::Cancelled`] through `ERINFO`.
pub const INFO_CANCELLED: i32 = -103;

/// `INFO` code recorded for a batch job whose worker panicked; the panic
/// was isolated to that job (caught at the job boundary) and its output
/// is unspecified. Maps to [`crate::LaError::Panicked`] through `ERINFO`.
pub const INFO_PANICKED: i32 = -104;

struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cancellation handle: cloneable, sendable, observed by whichever
/// thread has it installed via [`with_token`].
///
/// Cancellation is level-triggered and sticky — once [`CancelToken::cancel`]
/// fires or the deadline passes, every subsequent [`cancelled`] check on
/// a thread carrying this token reports `true`.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

impl CancelToken {
    /// A token with no deadline; trips only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally trips once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has fired or the deadline has
    /// passed. The deadline comparison reads the monotonic clock, so call
    /// it at *checkpoints*, not in inner loops.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                // Latch, so later checks skip the clock read.
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The absolute deadline, if this token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// A liveness counter for watchdogs: a monotonically increasing beat
/// count stamped by [`cancelled`] every time the carrying thread passes a
/// cancellation checkpoint.
///
/// The blocked factorizations already poll [`cancelled`] once per
/// `NB`-column panel, so a thread with a heartbeat installed (via
/// [`with_heartbeat`]) proves forward progress as a side effect of the
/// checkpoints it was polling anyway — no extra instrumentation in the
/// compute kernels. A monitor that samples [`Heartbeat::beats`] and sees
/// the count stand still across its interval knows the thread is wedged
/// (stuck in a non-cooperative loop or blocked outside the library), not
/// merely slow: a slow panel still beats at its boundary.
#[derive(Clone, Default)]
pub struct Heartbeat {
    beats: Arc<AtomicU64>,
}

impl Heartbeat {
    /// A fresh heartbeat with a beat count of zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of checkpoints passed since creation. Monotonic;
    /// sampled by watchdog monitors, stamped by [`cancelled`].
    pub fn beats(&self) -> u64 {
        self.beats.load(Ordering::Relaxed)
    }

    /// Records one checkpoint passage. Public so dispatchers can stamp at
    /// their own boundaries (e.g. between batch items) in addition to the
    /// implicit stamps from [`cancelled`].
    pub fn stamp(&self) {
        self.beats.fetch_add(1, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Heartbeat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heartbeat")
            .field("beats", &self.beats())
            .finish()
    }
}

thread_local! {
    static TOKENS: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
    static HEARTBEATS: RefCell<Vec<Heartbeat>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `token` installed on the current thread, restoring the
/// previous state afterwards (also on panic). Nested calls stack; the
/// innermost token is the one [`cancelled`] consults.
///
/// Worker threads do not inherit the caller's token automatically — a
/// dispatcher fanning a call tree out across threads must capture
/// [`current`] and re-install it in each worker, the same way scoped
/// [`crate::tune`] overrides travel.
pub fn with_token<R>(token: CancelToken, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            TOKENS.with(|t| t.borrow_mut().pop());
        }
    }
    TOKENS.with(|t| t.borrow_mut().push(token));
    let _guard = Guard;
    f()
}

/// The token installed on this thread, if any (innermost [`with_token`]).
pub fn current() -> Option<CancelToken> {
    TOKENS.with(|t| t.borrow().last().cloned())
}

/// Runs `f` with `hb` installed as the current thread's heartbeat,
/// restoring the previous state afterwards (also on panic). Nested calls
/// stack; the innermost heartbeat is the one [`cancelled`] stamps.
///
/// Like cancel tokens, heartbeats do not cross into spawned workers on
/// their own — a dispatcher must capture [`heartbeat`] and re-install it
/// in each worker for the monitor to keep seeing beats.
pub fn with_heartbeat<R>(hb: Heartbeat, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            HEARTBEATS.with(|h| h.borrow_mut().pop());
        }
    }
    HEARTBEATS.with(|h| h.borrow_mut().push(hb));
    let _guard = Guard;
    f()
}

/// The heartbeat installed on this thread, if any (innermost
/// [`with_heartbeat`]).
pub fn heartbeat() -> Option<Heartbeat> {
    HEARTBEATS.with(|h| h.borrow().last().cloned())
}

/// Cancellation checkpoint: `true` when the innermost installed token has
/// been cancelled or its deadline has passed. Also stamps the innermost
/// installed [`Heartbeat`], proving liveness to any watchdog sampling it.
/// With no token and no heartbeat installed this is two thread-local
/// borrows returning `false`.
pub fn cancelled() -> bool {
    HEARTBEATS.with(|h| {
        if let Some(hb) = h.borrow().last() {
            hb.stamp();
        }
    });
    TOKENS.with(|t| {
        t.borrow()
            .last()
            .map(|tok| tok.is_cancelled())
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn no_token_means_never_cancelled() {
        assert!(!cancelled());
        assert!(current().is_none());
    }

    #[test]
    fn manual_cancel_trips_and_uninstalls() {
        let tok = CancelToken::new();
        let clone = tok.clone();
        let seen = with_token(tok, || {
            assert!(!cancelled());
            clone.cancel();
            cancelled()
        });
        assert!(seen);
        assert!(!cancelled());
    }

    #[test]
    fn deadline_trips_and_latches() {
        let tok = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(tok.is_cancelled());
        assert!(tok.is_cancelled(), "deadline cancellation must latch");
        let fresh = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!fresh.is_cancelled());
        assert!(fresh.deadline().is_some());
    }

    #[test]
    fn nested_tokens_stack() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        inner.cancel();
        with_token(outer, || {
            assert!(!cancelled());
            with_token(inner.clone(), || assert!(cancelled()));
            assert!(!cancelled(), "outer token must govern again");
        });
    }

    #[test]
    fn checkpoints_stamp_the_innermost_heartbeat() {
        let hb = Heartbeat::new();
        assert_eq!(hb.beats(), 0);
        assert!(heartbeat().is_none());
        with_heartbeat(hb.clone(), || {
            assert!(!cancelled()); // no token: false, but the beat lands
            assert!(!cancelled());
            let inner = Heartbeat::new();
            with_heartbeat(inner.clone(), || {
                assert!(!cancelled());
                assert_eq!(inner.beats(), 1, "innermost heartbeat governs");
            });
            assert_eq!(
                heartbeat().map(|h| h.beats()),
                Some(2),
                "outer heartbeat reinstated"
            );
        });
        assert_eq!(hb.beats(), 2);
        assert!(heartbeat().is_none(), "heartbeat uninstalled on exit");
        cancelled(); // no heartbeat installed: no stamp, no panic
        assert_eq!(hb.beats(), 2);
    }

    #[test]
    fn heartbeat_crosses_threads_via_reinstall() {
        let hb = Heartbeat::new();
        std::thread::scope(|s| {
            let h = hb.clone();
            s.spawn(move || {
                with_heartbeat(h, || {
                    assert!(!cancelled());
                })
            })
            .join()
            .unwrap();
        });
        assert_eq!(hb.beats(), 1, "beats are visible across threads");
    }

    #[test]
    fn token_crosses_threads_via_reinstall() {
        let tok = CancelToken::new();
        tok.cancel();
        let seen = std::thread::scope(|s| {
            let t = tok.clone();
            s.spawn(move || with_token(t, cancelled)).join().unwrap()
        });
        assert!(seen);
    }
}
