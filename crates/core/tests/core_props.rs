//! Property tests for the foundation layer: Complex robustness, storage
//! roundtrips, Mat invariants, error-code conventions.
//!
//! Dependency-free: each property is checked over a deterministic sweep of
//! seeded pseudo-random cases (SplitMix64) instead of a proptest strategy,
//! so the suite runs fully offline.

use la_core::{BandMat, Complex, Mat, PackedMat, SymBandMat, Uplo, C64};

/// SplitMix64 — tiny, seedable, good enough to sweep a property space.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e3779b97f4a7c15))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    /// Uniform in [-1, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }
    /// Uniform in [lo, hi).
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next_f64() + 1.0) * 0.5 * (hi - lo)
    }
    fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
    fn cval(&mut self) -> C64 {
        C64::new(self.range_f64(-1e3, 1e3), self.range_f64(-1e3, 1e3))
    }
    /// Complex value with extreme magnitude — exercises ladiv scaling paths.
    fn cval_wide(&mut self) -> C64 {
        let e = self.range_usize(0, 600) as i32 - 300;
        let s = 2f64.powi(e);
        C64::new(self.next_f64() * s, self.next_f64() * s)
    }
}

const CASES: u64 = 128;

#[test]
fn ladiv_agrees_with_reconstruction() {
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let (a, b) = (rng.cval(), rng.cval());
        if b.abs() <= 1e-6 {
            continue;
        }
        let q = a.ladiv(b);
        let back = q * b;
        assert!(
            (back - a).abs() < 1e-9 * (1.0 + a.abs()),
            "{a:?} / {b:?} = {q:?}"
        );
    }
}

#[test]
fn ladiv_never_nans_on_finite_nonzero() {
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let (a, b) = (rng.cval_wide(), rng.cval_wide());
        if !(b.abs1() > 0.0 && b.is_finite() && a.is_finite()) {
            continue;
        }
        let q = a.ladiv(b);
        assert!(!q.is_nan(), "{a:?} / {b:?} = {q:?}");
    }
}

#[test]
fn complex_sqrt_principal() {
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let z = rng.cval();
        let s = z.sqrt();
        assert!(s.re >= 0.0);
        assert!((s * s - z).abs() < 1e-9 * (1.0 + z.abs()));
    }
}

#[test]
fn mat_transpose_involution() {
    let mut rng = Rng::new(4);
    for _ in 0..CASES {
        let (m, n) = (rng.range_usize(1, 8), rng.range_usize(1, 8));
        let a: Mat<f64> = Mat::from_fn(m, n, |_, _| rng.next_f64());
        assert_eq!(a.transpose().transpose(), a.clone());
        assert_eq!(a.conj_transpose().conj_transpose(), a);
    }
}

#[test]
fn packed_roundtrip() {
    let mut rng = Rng::new(5);
    for case in 0..CASES {
        let n = rng.range_usize(1, 10);
        let uplo = if case % 2 == 0 {
            Uplo::Upper
        } else {
            Uplo::Lower
        };
        let mut d: Mat<f64> = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..=j {
                let v = rng.next_f64();
                d[(i, j)] = v;
                d[(j, i)] = v;
            }
        }
        let p = PackedMat::from_dense(&d, uplo);
        assert_eq!(p.as_slice().len(), n * (n + 1) / 2);
        assert_eq!(p.to_dense_sym(), d);
    }
}

#[test]
fn band_roundtrip() {
    let mut rng = Rng::new(6);
    for case in 0..CASES {
        let n = rng.range_usize(1, 10);
        let kl = rng.range_usize(0, 4);
        let ku = rng.range_usize(0, 4);
        let for_factor = case % 2 == 0;
        let d: Mat<f64> = Mat::from_fn(n, n, |i, j| {
            if i + ku >= j && j + kl >= i {
                rng.next_f64()
            } else {
                0.0
            }
        });
        let b = BandMat::from_dense(&d, kl, ku, for_factor);
        assert_eq!(b.to_dense(), d);
    }
}

#[test]
fn sym_band_roundtrip() {
    let mut rng = Rng::new(7);
    for case in 0..CASES {
        let n = rng.range_usize(1, 10);
        let kd = rng.range_usize(0, 4);
        let uplo = if case % 2 == 0 {
            Uplo::Upper
        } else {
            Uplo::Lower
        };
        let mut d: Mat<f64> = Mat::zeros(n, n);
        for j in 0..n {
            for i in j.saturating_sub(kd)..=j {
                let v = rng.next_f64();
                d[(i, j)] = v;
                d[(j, i)] = v;
            }
        }
        let sb = SymBandMat::from_dense(&d, kd, uplo);
        assert_eq!(sb.to_dense_sym(), d);
    }
}

#[test]
fn norms_are_norms() {
    let mut rng = Rng::new(8);
    for _ in 0..CASES {
        let (m, n) = (rng.range_usize(1, 7), rng.range_usize(1, 7));
        let scale = rng.range_f64(1e-3, 1e3);
        let a: Mat<f64> = Mat::from_fn(m, n, |_, _| rng.next_f64());
        // Homogeneity.
        let scaled = a.map(|x| x * scale);
        assert!(
            (scaled.norm_fro() - a.norm_fro() * scale).abs() < 1e-9 * (1.0 + a.norm_fro() * scale)
        );
        // max |a_ij| ≤ fro.
        assert!(a.norm_max() <= a.norm_fro() + 1e-12);
    }
}

#[test]
fn complex_scalar_vs_inherent_agree() {
    use la_core::Scalar;
    let mut rng = Rng::new(9);
    for _ in 0..CASES {
        let z = C64::new(rng.range_f64(-10.0, 10.0), rng.range_f64(-10.0, 10.0));
        assert_eq!(Scalar::conj(z), Complex::conj(z));
        assert!((Scalar::abs(z) - Complex::abs(z)).abs() == 0.0);
        assert_eq!(Scalar::mul_real(z, 2.5), z.scale(2.5));
    }
}

#[test]
fn mat_macro_and_display() {
    let a: Mat<f64> = la_core::mat![[1.5, -2.0], [0.25, 3.0]];
    assert_eq!(a.shape(), (2, 2));
    let shown = format!("{a}");
    assert!(shown.contains("1.500") && shown.contains("-2.000"));
}
