//! Property tests for the foundation layer: Complex robustness, storage
//! roundtrips, Mat invariants, error-code conventions.

use la_core::{BandMat, Complex, Mat, PackedMat, SymBandMat, Uplo, C64};
use proptest::prelude::*;

fn cval() -> impl Strategy<Value = C64> {
    ((-1e3f64..1e3), (-1e3f64..1e3)).prop_map(|(r, i)| C64::new(r, i))
}

fn cval_wide() -> impl Strategy<Value = C64> {
    // Exercise the ladiv scaling paths with extreme magnitudes.
    ((-300i32..300), (-1.0f64..1.0), (-1.0f64..1.0)).prop_map(|(e, r, i)| {
        let s = 2f64.powi(e);
        C64::new(r * s, i * s)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ladiv_agrees_with_reconstruction(a in cval(), b in cval()) {
        prop_assume!(b.abs() > 1e-6);
        let q = a.ladiv(b);
        let back = q * b;
        prop_assert!((back - a).abs() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn ladiv_never_nans_on_finite_nonzero(a in cval_wide(), b in cval_wide()) {
        prop_assume!(b.abs1() > 0.0 && b.is_finite() && a.is_finite());
        let q = a.ladiv(b);
        prop_assert!(!q.is_nan(), "{a:?} / {b:?} = {q:?}");
    }

    #[test]
    fn complex_sqrt_principal(z in cval()) {
        let s = z.sqrt();
        prop_assert!(s.re >= 0.0);
        prop_assert!((s * s - z).abs() < 1e-9 * (1.0 + z.abs()));
    }

    #[test]
    fn mat_transpose_involution(m in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
        let mut k = seed;
        let a: Mat<f64> = Mat::from_fn(m, n, |_, _| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((k >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        prop_assert_eq!(a.conj_transpose().conj_transpose(), a);
    }

    #[test]
    fn packed_roundtrip(n in 1usize..10, upper in any::<bool>(), seed in 0u64..1000) {
        let uplo = if upper { Uplo::Upper } else { Uplo::Lower };
        let mut k = seed;
        let mut next = move || {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((k >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        // Symmetric dense.
        let mut d: Mat<f64> = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..=j {
                let v = next();
                d[(i, j)] = v;
                d[(j, i)] = v;
            }
        }
        let p = PackedMat::from_dense(&d, uplo);
        prop_assert_eq!(p.as_slice().len(), n * (n + 1) / 2);
        prop_assert_eq!(p.to_dense_sym(), d);
    }

    #[test]
    fn band_roundtrip(n in 1usize..10, kl in 0usize..4, ku in 0usize..4,
                      for_factor in any::<bool>(), seed in 0u64..1000) {
        let mut k = seed;
        let mut next = move || {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((k >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let d: Mat<f64> = Mat::from_fn(n, n, |i, j| {
            if i + ku >= j && j + kl >= i {
                next()
            } else {
                0.0
            }
        });
        let b = BandMat::from_dense(&d, kl, ku, for_factor);
        prop_assert_eq!(b.to_dense(), d);
    }

    #[test]
    fn sym_band_roundtrip(n in 1usize..10, kd in 0usize..4, upper in any::<bool>(), seed in 0u64..1000) {
        let uplo = if upper { Uplo::Upper } else { Uplo::Lower };
        let mut k = seed;
        let mut next = move || {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((k >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut d: Mat<f64> = Mat::zeros(n, n);
        for j in 0..n {
            for i in j.saturating_sub(kd)..=j {
                let v = next();
                d[(i, j)] = v;
                d[(j, i)] = v;
            }
        }
        let sb = SymBandMat::from_dense(&d, kd, uplo);
        prop_assert_eq!(sb.to_dense_sym(), d);
    }

    #[test]
    fn norms_are_norms(m in 1usize..7, n in 1usize..7, seed in 0u64..1000, scale in 1e-3f64..1e3) {
        let mut k = seed;
        let a: Mat<f64> = Mat::from_fn(m, n, |_, _| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((k >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        // Homogeneity.
        let scaled = a.map(|x| x * scale);
        prop_assert!((scaled.norm_fro() - a.norm_fro() * scale).abs() < 1e-9 * (1.0 + a.norm_fro() * scale));
        // max |a_ij| ≤ fro.
        prop_assert!(a.norm_max() <= a.norm_fro() + 1e-12);
    }

    #[test]
    fn complex_scalar_vs_inherent_agree(re in -10.0f64..10.0, im in -10.0f64..10.0) {
        use la_core::Scalar;
        let z = C64::new(re, im);
        prop_assert_eq!(Scalar::conj(z), Complex::conj(z));
        prop_assert!((Scalar::abs(z) - Complex::abs(z)).abs() == 0.0);
        prop_assert_eq!(Scalar::mul_real(z, 2.5), z.scale(2.5));
    }
}

#[test]
fn mat_macro_and_display() {
    let a: Mat<f64> = la_core::mat![[1.5, -2.0], [0.25, 3.0]];
    assert_eq!(a.shape(), (2, 2));
    let shown = format!("{a}");
    assert!(shown.contains("1.500") && shown.contains("-2.000"));
}
